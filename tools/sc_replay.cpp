// sc_replay — drive a CSV trace (from sc_tracegen) through running proxies.
//
//   sc_replay --in trace.csv --proxy 8081 --proxy 8082 --proxy 8083
//
// Request i goes to proxy (client_id mod #proxies); prints the client-side
// hit breakdown and latency when done.
#include <cstdio>
#include <vector>

#include "cli.hpp"
#include "proto/replay_client.hpp"
#include "trace/trace_io.hpp"
#include "util/bytes.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    const cli::Flags flags(argc, argv, {"in", "proxy", "proxies", "limit"});

    const auto trace_full = read_trace_csv_file(flags.require("in"));
    std::vector<Request> trace = trace_full;
    if (flags.has("limit")) {
        const auto limit = static_cast<std::size_t>(flags.get_int("limit", 0));
        if (limit < trace.size()) trace.resize(limit);
    }

    // --proxy may repeat via comma list in --proxies, or single --proxy.
    std::vector<Endpoint> endpoints;
    if (flags.has("proxies")) {
        const std::string list = flags.require("proxies");
        std::size_t start = 0;
        while (start < list.size()) {
            const auto comma = list.find(',', start);
            const std::string item = list.substr(
                start, comma == std::string::npos ? std::string::npos : comma - start);
            const auto ep = Endpoint::parse(item);
            if (!ep) {
                std::fprintf(stderr, "bad endpoint '%s'\n", item.c_str());
                return 2;
            }
            endpoints.push_back(*ep);
            if (comma == std::string::npos) break;
            start = comma + 1;
        }
    }
    if (flags.has("proxy")) {
        const auto ep = Endpoint::parse(flags.require("proxy"));
        if (!ep) {
            std::fprintf(stderr, "bad --proxy\n");
            return 2;
        }
        endpoints.push_back(*ep);
    }
    if (endpoints.empty()) {
        std::fprintf(stderr, "need --proxy PORT or --proxies P1,P2,...\n");
        return 2;
    }

    std::printf("replaying %s requests against %zu proxies...\n",
                format_count(trace.size()).c_str(), endpoints.size());
    const ReplayClientStats stats = replay_trace(trace, endpoints);

    std::printf("requests     %10llu\n", static_cast<unsigned long long>(stats.requests));
    std::printf("local hits   %10llu (%.2f%%)\n",
                static_cast<unsigned long long>(stats.local_hits),
                100.0 * stats.local_hits / stats.requests);
    std::printf("remote hits  %10llu (%.2f%%)\n",
                static_cast<unsigned long long>(stats.remote_hits),
                100.0 * stats.remote_hits / stats.requests);
    std::printf("misses       %10llu (%.2f%%)\n",
                static_cast<unsigned long long>(stats.misses),
                100.0 * stats.misses / stats.requests);
    std::printf("errors       %10llu\n", static_cast<unsigned long long>(stats.errors));
    std::printf("latency mean %10.2f ms  (min %.2f, max %.2f)\n",
                1000.0 * stats.latency_s.mean(), 1000.0 * stats.latency_s.min(),
                1000.0 * stats.latency_s.max());
    return 0;
}
