// sc_lint — the repo's custom invariant checker (docs/STATIC_ANALYSIS.md).
//
// Clang's thread-safety analysis proves lock discipline, but five project
// invariants live outside any compiler's type system:
//
//   raw-mutex          std::mutex / std::lock_guard / std::unique_lock /
//                      std::condition_variable may only appear inside
//                      util/thread_annotations.hpp. Everywhere else must use
//                      the annotated sc::Mutex family, or the thread-safety
//                      analysis silently sees nothing.
//   hotpath-alloc      functions whose definition is marked SC_HOT_PATH must
//                      not heap-allocate (the Bloom probe path is the per-
//                      request cost the paper's scaling argument rests on).
//   eventloop-blocking functions marked SC_EVENT_LOOP_ONLY run on MiniProxy's
//                      single poll loop and must never issue a blocking
//                      socket call or sleep — one blocked loop stalls every
//                      session.
//   raw-counter-shift  counter-width arithmetic ((1 << counter_bits) - 1 and
//                      friends) is how Section IV overflow bugs happen; it is
//                      only allowed inside bloom/counter_math.hpp, which
//                      everything else must call.
//   raw-poll           poll/ppoll/epoll_wait/epoll_pwait may only be issued
//                      from src/net/ — the readiness layer. Everything else
//                      goes through sc::net::EventBackend (event loops) or
//                      sc::net::wait_fd_readable (one-shot waits), so backend
//                      selection and wait accounting stay in one place.
//
// The checker is a token-level scanner, not a compiler plugin: the toolchain
// image has no libclang, and these rules only need honest lexing (comments,
// string literals and raw strings stripped) plus brace matching to find
// marked function bodies.
//
// A finding can be waived at the offending line, or the line above, with:
//
//     // sc_lint: allow(<rule-id>) <reason>
//
// The reason is mandatory by convention (reviewers reject bare waivers).
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sc::lint {

struct Diagnostic {
    std::string file;
    unsigned line = 0;
    std::string rule;
    std::string message;

    friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// "<file>:<line>: error: [<rule>] <message>" — the format CI greps for.
[[nodiscard]] std::string format(const Diagnostic& d);

/// Rule identifiers accepted by Options::rules, in report order.
[[nodiscard]] const std::vector<std::string>& all_rules();

struct Options {
    /// Rule ids to run; empty means all of them.
    std::vector<std::string> rules;
};

/// Lint one translation unit's text. `path` is used for reporting and for
/// the path-based exemptions (thread_annotations.hpp, counter_math.hpp).
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view path,
                                                  std::string_view text,
                                                  const Options& options = {});

/// Lint a file from disk; nullopt if it cannot be read.
[[nodiscard]] std::optional<std::vector<Diagnostic>> lint_file(
    const std::filesystem::path& path, const Options& options = {});

/// Expand files and directories (recursing for C++ sources) into the sorted
/// list of files sc_lint would visit.
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& paths);

}  // namespace sc::lint
