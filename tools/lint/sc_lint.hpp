// sc_lint — the repo's custom invariant checker (docs/STATIC_ANALYSIS.md).
//
// Clang's thread-safety analysis proves lock discipline, but these project
// invariants live outside any compiler's type system:
//
//   raw-mutex          std::mutex / std::lock_guard / std::unique_lock /
//                      std::condition_variable may only appear inside
//                      util/thread_annotations.hpp. Everywhere else must use
//                      the annotated sc::Mutex family, or the thread-safety
//                      analysis silently sees nothing.
//   hotpath-alloc      functions whose definition is marked SC_HOT_PATH must
//                      not heap-allocate (the Bloom probe path is the per-
//                      request cost the paper's scaling argument rests on).
//   eventloop-blocking functions marked SC_EVENT_LOOP_ONLY run on MiniProxy's
//                      single poll loop and must never issue a blocking
//                      socket call or sleep — one blocked loop stalls every
//                      session.
//   raw-counter-shift  counter-width arithmetic ((1 << counter_bits) - 1 and
//                      friends) is how Section IV overflow bugs happen; it is
//                      only allowed inside bloom/counter_math.hpp, which
//                      everything else must call.
//   raw-poll           poll/ppoll/epoll_wait/epoll_pwait may only be issued
//                      from src/net/ — the readiness layer. Everything else
//                      goes through sc::net::EventBackend (event loops) or
//                      sc::net::wait_fd_readable (one-shot waits), so backend
//                      selection and wait accounting stay in one place.
//   raw-decode         a TU marked SC_UNTRUSTED_DECODE_TU parses attacker-
//                      controlled bytes; memcpy/sscanf-style raw reads,
//                      reinterpret_cast, and data()+offset pointer math are
//                      denied there — every read goes through
//                      sc::util::ByteReader (util/byte_reader.hpp, the one
//                      exempt header along with byte_writer.hpp).
//   exhaustive-wire-switch
//                      a switch over a wire-facing enum (IcpOpcode,
//                      SummaryApplyResult) must carry a default arm or cover
//                      every enumerator, so adding an opcode cannot leave a
//                      silent fall-through anywhere in the mesh.
//   waiver-sanity      an `allow(...)` comment naming a rule sc_lint does
//                      not know is a typo that silently disables nothing —
//                      it is itself a violation.
//
// The checker is a token-level scanner, not a compiler plugin: the toolchain
// image has no libclang, and these rules only need honest lexing (comments,
// string literals and raw strings stripped) plus brace matching to find
// marked function bodies.
//
// A finding can be waived at the offending line, or the line above, with:
//
//     // sc_lint: allow(<rule-id>) <reason>
//
// The reason is mandatory by convention (reviewers reject bare waivers).
// A waiver that suppresses nothing is reported as an informational note
// (exit code unaffected) so stale allows cannot rot silently.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sc::lint {

struct Diagnostic {
    std::string file;
    unsigned line = 0;
    std::string rule;
    std::string message;

    friend bool operator==(const Diagnostic&, const Diagnostic&) = default;
};

/// "<file>:<line>: error: [<rule>] <message>" — the format CI greps for.
[[nodiscard]] std::string format(const Diagnostic& d);

/// Informational finding (never affects the exit code): currently only
/// "unused waiver" hygiene reports.
struct Note {
    std::string file;
    unsigned line = 0;
    std::string message;

    friend bool operator==(const Note&, const Note&) = default;
};

/// "<file>:<line>: note: <message>" — printed to stderr by the CLI.
[[nodiscard]] std::string format(const Note& n);

/// Rule identifiers accepted by Options::rules, in report order.
[[nodiscard]] const std::vector<std::string>& all_rules();

struct Options {
    /// Rule ids to run; empty means all of them.
    std::vector<std::string> rules;
};

/// Full result of linting one translation unit. Notes are only produced on
/// an all-rules run (a narrowed --rule= run cannot tell a stale waiver from
/// one whose rule simply was not executed).
struct LintReport {
    std::vector<Diagnostic> diagnostics;
    std::vector<Note> notes;
};

/// Lint one translation unit's text. `path` is used for reporting and for
/// the path-based exemptions (thread_annotations.hpp, counter_math.hpp).
[[nodiscard]] LintReport lint_source_report(std::string_view path,
                                            std::string_view text,
                                            const Options& options = {});

/// Diagnostics-only convenience wrapper over lint_source_report.
[[nodiscard]] std::vector<Diagnostic> lint_source(std::string_view path,
                                                  std::string_view text,
                                                  const Options& options = {});

/// Lint a file from disk; nullopt if it cannot be read.
[[nodiscard]] std::optional<LintReport> lint_file_report(
    const std::filesystem::path& path, const Options& options = {});

/// Diagnostics-only convenience wrapper over lint_file_report.
[[nodiscard]] std::optional<std::vector<Diagnostic>> lint_file(
    const std::filesystem::path& path, const Options& options = {});

/// Expand files and directories (recursing for C++ sources) into the sorted
/// list of files sc_lint would visit.
[[nodiscard]] std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& paths);

}  // namespace sc::lint
