#include "lint/sc_lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace sc::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: blank out comments and literals, keep line structure, and harvest
// `sc_lint: allow(<rule>)` waivers from the comment text as it goes by.
// ---------------------------------------------------------------------------

struct Stripped {
    /// Source text with every comment, string and char literal replaced by
    /// spaces — same length, same newlines, so columns and lines survive.
    std::string code;
    /// line -> rules waived on that line (by an allow() comment).
    std::map<unsigned, std::set<std::string>> waivers;
};

void harvest_waivers(std::string_view comment, unsigned line, Stripped& out) {
    static constexpr std::string_view kTag = "sc_lint: allow(";
    std::size_t at = 0;
    while ((at = comment.find(kTag, at)) != std::string_view::npos) {
        at += kTag.size();
        const std::size_t close = comment.find(')', at);
        if (close == std::string_view::npos) return;
        out.waivers[line].insert(std::string(comment.substr(at, close - at)));
        at = close;
    }
}

Stripped strip(std::string_view text) {
    enum class State { code, line_comment, block_comment, string, chr, raw_string };
    Stripped out;
    out.code.reserve(text.size());
    State state = State::code;
    unsigned line = 1;
    unsigned comment_line = 1;  // line the current comment started on
    std::string comment;        // text of the current comment
    std::string raw_close;      // )delim" that ends the active raw string

    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
            case State::code:
                if (c == '/' && next == '/') {
                    state = State::line_comment;
                    comment_line = line;
                    comment.clear();
                    out.code += "  ";
                    ++i;
                } else if (c == '/' && next == '*') {
                    state = State::block_comment;
                    comment_line = line;
                    comment.clear();
                    out.code += "  ";
                    ++i;
                } else if (c == '"') {
                    // R"delim( ... )delim" — the delimiter may be empty.
                    const bool raw = i > 0 && text[i - 1] == 'R' &&
                                     (i < 2 || !(std::isalnum(static_cast<unsigned char>(
                                                     text[i - 2])) ||
                                                 text[i - 2] == '_'));
                    if (raw) {
                        const std::size_t open = text.find('(', i + 1);
                        if (open != std::string_view::npos) {
                            raw_close = ")";
                            raw_close += text.substr(i + 1, open - i - 1);
                            raw_close += '"';
                            state = State::raw_string;
                            out.code += ' ';
                            break;
                        }
                    }
                    state = State::string;
                    out.code += ' ';
                } else if (c == '\'') {
                    state = State::chr;
                    out.code += ' ';
                } else {
                    out.code += c;
                }
                break;
            case State::line_comment:
                if (c == '\n') {
                    harvest_waivers(comment, comment_line, out);
                    state = State::code;
                    out.code += '\n';
                } else {
                    comment += c;
                    out.code += ' ';
                }
                break;
            case State::block_comment:
                if (c == '*' && next == '/') {
                    harvest_waivers(comment, comment_line, out);
                    state = State::code;
                    out.code += "  ";
                    ++i;
                } else {
                    comment += c;
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::string:
                if (c == '\\' && next != '\0') {
                    out.code += "  ";
                    ++i;
                    if (next == '\n') {
                        out.code.back() = '\n';
                        ++line;
                    }
                } else if (c == '"') {
                    state = State::code;
                    out.code += ' ';
                } else {
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
            case State::chr:
                if (c == '\\' && next != '\0') {
                    out.code += "  ";
                    ++i;
                } else if (c == '\'') {
                    state = State::code;
                    out.code += ' ';
                } else {
                    out.code += ' ';
                }
                break;
            case State::raw_string:
                if (c == raw_close.front() &&
                    text.substr(i, raw_close.size()) == raw_close) {
                    for (char rc : raw_close) out.code += rc == '\n' ? '\n' : ' ';
                    i += raw_close.size() - 1;
                    state = State::code;
                } else {
                    out.code += c == '\n' ? '\n' : ' ';
                }
                break;
        }
        if (c == '\n' && state != State::string) ++line;
    }
    if (state == State::line_comment) harvest_waivers(comment, comment_line, out);
    return out;
}

// ---------------------------------------------------------------------------
// Tokens
// ---------------------------------------------------------------------------

struct Token {
    std::string_view text;
    unsigned line = 0;
    bool ident = false;
};

std::vector<Token> tokenize(std::string_view code) {
    std::vector<Token> out;
    unsigned line = 1;
    std::size_t i = 0;
    const auto is_ident = [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
    };
    while (i < code.size()) {
        const char c = code[i];
        if (c == '\n') {
            ++line;
            ++i;
        } else if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
        } else if (is_ident(c)) {
            std::size_t j = i;
            while (j < code.size() && is_ident(code[j])) ++j;
            out.push_back({code.substr(i, j - i), line, true});
            i = j;
        } else if ((c == '<' || c == '>') && i + 1 < code.size() &&
                   code[i + 1] == c) {
            out.push_back({code.substr(i, 2), line, false});
            i += 2;
        } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
            out.push_back({code.substr(i, 2), line, false});
            i += 2;
        } else {
            out.push_back({code.substr(i, 1), line, false});
            ++i;
        }
    }
    return out;
}

bool path_ends_with(std::string_view path, std::string_view suffix) {
    return path.size() >= suffix.size() &&
           path.substr(path.size() - suffix.size()) == suffix;
}

struct Sink {
    std::string_view path;
    const Stripped& stripped;
    const Options& options;
    std::vector<Diagnostic>& out;
    /// (waiver line, rule) pairs that actually suppressed a finding — the
    /// complement feeds the unused-waiver notes.
    std::set<std::pair<unsigned, std::string>>& used_waivers;

    [[nodiscard]] bool enabled(std::string_view rule) const {
        return options.rules.empty() ||
               std::find(options.rules.begin(), options.rules.end(), rule) !=
                   options.rules.end();
    }

    void report(unsigned line, const std::string& rule, std::string message) {
        // A waiver covers the offending line or the line above it.
        for (const unsigned at : {line, line == 0 ? 0 : line - 1}) {
            const auto it = stripped.waivers.find(at);
            if (it != stripped.waivers.end() && it->second.count(rule)) {
                used_waivers.insert({at, rule});
                return;
            }
        }
        out.push_back({std::string(path), line, rule, std::move(message)});
    }
};

// ---------------------------------------------------------------------------
// Rule: raw-mutex
// ---------------------------------------------------------------------------

constexpr std::array kRawSyncTypes = {
    std::string_view("mutex"),          std::string_view("timed_mutex"),
    std::string_view("recursive_mutex"), std::string_view("shared_mutex"),
    std::string_view("lock_guard"),     std::string_view("unique_lock"),
    std::string_view("scoped_lock"),    std::string_view("shared_lock"),
    std::string_view("condition_variable"),
    std::string_view("condition_variable_any"),
};

void check_raw_mutex(const std::vector<Token>& tokens, Sink& sink) {
    if (!sink.enabled("raw-mutex")) return;
    // The wrapper header is the one place allowed to touch the raw types.
    if (path_ends_with(sink.path, "util/thread_annotations.hpp")) return;
    for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
        if (tokens[i].text != "std" || tokens[i + 1].text != "::") continue;
        const Token& name = tokens[i + 2];
        if (std::find(kRawSyncTypes.begin(), kRawSyncTypes.end(), name.text) ==
            kRawSyncTypes.end())
            continue;
        sink.report(name.line, "raw-mutex",
                    "raw std::" + std::string(name.text) +
                        "; use the annotated sc::Mutex / sc::MutexLock / "
                        "sc::CondVar from util/thread_annotations.hpp");
    }
}

// ---------------------------------------------------------------------------
// Rules: hotpath-alloc and eventloop-blocking (marker-scoped deny lists)
// ---------------------------------------------------------------------------

constexpr std::array kAllocCalls = {
    std::string_view("new"),          std::string_view("malloc"),
    std::string_view("calloc"),       std::string_view("realloc"),
    std::string_view("strdup"),       std::string_view("make_unique"),
    std::string_view("make_shared"),  std::string_view("push_back"),
    std::string_view("emplace_back"), std::string_view("emplace"),
    std::string_view("resize"),       std::string_view("reserve"),
    std::string_view("append"),       std::string_view("to_string"),
};

constexpr std::array kBlockingCalls = {
    std::string_view("connect"),       std::string_view("read_line"),
    std::string_view("read_exact"),    std::string_view("write_all"),
    std::string_view("wait_readable"), std::string_view("sleep_for"),
    std::string_view("sleep_until"),
    // One-shot readiness wait (src/net/fd_poll.hpp): fine on worker and
    // accept threads, but the event loop must multiplex via EventBackend.
    std::string_view("wait_fd_readable"),
    // File I/O: the disk store (src/store) runs on worker threads; none of
    // it may creep onto the poll loop (docs/STORAGE.md "Threading").
    std::string_view("open"),          std::string_view("openat"),
    std::string_view("pread"),         std::string_view("pwrite"),
    std::string_view("fsync"),         std::string_view("fdatasync"),
    std::string_view("ftruncate"),
    // Summary encoding: draining the journal and serializing a bitmap take
    // node_mu_ and can be megabytes of work — full-summary pushes belong on
    // the worker pool (MiniProxy::push_full_summary_to), never the poll loop.
    std::string_view("sync_node_locked"),
    std::string_view("encode_full_update"),
    std::string_view("encode_full_update_chunks"),
    std::string_view("encode_pending_updates"),
};

/// Find the body of the marked function: tokens[i] is the marker. Returns
/// {body_begin, body_end} token indices (exclusive of braces), or nullopt if
/// the marker sits on a declaration (a `;` shows up before any top-level
/// `{`) or on the `#define` itself.
std::optional<std::pair<std::size_t, std::size_t>> marked_body(
    const std::vector<Token>& tokens, std::size_t i) {
    if (i > 0 && tokens[i - 1].text == "define") return std::nullopt;
    int parens = 0;
    std::size_t j = i + 1;
    for (; j < tokens.size(); ++j) {
        const auto t = tokens[j].text;
        if (t == "(")
            ++parens;
        else if (t == ")")
            --parens;
        else if (parens == 0 && t == ";")
            return std::nullopt;  // declaration: the definition carries the check
        else if (parens == 0 && t == "{")
            break;
    }
    if (j >= tokens.size()) return std::nullopt;
    int depth = 1;
    std::size_t k = j + 1;
    for (; k < tokens.size() && depth > 0; ++k) {
        if (tokens[k].text == "{") ++depth;
        if (tokens[k].text == "}") --depth;
    }
    return std::make_pair(j + 1, k > j ? k - 1 : j + 1);
}

template <typename DenyList>
void check_marked(const std::vector<Token>& tokens, Sink& sink,
                  std::string_view marker, const std::string& rule,
                  const DenyList& deny, std::string_view what) {
    if (!sink.enabled(rule)) return;
    if (path_ends_with(sink.path, "util/thread_annotations.hpp")) return;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (tokens[i].text != marker || !tokens[i].ident) continue;
        const auto body = marked_body(tokens, i);
        if (!body) continue;
        for (std::size_t k = body->first; k < body->second; ++k) {
            const Token& t = tokens[k];
            if (!t.ident) continue;
            if (std::find(deny.begin(), deny.end(), t.text) == deny.end())
                continue;
            // Deny identifiers are calls (or `new`): require `(` or `<` next
            // so that e.g. a local named `reserve` does not trip the rule.
            if (t.text != "new" &&
                (k + 1 >= body->second ||
                 (tokens[k + 1].text != "(" && tokens[k + 1].text != "<")))
                continue;
            sink.report(t.line, rule,
                        std::string(what) + " '" + std::string(t.text) +
                            "' inside " + std::string(marker) + " function");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: raw-poll
// ---------------------------------------------------------------------------

constexpr std::array kRawReadinessCalls = {
    std::string_view("poll"),
    std::string_view("ppoll"),
    std::string_view("epoll_wait"),
    std::string_view("epoll_pwait"),
};

bool in_net_layer(std::string_view path) {
    // src/net/ is the one layer allowed to issue readiness syscalls; every
    // other file must go through sc::net::EventBackend / wait_fd_readable.
    return path.find("src/net/") != std::string_view::npos ||
           path.substr(0, 4) == "net/";
}

void check_raw_poll(const std::vector<Token>& tokens, Sink& sink) {
    if (!sink.enabled("raw-poll")) return;
    if (in_net_layer(sink.path)) return;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (!t.ident || std::find(kRawReadinessCalls.begin(),
                                  kRawReadinessCalls.end(),
                                  t.text) == kRawReadinessCalls.end())
            continue;
        if (tokens[i + 1].text != "(") continue;  // must be a call
        if (i > 0) {
            const auto prev = tokens[i - 1].text;
            // `obj.poll(...)` / `obj->poll(...)` are method calls (the
            // tokenizer lexes `->` as `-` `>`), and `ns::epoll_wait(...)`
            // with a named namespace is a wrapper — only the global-scope
            // libc entry points are denied.
            if (prev == ".") continue;
            if (prev == ">" && i > 1 && tokens[i - 2].text == "-") continue;
            if (prev == "::" && i > 1 && tokens[i - 2].ident) continue;
        }
        sink.report(t.line, "raw-poll",
                    "raw '" + std::string(t.text) +
                        "' readiness call outside src/net/; use "
                        "sc::net::EventBackend (or sc::net::wait_fd_readable "
                        "for one-shot waits)");
    }
}

// ---------------------------------------------------------------------------
// Rule: raw-counter-shift
// ---------------------------------------------------------------------------

void check_counter_shift(const std::vector<Token>& tokens, Sink& sink) {
    if (!sink.enabled("raw-counter-shift")) return;
    // counter_math.hpp is the one place the width-to-mask shift may live.
    if (path_ends_with(sink.path, "bloom/counter_math.hpp")) return;
    // Flag any STATEMENT that both mentions a counter-width identifier and
    // shifts: that combination is the Section IV overflow-math smell.
    // (Statement = tokens between ; { } — coarse, but honest.)
    bool has_shift = false;
    const Token* width = nullptr;
    const auto flush = [&] {
        if (has_shift && width != nullptr)
            sink.report(width->line, "raw-counter-shift",
                        "shift arithmetic on counter width '" +
                            std::string(width->text) +
                            "'; use sc::counter_math (saturation_max et al.) "
                            "from bloom/counter_math.hpp");
        has_shift = false;
        width = nullptr;
    };
    for (const Token& t : tokens) {
        if (t.text == ";" || t.text == "{" || t.text == "}") {
            flush();
            continue;
        }
        if (t.text == "<<" || t.text == ">>") has_shift = true;
        if (t.ident && width == nullptr &&
            t.text.find("counter_bits") != std::string_view::npos)
            width = &t;
    }
    flush();
}

// ---------------------------------------------------------------------------
// Rule: raw-decode
// ---------------------------------------------------------------------------

constexpr std::array kRawDecodeCalls = {
    std::string_view("memcpy"),  std::string_view("memmove"),
    std::string_view("memchr"),  std::string_view("strcpy"),
    std::string_view("strncpy"), std::string_view("strcat"),
    std::string_view("strncat"), std::string_view("sscanf"),
    std::string_view("strtol"),  std::string_view("strtoul"),
    std::string_view("strtoull"), std::string_view("atoi"),
    std::string_view("atol"),    std::string_view("atoll"),
};

/// A TU opts into the decode discipline by placing the SC_UNTRUSTED_DECODE_TU
/// marker (the `#define` of the marker itself does not count).
bool tu_is_marked_decode(const std::vector<Token>& tokens) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!tokens[i].ident || tokens[i].text != "SC_UNTRUSTED_DECODE_TU") continue;
        if (i > 0 && tokens[i - 1].text == "define") continue;
        return true;
    }
    return false;
}

void check_raw_decode(const std::vector<Token>& tokens, Sink& sink) {
    if (!sink.enabled("raw-decode")) return;
    // The checked cursor itself is where the one reinterpret_cast lives.
    if (path_ends_with(sink.path, "util/byte_reader.hpp") ||
        path_ends_with(sink.path, "util/byte_writer.hpp"))
        return;
    if (!tu_is_marked_decode(tokens)) return;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const Token& t = tokens[i];
        if (!t.ident) continue;
        if (t.text == "reinterpret_cast") {
            sink.report(t.line, "raw-decode",
                        "reinterpret_cast in a decode-marked TU; read through "
                        "sc::util::ByteReader (util/byte_reader.hpp)");
            continue;
        }
        // `buf.data() + off` — the classic unchecked cursor. ByteReader
        // carries the offset and the bounds check together.
        if (t.text == "data" && i + 3 < tokens.size() && tokens[i + 1].text == "(" &&
            tokens[i + 2].text == ")" && tokens[i + 3].text == "+") {
            sink.report(t.line, "raw-decode",
                        "pointer arithmetic on data() in a decode-marked TU; "
                        "read through sc::util::ByteReader");
            continue;
        }
        if (std::find(kRawDecodeCalls.begin(), kRawDecodeCalls.end(), t.text) ==
            kRawDecodeCalls.end())
            continue;
        if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;  // not a call
        if (i > 0) {
            const auto prev = tokens[i - 1].text;
            // Member calls and non-std namespace-qualified wrappers are
            // someone else's (checked) abstraction; only the libc entry
            // points — bare or std:: — are raw.
            if (prev == ".") continue;
            if (prev == ">" && i > 1 && tokens[i - 2].text == "-") continue;
            if (prev == "::" && i > 1 && tokens[i - 2].ident &&
                tokens[i - 2].text != "std")
                continue;
        }
        sink.report(t.line, "raw-decode",
                    "raw byte read '" + std::string(t.text) +
                        "' in a decode-marked TU; read through "
                        "sc::util::ByteReader");
    }
}

// ---------------------------------------------------------------------------
// Rule: exhaustive-wire-switch
// ---------------------------------------------------------------------------

struct WireEnum {
    std::string_view name;
    std::vector<std::string_view> enumerators;
};

/// Enums that cross a trust boundary (wire datagrams in, apply verdicts
/// out). Hard-coded on purpose: when an enumerator is added here, every
/// default-less switch over the enum fails the lint until it handles it.
const std::vector<WireEnum>& wire_enums() {
    static const std::vector<WireEnum> enums = {
        {"IcpOpcode",
         {"invalid", "query", "hit", "miss", "err", "secho", "decho",
          "miss_nofetch", "denied", "hit_obj", "dirupdate", "dirfull", "dirreq"}},
        {"SummaryApplyResult",
         {"applied", "partial", "duplicate", "stale", "gap", "need_bootstrap",
          "need_resync", "rejected"}},
    };
    return enums;
}

void check_wire_switch(const std::vector<Token>& tokens, Sink& sink) {
    if (!sink.enabled("exhaustive-wire-switch")) return;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!tokens[i].ident || tokens[i].text != "switch") continue;
        // Skip the condition parens, then find the body brace.
        std::size_t j = i + 1;
        if (j >= tokens.size() || tokens[j].text != "(") continue;
        int parens = 1;
        for (++j; j < tokens.size() && parens > 0; ++j) {
            if (tokens[j].text == "(") ++parens;
            if (tokens[j].text == ")") --parens;
        }
        if (j >= tokens.size() || tokens[j].text != "{") continue;
        // Walk the body: case labels at depth 1 belong to THIS switch;
        // anything deeper is a nested statement's business.
        bool has_default = false;
        std::string_view enum_name;
        std::set<std::string_view> covered;
        int depth = 1;
        for (std::size_t k = j + 1; k < tokens.size() && depth > 0; ++k) {
            const Token& t = tokens[k];
            if (t.text == "{") ++depth;
            else if (t.text == "}") --depth;
            if (depth != 1 || !t.ident) continue;
            if (t.text == "default") {
                has_default = true;
            } else if (t.text == "case") {
                std::string_view label_enum, last_ident;
                for (std::size_t m = k + 1; m < tokens.size(); ++m) {
                    if (tokens[m].text == ":") {
                        k = m;
                        break;
                    }
                    if (!tokens[m].ident) continue;
                    for (const WireEnum& e : wire_enums())
                        if (tokens[m].text == e.name) label_enum = e.name;
                    last_ident = tokens[m].text;
                }
                if (!label_enum.empty()) {
                    enum_name = label_enum;
                    covered.insert(last_ident);
                }
            }
        }
        if (enum_name.empty() || has_default) continue;
        std::string missing;
        for (const WireEnum& e : wire_enums()) {
            if (e.name != enum_name) continue;
            for (const std::string_view en : e.enumerators)
                if (!covered.count(en)) {
                    if (!missing.empty()) missing += ", ";
                    missing += en;
                }
        }
        if (missing.empty()) continue;
        sink.report(tokens[i].line, "exhaustive-wire-switch",
                    "switch over " + std::string(enum_name) +
                        " has no default arm and misses: " + missing);
    }
}

// ---------------------------------------------------------------------------
// Rule: waiver-sanity
// ---------------------------------------------------------------------------

bool known_rule(const std::string& rule) {
    const auto& rules = all_rules();
    return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

void check_waiver_sanity(Sink& sink) {
    if (!sink.enabled("waiver-sanity")) return;
    for (const auto& [line, rules] : sink.stripped.waivers)
        for (const std::string& rule : rules)
            if (!known_rule(rule))
                sink.report(line, "waiver-sanity",
                            "waiver names unknown rule '" + rule +
                                "' (see --list-rules); it suppresses nothing");
}

}  // namespace

std::string format(const Diagnostic& d) {
    std::ostringstream os;
    os << d.file << ':' << d.line << ": error: [" << d.rule << "] " << d.message;
    return os.str();
}

std::string format(const Note& n) {
    std::ostringstream os;
    os << n.file << ':' << n.line << ": note: " << n.message;
    return os.str();
}

const std::vector<std::string>& all_rules() {
    static const std::vector<std::string> rules = {
        "raw-mutex",  "hotpath-alloc", "eventloop-blocking",
        "raw-counter-shift", "raw-poll",      "raw-decode",
        "exhaustive-wire-switch", "waiver-sanity"};
    return rules;
}

LintReport lint_source_report(std::string_view path, std::string_view text,
                              const Options& options) {
    const Stripped stripped = strip(text);
    const std::vector<Token> tokens = tokenize(stripped.code);
    LintReport report;
    std::set<std::pair<unsigned, std::string>> used_waivers;
    Sink sink{path, stripped, options, report.diagnostics, used_waivers};
    check_raw_mutex(tokens, sink);
    check_marked(tokens, sink, "SC_HOT_PATH", "hotpath-alloc", kAllocCalls,
                 "heap-allocating call");
    check_marked(tokens, sink, "SC_EVENT_LOOP_ONLY", "eventloop-blocking",
                 kBlockingCalls, "blocking call");
    check_counter_shift(tokens, sink);
    check_raw_poll(tokens, sink);
    check_raw_decode(tokens, sink);
    check_wire_switch(tokens, sink);
    check_waiver_sanity(sink);
    std::stable_sort(report.diagnostics.begin(), report.diagnostics.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                         return a.line < b.line;
                     });
    // Unused-waiver hygiene only makes sense when every rule ran: on a
    // narrowed --rule= pass, a waiver for an unexecuted rule is not stale.
    // Unknown-rule waivers are waiver-sanity's (hard) finding, not a note.
    if (options.rules.empty()) {
        for (const auto& [line, rules] : stripped.waivers)
            for (const std::string& rule : rules)
                if (known_rule(rule) && !used_waivers.count({line, rule}))
                    report.notes.push_back(
                        {std::string(path), line,
                         "unused sc_lint waiver for rule '" + rule +
                             "'; nothing on this or the next line trips it"});
    }
    return report;
}

std::vector<Diagnostic> lint_source(std::string_view path, std::string_view text,
                                    const Options& options) {
    return lint_source_report(path, text, options).diagnostics;
}

std::optional<LintReport> lint_file_report(const std::filesystem::path& path,
                                           const Options& options) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) return std::nullopt;
    return lint_source_report(path.generic_string(), buf.str(), options);
}

std::optional<std::vector<Diagnostic>> lint_file(const std::filesystem::path& path,
                                                 const Options& options) {
    auto report = lint_file_report(path, options);
    if (!report) return std::nullopt;
    return std::move(report->diagnostics);
}

std::vector<std::filesystem::path> collect_sources(
    const std::vector<std::filesystem::path>& paths) {
    namespace fs = std::filesystem;
    const auto is_source = [](const fs::path& p) {
        const auto ext = p.extension().string();
        return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
    };
    std::vector<fs::path> out;
    for (const fs::path& p : paths) {
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (fs::recursive_directory_iterator it(p, ec), end; it != end;
                 it.increment(ec)) {
                if (ec) break;
                if (it->is_regular_file(ec) && is_source(it->path()))
                    out.push_back(it->path());
            }
        } else {
            out.push_back(p);  // missing files surface as read errors later
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace sc::lint
