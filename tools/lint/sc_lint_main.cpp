// sc_lint CLI. Exit codes: 0 clean, 1 violations found, 2 usage or IO error.
//
//   sc_lint [--rule=<id>]... [--list-rules] <file-or-dir>...
//
// Directories recurse over *.cpp/*.hpp/*.cc/*.h. CI runs `sc_lint src/`.
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "lint/sc_lint.hpp"

namespace {

int usage(std::ostream& os) {
    os << "usage: sc_lint [--rule=<id>]... [--list-rules] <file-or-dir>...\n"
          "rules:";
    for (const std::string& r : sc::lint::all_rules()) os << ' ' << r;
    os << '\n';
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    sc::lint::Options options;
    std::vector<std::filesystem::path> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string& r : sc::lint::all_rules()) std::cout << r << '\n';
            return 0;
        }
        if (arg.rfind("--rule=", 0) == 0) {
            const std::string rule = arg.substr(std::strlen("--rule="));
            const auto& known = sc::lint::all_rules();
            if (std::find(known.begin(), known.end(), rule) == known.end()) {
                std::cerr << "sc_lint: unknown rule '" << rule << "'\n";
                return usage(std::cerr);
            }
            options.rules.push_back(rule);
            continue;
        }
        if (arg.rfind("--", 0) == 0) {
            std::cerr << "sc_lint: unknown option '" << arg << "'\n";
            return usage(std::cerr);
        }
        paths.emplace_back(arg);
    }
    if (paths.empty()) return usage(std::cerr);

    bool io_error = false;
    std::size_t violations = 0;
    std::size_t files = 0;
    for (const auto& file : sc::lint::collect_sources(paths)) {
        const auto report = sc::lint::lint_file_report(file, options);
        if (!report) {
            std::cerr << "sc_lint: cannot read " << file.generic_string() << '\n';
            io_error = true;
            continue;
        }
        ++files;
        for (const auto& d : report->diagnostics)
            std::cout << sc::lint::format(d) << '\n';
        // Notes (unused waivers) are informational: stderr, exit unaffected.
        for (const auto& n : report->notes) std::cerr << sc::lint::format(n) << '\n';
        violations += report->diagnostics.size();
    }
    if (io_error) return 2;
    std::cerr << "sc_lint: " << files << " file(s), " << violations
              << " violation(s)\n";
    return violations == 0 ? 0 : 1;
}
