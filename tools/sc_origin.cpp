// sc_origin — run the origin-server emulator standalone.
//
//   sc_origin --port 9000 --delay-ms 1000
//
// Replies to every HTTP-lite GET with the requested number of bytes after
// the configured delay (the Wisconsin benchmark used 1000 ms). Runs until
// killed; prints the request count every few seconds.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>

#include "cli.hpp"
#include "proto/origin_server.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
    using namespace sc;
    const cli::Flags flags(argc, argv, {"port", "delay-ms", "max-requests-per-conn"});

    OriginServer::Config cfg;
    cfg.port = static_cast<std::uint16_t>(flags.get_int("port", 0));
    cfg.reply_delay = std::chrono::milliseconds(flags.get_int("delay-ms", 0));
    // 0 = unlimited; a positive value rotates each keep-alive connection
    // after that many requests (exercises client reconnect paths).
    cfg.max_requests_per_connection =
        static_cast<std::uint32_t>(flags.get_int("max-requests-per-conn", 0));

    OriginServer server(cfg);
    std::printf("origin listening on %s (reply delay %lld ms)\n",
                server.endpoint().to_string().c_str(),
                static_cast<long long>(cfg.reply_delay.count()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::uint64_t last = 0;
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::seconds(3));
        const std::uint64_t served = server.requests_served();
        if (served != last) {
            std::printf("served %llu requests\n", static_cast<unsigned long long>(served));
            std::fflush(stdout);
            last = served;
        }
    }
    server.stop();
    std::printf("shut down after %llu requests\n",
                static_cast<unsigned long long>(server.requests_served()));
    return 0;
}
