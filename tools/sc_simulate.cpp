// sc_simulate — run the cache-sharing simulator over a trace and print a
// full protocol report.
//
//   sc_simulate --in trace.csv --proxies 8 --cache-mb 64 --protocol summary
//   sc_simulate --trace dec --scale 0.1 --protocol icp
//
// Protocols: none, icp, oracle, summary. Representations (summary only):
// exact, server, bloom (with --load-factor). Update policy: --threshold
// fraction or --interval seconds; --batch records; --multicast.
// --metrics-out FILE dumps the sc::obs registry as JSON at exit.
#include <cstdio>
#include <fstream>
#include <string>

#include "cli.hpp"
#include "obs/metrics.hpp"
#include "sim/share_sim.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "util/bytes.hpp"

namespace {

using namespace sc;

std::optional<TraceKind> parse_trace(const std::string& name) {
    for (const TraceKind kind : kAllTraceKinds) {
        std::string lower = trace_name(kind);
        for (auto& c : lower) c = static_cast<char>(std::tolower(c));
        if (name == trace_name(kind) || name == lower) return kind;
    }
    return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
    const cli::Flags flags(
        argc, argv,
        {"in", "trace", "scale", "proxies", "cache-mb", "scheme", "protocol", "summary",
         "load-factor", "threshold", "interval", "batch", "multicast", "metrics-out"});

    // --- workload ---------------------------------------------------------
    std::vector<Request> trace;
    if (flags.has("in")) {
        trace = read_trace_csv_file(flags.require("in"));
    } else {
        const auto kind = parse_trace(flags.get("trace", "upisa"));
        if (!kind) {
            std::fprintf(stderr, "unknown trace\n");
            return 2;
        }
        trace = TraceGenerator(standard_profile(*kind, flags.get_double("scale", 0.1)))
                    .generate_all();
    }
    if (trace.empty()) {
        std::fprintf(stderr, "empty trace\n");
        return 2;
    }

    // --- configuration ------------------------------------------------------
    ShareSimConfig cfg;
    cfg.num_proxies = static_cast<std::uint32_t>(flags.get_int("proxies", 4));
    cfg.cache_bytes_per_proxy =
        static_cast<std::uint64_t>(flags.get_double("cache-mb", 64.0) * kMiB);

    const std::string scheme = flags.get("scheme", "simple");
    if (scheme == "none") cfg.scheme = SharingScheme::none;
    else if (scheme == "simple") cfg.scheme = SharingScheme::simple;
    else if (scheme == "single-copy") cfg.scheme = SharingScheme::single_copy;
    else if (scheme == "global") cfg.scheme = SharingScheme::global;
    else { std::fprintf(stderr, "bad --scheme\n"); return 2; }

    const std::string protocol = flags.get("protocol", "summary");
    if (protocol == "none") cfg.protocol = QueryProtocol::none;
    else if (protocol == "icp") cfg.protocol = QueryProtocol::icp;
    else if (protocol == "oracle") cfg.protocol = QueryProtocol::oracle;
    else if (protocol == "summary") cfg.protocol = QueryProtocol::summary;
    else { std::fprintf(stderr, "bad --protocol\n"); return 2; }

    const std::string summary = flags.get("summary", "bloom");
    if (summary == "exact") cfg.summary_kind = SummaryKind::exact_directory;
    else if (summary == "server") cfg.summary_kind = SummaryKind::server_name;
    else if (summary == "bloom") cfg.summary_kind = SummaryKind::bloom;
    else { std::fprintf(stderr, "bad --summary\n"); return 2; }

    cfg.bloom.load_factor = static_cast<std::uint32_t>(flags.get_int("load-factor", 16));
    cfg.update_threshold = flags.get_double("threshold", 0.01);
    cfg.update_interval_seconds = flags.get_double("interval", 0.0);
    cfg.min_update_changes = static_cast<std::size_t>(flags.get_int("batch", 0));
    cfg.multicast_updates = flags.get_bool("multicast");

    // --- run ---------------------------------------------------------------
    const ShareSimResult r = run_share_sim(cfg, trace);

    std::printf("workload: %s requests, %u proxies, %s cache/proxy, scheme=%s protocol=%s\n",
                format_count(r.requests).c_str(), cfg.num_proxies,
                format_bytes(cfg.cache_bytes_per_proxy).c_str(),
                sharing_scheme_name(cfg.scheme), query_protocol_name(cfg.protocol));
    if (cfg.protocol == QueryProtocol::summary)
        std::printf("summary: %s, load factor %u, threshold %.2f%%, interval %.0fs, "
                    "batch %zu, %s updates\n",
                    summary_kind_name(cfg.summary_kind), cfg.bloom.load_factor,
                    100 * cfg.update_threshold, cfg.update_interval_seconds,
                    cfg.min_update_changes, cfg.multicast_updates ? "multicast" : "unicast");
    std::printf("\n");
    std::printf("total hit ratio        %8.2f%%   (local %.2f%%, remote %.2f%%)\n",
                100 * r.total_hit_ratio(), 100 * r.local_hit_ratio(),
                100 * r.remote_hit_ratio());
    std::printf("byte hit ratio         %8.2f%%\n", 100 * r.byte_hit_ratio());
    std::printf("remote stale hits      %8.3f%%\n", 100 * r.remote_stale_hit_ratio());
    std::printf("false hits             %8.3f%%\n", 100 * r.false_hit_ratio());
    std::printf("false misses           %8.3f%%\n", 100 * r.false_miss_ratio());
    std::printf("origin fetches         %9s\n", format_count(r.server_fetches).c_str());
    std::printf("messages/request       %9.4f   (queries %s, updates %s)\n",
                r.messages_per_request(), format_count(r.query_messages).c_str(),
                format_count(r.update_messages).c_str());
    std::printf("message bytes/request  %9.1f\n", r.message_bytes_per_request());
    if (cfg.protocol == QueryProtocol::summary)
        std::printf("summary DRAM/proxy     %9s (+%s own counters)\n",
                    format_bytes(r.summary_replica_bytes).c_str(),
                    format_bytes(r.summary_owner_bytes).c_str());

    if (flags.has("metrics-out")) {
        const std::string path = flags.require("metrics-out");
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write --metrics-out %s\n", path.c_str());
            return 2;
        }
        out << obs::to_json(obs::metrics().snapshot()) << '\n';
    }
    return 0;
}
