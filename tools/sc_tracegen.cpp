// sc_tracegen — generate a synthetic web trace to CSV.
//
//   sc_tracegen --trace upisa --scale 0.1 --out /tmp/upisa.csv
//   sc_tracegen --trace dec --requests 50000 --seed 7 --out dec.csv
//
// Traces: dec, ucb, upisa, questnet, nlanr (Table I profiles).
#include <cstdio>
#include <string>

#include "cli.hpp"
#include "trace/generator.hpp"
#include "trace/trace_io.hpp"
#include "util/bytes.hpp"

namespace {

std::optional<sc::TraceKind> parse_trace(const std::string& name) {
    for (const sc::TraceKind kind : sc::kAllTraceKinds)
        if (name == sc::trace_name(kind) ||
            [&] {
                std::string lower = sc::trace_name(kind);
                for (auto& c : lower) c = static_cast<char>(std::tolower(c));
                return lower == name;
            }())
            return kind;
    return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sc;
    const cli::Flags flags(argc, argv,
                           {"trace", "scale", "seed", "requests", "clients", "out", "quiet"});

    const std::string trace_name_arg = flags.get("trace", "upisa");
    const auto kind = parse_trace(trace_name_arg);
    if (!kind) {
        std::fprintf(stderr, "unknown trace '%s' (dec ucb upisa questnet nlanr)\n",
                     trace_name_arg.c_str());
        return 2;
    }

    TraceProfile profile = standard_profile(*kind, flags.get_double("scale", 0.1));
    if (flags.has("seed")) profile.seed = static_cast<std::uint64_t>(flags.get_int("seed", 0));
    if (flags.has("requests"))
        profile.requests = static_cast<std::uint64_t>(flags.get_int("requests", 0));
    if (flags.has("clients"))
        profile.clients = static_cast<std::uint32_t>(flags.get_int("clients", 0));

    const std::string out = flags.require("out");
    const auto trace = TraceGenerator(profile).generate_all();
    write_trace_csv_file(out, trace);

    if (!flags.get_bool("quiet")) {
        std::uint64_t bytes = 0;
        for (const Request& r : trace) bytes += r.size;
        std::printf("%s: wrote %s requests (%s of bodies, %u client ids, %u proxy groups)\n",
                    out.c_str(), format_count(trace.size()).c_str(),
                    format_bytes(bytes).c_str(), profile.clients, profile.proxy_groups);
    }
    return 0;
}
