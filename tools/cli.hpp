// Minimal command-line flag parser shared by the tools: supports
// "--key=value", "--key value", and boolean "--flag". Unknown flags are
// fatal, so typos never silently run a default experiment.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace sc::cli {

class Flags {
public:
    /// Parse argv; `known` is the set of accepted flag names (no "--").
    Flags(int argc, char** argv, std::set<std::string> known)
        : program_(argv[0]), known_(std::move(known)) {
        for (int i = 1; i < argc; ++i) {
            std::string_view arg = argv[i];
            if (!arg.starts_with("--")) fail("positional arguments are not supported", arg);
            arg.remove_prefix(2);
            std::string key;
            std::string value;
            if (const auto eq = arg.find('='); eq != std::string_view::npos) {
                key = std::string(arg.substr(0, eq));
                value = std::string(arg.substr(eq + 1));
            } else {
                key = std::string(arg);
                // A following token that is not itself a flag is the value.
                if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
                    value = argv[++i];
                } else {
                    value = "true";  // boolean flag
                }
            }
            if (!known_.contains(key)) fail("unknown flag", key);
            values_[key] = value;
        }
    }

    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    [[nodiscard]] double get_double(const std::string& key, double fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::atof(it->second.c_str());
    }

    [[nodiscard]] long long get_int(const std::string& key, long long fallback) const {
        const auto it = values_.find(key);
        return it == values_.end() ? fallback : std::atoll(it->second.c_str());
    }

    [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const {
        const auto it = values_.find(key);
        if (it == values_.end()) return fallback;
        return it->second == "true" || it->second == "1" || it->second == "yes";
    }

    [[nodiscard]] bool has(const std::string& key) const { return values_.contains(key); }

    /// Required flag: exits with a message when missing.
    [[nodiscard]] std::string require(const std::string& key) const {
        const auto it = values_.find(key);
        if (it == values_.end()) fail("missing required flag", "--" + key);
        return it->second;
    }

private:
    [[noreturn]] void fail(const char* why, std::string_view what) const {
        std::fprintf(stderr, "%s: %s: %.*s\nknown flags:", program_.c_str(), why,
                     static_cast<int>(what.size()), what.data());
        for (const auto& k : known_) std::fprintf(stderr, " --%s", k.c_str());
        std::fprintf(stderr, "\n");
        std::exit(2);
    }

    std::string program_;
    std::set<std::string> known_;
    std::map<std::string, std::string> values_;
};

/// Parse "host:port" (host must be 127.0.0.1 or omitted) into a port.
[[nodiscard]] inline std::uint16_t parse_port(const std::string& spec) {
    const auto colon = spec.rfind(':');
    const std::string port = colon == std::string::npos ? spec : spec.substr(colon + 1);
    const long v = std::atol(port.c_str());
    if (v <= 0 || v > 65535) {
        std::fprintf(stderr, "bad port: %s\n", spec.c_str());
        std::exit(2);
    }
    return static_cast<std::uint16_t>(v);
}

}  // namespace sc::cli
