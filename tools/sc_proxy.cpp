// sc_proxy — run one "squidlet" proxy standalone; assemble a federation by
// starting several and pointing them at each other.
//
//   sc_origin --port 9000 --delay-ms 50 &
//   sc_proxy --id 1 --http-port 8081 --icp-port 3131 --origin 9000
//            --sibling 2:8082:3132,3:8083:3133 --mode summary &
//   sc_proxy --id 2 --http-port 8082 --icp-port 3132 --origin 9000
//            --sibling 1:8081:3131,3:8083:3133 --mode summary &
//   ...
//
// --sibling takes id:http-port:icp-port (loopback). Modes: none, icp,
// summary, digest (Squid Cache-Digest-style pull). --workers N serves
// requests with an N-thread pool (default 1 = serial, arrival order).
// --cache-shards M splits the LRU cache into M lock shards (power of
// two; default 0 = auto, min(workers, 8)).
// --dynamic-membership 0 disables runtime mesh joins; --fault-loss /
// --fault-dup / --fault-reorder / --fault-seed inject deterministic ICP
// datagram faults for soak testing (or SC_UDP_FAULT_* env vars).
// Prints a stats line every few seconds until killed.
// --metrics-out FILE dumps the sc::obs registry as JSON on shutdown; live
// metrics are also served at GET /__metrics on the HTTP port.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cli.hpp"
#include "obs/metrics.hpp"
#include "proto/mini_proxy.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

struct SiblingSpec {
    sc::NodeId id;
    sc::Endpoint http;
    sc::Endpoint icp;
};

std::vector<SiblingSpec> parse_siblings(const std::string& csv) {
    // One or more comma-separated id:http:icp triples.
    std::vector<SiblingSpec> out;
    std::size_t start = 0;
    while (start < csv.size()) {
        const std::size_t comma = csv.find(',', start);
        const std::string item =
            csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
        // id:http:icp (loopback) or id:host:http:icp (wide-area).
        unsigned id = 0, http = 0, icp = 0;
        unsigned a = 0, b = 0, c = 0, d = 0;
        if (std::sscanf(item.c_str(), "%u:%u.%u.%u.%u:%u:%u", &id, &a, &b, &c, &d, &http,
                        &icp) == 7 &&
            a <= 255 && b <= 255 && c <= 255 && d <= 255 && http <= 65535 && icp <= 65535) {
            const std::uint32_t host = (a << 24) | (b << 16) | (c << 8) | d;
            out.push_back({id, sc::Endpoint{host, static_cast<std::uint16_t>(http)},
                           sc::Endpoint{host, static_cast<std::uint16_t>(icp)}});
        } else if (std::sscanf(item.c_str(), "%u:%u:%u", &id, &http, &icp) == 3 &&
                   http <= 65535 && icp <= 65535) {
            out.push_back({id, sc::Endpoint::loopback(static_cast<std::uint16_t>(http)),
                           sc::Endpoint::loopback(static_cast<std::uint16_t>(icp))});
        } else {
            std::fprintf(stderr,
                         "bad --sibling '%s' (want id:http:icp or id:host:http:icp)\n",
                         item.c_str());
            std::exit(2);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sc;
    const cli::Flags flags(argc, argv,
                           {"id", "http-port", "icp-port", "origin", "sibling", "mode",
                            "cache-mb", "threshold", "hit-obj-bytes", "bind",
                            "access-log", "metrics-out", "workers", "cache-shards",
                            "disk-dir", "disk-capacity-mb", "dynamic-membership",
                            "fault-loss", "fault-dup", "fault-reorder", "fault-seed",
                            "event-backend", "idle-timeout-ms", "max-requests-per-conn"});

    MiniProxyConfig cfg;
    cfg.id = static_cast<NodeId>(flags.get_int("id", 1));
    cfg.http_port = static_cast<std::uint16_t>(flags.get_int("http-port", 0));
    cfg.icp_port = static_cast<std::uint16_t>(flags.get_int("icp-port", 0));
    const auto origin_ep = Endpoint::parse(flags.require("origin"));
    if (!origin_ep) { std::fprintf(stderr, "bad --origin\n"); return 2; }
    cfg.origin = *origin_ep;
    if (flags.has("bind")) {
        const auto bind_ep = Endpoint::parse(flags.require("bind") + ":0");
        if (!bind_ep) { std::fprintf(stderr, "bad --bind\n"); return 2; }
        cfg.bind_host = bind_ep->host;
    }
    cfg.access_log_path = flags.get("access-log", "");
    cfg.cache_bytes = static_cast<std::uint64_t>(flags.get_double("cache-mb", 64.0) *
                                                 1024.0 * 1024.0);
    cfg.update_threshold = flags.get_double("threshold", 0.01);
    cfg.hit_obj_max_bytes = static_cast<std::uint64_t>(flags.get_int("hit-obj-bytes", 0));
    cfg.workers = static_cast<int>(flags.get_int("workers", 1));
    if (cfg.workers < 1) { std::fprintf(stderr, "bad --workers\n"); return 2; }
    // 0 = auto (min(workers, 8)); explicit values must be a power of two.
    const long long shards = flags.get_int("cache-shards", 0);
    if (shards < 0 || (shards > 0 && (shards & (shards - 1)) != 0)) {
        std::fprintf(stderr, "bad --cache-shards (want 0 or a power of two)\n");
        return 2;
    }
    cfg.cache_shards = static_cast<std::size_t>(shards);
    // Disk tier: --disk-dir enables the log-structured L2 (warm restart
    // recovers any existing log there); --disk-capacity-mb sizes it
    // (default 8x the RAM cache).
    cfg.disk_dir = flags.get("disk-dir", "");
    cfg.disk_capacity_bytes = static_cast<std::uint64_t>(
        flags.get_double("disk-capacity-mb", 0.0) * 1024.0 * 1024.0);
    // --dynamic-membership 0 pins the mesh to the --sibling list (unknown
    // SECHO/DIRREQ senders are ignored instead of auto-joined).
    cfg.dynamic_membership = flags.get_int("dynamic-membership", 1) != 0;
    // ICP fault injection for soak tests: probabilities in [0,1]. The same
    // knobs are honoured from SC_UDP_FAULT_{LOSS,DUP,REORDER,SEED} when no
    // flag is given (flags win).
    cfg.udp_faults.loss = flags.get_double("fault-loss", 0.0);
    cfg.udp_faults.duplicate = flags.get_double("fault-dup", 0.0);
    cfg.udp_faults.reorder = flags.get_double("fault-reorder", 0.0);
    cfg.udp_faults.seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));

    // Event-loop readiness backend: poll or epoll (default: epoll on
    // Linux; SC_EVENT_BACKEND applies when the flag is absent).
    if (flags.has("event-backend")) {
        const std::string backend = flags.require("event-backend");
        cfg.event_backend = net::parse_event_backend_kind(backend);
        if (!cfg.event_backend) {
            std::fprintf(stderr, "bad --event-backend '%s' (want poll or epoll)\n",
                         backend.c_str());
            return 2;
        }
    }
    // Keep-alive session limits: idle reap (0 = never) and per-connection
    // request cap (0 = unlimited).
    cfg.idle_timeout = std::chrono::milliseconds(flags.get_int("idle-timeout-ms", 60'000));
    cfg.max_requests_per_connection =
        static_cast<std::uint32_t>(flags.get_int("max-requests-per-conn", 0));

    const std::string mode = flags.get("mode", "summary");
    if (mode == "none") cfg.mode = ShareMode::none;
    else if (mode == "icp") cfg.mode = ShareMode::icp;
    else if (mode == "summary") cfg.mode = ShareMode::summary;
    else if (mode == "digest") cfg.mode = ShareMode::digest_pull;
    else { std::fprintf(stderr, "bad --mode\n"); return 2; }

    MiniProxy proxy(cfg);
    if (flags.has("sibling")) {
        for (const SiblingSpec& s : parse_siblings(flags.require("sibling")))
            proxy.add_sibling(s.id, s.icp, s.http);
    }
    proxy.start();
    std::printf("proxy %u: HTTP %s  ICP %s  mode=%s  backend=%s\n", proxy.id(),
                proxy.http_endpoint().to_string().c_str(),
                proxy.icp_endpoint().to_string().c_str(), share_mode_name(cfg.mode),
                net::event_backend_kind_name(proxy.event_backend_kind()));
    std::fflush(stdout);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    // Short sleeps so a SIGTERM is honoured promptly (sleep_for restarts
    // across EINTR; a long nap would delay the --metrics-out dump).
    auto next_report = std::chrono::steady_clock::now() + std::chrono::seconds(3);
    while (g_stop == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (std::chrono::steady_clock::now() < next_report) continue;
        next_report += std::chrono::seconds(3);
        const auto s = proxy.stats();
        if (s.requests == 0) continue;
        std::printf("req=%llu localHit=%llu remoteHit=%llu queries=%llu updates=%llu "
                    "falseHit=%llu\n",
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.local_hits),
                    static_cast<unsigned long long>(s.remote_hits),
                    static_cast<unsigned long long>(s.icp_queries_sent),
                    static_cast<unsigned long long>(s.updates_sent),
                    static_cast<unsigned long long>(s.false_hit_queries));
        std::fflush(stdout);
    }
    proxy.stop();

    if (flags.has("metrics-out")) {
        const std::string path = flags.require("metrics-out");
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write --metrics-out %s\n", path.c_str());
            return 2;
        }
        out << obs::to_json(obs::metrics().snapshot()) << '\n';
    }
    return 0;
}
