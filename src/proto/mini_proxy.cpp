#include "proto/mini_proxy.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <random>
#include <string>
#include <system_error>

#include "obs/trace_ring.hpp"
#include "summary/message_costs.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

void set_receive_timeout(int fd, std::chrono::milliseconds timeout) {
    timeval tv{};
    tv.tv_sec = timeout.count() / 1000;
    tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

}  // namespace

const char* share_mode_name(ShareMode m) {
    switch (m) {
        case ShareMode::none: return "none";
        case ShareMode::icp: return "icp";
        case ShareMode::summary: return "summary";
        case ShareMode::digest_pull: return "digest-pull";
    }
    return "?";
}

namespace {

bool uses_summaries(ShareMode m) {
    return m == ShareMode::summary || m == ShareMode::digest_pull;
}

/// cache_shards = 0 means auto: min(workers, 8) rounded down to a power
/// of two (LruCache requires one). An explicit value is used as given.
std::size_t resolve_cache_shards(const MiniProxyConfig& config) {
    if (config.cache_shards != 0) return config.cache_shards;
    const std::size_t want =
        std::min<std::size_t>(static_cast<std::size_t>(std::max(config.workers, 1)), 8);
    return std::bit_floor(want);
}

std::unique_ptr<LruCache> make_ram_tier(const MiniProxyConfig& config) {
    return std::make_unique<LruCache>(LruCacheConfig{
        config.cache_bytes, config.max_object_bytes, resolve_cache_shards(config)});
}

/// Disk tier (nullptr when disabled). Recovery of an existing log runs
/// inside the LogStructuredStore constructor, before any proxy thread
/// exists — the directory the proxy starts serving from IS the recovered
/// one, and rebuild_from_directory below re-derives the summary from it.
std::unique_ptr<store::LogStructuredStore> make_disk_tier(const MiniProxyConfig& config) {
    if (config.disk_dir.empty()) return nullptr;
    store::LogStoreConfig lc;
    lc.dir = config.disk_dir;
    lc.capacity_bytes = config.disk_capacity_bytes != 0 ? config.disk_capacity_bytes
                                                        : config.cache_bytes * 8;
    lc.max_object_bytes = config.max_object_bytes;
    return std::make_unique<store::LogStructuredStore>(std::move(lc));
}

/// Event-backend tags: three static fds, then sessions keyed by their
/// monotonically assigned id (never an fd — fds get reused, ids do not).
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kUdpTag = 1;
constexpr std::uint64_t kWakeTag = 2;
constexpr std::uint64_t kSessionTagBase = 16;

}  // namespace

MiniProxy::MiniProxy(MiniProxyConfig config)
    : config_(config),
      listener_(Endpoint{config.bind_host, config.http_port}),
      udp_(Endpoint{config.bind_host, config.icp_port}),
      http_endpoint_(listener_.local_endpoint()),
      icp_endpoint_(udp_.local_endpoint()),
      cache_(make_ram_tier(config), make_disk_tier(config)),
      node_(SummaryCacheNodeConfig{
          config.id,
          std::max<std::uint64_t>(1, config.cache_bytes / kAverageDocumentBytes),
          config.bloom}),
      node_probe_(*this),
      engine_(core::ProtocolEngineConfig{
                  config.id, core::DeltaBatcherConfig{config.update_threshold, 0.0, 0}},
              cache_, nullptr, &node_probe_),
      next_query_number_(std::random_device{}()) {
    backend_kind_ = net::resolve_event_backend_kind(config_.event_backend);
    if (::pipe2(wake_pipe_, O_CLOEXEC | O_NONBLOCK) < 0)
        throw std::system_error(errno, std::generic_category(), "pipe2");
    siblings_.store(std::make_shared<const SiblingTable>(), std::memory_order_release);
    // Config wins over the environment so a test can pin exact fault rates
    // while CI sweeps loss via SC_UDP_FAULT_* without rebuilding.
    const UdpFaultConfig faults =
        config_.udp_faults.any() ? config_.udp_faults : UdpFaultConfig::from_env();
    if (faults.any()) udp_.set_fault_injection(faults);
    const obs::Labels labels{{"mode", share_mode_name(config_.mode)},
                             {"node", std::to_string(config_.id)}};
    auto& reg = obs::metrics();
    obs_.requests = reg.counter("sc_proxy_requests_total",
                                "Client GET requests handled", labels);
    obs_.cache_hits = reg.counter(
        "sc_cache_hits_total",
        "Client requests served from the local cache (LOCAL_HIT access-log lines)", labels);
    obs_.cache_misses = reg.counter(
        "sc_cache_misses_total",
        "Client requests not in the local cache (REMOTE_HIT or MISS lines)", labels);
    obs_.remote_hits = reg.counter("sc_proxy_remote_hits_total",
                                   "Misses satisfied by a sibling cache", labels);
    obs_.origin_fetches = reg.counter("sc_proxy_origin_fetches_total",
                                      "Misses fetched from the origin server", labels);
    obs_.false_hit_queries = reg.counter(
        "sc_proxy_false_hit_queries_total",
        "Sibling replied MISS after its summary predicted a hit", labels);
    obs_.icp_timeouts = reg.counter(
        "sc_proxy_icp_timeouts_total",
        "Query rounds where the reply wait expired with replies outstanding", labels);
    obs_.request_latency = reg.histogram("sc_proxy_request_latency_seconds",
                                         "Client request latency (seconds)",
                                         obs::default_latency_bounds(), labels);
    obs_.cached_documents =
        reg.gauge("sc_proxy_cached_documents", "Documents currently cached", labels);
    obs_.cached_bytes =
        reg.gauge("sc_proxy_cached_bytes", "Bytes currently cached", labels);
    obs_.worker_queue_depth = reg.gauge(
        "sc_proxy_worker_queue_depth",
        "Dispatched request lines waiting for a free worker", labels);
    obs_.inflight_requests = reg.gauge(
        "sc_proxy_inflight_requests", "Requests currently being served by workers", labels);
    obs_.write_buffer_bytes = reg.gauge(
        "sc_proxy_write_buffer_bytes",
        "Response bytes buffered for slow readers, awaiting POLLOUT", labels);
    obs_.open_sessions = reg.gauge(
        "sc_proxy_open_sessions", "Accepted client connections currently alive", labels);
    obs_.keepalive_reuses = reg.counter(
        "sc_proxy_keepalive_reuses_total",
        "Requests served on an already-used connection (keep-alive wins)", labels);
    if (!config_.access_log_path.empty()) {
        access_log_ = std::make_unique<std::ofstream>(config_.access_log_path,
                                                      std::ios::app);
        if (!*access_log_)
            throw std::runtime_error("cannot open access log: " + config_.access_log_path);
    }
    if (uses_summaries(config_.mode)) {
        // Warm restart (docs/STORAGE.md): fold the recovered disk
        // directory into the counting Bloom filter BEFORE wiring hooks,
        // so the recovered baseline never lands in the delta journal — it
        // is announced wholesale via broadcast_full_summary() instead.
        // Pre-thread, so node_mu_ is not needed yet.
        if (cache_.has_disk_tier() && cache_.document_count() > 0)
            (void)node_.rebuild_from_directory(cache_);
        // Hooks run under the cache mutex, so they must only take leaf
        // locks: they append to the batcher journal and nothing more.
        // sync_node_locked() mirrors the journal into node_ later, from
        // every path that reads the counting filter.
        cache_.set_insert_hook([this](const LruCache::Entry& e) {
            engine_.batcher().record_insert(e.url);
        });
        cache_.set_removal_hook([this](const LruCache::Entry& e) {
            engine_.batcher().record_erase(e.url);
        });
    }
}

std::vector<std::uint32_t> MiniProxy::NodeProbe::promising_peers(std::string_view url) const {
    // Lock-free: the node probes its atomically published replica
    // snapshots; workers never serialize on node_mu_ to pick peers.
    return proxy.node_.promising_siblings(url);
}

void MiniProxy::sync_node_locked() {
    for (const auto& op : engine_.batcher().drain_journal()) {
        if (op.insert)
            node_.on_cache_insert(op.url);
        else
            node_.on_cache_erase(op.url);
    }
}

MiniProxy::~MiniProxy() {
    stop();
    if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
    if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void MiniProxy::add_sibling(NodeId id, Endpoint icp, Endpoint http) {
    bool joined_running_mesh = false;
    {
        const MutexLock lock(membership_mu_);
        const auto cur = siblings_.load(std::memory_order_acquire);
        auto table = std::make_shared<SiblingTable>();
        table->reserve(cur->size() + 1);
        // Re-adding a known id replaces its entry (endpoint change on
        // rejoin); everyone else's entry is carried over untouched.
        for (const auto& s : *cur)
            if (s->id != id) table->push_back(s);
        table->push_back(std::make_shared<Sibling>(id, icp, http));
        const bool is_new = table->size() > cur->size();
        siblings_.store(std::shared_ptr<const SiblingTable>(std::move(table)),
                        std::memory_order_release);
        if (is_new && started_.load()) {
            joined_running_mesh = true;
            if (config_.mode == ShareMode::summary) pending_bootstrap_.push_back(id);
        }
    }
    if (joined_running_mesh) {
        obs::trace(obs::TraceEventType::sibling_joined,
                   static_cast<std::uint16_t>(config_.id), id);
        {
            const MutexLock lock(stats_mu_);
            ++stats_.siblings_joined;
        }
        wake_loop();  // the event loop bootstraps the newcomer promptly
    }
}

std::shared_ptr<MiniProxy::Sibling> MiniProxy::find_sibling(NodeId id) const {
    const auto sibs = sibling_snapshot();
    for (const auto& s : *sibs)
        if (s->id == id) return s;
    return nullptr;
}

void MiniProxy::start() {
    if (started_.exchange(true)) return;
    const int n = std::max(1, config_.workers);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
    loop_ = std::thread([this] { run(); });
    if (config_.mode == ShareMode::digest_pull)
        digest_thread_ = std::thread([this] { digest_fetch_loop(); });
}

void MiniProxy::stop() {
    if (!started_.load()) return;
    {
        // The store must be ordered with the workers' predicate check: set
        // outside jobs_mu_, a worker can read stopping_ == false, then block
        // in wait() just as notify_all fires — a lost wakeup that leaves the
        // join below stuck forever.
        const MutexLock lock(jobs_mu_);
        stopping_.store(true);
    }
    demux_.shutdown();  // workers blocked on a query round return promptly
    jobs_cv_.notify_all();
    wake_loop();  // the loop may be asleep until its next timer deadline
    if (loop_.joinable()) loop_.join();
    for (auto& w : workers_)
        if (w.joinable()) w.join();
    workers_.clear();
    if (digest_thread_.joinable()) digest_thread_.join();
    // Only now — with the loop and every worker joined — is it safe to tear
    // down sessions: a worker holds a raw Session* through its Job until the
    // moment it exits, so destroying them from run() raced that access.
    // (run() destroyed the backend on exit, before any fd closes here.)
    for (const auto& [id, s] : sessions_) {
        obs_.write_buffer_bytes.add(-static_cast<double>(s->outbox.size()));
        obs_.open_sessions.add(-1);
    }
    sessions_.clear();
}

void MiniProxy::broadcast_full_summary() {
    if (config_.mode != ShareMode::summary) return;
    std::vector<std::vector<std::uint8_t>> chunks;
    {
        const MutexLock lock(node_mu_);
        sync_node_locked();  // the bitmap must reflect every journaled insert
        chunks = node_.encode_full_update_chunks();
    }
    const auto sibs = sibling_snapshot();
    for (const auto& msg : chunks)
        for (const auto& s : *sibs) send_udp(s->icp, msg);
    const MutexLock lock(stats_mu_);
    stats_.updates_sent += chunks.size() * sibs->size();
}

MiniProxyStats MiniProxy::stats() const {
    MiniProxyStats s;
    {
        const MutexLock lock(stats_mu_);
        s = stats_;
    }
    s.icp_stale_replies = demux_.stale_replies();
    s.loop_wakeups = loop_wakeups_.load(std::memory_order_relaxed);
    return s;
}

std::size_t MiniProxy::cached_documents() const { return cache_.document_count(); }

std::uint64_t MiniProxy::cached_bytes() const { return cache_.used_bytes(); }

std::size_t MiniProxy::recovered_documents() const {
    return cache_.has_disk_tier() ? cache_.l2()->recovered_entries() : 0;
}

void MiniProxy::log_access(HttpLiteStatus status, const HttpLiteRequest& req,
                           std::chrono::steady_clock::time_point started) {
    if (!access_log_) return;
    const auto latency = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - started)
                             .count();
    const auto epoch_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::system_clock::now().time_since_epoch())
                              .count();
    const MutexLock lock(access_log_mu_);
    (*access_log_) << epoch_ms << ' ' << config_.id << ' '
                   << http_lite_status_name(status) << ' ' << req.size << ' ' << latency
                   << ' ' << req.url << '\n';
    access_log_->flush();
}

void MiniProxy::finish_request(HttpLiteStatus status, const HttpLiteRequest& req,
                               std::chrono::steady_clock::time_point started) {
    if (status == HttpLiteStatus::local_hit)
        obs_.cache_hits.inc();
    else
        obs_.cache_misses.inc();
    obs_.request_latency.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count());
    log_access(status, req, started);
}

void MiniProxy::send_udp(const Endpoint& to, std::span<const std::uint8_t> payload) {
    udp_.send_to(to, payload);
    const MutexLock lock(stats_mu_);
    stats_.udp_bytes_sent += payload.size();
}

SC_EVENT_LOOP_ONLY void MiniProxy::send_keepalives_and_check_liveness() {
    const auto now = std::chrono::steady_clock::now();
    if (now < next_keepalive_) return;
    next_keepalive_ = now + config_.keepalive_interval;

    IcpReply probe;
    probe.opcode = IcpOpcode::secho;
    probe.sender_host = config_.id;
    // Our HTTP port rides in the options so an unknown receiver running
    // dynamic membership can learn us from the probe alone.
    probe.options = http_endpoint_.port;
    const auto payload = encode_reply(probe);
    const auto sibs = sibling_snapshot();
    for (const auto& s : *sibs) send_udp(s->icp, payload);
    {
        const MutexLock lock(stats_mu_);
        stats_.keepalives_sent += sibs->size();
    }
    if (config_.mode == ShareMode::summary && !sibs->empty()) {
        // Tail-loss repair rides the same tick: a lost *last* delta
        // leaves a receiver synced-but-stale forever (gap detection
        // needs a later datagram), so advertise the current sequence
        // with an empty delta. The encode takes node_mu_ — worker, not
        // the event loop.
        enqueue_task([this] { broadcast_seq_heartbeat(); });
    }

    const auto deadline = config_.keepalive_interval * config_.liveness_strikes;
    for (const auto& s : *sibs) {
        if (s->alive.load(std::memory_order_relaxed) && now - s->last_heard > deadline) {
            s->alive.store(false, std::memory_order_relaxed);
            // Internally synchronized (RCU writer path) — no node_mu_.
            node_.forget_sibling(s->id);  // stale replica must not attract queries
            obs::trace(obs::TraceEventType::sibling_dead,
                       static_cast<std::uint16_t>(config_.id), s->id);
            const MutexLock lock(stats_mu_);
            ++stats_.sibling_death_events;
        }
    }
}

void MiniProxy::digest_fetch_loop() {
    // Runs in its own thread so two pullers fetching from each other can
    // never block each other's event loops (the pull-mode deadlock).
    refresh_digests_once();  // initial bootstrap pull
    auto next = std::chrono::steady_clock::now() + config_.digest_refresh;
    while (!stopping_.load()) {
        if (std::chrono::steady_clock::now() < next) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            continue;
        }
        next += config_.digest_refresh;
        refresh_digests_once();
    }
}

void MiniProxy::refresh_digests_once() {
    {
        // We never push deltas in pull mode: mirror the journal (keeping
        // the counting filter current for DGET serves), drop the delta log.
        const MutexLock lock(node_mu_);
        sync_node_locked();
        node_.discard_delta();
    }
    const auto sibs = sibling_snapshot();
    for (const auto& s : *sibs) {
        if (stopping_.load()) return;
        try {
            TcpConnection conn = TcpConnection::connect(s->http);
            set_receive_timeout(conn.fd(), config_.fetch_timeout);
            HttpLiteRequest dget;
            dget.digest = true;
            dget.url = "-";
            conn.write_all(format_request(dget));
            const auto line = conn.read_line();
            if (!line) continue;
            const auto header = parse_response_header(*line);
            if (!header || header->status != HttpLiteStatus::ok) continue;
            if (header->size > kMaxDigestBytes) {
                // A digest bigger than any wire-legal bitmap is a protocol
                // violation, not a big cache: refuse to allocate for it.
                const MutexLock lock(stats_mu_);
                ++stats_.digests_oversized;
                continue;
            }
            std::string body;
            conn.read_exact(header->size, body);
            // The body is one or more concatenated DIRFULL chunk messages
            // (large digests ship chunked). Each message states its own
            // length at header bytes 2-3; slice and apply in order.
            std::span<const std::uint8_t> rest(
                reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
            bool applied = false;
            while (rest.size() >= kIcpHeaderBytes) {
                const std::size_t len =
                    (static_cast<std::size_t>(rest[2]) << 8) | rest[3];
                if (len < kIcpHeaderBytes || len > rest.size())
                    throw WireError("bad digest chunk framing");
                const auto update = decode_dirupdate(rest.first(len));
                // Replica ingestion is internally synchronized — no node_mu_.
                if (node_.apply_sibling_update(update) == SummaryApplyResult::applied)
                    applied = true;
                rest = rest.subspan(len);
            }
            if (applied) {
                const MutexLock lock(stats_mu_);
                ++stats_.digests_fetched;
            }
        } catch (const std::exception&) {
            // Peer busy or down: liveness handles persistent failure.
        }
    }
}

SC_EVENT_LOOP_ONLY void MiniProxy::note_heard_from(NodeId sender) {
    const auto sib = find_sibling(sender);
    if (!sib) return;
    sib->last_heard = std::chrono::steady_clock::now();
    if (!sib->alive.load(std::memory_order_relaxed)) {
        // Recovery (Section VI-B): the peer is back; reinitialize its view
        // of us with a full bitmap.
        sib->alive.store(true, std::memory_order_relaxed);
        obs::trace(obs::TraceEventType::sibling_recovered,
                   static_cast<std::uint16_t>(config_.id), sib->id);
        {
            const MutexLock lock(stats_mu_);
            ++stats_.sibling_recovery_events;
        }
        if (config_.mode == ShareMode::summary) {
            // The bitmap encode takes node_mu_ and can be megabytes of
            // work — never on the event loop. Hand it to a worker; and
            // since we dropped the peer's replica at death, pull its
            // current directory right back (rate-limited).
            enqueue_task([this, sender] { push_full_summary_to(sender); });
            request_resync(*sib);
        }
    }
}

SC_EVENT_LOOP_ONLY void MiniProxy::request_resync(Sibling& sib) {
    const auto now = std::chrono::steady_clock::now();
    if (now < sib.next_resync_request) return;
    sib.next_resync_request = now + config_.resync_interval;
    IcpDirReq req;
    req.sender_host = config_.id;
    req.http_port = http_endpoint_.port;
    send_udp(sib.icp, encode_dirreq(req));
    obs::trace(obs::TraceEventType::resync_requested,
               static_cast<std::uint16_t>(config_.id), sib.id);
    const MutexLock lock(stats_mu_);
    ++stats_.resync_requests_sent;
}

SC_EVENT_LOOP_ONLY void MiniProxy::serve_resync(Sibling& sib) {
    // Rate-limited per peer: a quarantined or flapping sibling re-asks at
    // resync_interval, and each ask costs us at most one bitmap per
    // interval no matter how many DIRREQs it fires.
    const auto now = std::chrono::steady_clock::now();
    if (now < sib.next_resync_reply) return;
    sib.next_resync_reply = now + config_.resync_interval;
    obs::trace(obs::TraceEventType::resync_served,
               static_cast<std::uint16_t>(config_.id), sib.id);
    const NodeId peer = sib.id;
    enqueue_task([this, peer] { push_full_summary_to(peer); });
}

SC_EVENT_LOOP_ONLY void MiniProxy::maybe_learn_sibling(NodeId id, Endpoint icp,
                                                       std::uint16_t http_port) {
    if (!config_.dynamic_membership || config_.mode != ShareMode::summary) return;
    if (id == config_.id || http_port == 0 || icp.port == 0) return;
    if (find_sibling(id)) return;
    // Everyone who predates the newcomer, captured before the learn so the
    // introduction fan-out below cannot include the newcomer itself.
    const auto veterans = sibling_snapshot();
    // The ICP endpoint plus the advertised HTTP port is everything a
    // sibling entry needs; add_sibling queues the bootstrap push + DIRREQ.
    add_sibling(id, icp, Endpoint{icp.host, http_port});
    // Membership exchange (the Traffic Server ClusterCom idiom): vouch for
    // the newcomer to every veteran and for every veteran to the newcomer.
    // Receivers that already know the subject drop the introduction;
    // receivers that don't repeat this dance, so one point of contact is
    // enough to join a whole mesh.
    std::uint64_t sent = 0;
    for (const auto& s : *veterans) {
        if (s->id == id) continue;
        IcpDirReq about_newcomer;
        about_newcomer.sender_host = config_.id;
        about_newcomer.http_port = http_endpoint_.port;
        about_newcomer.subject_id = id;
        about_newcomer.subject_icp_host = icp.host;
        about_newcomer.subject_icp_port = icp.port;
        about_newcomer.subject_http_port = http_port;
        send_udp(s->icp, encode_dirreq(about_newcomer));
        IcpDirReq about_veteran;
        about_veteran.sender_host = config_.id;
        about_veteran.http_port = http_endpoint_.port;
        about_veteran.subject_id = s->id;
        about_veteran.subject_icp_host = s->icp.host;
        about_veteran.subject_icp_port = s->icp.port;
        about_veteran.subject_http_port = s->http.port;
        send_udp(icp, encode_dirreq(about_veteran));
        sent += 2;
    }
    if (sent != 0) {
        const MutexLock lock(stats_mu_);
        stats_.introductions_sent += sent;
    }
}

void MiniProxy::push_full_summary_to(NodeId id) {
    if (config_.mode != ShareMode::summary) return;
    const auto sib = find_sibling(id);
    if (!sib) return;  // left the mesh while the task was queued
    std::vector<std::vector<std::uint8_t>> chunks;
    {
        const MutexLock lock(node_mu_);
        sync_node_locked();  // the bitmap must reflect every journaled insert
        chunks = node_.encode_full_update_chunks();
    }
    for (const auto& msg : chunks) send_udp(sib->icp, msg);
    const MutexLock lock(stats_mu_);
    stats_.resync_fulls_sent += chunks.size();
}

void MiniProxy::broadcast_seq_heartbeat() {
    if (config_.mode != ShareMode::summary) return;
    std::vector<std::uint8_t> payload;
    {
        const MutexLock lock(node_mu_);
        payload = node_.encode_seq_heartbeat();
    }
    const auto sibs = sibling_snapshot();
    std::size_t sent = 0;
    for (const auto& s : *sibs) {
        if (!s->alive.load(std::memory_order_relaxed)) continue;
        send_udp(s->icp, payload);
        ++sent;
    }
    const MutexLock lock(stats_mu_);
    stats_.seq_heartbeats_sent += sent;
}

void MiniProxy::enqueue_task(std::function<void()> task) {
    {
        const MutexLock lock(jobs_mu_);
        task_queue_.push_back(std::move(task));
    }
    jobs_cv_.notify_one();
}

void MiniProxy::send_to_client(Session& s, std::string_view data) {
    if (s.overflow) return;  // session is doomed; stop accumulating
    if (s.outbox.empty()) {
        const std::size_t n = s.conn.write_some(data);
        data.remove_prefix(n);
        if (data.empty()) return;
    }
    // Socket full — or earlier bytes still queued (never reorder). The
    // event loop drains the remainder on POLLOUT after the worker
    // releases the session.
    s.outbox.append(data);
    obs_.write_buffer_bytes.add(static_cast<double>(data.size()));
    if (s.outbox.size() > config_.write_buffer_limit) s.overflow = true;
}

void MiniProxy::send_to_client(Session& s, std::span<const std::uint8_t> data) {
    send_to_client(s, std::string_view(reinterpret_cast<const char*>(data.data()),
                                       data.size()));
}

SC_EVENT_LOOP_ONLY void MiniProxy::flush_outbox(Session& s) {
    const std::size_t n = s.conn.write_some(s.outbox);
    if (n == 0) return;
    s.outbox.erase(0, n);
    obs_.write_buffer_bytes.add(-static_cast<double>(n));
}

SC_EVENT_LOOP_ONLY void MiniProxy::finish_session(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    if (!it->second->outbox.empty() && !it->second->overflow) {
        it->second->close_after_flush = true;  // drain first, then close
        return;
    }
    drop_session(id);
}

SC_EVENT_LOOP_ONLY void MiniProxy::drop_session(std::uint64_t id) {
    const auto it = sessions_.find(id);
    if (it == sessions_.end()) return;
    // Deregister BEFORE the erase closes the fd (the backend contract;
    // also keeps a recycled fd from inheriting stale interest).
    if (it->second->registered && backend_) backend_->remove(it->second->conn.fd());
    obs_.write_buffer_bytes.add(-static_cast<double>(it->second->outbox.size()));
    obs_.open_sessions.add(-1);
    sessions_.erase(it);
}

SC_EVENT_LOOP_ONLY void MiniProxy::update_session_interest(std::uint64_t id, Session& s) {
    // Busy sessions belong to a worker: the loop must not watch the fd at
    // all (the worker writes it, and a readable pipelined request must not
    // be double-dispatched). After EOF, read interest is dropped too — a
    // half-closed fd stays level-triggered-readable forever and would spin
    // the loop while the outbox drains.
    const bool want = !s.busy;
    const bool want_read = want && !s.saw_eof;
    const bool want_write = want && !s.outbox.empty();
    if (!want_read && !want_write) {
        if (s.registered) {
            backend_->remove(s.conn.fd());
            s.registered = false;
        }
        return;
    }
    if (!s.registered) {
        backend_->add(s.conn.fd(), want_read, want_write, kSessionTagBase + id);
        s.registered = true;
        s.registered_read = want_read;
        s.registered_write = want_write;
    } else if (s.registered_read != want_read || s.registered_write != want_write) {
        backend_->modify(s.conn.fd(), want_read, want_write, kSessionTagBase + id);
        s.registered_read = want_read;
        s.registered_write = want_write;
    }
}

SC_EVENT_LOOP_ONLY void MiniProxy::sweep_idle_sessions(
    std::chrono::steady_clock::time_point now) {
    if (config_.idle_timeout.count() <= 0 || now < next_idle_sweep_) return;
    next_idle_sweep_ = now + std::max<std::chrono::milliseconds>(
                                 config_.idle_timeout / 4, std::chrono::milliseconds(10));
    std::vector<std::uint64_t> idle;
    for (const auto& [id, s] : sessions_) {
        if (s->busy || !s->outbox.empty()) continue;  // active, not idle
        if (now - s->last_activity > config_.idle_timeout) idle.push_back(id);
    }
    for (const std::uint64_t id : idle) {
        // Quiet close: no response bytes, no log line — the peer parked a
        // keep-alive connection and walked away.
        obs::trace(obs::TraceEventType::session_idle_closed,
                   static_cast<std::uint16_t>(config_.id), id & 0xffffffffu);
        drop_session(id);
    }
    if (!idle.empty()) {
        const MutexLock lock(stats_mu_);
        stats_.idle_closes += idle.size();
    }
}

void MiniProxy::wake_loop() {
    const char byte = 'w';
    // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
    (void)!::write(wake_pipe_[1], &byte, 1);
}

SC_EVENT_LOOP_ONLY bool MiniProxy::pump_session(std::uint64_t id, Session& s) {
    if (s.busy) return true;
    // Backpressure: while buffered response bytes await POLLOUT, hold the
    // next pipelined request (flush_outbox re-pumps once drained).
    if (!s.outbox.empty()) return true;
    // Feed buffered lines through the parser until one completes a request
    // (HTTP header lines consume several lines per request).
    while (auto line = s.conn.buffered_line()) {
        auto request = s.parser.on_line(*line);
        if (!request) continue;
        s.last_activity = std::chrono::steady_clock::now();
        ++s.requests_dispatched;
        if (s.requests_dispatched > 1) {
            obs_.keepalive_reuses.inc();
            const MutexLock lock(stats_mu_);
            ++stats_.keepalive_reuses;
        }
        if (config_.max_requests_per_connection != 0 &&
            s.requests_dispatched >= config_.max_requests_per_connection)
            request->keep_alive = false;  // rotate: close after this response
        s.busy = true;
        {
            const MutexLock lock(jobs_mu_);
            job_queue_.push_back(Job{id, &s, std::move(*request)});
        }
        obs_.worker_queue_depth.add(1);
        jobs_cv_.notify_one();
        return true;
    }
    // Peer closed; buffered requests all served. (EOF inside an HTTP
    // header block aborts that half-request with it.)
    if (s.saw_eof) return false;
    // A stream this long without a newline is not a request line.
    if (s.conn.buffered_bytes() > kMaxRequestLineBytes) return false;
    return true;
}

SC_EVENT_LOOP_ONLY void MiniProxy::run() {
    {
        // Entries may have been constructed well before start(); the
        // liveness clock starts when the loop does.
        const auto sibs = sibling_snapshot();
        for (const auto& s : *sibs) s->last_heard = std::chrono::steady_clock::now();
    }
    next_keepalive_ = std::chrono::steady_clock::now() + config_.keepalive_interval;
    next_idle_sweep_ = std::chrono::steady_clock::now();
    // The backend lives exactly as long as the loop: fds registered here
    // are deregistered before their owners close them, and stop() tears
    // sessions down only after this thread (and the backend) is gone.
    backend_ = make_event_backend(backend_kind_);
    backend_->add(listener_.fd(), true, false, kListenerTag);
    backend_->add(udp_.fd(), true, false, kUdpTag);
    backend_->add(wake_pipe_[0], true, false, kWakeTag);
    std::vector<net::ReadyEvent> ready;
    std::vector<Completion> done;
    std::vector<NodeId> joined;
    while (!stopping_.load()) {
        const auto now = std::chrono::steady_clock::now();
        send_keepalives_and_check_liveness();
        sweep_idle_sessions(now);
        // No fixed tick: sleep until the earliest pending timer. Anything
        // that needs the loop sooner (worker completions, runtime joins,
        // stop()) writes the wake pipe.
        auto deadline = next_keepalive_;
        if (config_.idle_timeout.count() > 0) deadline = std::min(deadline, next_idle_sweep_);
        if (config_.mode == ShareMode::summary) {
            // Bootstrap runtime joiners: push them our bitmap, pull theirs.
            joined.clear();
            {
                const MutexLock lock(membership_mu_);
                joined.swap(pending_bootstrap_);
            }
            for (const NodeId id : joined) {
                if (const auto sib = find_sibling(id)) {
                    enqueue_task([this, id] { push_full_summary_to(id); });
                    request_resync(*sib);
                }
            }
            // Repair sweep: any live peer whose update stream is unsynced
            // (boot, quarantine after a gap, lost DIRREQ or lost full)
            // gets another DIRREQ, rate-limited per peer — this is what
            // makes summary distribution converge under loss. While any
            // peer is unsynced, wake again when its rate limit next opens
            // instead of sleeping until the keepalive tick.
            const auto sibs = sibling_snapshot();
            for (const auto& s : *sibs)
                if (s->alive.load(std::memory_order_relaxed) &&
                    node_.sibling_needs_resync(s->id)) {
                    request_resync(*s);
                    deadline = std::min(
                        deadline, std::max(s->next_resync_request,
                                           now + std::chrono::milliseconds(1)));
                }
        }

        ready.clear();
        backend_->wait(deadline, ready);
        loop_wakeups_.fetch_add(1, std::memory_order_relaxed);

        // Worker completions first: they idle sessions that may have more
        // buffered (pipelined) requests ready to dispatch.
        done.clear();
        {
            const MutexLock lock(jobs_mu_);
            done.swap(completions_);
        }
        for (const Completion& c : done) {
            const auto it = sessions_.find(c.session_id);
            if (it == sessions_.end()) continue;
            Session& s = *it->second;
            s.busy = false;
            s.last_activity = std::chrono::steady_clock::now();
            if (s.overflow) {
                drop_session(c.session_id);
                continue;
            }
            if (!c.keep || !pump_session(c.session_id, s)) finish_session(c.session_id);
            // The session may be gone (dropped), draining (close_after_flush
            // needs write interest), idle again, or re-busy (pipelined
            // dispatch): sync its registration with whatever it became.
            if (const auto again = sessions_.find(c.session_id); again != sessions_.end())
                update_session_interest(c.session_id, *again->second);
        }

        for (const net::ReadyEvent& ev : ready) {
            if (ev.tag == kWakeTag) {
                char drain[256];
                while (::read(wake_pipe_[0], drain, sizeof drain) > 0) {}
                continue;
            }
            if (ev.tag == kListenerTag) {
                while (auto conn = listener_.accept(0)) {
                    const std::uint64_t id = next_session_id_++;
                    auto [it, inserted] =
                        sessions_.emplace(id, std::make_unique<Session>(std::move(*conn)));
                    obs_.open_sessions.add(1);
                    update_session_interest(id, *it->second);
                }
                continue;
            }
            if (ev.tag == kUdpTag) {
                while (auto dgram = udp_.receive(0)) handle_datagram(*dgram);
                continue;
            }
            // A session event. Stale tags (the session was dropped while
            // this batch was being processed) simply miss the map — a tag
            // is never recycled, unlike an fd.
            const std::uint64_t sid = ev.tag - kSessionTagBase;
            const auto it = sessions_.find(sid);
            if (it == sessions_.end() || it->second->busy) continue;
            Session& s = *it->second;
            bool drop = false;
            if (ev.writable) {
                try {
                    flush_outbox(s);
                } catch (const std::exception&) {
                    drop = true;  // reader went away with bytes still queued
                }
                if (!drop && s.outbox.empty() && s.close_after_flush) {
                    drop_session(sid);
                    continue;
                }
            }
            if (!drop && (ev.readable || ev.hangup || ev.error)) {
                try {
                    // Only the bytes available right now: a slow or malicious
                    // client that stops mid-line parks its partial buffer here
                    // and we resume on its next readiness event — it can no
                    // longer wedge the loop in a blocking read.
                    if (s.conn.fill_available() == TcpConnection::Fill::eof)
                        s.saw_eof = true;
                    else
                        s.last_activity = std::chrono::steady_clock::now();
                } catch (const std::exception&) {
                    drop = true;  // ECONNRESET and friends
                }
            }
            if (drop)
                drop_session(sid);
            else if (!pump_session(sid, s))
                finish_session(sid);
            if (const auto again = sessions_.find(sid); again != sessions_.end())
                update_session_interest(sid, *again->second);
        }
    }
    // Deregistration order vs close: the backend dies first, while every
    // registered fd is still open. Session teardown happens in stop(),
    // after the workers have joined.
    backend_.reset();
}

void MiniProxy::worker_loop() {
    WorkerCtx ctx;
    for (;;) {
        Job job;
        std::function<void()> task;
        {
            MutexLock lock(jobs_mu_);
            jobs_cv_.wait(lock, [this] {
                return stopping_.load() || !task_queue_.empty() || !job_queue_.empty();
            });
            if (stopping_.load()) return;  // shutdown drops queued work
            if (!task_queue_.empty()) {
                // Control-plane work (summary pushes) jumps the request
                // queue: a peer waiting on a resync must not sit behind a
                // convoy of slow origin fetches.
                task = std::move(task_queue_.front());
                task_queue_.pop_front();
            } else {
                job = std::move(job_queue_.front());
                job_queue_.pop_front();
            }
        }
        if (task) {
            try {
                task();
            } catch (const std::exception&) {
                // a push to a vanished peer is not worth a crash
            }
            continue;
        }
        obs_.worker_queue_depth.add(-1);
        obs_.inflight_requests.add(1);
        bool keep = false;
        try {
            keep = handle_client_request(*job.session, job.request, ctx);
        } catch (const std::exception&) {
            // protocol error or broken pipe: drop client
        }
        obs_.inflight_requests.add(-1);
        {
            const MutexLock lock(jobs_mu_);
            completions_.push_back({job.session_id, keep});
        }
        wake_loop();
    }
}

void MiniProxy::send_response(Session& s, const SessionRequest& r,
                              HttpLiteStatus status, std::string_view body) {
    if (r.http_style) {
        std::string head = "HTTP/1.1 ";
        head += status == HttpLiteStatus::error        ? "400 Bad Request"
                : status == HttpLiteStatus::not_cached ? "404 Not Found"
                                                       : "200 OK";
        // The lite status rides in a header so HTTP clients can still
        // distinguish local/remote/origin service.
        head += "\r\nX-SC-Status: ";
        head += http_lite_status_name(status);
        head += "\r\nContent-Type: text/plain\r\nContent-Length: ";
        head += std::to_string(body.size());
        head += r.keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                             : "\r\nConnection: close\r\n\r\n";
        send_to_client(s, head);
    } else {
        send_to_client(s, format_response_header({status, body.size()}));
    }
    if (!body.empty()) send_to_client(s, body);
}

bool MiniProxy::handle_client_request(Session& s, const SessionRequest& r,
                                      WorkerCtx& ctx) {
    if (r.admin) {
        serve_admin(s, r);
        return r.keep_alive;
    }
    if (r.parse_error) {
        send_response(s, r, HttpLiteStatus::error, {});
        return r.keep_alive;
    }
    const HttpLiteRequest* req = &r.req;

    if (req->digest) {
        // Serve our cache digest: the full-bitmap update, chunked exactly
        // as it would ship over UDP and concatenated (the puller slices on
        // each chunk's own length field).
        std::vector<std::vector<std::uint8_t>> chunks;
        {
            const MutexLock lock(node_mu_);
            sync_node_locked();  // the digest must reflect journaled inserts
            chunks = node_.encode_full_update_chunks();
        }
        std::size_t total = 0;
        for (const auto& msg : chunks) total += msg.size();
        {
            // Count before replying: a puller that has read the digest body
            // must observe it as served.
            const MutexLock lock(stats_mu_);
            ++stats_.digests_served;
        }
        // Digest bodies are lite-framed chunk streams (DGET never arrives
        // over real HTTP), so this one response skips send_response.
        send_to_client(s, format_response_header({HttpLiteStatus::ok, total}));
        for (const auto& msg : chunks)
            send_to_client(s, std::span<const std::uint8_t>(msg));
        return r.keep_alive;
    }

    if (req->sibling_only) {
        // SGET: serve from cache only; a stale or absent copy is NOT_CACHED.
        if (engine_.lookup_local(req->url, req->version) == LruCache::Lookup::hit)
            send_response(s, r, HttpLiteStatus::local_hit, synth_body(req->size));
        else
            send_response(s, r, HttpLiteStatus::not_cached, {});
        return r.keep_alive;
    }

    const auto started = std::chrono::steady_clock::now();
    obs_.requests.inc();
    {
        const MutexLock lock(stats_mu_);
        ++stats_.requests;
    }

    if (engine_.lookup_local(req->url, req->version) == LruCache::Lookup::hit) {
        {
            const MutexLock lock(stats_mu_);
            ++stats_.local_hits;
        }
        send_response(s, r, HttpLiteStatus::local_hit, synth_body(req->size));
        finish_request(HttpLiteStatus::local_hit, *req, started);
        return r.keep_alive;
    }

    // Local miss: discover a remote copy per the configured protocol.
    // Dead siblings are never queried.
    std::vector<NodeId> targets;
    if (config_.mode == ShareMode::icp) {
        const auto sibs = sibling_snapshot();
        targets.reserve(sibs->size());
        for (const auto& sib : *sibs)
            if (sib->alive.load(std::memory_order_relaxed)) targets.push_back(sib->id);
    } else if (uses_summaries(config_.mode)) {
        targets = engine_.probe(req->url);
    }

    const auto serve_remote_hit = [&](NodeId from, bool inline_obj) {
        {
            const MutexLock lock(stats_mu_);
            ++stats_.remote_hits;
            if (inline_obj) ++stats_.hit_obj_used;
        }
        obs_.remote_hits.inc();
        obs::trace(obs::TraceEventType::remote_hit,
                   static_cast<std::uint16_t>(config_.id), from, inline_obj ? 1 : 0);
        insert_document(*req);
        send_response(s, r, HttpLiteStatus::remote_hit, synth_body(req->size));
        finish_request(HttpLiteStatus::remote_hit, *req, started);
    };

    bool served_remote = false;
    if (!targets.empty() && uses_summaries(config_.mode)) {
        // SC-ICP probes the promising siblings ONE AT A TIME, stopping at
        // the first fresh copy — the message economy the simulator counts
        // (the parity test holds the two to the same tallies). A HIT whose
        // copy is gone or stale by SGET time ends the round at the origin.
        bool inline_obj = false;
        const core::RoundOutcome round = engine_.run_sequential_round(
            targets, [&](std::uint32_t id) {
                const QueryOutcome one = query_siblings(*req, {id});
                if (one.inline_object) {
                    inline_obj = true;
                    return core::PeerAnswer::fresh;
                }
                if (one.hits.empty()) return core::PeerAnswer::absent;
                if (fetch_from_sibling(id, *req)) return core::PeerAnswer::fresh;
                return core::PeerAnswer::stale;
            });
        if (round.winner) {
            serve_remote_hit(*round.winner, inline_obj);
            served_remote = true;
        }
    } else if (!targets.empty()) {
        // Classic ICP: one multicast round; every reply comes back.
        const QueryOutcome outcome = query_siblings(*req, targets);
        if (outcome.inline_object) {
            // A fresh HIT_OBJ already delivered the body: no TCP fetch.
            serve_remote_hit(0, true);
            served_remote = true;
        } else {
            for (const NodeId id : outcome.hits) {
                if (fetch_from_sibling(id, *req)) {
                    serve_remote_hit(id, false);
                    served_remote = true;
                    break;
                }
            }
        }
    }
    if (served_remote) return r.keep_alive;

    const std::string body = fetch_from_origin(*req, ctx);
    {
        const MutexLock lock(stats_mu_);
        ++stats_.origin_fetches;
    }
    obs_.origin_fetches.inc();
    insert_document(*req);
    send_response(s, r, HttpLiteStatus::miss, body);
    finish_request(HttpLiteStatus::miss, *req, started);
    return r.keep_alive;
}

void MiniProxy::serve_admin(Session& s, const SessionRequest& r) {
    // curl speaks "GET <path> HTTP/1.x" followed by a header block (the
    // parser consumed it — no blocking drain here); the http-lite client
    // sends the bare request line. Both answers flow through the outbox
    // like every other response, and HTTP keep-alive is honored.
    const std::string body = r.admin_trace
                                 ? obs::trace_to_json(obs::TraceRing::global().drain())
                                 : obs::to_prometheus(obs::metrics().snapshot());
    if (r.http_style) {
        std::string head = "HTTP/1.1 200 OK\r\nContent-Type: ";
        head += r.admin_trace ? "application/json" : "text/plain; version=0.0.4";
        head += "\r\nContent-Length: ";
        head += std::to_string(body.size());
        head += r.keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                             : "\r\nConnection: close\r\n\r\n";
        send_to_client(s, head);
    } else {
        send_to_client(s, format_response_header({HttpLiteStatus::ok, body.size()}));
    }
    send_to_client(s, body);
}

MiniProxy::QueryOutcome MiniProxy::query_siblings(const HttpLiteRequest& req,
                                                  const std::vector<NodeId>& targets) {
    const std::uint32_t qn =
        next_query_number_.fetch_add(1, std::memory_order_relaxed);
    IcpReplyWaiter waiter = demux_.register_query(qn);
    IcpQuery query;
    query.request_number = qn;
    query.sender_host = config_.id;
    query.requester_host = config_.id;
    query.url = req.url;
    const auto payload = encode_query(query);

    std::size_t sent = 0;
    for (const NodeId id : targets) {
        const auto sib = find_sibling(id);
        if (!sib) continue;
        send_udp(sib->icp, payload);
        ++sent;
    }
    {
        const MutexLock lock(stats_mu_);
        stats_.icp_queries_sent += sent;
    }
    QueryOutcome outcome;
    if (sent == 0) return outcome;

    std::size_t replies = 0;
    const auto deadline = std::chrono::steady_clock::now() + config_.query_timeout;
    while (replies < sent && !outcome.inline_object) {
        // The event loop receives every datagram; replies for our round
        // arrive through the demux, so concurrent workers' rounds can
        // never consume each other's replies.
        auto dgram = waiter.wait_next(deadline);
        if (!dgram) break;  // timeout or shutdown
        IcpHeader header;
        try {
            header = decode_header(dgram->payload);
        } catch (const WireError&) {
            continue;  // cannot happen: the loop validated before routing
        }
        ++replies;
        {
            const MutexLock lock(stats_mu_);
            ++stats_.icp_replies_received;
            if (header.opcode == IcpOpcode::miss && uses_summaries(config_.mode))
                ++stats_.false_hit_queries;
        }
        if (header.opcode == IcpOpcode::miss && uses_summaries(config_.mode)) {
            obs_.false_hit_queries.inc();
            obs::trace(obs::TraceEventType::false_positive_probe,
                       static_cast<std::uint16_t>(config_.id), header.sender_host);
        }
        if (header.opcode == IcpOpcode::hit) {
            outcome.hits.push_back(header.sender_host);
        } else if (header.opcode == IcpOpcode::hit_obj) {
            try {
                const IcpHitObj obj = decode_hit_obj(dgram->payload);
                if (obj.version == static_cast<std::uint32_t>(req.version) &&
                    obj.object.size() == req.size) {
                    outcome.inline_object = true;
                } else {
                    // Stale or odd inline copy: fall back to SGET.
                    outcome.hits.push_back(header.sender_host);
                }
            } catch (const WireError&) {
                outcome.hits.push_back(header.sender_host);
            }
        }
    }
    if (replies < sent && !outcome.inline_object) {
        obs_.icp_timeouts.inc();
        obs::trace(obs::TraceEventType::icp_timeout,
                   static_cast<std::uint16_t>(config_.id), sent - replies);
    }
    return outcome;
}

SC_EVENT_LOOP_ONLY void MiniProxy::handle_datagram(const Datagram& dgram) {
    {
        const MutexLock lock(stats_mu_);
        stats_.udp_bytes_received += dgram.payload.size();
    }
    IcpHeader header;
    try {
        header = decode_header(dgram.payload);
    } catch (const WireError&) {
        return;  // malformed datagram: drop
    }
    if (header.opcode == IcpOpcode::secho) {
        // A liveness probe carries the sender's HTTP port in the options:
        // enough to learn an unknown peer before refreshing its liveness.
        maybe_learn_sibling(header.sender_host, dgram.from,
                            static_cast<std::uint16_t>(header.options & 0xffffu));
    }
    note_heard_from(header.sender_host);
    const bool is_reply = header.opcode == IcpOpcode::hit ||
                          header.opcode == IcpOpcode::miss ||
                          header.opcode == IcpOpcode::hit_obj;
    if (is_reply) {
        // Route to the worker that owns this query round; unknown or
        // expired request numbers (delayed replies from an earlier round,
        // a restarted peer) are counted and dropped, never misdelivered.
        (void)demux_.dispatch(header.request_number, dgram);
        return;
    }
    handle_datagram_body(dgram, header);
}

SC_EVENT_LOOP_ONLY void MiniProxy::handle_datagram_body(const Datagram& dgram, const IcpHeader& header) {
    switch (header.opcode) {
        case IcpOpcode::query:
            answer_query(dgram);
            break;
        case IcpOpcode::dirupdate:
        case IcpOpcode::dirfull:
            try {
                const IcpDirUpdate update = decode_dirupdate(dgram.payload);
                // Replica ingestion is internally synchronized — no node_mu_.
                const auto result = node_.apply_sibling_update(update);
                if (result == SummaryApplyResult::applied) {
                    const MutexLock lock(stats_mu_);
                    ++stats_.updates_received;
                } else if (summary_apply_needs_resync(result)) {
                    // Gap, unknown sender boot, or quarantined stream: the
                    // replica cannot be trusted until a full bitmap lands.
                    // Ask for one (rate-limited; the run()-loop sweep
                    // re-asks if this DIRREQ or its answer is lost too).
                    if (const auto sib = find_sibling(header.sender_host))
                        request_resync(*sib);
                }
            } catch (const WireError&) {
                // corrupt update: drop; the resync sweep repairs us
            }
            break;
        case IcpOpcode::dirreq: {
            IcpDirReq resync;
            try {
                resync = decode_dirreq(dgram.payload);
            } catch (const WireError&) {
                break;
            }
            {
                const MutexLock lock(stats_mu_);
                if (resync.subject_id != 0)
                    ++stats_.introductions_received;
                else
                    ++stats_.resync_requests_received;
            }
            maybe_learn_sibling(resync.sender_host, dgram.from, resync.http_port);
            if (resync.subject_id != 0) {
                // An introduction teaches us about a third peer; it asks
                // for no bitmap (the repair sweep DIRREQs the newly
                // learned subject directly).
                maybe_learn_sibling(
                    static_cast<NodeId>(resync.subject_id),
                    Endpoint{resync.subject_icp_host, resync.subject_icp_port},
                    resync.subject_http_port);
            } else if (const auto sib = find_sibling(resync.sender_host)) {
                serve_resync(*sib);
            }
            break;
        }
        case IcpOpcode::secho: {
            // Liveness probe: echo back so the sender keeps us alive.
            {
                const MutexLock lock(stats_mu_);
                ++stats_.keepalives_received;
            }
            IcpReply echo;
            echo.opcode = IcpOpcode::decho;
            echo.request_number = header.request_number;
            echo.sender_host = config_.id;
            send_udp(dgram.from, encode_reply(echo));
            break;
        }
        case IcpOpcode::decho:
            break;  // note_heard_from already refreshed the peer
        default:
            break;  // unknown opcodes are dropped
    }
}

SC_EVENT_LOOP_ONLY void MiniProxy::answer_query(const Datagram& dgram) {
    IcpQuery query;
    try {
        query = decode_query(dgram.payload);
    } catch (const WireError&) {
        return;
    }
    {
        const MutexLock lock(stats_mu_);
        ++stats_.icp_queries_received;
    }

    // Small cached documents ride back inline (ICP_OP_HIT_OBJ).
    if (config_.hit_obj_max_bytes > 0) {
        if (const auto entry = cache_.entry_copy(query.url);
            entry &&
            entry->size <= std::min<std::uint64_t>(config_.hit_obj_max_bytes,
                                                   kMaxHitObjBytes)) {
            IcpHitObj obj;
            obj.request_number = query.request_number;
            obj.sender_host = config_.id;
            obj.version = static_cast<std::uint32_t>(entry->version);
            obj.url = query.url;
            const std::string body = synth_body(entry->size);
            obj.object.assign(body.begin(), body.end());
            send_udp(dgram.from, encode_hit_obj(obj));
            const MutexLock lock(stats_mu_);
            ++stats_.icp_replies_sent;
            ++stats_.hit_obj_served;
            return;
        }
    }

    IcpReply reply;
    reply.opcode = cache_.contains(query.url) ? IcpOpcode::hit : IcpOpcode::miss;
    reply.request_number = query.request_number;
    reply.sender_host = config_.id;
    reply.url = query.url;
    send_udp(dgram.from, encode_reply(reply));
    const MutexLock lock(stats_mu_);
    ++stats_.icp_replies_sent;
}

std::optional<std::string> MiniProxy::fetch_from_sibling(NodeId id, const HttpLiteRequest& req) {
    const auto sib = find_sibling(id);
    if (!sib) return std::nullopt;
    try {
        TcpConnection conn = TcpConnection::connect(sib->http);
        set_receive_timeout(conn.fd(), config_.fetch_timeout);
        HttpLiteRequest sreq = req;
        sreq.sibling_only = true;
        conn.write_all(format_request(sreq));
        const auto line = conn.read_line();
        if (!line) return std::nullopt;
        const auto header = parse_response_header(*line);
        if (!header || header->status != HttpLiteStatus::local_hit) return std::nullopt;
        std::string body;
        conn.read_exact(header->size, body);
        {
            const MutexLock lock(stats_mu_);
            ++stats_.sibling_fetches;
        }
        return body;
    } catch (const std::exception&) {
        return std::nullopt;  // timeout or connection failure: fall to origin
    }
}

std::string MiniProxy::fetch_from_origin(const HttpLiteRequest& req, WorkerCtx& ctx) {
    for (int attempt = 0; attempt < 2; ++attempt) {
        try {
            if (!ctx.origin_conn || !ctx.origin_conn->valid())
                ctx.origin_conn = TcpConnection::connect(config_.origin);
            ctx.origin_conn->write_all(format_request(req));
            const auto line = ctx.origin_conn->read_line();
            if (!line) throw std::runtime_error("origin closed connection");
            const auto header = parse_response_header(*line);
            if (!header || header->status != HttpLiteStatus::ok)
                throw std::runtime_error("bad origin response");
            std::string body;
            ctx.origin_conn->read_exact(header->size, body);
            return body;
        } catch (const std::exception&) {
            ctx.origin_conn.reset();  // reconnect once, then give up
            if (attempt == 1) throw;
        }
    }
    return {};  // unreachable
}

void MiniProxy::insert_document(const HttpLiteRequest& req) {
    if (!engine_.admit(req.url, req.size, req.version)) return;
    obs_.cached_documents.set(static_cast<double>(cache_.document_count()));
    obs_.cached_bytes.set(static_cast<double>(cache_.used_bytes()));
    if (config_.mode == ShareMode::summary) broadcast_updates();
    // digest_pull: siblings fetch the whole digest on their own schedule.
}

void MiniProxy::broadcast_updates() {
    // The batcher elects exactly one flusher per threshold crossing:
    // concurrent workers' inserts coalesce into that flusher's batch
    // instead of each worker broadcasting its own delta.
    const auto flushed = engine_.maybe_flush(0.0, [this] {
        const MutexLock lock(node_mu_);
        sync_node_locked();
        return node_.encode_pending_updates();
    });
    if (!flushed || flushed->first.empty()) return;
    const auto sibs = sibling_snapshot();
    for (const auto& msg : flushed->first)
        for (const auto& s : *sibs) send_udp(s->icp, msg);
    const MutexLock lock(stats_mu_);
    stats_.updates_sent += flushed->first.size() * sibs->size();
}

}  // namespace sc
