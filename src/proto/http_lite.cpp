#include "proto/http_lite.hpp"

#include <charconv>
#include <vector>

namespace sc {
namespace {

std::vector<std::string_view> split_ws(std::string_view s) {
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() && s[i] == ' ') ++i;
        const std::size_t start = i;
        while (i < s.size() && s[i] != ' ') ++i;
        if (i > start) out.push_back(s.substr(start, i - start));
    }
    return out;
}

template <typename Int>
std::optional<Int> to_int(std::string_view f) {
    Int v{};
    const auto [ptr, ec] = std::from_chars(f.data(), f.data() + f.size(), v);
    if (ec != std::errc{} || ptr != f.data() + f.size()) return std::nullopt;
    return v;
}

}  // namespace

const char* http_lite_status_name(HttpLiteStatus s) {
    switch (s) {
        case HttpLiteStatus::ok: return "OK";
        case HttpLiteStatus::local_hit: return "LOCAL_HIT";
        case HttpLiteStatus::remote_hit: return "REMOTE_HIT";
        case HttpLiteStatus::miss: return "MISS";
        case HttpLiteStatus::not_cached: return "NOT_CACHED";
        case HttpLiteStatus::error: return "ERROR";
    }
    return "?";
}

std::optional<HttpLiteStatus> parse_http_lite_status(std::string_view s) {
    if (s == "OK") return HttpLiteStatus::ok;
    if (s == "LOCAL_HIT") return HttpLiteStatus::local_hit;
    if (s == "REMOTE_HIT") return HttpLiteStatus::remote_hit;
    if (s == "MISS") return HttpLiteStatus::miss;
    if (s == "NOT_CACHED") return HttpLiteStatus::not_cached;
    if (s == "ERROR") return HttpLiteStatus::error;
    return std::nullopt;
}

std::string format_request(const HttpLiteRequest& r) {
    std::string out = r.digest ? "DGET " : (r.sibling_only ? "SGET " : "GET ");
    out += r.url;
    out += ' ';
    out += std::to_string(r.version);
    out += ' ';
    out += std::to_string(r.size);
    out += "\r\n";
    return out;
}

std::optional<HttpLiteRequest> parse_request(std::string_view line) {
    const auto fields = split_ws(line);
    if (fields.size() != 4) return std::nullopt;
    HttpLiteRequest r;
    if (fields[0] == "GET") {
        r.sibling_only = false;
    } else if (fields[0] == "SGET") {
        r.sibling_only = true;
    } else if (fields[0] == "DGET") {
        r.digest = true;
    } else {
        return std::nullopt;
    }
    r.url = std::string(fields[1]);
    const auto version = to_int<std::uint64_t>(fields[2]);
    const auto size = to_int<std::uint64_t>(fields[3]);
    if (!version || !size) return std::nullopt;
    r.version = *version;
    r.size = *size;
    return r;
}

std::string format_response_header(const HttpLiteResponseHeader& h) {
    std::string out = http_lite_status_name(h.status);
    out += ' ';
    out += std::to_string(h.size);
    out += "\r\n";
    return out;
}

std::optional<HttpLiteResponseHeader> parse_response_header(std::string_view line) {
    const auto fields = split_ws(line);
    if (fields.size() != 2) return std::nullopt;
    const auto status = parse_http_lite_status(fields[0]);
    const auto size = to_int<std::uint64_t>(fields[1]);
    if (!status || !size.has_value()) return std::nullopt;
    return HttpLiteResponseHeader{*status, *size};
}

std::string synth_body(std::uint64_t size) { return std::string(size, 'x'); }

}  // namespace sc
