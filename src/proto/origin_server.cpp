#include "proto/origin_server.hpp"

#include "proto/http_lite.hpp"

namespace sc {

OriginServer::OriginServer(Config config)
    : config_(config), listener_(config.port), endpoint_(listener_.local_endpoint()) {
    accept_thread_ = std::thread([this] { accept_loop(); });
}

OriginServer::~OriginServer() { stop(); }

void OriginServer::stop() {
    if (stopping_.exchange(true)) return;
    if (accept_thread_.joinable()) accept_thread_.join();
    std::vector<std::thread> workers;
    {
        const MutexLock lock(workers_mu_);
        workers = std::move(workers_);
    }
    for (auto& w : workers)
        if (w.joinable()) w.join();
}

void OriginServer::accept_loop() {
    while (!stopping_.load()) {
        auto conn = listener_.accept(/*timeout_ms=*/50);
        if (!conn) continue;
        const MutexLock lock(workers_mu_);
        workers_.emplace_back(
            [this, c = std::make_shared<TcpConnection>(std::move(*conn))]() mutable {
                serve(std::move(*c));
            });
    }
}

void OriginServer::serve(TcpConnection conn) {
    accepted_.fetch_add(1);
    std::uint32_t on_this_conn = 0;
    try {
        while (!stopping_.load()) {
            // Poll before reading so shutdown is never blocked by an idle
            // persistent connection.
            if (!conn.wait_readable(100)) continue;
            const auto line = conn.read_line();
            if (!line) break;  // client closed
            const auto req = parse_request(*line);
            if (!req) {
                conn.write_all(format_response_header({HttpLiteStatus::error, 0}));
                break;
            }
            if (config_.reply_delay.count() > 0) std::this_thread::sleep_for(config_.reply_delay);
            // Count before replying: a client that has read the full body
            // must observe the request as served (tests rely on this).
            served_.fetch_add(1);
            if (++on_this_conn > 1) reuses_.fetch_add(1);
            conn.write_all(format_response_header({HttpLiteStatus::ok, req->size}));
            conn.write_all(synth_body(req->size));
            if (config_.max_requests_per_connection != 0 &&
                on_this_conn >= config_.max_requests_per_connection)
                break;  // rotate: the client reconnects (replay does)
        }
    } catch (const std::exception&) {
        // Connection-level failure: drop this client, keep serving others.
    }
}

}  // namespace sc
