// HTTP-lite: the line-framed application protocol the prototype speaks.
// It keeps exactly what the experiments need from HTTP and nothing else.
//
//   request :=  "GET <url> <version> <size>\r\n"      (client -> proxy,
//                proxy -> origin)
//            |  "SGET <url> <version> <size>\r\n"     (proxy -> sibling:
//                serve from cache only; never forward — prevents loops)
//            |  "DGET - 0 0\r\n"                      (proxy -> sibling:
//                fetch your cache digest — the Squid Cache Digest pull)
//   response := "<status> <size>\r\n" followed by <size> body bytes
//   status   := OK | LOCAL_HIT | REMOTE_HIT | MISS | NOT_CACHED | ERROR
//
// The size travels in the request because the benchmark's origin servers
// reply with exactly the number of bytes the trace recorded (Section VII:
// "each request's URL carries the size of the request in the trace file,
// and the server replies with the specified number of bytes").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace sc {

enum class HttpLiteStatus : std::uint8_t {
    ok,          ///< origin reply
    local_hit,   ///< proxy served from its own cache
    remote_hit,  ///< proxy served via a sibling
    miss,        ///< proxy fetched from origin
    not_cached,  ///< sibling didn't have it (SGET only); empty body
    error,
};

[[nodiscard]] const char* http_lite_status_name(HttpLiteStatus s);
[[nodiscard]] std::optional<HttpLiteStatus> parse_http_lite_status(std::string_view s);

struct HttpLiteRequest {
    bool sibling_only = false;  ///< SGET
    bool digest = false;        ///< DGET (url/version/size ignored)
    std::string url;
    std::uint64_t version = 0;
    std::uint64_t size = 0;
};

struct HttpLiteResponseHeader {
    HttpLiteStatus status = HttpLiteStatus::error;
    std::uint64_t size = 0;
};

[[nodiscard]] std::string format_request(const HttpLiteRequest& r);
[[nodiscard]] std::optional<HttpLiteRequest> parse_request(std::string_view line);

[[nodiscard]] std::string format_response_header(const HttpLiteResponseHeader& h);
[[nodiscard]] std::optional<HttpLiteResponseHeader> parse_response_header(std::string_view line);

/// Deterministic synthetic body of the given size ('x' fill). Capped
/// generation helper for servers.
[[nodiscard]] std::string synth_body(std::uint64_t size);

}  // namespace sc
