// "Squidlet" — the prototype proxy of Section VI-B, scaled to its essence:
// an HTTP-lite front end, an LRU document cache, ICPv2 over UDP toward
// siblings, and a SummaryCacheNode driving SC-ICP directory updates.
//
// Four sharing modes: the paper's three experimental columns plus the
// Squid variant it cites:
//   * none        — no cooperation (the no-ICP baseline),
//   * icp         — multicast an ICP query to every sibling on every miss,
//   * summary     — probe replicated summaries first, query only promising
//                   siblings (the SC-ICP protocol, pushed delta updates),
//   * digest_pull — the Squid Cache Digest variant: periodically fetch
//                   each sibling's full digest over TCP instead.
//
// Threading model (docs/PROTOCOL.md "Threading model"): one event-loop
// thread owns the listener, the UDP socket, and every idle client
// connection, multiplexed through an sc::net::EventBackend (epoll by
// default on Linux, poll(2) otherwise; `event_backend`/SC_EVENT_BACKEND
// selects). The loop registers each fd once and waits with a deadline
// computed from the next pending timer (keepalive pacing, resync repair,
// idle-session sweep) — there is no fixed tick; cross-thread nudges
// arrive via the wake pipe. It only accepts, handles readiness, and
// reads *available* bytes into per-connection buffers — it never blocks
// on a partial line and never runs a fetch. Connections are HTTP/1.1
// persistent: an incremental per-session parser (HttpSessionParser)
// turns buffered lines into requests — pipelined lite lines or real
// HTTP/1.x with Connection negotiation — which are dispatched to an
// N-thread worker pool (`MiniProxyConfig::workers`) that runs the full
// local-hit / summary-probe / sibling-query / origin-fetch pipeline; a
// connection is owned by exactly one worker while its request is in
// flight (and deregistered from the backend), so responses on one
// connection stay ordered. ICP replies are routed to the waiting worker
// by request number through a ReplyDemux; all other datagrams (queries,
// updates, liveness) are serviced inline by the event loop, so two
// proxies can never deadlock on each other's control traffic even at
// workers=1. Responses are written non-blocking: bytes a slow reader
// cannot take yet are buffered per connection and drained by the event
// loop on POLLOUT (capped by write_buffer_limit). Idle sessions past
// `idle_timeout` are closed quietly; `max_requests_per_connection`
// rotates long-lived connections.
//
// The decision pipeline itself — probe order, sequential SC-ICP query
// rounds, admission, update batching — lives in core::ProtocolEngine,
// the same object the trace simulators drive.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cache/lru_cache.hpp"
#include "core/peer_directory.hpp"
#include "core/protocol_engine.hpp"
#include "core/summary_cache_node.hpp"
#include "icp/reply_demux.hpp"
#include "icp/udp_socket.hpp"
#include "net/event_backend.hpp"
#include "obs/metrics.hpp"
#include "proto/http_lite.hpp"
#include "proto/http_session.hpp"
#include "proto/tcp.hpp"
#include "store/tiered_store.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

enum class ShareMode {
    none,         ///< no cooperation
    icp,          ///< multicast query on every miss
    summary,      ///< SC-ICP: pushed delta updates, probe before querying
    digest_pull,  ///< Squid Cache Digest variant: periodically FETCH each
                  ///< sibling's full digest over TCP; no pushed updates
};

[[nodiscard]] const char* share_mode_name(ShareMode m);

/// A client that streams more than this many bytes without completing a
/// request line is dropped (slow-loris / garbage-stream protection).
inline constexpr std::size_t kMaxRequestLineBytes = 64 * 1024;

struct MiniProxyConfig {
    NodeId id = 0;
    std::uint16_t http_port = 0;  ///< 0 = ephemeral
    std::uint16_t icp_port = 0;
    /// Local address to bind (host byte order); default loopback, 0 = any
    /// interface — the wide-area deployment case.
    std::uint32_t bind_host = 0x7f000001u;
    Endpoint origin;
    std::uint64_t cache_bytes = 8ull * 1024 * 1024;
    std::uint64_t max_object_bytes = kDefaultMaxObjectBytes;
    ShareMode mode = ShareMode::none;
    double update_threshold = 0.01;
    BloomSummaryConfig bloom;
    std::chrono::milliseconds query_timeout{100};   ///< ICP reply wait
    std::chrono::milliseconds fetch_timeout{2000};  ///< sibling SGET wait

    /// Request-pipeline worker threads. 1 reproduces the serial behavior
    /// (requests complete in arrival order); more lets slow sibling or
    /// origin fetches overlap instead of head-of-line blocking everyone.
    int workers = 1;

    /// LruCache shards (power of two). 0 = auto: min(workers, 8), rounded
    /// down to a power of two. 1 reproduces the single-list LRU exactly
    /// (global eviction order); more shards trade global LRU order for
    /// per-shard locks that scale with the worker pool.
    std::size_t cache_shards = 0;

    /// Liveness (Section VI-B): SECHO probes every interval; a sibling
    /// that stays silent for liveness_strikes intervals is declared dead
    /// (its summary replica is dropped); the first datagram heard from it
    /// again triggers recovery — we push it a fresh full summary.
    std::chrono::milliseconds keepalive_interval{500};
    int liveness_strikes = 3;

    /// Serve ICP_OP_HIT_OBJ (object inline in the reply) for cached
    /// documents up to this size; 0 disables the optimization.
    std::uint64_t hit_obj_max_bytes = 0;

    /// digest_pull mode: how often to re-fetch each sibling's digest.
    std::chrono::milliseconds digest_refresh{1000};

    /// Summary-mode resilience: minimum spacing between DIRREQ resync
    /// requests sent to one peer, and between full-bitmap answers served
    /// to one peer (a lost answer is re-requested at this cadence; the cap
    /// keeps a flapping peer from turning resync into a bitmap flood).
    std::chrono::milliseconds resync_interval{250};

    /// Learn unknown peers at runtime (summary mode): a SECHO or DIRREQ
    /// from an address we don't know — carrying the peer's HTTP port in
    /// the header options — adds it as a sibling, pushes it our full
    /// bitmap, and DIRREQs its summary. Joiners only need to know us.
    bool dynamic_membership = true;

    /// Send-side UDP fault injection (deterministic loss/duplicate/reorder
    /// for the mesh convergence tests). When unset here, the SC_UDP_FAULT_*
    /// environment variables apply, so CI can sweep loss rates without new
    /// binaries.
    UdpFaultConfig udp_faults;

    /// Per-connection cap on response bytes buffered for a reader that is
    /// slower than we produce (drained on POLLOUT by the event loop). A
    /// connection whose buffer exceeds this is dropped — a reader that
    /// never drains cannot pin unbounded memory.
    std::uint64_t write_buffer_limit = 8ull * 1024 * 1024;

    /// Squid-style access log: one line per client request
    /// ("<epoch-ms> <proxy-id> <status> <size> <latency-us> <url>").
    /// Empty disables logging.
    std::string access_log_path;

    /// Log-structured disk tier (docs/STORAGE.md). Empty disables it —
    /// the cache is the historical RAM-only LruCache. Non-empty names the
    /// segment directory: the proxy recovers any existing log on boot,
    /// re-derives its counting Bloom filter from the recovered directory,
    /// and layers the RAM LRU (cache_bytes) as L1 over the disk tier.
    std::string disk_dir;

    /// Disk-tier capacity in bytes (sum of cached document sizes). 0 with
    /// a disk_dir set defaults to 8x cache_bytes.
    std::uint64_t disk_capacity_bytes = 0;

    /// Event-loop readiness backend. Unset resolves SC_EVENT_BACKEND from
    /// the environment, then the platform default (epoll on Linux).
    std::optional<net::EventBackendKind> event_backend;

    /// Close a keep-alive session with no traffic for this long (quiet
    /// close: no response, no log line). 0 disables the sweep — an idle
    /// session then lives until the peer closes.
    std::chrono::milliseconds idle_timeout{60'000};

    /// Rotate a connection after serving this many requests (the response
    /// to the last one carries `Connection: close` / is followed by EOF).
    /// 0 = unlimited. Bounds per-connection state growth behind broken
    /// clients that never close.
    std::uint32_t max_requests_per_connection = 0;
};

struct MiniProxyStats {
    std::uint64_t requests = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t origin_fetches = 0;
    std::uint64_t false_hit_queries = 0;  ///< sibling replied MISS after summary said hit
    std::uint64_t icp_queries_sent = 0;
    std::uint64_t icp_queries_received = 0;
    std::uint64_t icp_replies_sent = 0;
    std::uint64_t icp_replies_received = 0;
    std::uint64_t icp_stale_replies = 0;  ///< replies for unknown/expired query rounds
    std::uint64_t updates_sent = 0;      ///< update datagrams sent (all siblings)
    std::uint64_t updates_received = 0;
    std::uint64_t sibling_fetches = 0;
    std::uint64_t udp_bytes_sent = 0;
    std::uint64_t udp_bytes_received = 0;
    std::uint64_t keepalives_sent = 0;
    std::uint64_t keepalives_received = 0;
    std::uint64_t sibling_death_events = 0;
    std::uint64_t sibling_recovery_events = 0;
    std::uint64_t hit_obj_served = 0;  ///< HIT_OBJ replies sent
    std::uint64_t hit_obj_used = 0;    ///< remote hits satisfied inline
    std::uint64_t digests_fetched = 0; ///< digest_pull: digests pulled
    std::uint64_t digests_served = 0;  ///< DGET requests answered
    std::uint64_t digests_oversized = 0;   ///< DGET responses rejected by the size cap
    std::uint64_t resync_requests_sent = 0;      ///< DIRREQs we sent
    std::uint64_t resync_requests_received = 0;  ///< DIRREQs peers sent us
    /// Full-bitmap datagrams sent for bootstrap / resync / recovery
    /// (unicast repair traffic — deliberately NOT counted in updates_sent,
    /// which tallies the broadcast update stream the simulators model).
    std::uint64_t resync_fulls_sent = 0;
    std::uint64_t siblings_joined = 0;  ///< peers learned at runtime
    std::uint64_t introductions_sent = 0;      ///< membership-exchange DIRREQs sent
    std::uint64_t introductions_received = 0;  ///< third-party introductions heard
    std::uint64_t seq_heartbeats_sent = 0;     ///< empty-delta sequence advertisements
    std::uint64_t keepalive_reuses = 0;  ///< requests beyond the first on a connection
    std::uint64_t idle_closes = 0;       ///< sessions reaped by the idle sweep
    std::uint64_t loop_wakeups = 0;      ///< event-loop wait() returns (busy-wake probe)
};

/// Largest DGET digest body we will read from a sibling: the wire-capped
/// bitmap (kMaxWireTableBits bits) plus chunk framing, rounded up. A
/// misbehaving peer advertising a bigger body is rejected and counted
/// (digests_oversized) instead of triggering an unbounded allocation.
inline constexpr std::uint64_t kMaxDigestBytes = 9ull * 1024 * 1024;

class MiniProxy {
public:
    explicit MiniProxy(MiniProxyConfig config);
    ~MiniProxy();

    MiniProxy(const MiniProxy&) = delete;
    MiniProxy& operator=(const MiniProxy&) = delete;

    [[nodiscard]] Endpoint http_endpoint() const { return http_endpoint_; }
    [[nodiscard]] Endpoint icp_endpoint() const { return icp_endpoint_; }
    [[nodiscard]] NodeId id() const { return config_.id; }
    /// Resolved readiness backend (config → SC_EVENT_BACKEND → default).
    [[nodiscard]] net::EventBackendKind event_backend_kind() const { return backend_kind_; }

    /// Register a sibling. Safe before OR after start(): a runtime join
    /// publishes a new sibling-table snapshot (RCU), and in summary mode
    /// the event loop bootstraps the newcomer (full bitmap push + DIRREQ)
    /// on its next tick. Re-adding a known id updates its endpoints.
    void add_sibling(NodeId id, Endpoint icp, Endpoint http);

    /// Launch the event loop and worker pool. Idempotent.
    void start();

    /// Stop and join. Idempotent; the destructor calls it.
    void stop();

    /// Send a full-bitmap summary to every sibling immediately (bootstrap
    /// or recovery, Section VI-B). Only meaningful in summary mode.
    void broadcast_full_summary();

    [[nodiscard]] MiniProxyStats stats() const SC_EXCLUDES(stats_mu_);
    [[nodiscard]] std::size_t cached_documents() const;
    [[nodiscard]] std::uint64_t cached_bytes() const;
    /// Directory entries replayed from the disk log at construction
    /// (0 when the disk tier is disabled or the directory was fresh).
    [[nodiscard]] std::size_t recovered_documents() const;
    [[nodiscard]] bool has_disk_tier() const { return cache_.has_disk_tier(); }

    /// Diagnostic probe: does our replica of sibling `id` predict `url`?
    /// Lock-free (RCU replica snapshot) — safe from any thread; used by
    /// convergence tests to watch summaries heal without issuing requests.
    [[nodiscard]] bool sibling_replica_predicts(NodeId id, std::string_view url) const {
        return node_.sibling_may_contain(id, url);
    }
    /// Sibling replicas currently synced (bootstrapped, not quarantined).
    [[nodiscard]] std::size_t synced_replicas() const { return node_.known_siblings(); }

private:
    /// Sibling bookkeeping. `alive` is written by the event loop
    /// (liveness) and read by workers picking query targets, hence
    /// atomic; `last_heard` and the resync rate-limit clocks are
    /// event-loop-only; the endpoints and id are immutable for the
    /// lifetime of the entry (membership changes publish a new table
    /// snapshot holding a fresh entry, never mutate these in place).
    struct Sibling {
        NodeId id;
        Endpoint icp;
        Endpoint http;
        std::atomic<bool> alive{true};
        std::chrono::steady_clock::time_point last_heard;
        /// Earliest time we may send this peer another DIRREQ
        /// (event-loop-only; see MiniProxyConfig::resync_interval).
        std::chrono::steady_clock::time_point next_resync_request{};
        /// Earliest time we may answer another of its DIRREQs with a
        /// full bitmap (event-loop-only).
        std::chrono::steady_clock::time_point next_resync_reply{};

        Sibling(NodeId id_, Endpoint icp_, Endpoint http_)
            : id(id_), icp(icp_), http(http_),
              last_heard(std::chrono::steady_clock::now()) {}
    };

    /// Immutable sibling-table snapshot, published RCU-style: readers
    /// (workers picking targets, the digest fetcher, the event loop)
    /// grab the shared_ptr atomically and iterate without a lock;
    /// membership changes copy the vector under membership_mu_ and
    /// swap the pointer. Entries are shared_ptr so per-entry atomics
    /// (`alive`) and event-loop-only fields survive republication.
    using SiblingTable = std::vector<std::shared_ptr<Sibling>>;

    /// One accepted client connection. Owned by the event loop while
    /// idle; handed to exactly one worker (busy == true) per dispatched
    /// request, during which the loop neither watches nor touches conn
    /// (the fd is deregistered from the event backend).
    ///
    /// Responses go through send_to_client: whatever the socket refuses
    /// without blocking lands in `outbox`, which the event loop drains on
    /// POLLOUT once the worker releases the session — a slow reader can
    /// no longer stall a worker mid-response. The next buffered request
    /// is not dispatched until the outbox is empty (backpressure).
    struct Session {
        TcpConnection conn;
        HttpSessionParser parser;  ///< line → request state machine
        bool busy = false;     ///< a worker owns the connection right now
        bool saw_eof = false;  ///< peer closed; drain buffered requests, then close
        std::string outbox;    ///< response bytes awaiting POLLOUT
        bool close_after_flush = false;  ///< finished; close once outbox drains
        bool overflow = false;  ///< outbox blew write_buffer_limit: drop
        bool registered = false;       ///< fd currently in the event backend
        bool registered_read = false;  ///< read interest at registration
        bool registered_write = false; ///< write interest at registration
        std::uint64_t requests_dispatched = 0;  ///< max-requests rotation
        std::chrono::steady_clock::time_point last_activity;  ///< idle sweep

        explicit Session(TcpConnection c)
            : conn(std::move(c)), last_activity(std::chrono::steady_clock::now()) {}
    };

    /// Per-worker state: each worker keeps its own persistent origin
    /// connection so fetches never contend on a shared socket.
    struct WorkerCtx {
        std::optional<TcpConnection> origin_conn;
    };

    void run();
    void worker_loop();
    /// Feed buffered lines through the session parser and dispatch the
    /// next completed request of an idle session, or decide the session
    /// is finished. Returns false when the caller should erase (close)
    /// the session.
    [[nodiscard]] bool pump_session(std::uint64_t id, Session& s);
    /// Sync the session's event-backend registration with its state:
    /// busy sessions are deregistered, idle ones watch read (+write while
    /// the outbox is non-empty).
    void update_session_interest(std::uint64_t id, Session& s);
    /// Close idle keep-alive sessions past config.idle_timeout.
    void sweep_idle_sessions(std::chrono::steady_clock::time_point now);
    void wake_loop();

    /// Serve one parsed request. Returns false when the connection should
    /// be closed after the reply.
    [[nodiscard]] bool handle_client_request(Session& s, const SessionRequest& r,
                                             WorkerCtx& ctx);
    /// Write the response in the framing the request used (lite header or
    /// HTTP/1.1 with Connection negotiation), through the outbox.
    void send_response(Session& s, const SessionRequest& r, HttpLiteStatus status,
                       std::string_view body);
    /// Write a response chunk: as much as the socket takes without
    /// blocking, the rest into the session outbox. Worker-only (the
    /// worker owns the session while busy).
    void send_to_client(Session& s, std::string_view data);
    void send_to_client(Session& s, std::span<const std::uint8_t> data);
    /// Event-loop side of the pair: drain the outbox on POLLOUT.
    void flush_outbox(Session& s);
    /// Close a session now, or once its outbox drains.
    void finish_session(std::uint64_t id);
    void drop_session(std::uint64_t id);
    /// GET /__metrics (Prometheus text) and /__trace (JSON event dump);
    /// answers both curl-style HTTP/1.x and bare HTTP-lite request lines,
    /// non-blocking through the outbox like every other response.
    void serve_admin(Session& s, const SessionRequest& r);
    void handle_datagram(const Datagram& dgram);
    void handle_datagram_body(const Datagram& dgram, const IcpHeader& header);
    void answer_query(const Datagram& dgram);

    struct QueryOutcome {
        std::vector<NodeId> hits;     ///< siblings that replied HIT
        bool inline_object = false;   ///< a fresh HIT_OBJ carried the body
    };

    /// Query the targets and collect replies within the timeout. Runs on
    /// a worker; replies arrive via the demux (the event loop receives).
    [[nodiscard]] QueryOutcome query_siblings(const HttpLiteRequest& req,
                                              const std::vector<NodeId>& targets);

    void send_keepalives_and_check_liveness();
    void note_heard_from(NodeId sender);
    void digest_fetch_loop();
    void refresh_digests_once();

    // --- summary-mesh resilience (event-loop-only unless noted) --------
    /// Current sibling-table snapshot (any thread).
    [[nodiscard]] std::shared_ptr<const SiblingTable> sibling_snapshot() const {
        return siblings_.load(std::memory_order_acquire);
    }
    /// Entry for `id` in the current snapshot, or nullptr.
    [[nodiscard]] std::shared_ptr<Sibling> find_sibling(NodeId id) const;
    /// Send this peer a DIRREQ asking for its full bitmap, rate-limited
    /// by resync_interval. Event loop only.
    void request_resync(Sibling& sib);
    /// Answer a peer's DIRREQ: rate-limit, then hand the full-bitmap
    /// push to a worker. Event loop only.
    void serve_resync(Sibling& sib);
    /// Dynamic membership: a SECHO or DIRREQ from an unknown peer
    /// (header carries its HTTP port) joins it to the mesh, and a DIRREQ
    /// introduction joins the third party it vouches for. On every new
    /// learn, introductions are exchanged — the mesh hears about the
    /// newcomer, the newcomer hears about the mesh — so membership
    /// propagates transitively from one point of contact. Event loop
    /// only; no-op unless config allows it.
    void maybe_learn_sibling(NodeId id, Endpoint icp, std::uint16_t http_port);
    /// Encode our full bitmap (chunked) and send it to one peer. Runs on
    /// a worker (takes node_mu_; must never run on the event loop).
    void push_full_summary_to(NodeId id);
    /// Send every live sibling a sequence heartbeat (empty delta carrying
    /// the next delta sequence) so a receiver that lost the tail of the
    /// stream detects the gap and resyncs. Worker-only (takes node_mu_);
    /// enqueued from the keepalive tick in summary mode.
    void broadcast_seq_heartbeat();
    /// Queue a closure for the worker pool (drained before request jobs).
    void enqueue_task(std::function<void()> task);

    [[nodiscard]] std::optional<std::string> fetch_from_sibling(NodeId id,
                                                                const HttpLiteRequest& req);
    [[nodiscard]] std::string fetch_from_origin(const HttpLiteRequest& req, WorkerCtx& ctx);
    void insert_document(const HttpLiteRequest& req);
    void broadcast_updates();
    void send_udp(const Endpoint& to, std::span<const std::uint8_t> payload);
    void log_access(HttpLiteStatus status, const HttpLiteRequest& req,
                    std::chrono::steady_clock::time_point started);
    /// Single exit point for a client GET: observes latency, bumps the
    /// hit/miss counters, and writes the access-log line — all from the
    /// same status, so the log and /__metrics always agree.
    void finish_request(HttpLiteStatus status, const HttpLiteRequest& req,
                        std::chrono::steady_clock::time_point started);

    MiniProxyConfig config_;
    TcpListener listener_;
    UdpSocket udp_;
    Endpoint http_endpoint_;
    Endpoint icp_endpoint_;
    /// Internally thread-safe two-tier store: sharded RAM LRU, optionally
    /// over the log-structured disk directory (config.disk_dir). All disk
    /// appends happen under the store's own locks on whichever WORKER
    /// thread mutates the cache; the event loop only uses the RAM-index
    /// read path (contains / entry_copy), never a disk-touching call.
    store::TieredCacheStore cache_;
    /// Guards node_'s LOCAL side (the counting filter and update
    /// encoding): workers, the event loop, and (in digest_pull mode) the
    /// digest fetcher thread all touch that state. Sibling-replica writes
    /// (`apply_sibling_update` / `forget_sibling`) and reads
    /// (`promising_peers` on the request path) are internally synchronized
    /// by the node's RCU snapshots and need no node_mu_. The cache hooks
    /// never take this lock — they only append to the engine's
    /// DeltaBatcher journal (a leaf lock), and sync_node_locked() later
    /// mirrors the journal into node_ under node_mu_, outside the cache
    /// shard mutexes — so node_mu_ and the shard mutexes are unordered
    /// and a flush may freely call back into the cache.
    mutable Mutex node_mu_;
    SummaryCacheNode node_;
    /// core::PeerDirectory over node_: the replica probe is lock-free
    /// (the node publishes immutable snapshots RCU-style), so the request
    /// path consults it without touching node_mu_ at all.
    struct NodeProbe final : core::PeerDirectory {
        explicit NodeProbe(const MiniProxy& p) : proxy(p) {}
        [[nodiscard]] std::vector<std::uint32_t> promising_peers(
            std::string_view url) const override;
        const MiniProxy& proxy;
    };
    NodeProbe node_probe_;
    /// The shared decision pipeline (same object the simulators drive).
    /// Its DeltaBatcher elects one flusher per threshold crossing, so
    /// concurrent workers' inserts coalesce into a single update batch.
    core::ProtocolEngine engine_;
    /// Mirror journaled cache-hook events into node_.
    void sync_node_locked() SC_REQUIRES(node_mu_);
    /// Serializes membership WRITES (add_sibling from any thread vs the
    /// event loop learning a peer); reads go through sibling_snapshot()
    /// and never take it. Leaf lock: nothing is acquired under it.
    mutable Mutex membership_mu_;
    std::atomic<std::shared_ptr<const SiblingTable>> siblings_;
    /// Siblings added at runtime, awaiting their summary-mode bootstrap
    /// (full push + DIRREQ) from the event loop. Guarded by
    /// membership_mu_; drained each loop tick.
    std::vector<NodeId> pending_bootstrap_ SC_GUARDED_BY(membership_mu_);
    ReplyDemux demux_;  ///< routes ICP replies to the querying worker
    /// Seeded per-boot so a restarted proxy's rounds never collide with
    /// replies still in flight toward its predecessor's numbers.
    std::atomic<std::uint32_t> next_query_number_;
    std::chrono::steady_clock::time_point next_keepalive_{};

    // --- event loop <-> worker pool ------------------------------------
    struct Job {
        std::uint64_t session_id;
        Session* session;  ///< stable (sessions_ stores unique_ptr)
        SessionRequest request;
    };
    struct Completion {
        std::uint64_t session_id;
        bool keep;
    };
    Mutex jobs_mu_;
    CondVar jobs_cv_;
    std::deque<Job> job_queue_ SC_GUARDED_BY(jobs_mu_);
    /// Control-plane closures (full-summary pushes for resync/recovery).
    /// Workers drain these before request jobs so repair traffic is not
    /// head-of-line blocked behind slow fetches.
    std::deque<std::function<void()>> task_queue_ SC_GUARDED_BY(jobs_mu_);
    std::vector<Completion> completions_ SC_GUARDED_BY(jobs_mu_);
    int wake_pipe_[2] = {-1, -1};  ///< workers wake the poll loop

    /// All sessions, keyed by a monotonically assigned id. Touched only
    /// by the event loop thread (workers reach a session exclusively
    /// through the Job's stable pointer while it is busy). The id doubles
    /// as the event-backend tag (offset by kSessionTagBase), so a stale
    /// readiness event can never be misattributed to a reused fd.
    std::unordered_map<std::uint64_t, std::unique_ptr<Session>> sessions_;
    std::uint64_t next_session_id_ = 1;

    /// Readiness backend; created by run() and destroyed when it exits,
    /// so it never outlives the loop thread (event-loop-only).
    std::unique_ptr<net::EventBackend> backend_;
    net::EventBackendKind backend_kind_;
    std::chrono::steady_clock::time_point next_idle_sweep_{};
    std::atomic<std::uint64_t> loop_wakeups_{0};

    std::thread loop_;
    std::vector<std::thread> workers_;
    std::thread digest_thread_;  ///< digest_pull mode only
    std::atomic<bool> stopping_{false};
    std::atomic<bool> started_{false};

    mutable Mutex stats_mu_;
    MiniProxyStats stats_ SC_GUARDED_BY(stats_mu_);
    Mutex access_log_mu_;  ///< workers share the access log stream
    /// The pointer is set once in the constructor (pre-thread); the
    /// STREAM it points at is what workers share, hence PT_GUARDED_BY.
    std::unique_ptr<std::ofstream> access_log_ SC_PT_GUARDED_BY(access_log_mu_);

    // sc::obs instrumentation, labeled {node, mode}. The hit/miss pair is
    // incremented exactly where the access log line is written, so
    // `GET /__metrics` and the log can never disagree.
    struct Instruments {
        obs::Counter requests;
        obs::Counter cache_hits;
        obs::Counter cache_misses;
        obs::Counter remote_hits;
        obs::Counter origin_fetches;
        obs::Counter false_hit_queries;
        obs::Counter icp_timeouts;
        obs::Histogram request_latency;
        obs::Gauge cached_documents;
        obs::Gauge cached_bytes;
        obs::Gauge worker_queue_depth;   ///< dispatched lines awaiting a worker
        obs::Gauge inflight_requests;    ///< requests currently inside workers
        obs::Gauge write_buffer_bytes;   ///< response bytes awaiting POLLOUT
        obs::Gauge open_sessions;        ///< accepted client connections alive
        obs::Counter keepalive_reuses;   ///< requests beyond a connection's first
    };
    Instruments obs_;
};

}  // namespace sc
