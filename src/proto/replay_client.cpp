#include "proto/replay_client.hpp"

#include <chrono>

#include "proto/http_lite.hpp"
#include "proto/tcp.hpp"
#include "util/sc_assert.hpp"

namespace sc {

ReplayClientStats replay_trace(const std::vector<Request>& trace,
                               const std::vector<Endpoint>& proxy_http_endpoints) {
    SC_ASSERT(!proxy_http_endpoints.empty());
    ReplayClientStats stats;

    std::vector<TcpConnection> conns;
    conns.reserve(proxy_http_endpoints.size());
    for (const Endpoint& ep : proxy_http_endpoints) conns.push_back(TcpConnection::connect(ep));

    for (const Request& r : trace) {
        const std::size_t p = r.client_id % proxy_http_endpoints.size();
        TcpConnection& conn = conns[p];

        HttpLiteRequest req;
        req.url = r.url;
        req.version = r.version;
        req.size = r.size;

        const auto start = std::chrono::steady_clock::now();
        std::optional<HttpLiteResponseHeader> header;
        for (int attempt = 0; attempt < 2; ++attempt) {
            // A closed keep-alive connection mid-replay is routine — the
            // proxy rotates connections at max_requests_per_connection and
            // reaps idle ones — so reconnect and repeat once. A second
            // failure is a down proxy: abort loudly.
            try {
                conn.write_all(format_request(req));
                const auto line = conn.read_line();
                if (!line) throw std::runtime_error("proxy closed connection mid-replay");
                header = parse_response_header(*line);
                if (!header) throw std::runtime_error("malformed proxy response");
                conn.discard_exact(header->size);
                break;
            } catch (const std::exception&) {
                if (attempt == 1) throw;
                conn = TcpConnection::connect(proxy_http_endpoints[p]);
                ++stats.reconnects;
            }
        }
        const auto elapsed = std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - start)
                                 .count();

        ++stats.requests;
        stats.latency_s.add(elapsed);
        switch (header->status) {
            case HttpLiteStatus::local_hit: ++stats.local_hits; break;
            case HttpLiteStatus::remote_hit: ++stats.remote_hits; break;
            case HttpLiteStatus::miss: ++stats.misses; break;
            default: ++stats.errors; break;
        }
    }
    return stats;
}

}  // namespace sc
