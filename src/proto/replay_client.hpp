// Trace-replay client (Section VII, experiments 3 and 4): feeds a request
// stream into a set of running MiniProxy instances over TCP and collects
// client-visible statistics. Requests are issued sequentially in trace
// order over persistent connections — one per proxy — which preserves the
// global timing order (experiment 4's property) or the client binding
// (experiment 3's), depending on how the caller assigned client ids.
#pragma once

#include <cstdint>
#include <vector>

#include "icp/udp_socket.hpp"  // Endpoint
#include "trace/request.hpp"
#include "util/stats.hpp"

namespace sc {

struct ReplayClientStats {
    std::uint64_t requests = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t errors = 0;
    /// Keep-alive connections re-established mid-replay: the proxy rotated
    /// the connection (max_requests_per_connection) or reaped it idle; the
    /// client reconnects and repeats the request instead of aborting.
    std::uint64_t reconnects = 0;
    OnlineStats latency_s;  ///< per-request client-visible latency

    [[nodiscard]] double total_hit_ratio() const {
        return requests == 0 ? 0.0
                             : static_cast<double>(local_hits + remote_hits) /
                                   static_cast<double>(requests);
    }
};

/// Replay `trace` against the proxies; request i goes to proxy
/// (client_id mod proxies). Bodies are read and discarded.
[[nodiscard]] ReplayClientStats replay_trace(const std::vector<Request>& trace,
                                             const std::vector<Endpoint>& proxy_http_endpoints);

}  // namespace sc
