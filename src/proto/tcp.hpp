// Minimal RAII TCP layer for the prototype: a loopback listener and a
// blocking connection with line-oriented helpers (the HTTP-lite protocol
// is line-framed). All errors surface as std::system_error; EOF is a
// regular return value, not an error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "icp/udp_socket.hpp"  // Endpoint

namespace sc {

class TcpConnection {
public:
    /// Wrap an accepted or connected fd (takes ownership).
    explicit TcpConnection(int fd);
    ~TcpConnection();

    TcpConnection(TcpConnection&& other) noexcept;
    TcpConnection& operator=(TcpConnection&& other) noexcept;
    TcpConnection(const TcpConnection&) = delete;
    TcpConnection& operator=(const TcpConnection&) = delete;

    /// Connect to a loopback endpoint (blocking).
    [[nodiscard]] static TcpConnection connect(const Endpoint& to);

    /// Read one '\n'-terminated line (strips "\r\n" or "\n").
    /// Returns nullopt on clean EOF before any byte of a new line.
    [[nodiscard]] std::optional<std::string> read_line();

    /// Outcome of one non-blocking read attempt.
    enum class Fill : std::uint8_t {
        data,         ///< at least one byte was appended to the readahead
        would_block,  ///< nothing available right now
        eof,          ///< peer closed (readahead may still hold bytes)
    };

    /// Pull whatever bytes are available into the readahead buffer
    /// without blocking (single MSG_DONTWAIT recv). Lets an event loop
    /// consume POLLIN readiness byte-by-byte and resume line parsing on
    /// the next readiness event instead of blocking for a full line.
    [[nodiscard]] Fill fill_available();

    /// Extract one complete line from the readahead buffer only — never
    /// touches the socket. Returns nullopt when no full line is buffered.
    [[nodiscard]] std::optional<std::string> buffered_line();

    /// Bytes sitting in the readahead buffer (partial or complete lines).
    [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

    /// True when a read would not block: either readahead is buffered or
    /// the socket is readable (data or EOF) within timeout_ms.
    [[nodiscard]] bool wait_readable(int timeout_ms);

    /// Read exactly n bytes into out (resized). Throws on premature EOF.
    void read_exact(std::size_t n, std::string& out);

    /// Discard exactly n bytes.
    void discard_exact(std::size_t n);

    void write_all(std::string_view data);
    void write_all(std::span<const std::uint8_t> data);

    /// Write as many bytes as the socket accepts without blocking (single
    /// MSG_DONTWAIT send). Returns the byte count actually written — 0 when
    /// the send buffer is full. Lets an event loop buffer the remainder and
    /// resume on POLLOUT instead of stalling a worker on a slow reader.
    [[nodiscard]] std::size_t write_some(std::string_view data);

    [[nodiscard]] int fd() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    void close() noexcept;

private:
    [[nodiscard]] bool fill_buffer();  // false on EOF

    int fd_ = -1;
    std::string buf_;   // readahead
    std::size_t pos_ = 0;
};

class TcpListener {
public:
    /// Listen on 127.0.0.1:port (0 = ephemeral).
    explicit TcpListener(std::uint16_t port = 0);

    /// Listen on an arbitrary local endpoint (host 0 = INADDR_ANY).
    explicit TcpListener(const Endpoint& bind_addr);
    ~TcpListener();

    TcpListener(TcpListener&& other) noexcept;
    TcpListener& operator=(TcpListener&& other) noexcept;
    TcpListener(const TcpListener&) = delete;
    TcpListener& operator=(const TcpListener&) = delete;

    [[nodiscard]] Endpoint local_endpoint() const;
    [[nodiscard]] int fd() const { return fd_; }

    /// Wait up to timeout_ms for a connection; nullopt on timeout.
    [[nodiscard]] std::optional<TcpConnection> accept(int timeout_ms);

private:
    void close_fd() noexcept;

    int fd_ = -1;
};

}  // namespace sc
