// Origin-server emulator: plays the benchmark's server processes, which
// "wait before sending the reply to simulate the network latency"
// (Section IV used one second). Replies to any GET with the number of
// bytes the request asked for. Thread-per-connection; fine at prototype
// scale (tens of concurrent proxies on loopback).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "icp/udp_socket.hpp"  // Endpoint
#include "proto/tcp.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

class OriginServer {
public:
    struct Config {
        std::uint16_t port = 0;  ///< 0 = ephemeral
        std::chrono::milliseconds reply_delay{0};
        /// Close a keep-alive connection after serving this many requests
        /// (0 = unlimited). Lets tests exercise the proxies' and replay
        /// client's reconnect paths deterministically.
        std::uint32_t max_requests_per_connection = 0;
    };

    explicit OriginServer(Config config);
    ~OriginServer();

    OriginServer(const OriginServer&) = delete;
    OriginServer& operator=(const OriginServer&) = delete;

    [[nodiscard]] Endpoint endpoint() const { return endpoint_; }
    [[nodiscard]] std::uint64_t requests_served() const { return served_.load(); }
    [[nodiscard]] std::uint64_t connections_accepted() const { return accepted_.load(); }
    /// Requests served on an already-used connection — how much the
    /// clients' keep-alive actually saves (0 means one request per
    /// connection, the pre-keep-alive world).
    [[nodiscard]] std::uint64_t keepalive_reuses() const { return reuses_.load(); }

    void stop();

private:
    void accept_loop();
    void serve(TcpConnection conn);

    Config config_;
    TcpListener listener_;
    Endpoint endpoint_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> accepted_{0};
    std::atomic<std::uint64_t> reuses_{0};
    std::thread accept_thread_;
    std::vector<std::thread> workers_ SC_GUARDED_BY(workers_mu_);
    Mutex workers_mu_;
};

}  // namespace sc
