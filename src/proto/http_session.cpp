#include "proto/http_session.hpp"

#include <algorithm>
#include <cctype>
#include <limits>

#include "util/byte_reader.hpp"

SC_UNTRUSTED_DECODE_TU;

namespace sc {
namespace {

bool iequals(std::string_view a, std::string_view b) {
    return a.size() == b.size() &&
           std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
               return std::tolower(static_cast<unsigned char>(x)) ==
                      std::tolower(static_cast<unsigned char>(y));
           });
}

std::string_view trim(std::string_view s) {
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
    return s;
}

bool is_admin_target(std::string_view target, bool& trace) {
    // Match the path component only; /__metrics?x=y still serves metrics.
    const auto path = target.substr(0, target.find('?'));
    if (path == "/__metrics") return trace = false, true;
    if (path == "/__trace") return trace = true, true;
    return false;
}

std::uint64_t parse_u64(std::string_view s) {
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9') return v;
        const auto d = static_cast<std::uint64_t>(c - '0');
        // Saturate instead of wrapping: a 40-digit ?size= must not alias a
        // small (cacheable-looking) value.
        if (v > (kMax - d) / 10) return kMax;
        v = v * 10 + d;
    }
    return v;
}

/// A request target travels on into ICP queries, sibling fetches and log
/// lines; reject raw control bytes, embedded whitespace, and anything past
/// the wire-format cap at the front door.
bool target_is_clean(std::string_view target) {
    if (target.size() > kMaxTargetBytes) return false;
    for (const char c : target) {
        const auto u = static_cast<unsigned char>(c);
        if (u <= 0x20 || u == 0x7f) return false;
    }
    return true;
}

/// Map an HTTP request target onto the lite request the pipeline serves:
/// url = path, with the trace parameters the lite line carries inline
/// riding in the query string (?size=N&version=M).
HttpLiteRequest target_to_lite(std::string_view target) {
    HttpLiteRequest req;
    const auto q = target.find('?');
    req.url = std::string(target.substr(0, q));
    if (q != std::string_view::npos) {
        std::string_view query = target.substr(q + 1);
        while (!query.empty()) {
            const auto amp = query.find('&');
            const std::string_view pair = query.substr(0, amp);
            query = amp == std::string_view::npos ? std::string_view{}
                                                  : query.substr(amp + 1);
            const auto eq = pair.find('=');
            if (eq == std::string_view::npos) continue;
            const auto key = pair.substr(0, eq);
            const auto value = pair.substr(eq + 1);
            if (key == "size")
                req.size = parse_u64(value);
            else if (key == "version")
                req.version = parse_u64(value);
        }
    }
    return req;
}

}  // namespace

std::optional<SessionRequest> HttpSessionParser::start_request(std::string_view line) {
    // "<METHOD> <target> HTTP/1.x" opens a real HTTP request; anything else
    // is a complete HTTP-lite line.
    const bool http10 = line.ends_with(" HTTP/1.0");
    const bool http11 = line.ends_with(" HTTP/1.1");
    if (http10 || http11) {
        pending_ = SessionRequest{};
        pending_.http_style = true;
        pending_.keep_alive = http11;  // 1.1 defaults keep-alive, 1.0 close
        connection_close_ = false;
        connection_keep_alive_ = false;
        header_bytes_ = line.size();
        state_ = State::headers;

        std::string_view rest = line.substr(0, line.size() - 9);
        const auto sp = rest.find(' ');
        const auto method = rest.substr(0, sp);
        const auto target = sp == std::string_view::npos
                                ? std::string_view{}
                                : trim(rest.substr(sp + 1));
        if (method != "GET" || target.empty() || target.front() != '/' ||
            !target_is_clean(target)) {
            pending_.parse_error = true;
            pending_.keep_alive = false;
        } else if (is_admin_target(target, pending_.admin_trace)) {
            pending_.admin = true;
        } else {
            pending_.req = target_to_lite(target);
        }
        return std::nullopt;  // request completes at the blank header line
    }

    // A line shaped like an HTTP request but carrying a version we do not
    // speak ("GET / HTTP/2.0") must not fall through to the lite grammar:
    // lite's ERROR reply would leave the connection open with both sides
    // assuming different framings. Answer in HTTP (400) and close.
    const auto last_sp = line.rfind(' ');
    if (last_sp != std::string_view::npos &&
        line.substr(last_sp + 1).starts_with("HTTP/")) {
        SessionRequest bad;
        bad.http_style = true;
        bad.parse_error = true;
        bad.keep_alive = false;
        return bad;
    }

    SessionRequest out;
    // The admin endpoints predate real HTTP support here and answer bare
    // lite lines too; those one-shot clients read to EOF, so keep closing.
    if (line.rfind("GET /__metrics", 0) == 0 || line.rfind("GET /__trace", 0) == 0) {
        out.admin = true;
        out.admin_trace = line.rfind("GET /__trace", 0) == 0;
        out.keep_alive = false;
        return out;
    }
    if (const auto req = parse_request(line)) {
        out.req = *req;
    } else {
        // Lite framing survives a garbage line: the ERROR reply goes out
        // and the connection stays usable (historic behavior, pinned by
        // the proxy tests).
        out.parse_error = true;
    }
    return out;
}

std::optional<SessionRequest> HttpSessionParser::on_line(std::string_view line) {
    if (state_ == State::idle) {
        // Tolerate stray blank lines between pipelined requests (RFC 9112
        // §2.2 asks servers to skip at least one).
        if (line.empty()) return std::nullopt;
        return start_request(line);
    }

    // Header block of an HTTP request.
    header_bytes_ += line.size() + 2;
    if (line.empty()) {
        state_ = State::idle;
        if (connection_close_)
            pending_.keep_alive = false;
        else if (connection_keep_alive_)
            pending_.keep_alive = true;
        if (pending_.parse_error) pending_.keep_alive = false;
        return pending_;
    }
    if (header_bytes_ > kMaxHeaderBytes) {
        // Refuse to buffer an unbounded header stream. Framing is lost, so
        // the connection must close after the 400.
        state_ = State::idle;
        pending_.parse_error = true;
        pending_.keep_alive = false;
        return pending_;
    }
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;  // ignore junk
    if (!iequals(trim(line.substr(0, colon)), "Connection")) return std::nullopt;
    // Comma-separated option list; "close" anywhere wins.
    std::string_view value = line.substr(colon + 1);
    while (!value.empty()) {
        const auto comma = value.find(',');
        const auto token = trim(value.substr(0, comma));
        value = comma == std::string_view::npos ? std::string_view{}
                                                : value.substr(comma + 1);
        if (iequals(token, "close")) connection_close_ = true;
        if (iequals(token, "keep-alive")) connection_keep_alive_ = true;
    }
    return std::nullopt;
}

}  // namespace sc
