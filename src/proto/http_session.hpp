// Incremental per-session request parser for the proxy front end.
//
// The event loop feeds it one framing line at a time (from
// TcpConnection::buffered_line — never a blocking read) and gets back a
// completed SessionRequest or "need more lines". Two grammars share one
// connection, distinguished per request:
//
//   * HTTP-lite (docs in http_lite.hpp): every bare line is a complete
//     request. Persistent and pipelined by construction.
//   * Real HTTP/1.x: "<METHOD> <target> HTTP/1.<0|1>" followed by a header
//     block ending in an empty line. Only what the prototype serves is
//     understood — GET, the admin endpoints, and `Connection:`
//     keep-alive/close negotiation (HTTP/1.1 defaults to keep-alive,
//     HTTP/1.0 to close). Other targets map onto HTTP-lite requests
//     (`?size=N&version=M` carries the trace parameters a real URL lacks).
//
// The parser is pure state — no I/O, no locks — so it lives comfortably
// inside the event-loop-owned Session and is trivially unit-testable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "proto/http_lite.hpp"

namespace sc {

/// Headers longer than this abort the request (slow-loris style header
/// streams must not buffer unboundedly).
inline constexpr std::size_t kMaxHeaderBytes = 16 * 1024;

/// Longest request target accepted on the HTTP grammar; matches the ICP
/// wire's URL cap so an accepted target can always be queried to siblings.
inline constexpr std::size_t kMaxTargetBytes = 8192;

/// One parsed client request, ready for a worker.
struct SessionRequest {
    HttpLiteRequest req;       ///< meaningless when parse_error or admin
    bool http_style = false;   ///< respond with HTTP/1.1 framing
    bool keep_alive = true;    ///< connection survives this response
    bool parse_error = false;  ///< respond ERROR / 400
    bool admin = false;        ///< /__metrics or /__trace
    bool admin_trace = false;  ///< /__trace (admin only)
};

class HttpSessionParser {
public:
    /// Feed one line (terminator already stripped). Returns the completed
    /// request, or nullopt when more lines are needed (HTTP header block).
    [[nodiscard]] std::optional<SessionRequest> on_line(std::string_view line);

    /// True while inside an HTTP header block: EOF here is an aborted
    /// request, not a clean close-between-requests.
    [[nodiscard]] bool mid_request() const { return state_ == State::headers; }

private:
    enum class State { idle, headers };

    [[nodiscard]] std::optional<SessionRequest> start_request(std::string_view line);

    State state_ = State::idle;
    SessionRequest pending_;
    std::size_t header_bytes_ = 0;
    bool connection_close_ = false;
    bool connection_keep_alive_ = false;
};

}  // namespace sc
