#include "proto/tcp.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>
#include <utility>

#include "net/fd_poll.hpp"
#include "obs/metrics.hpp"

namespace sc {
namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

struct TcpMetrics {
    obs::Counter accepts = obs::metrics().counter(
        "sc_tcp_accepts_total", "Connections accepted (clients, SGET/DGET peers)");
    obs::Counter connects = obs::metrics().counter(
        "sc_tcp_connects_total", "Outbound connections established (origin, siblings)");
    obs::Counter bytes_written =
        obs::metrics().counter("sc_tcp_bytes_written_total", "TCP bytes written");
    obs::Counter bytes_read =
        obs::metrics().counter("sc_tcp_bytes_read_total", "TCP bytes read");
};

TcpMetrics& tcp_metrics() {
    static TcpMetrics m;
    return m;
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {}

TcpConnection::~TcpConnection() { close(); }

TcpConnection::TcpConnection(TcpConnection&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buf_(std::move(other.buf_)), pos_(other.pos_) {}

TcpConnection& TcpConnection::operator=(TcpConnection&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
        pos_ = other.pos_;
    }
    return *this;
}

void TcpConnection::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpConnection TcpConnection::connect(const Endpoint& to) {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) throw_errno("socket");
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const sockaddr_in sa = to.to_sockaddr();
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("connect");
    }
    tcp_metrics().connects.inc();
    return TcpConnection(fd);
}

bool TcpConnection::fill_buffer() {
    char chunk[16384];
    for (;;) {
        const ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            tcp_metrics().bytes_read.inc(static_cast<std::uint64_t>(n));
            return true;
        }
        if (n == 0) return false;  // EOF
        if (errno == EINTR) continue;
        throw_errno("read");
    }
}

TcpConnection::Fill TcpConnection::fill_available() {
    char chunk[16384];
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, MSG_DONTWAIT);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            tcp_metrics().bytes_read.inc(static_cast<std::uint64_t>(n));
            return Fill::data;
        }
        if (n == 0) return Fill::eof;
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return Fill::would_block;
        throw_errno("recv");
    }
}

std::optional<std::string> TcpConnection::buffered_line() {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl == std::string::npos) return std::nullopt;
    std::string line = buf_.substr(pos_, nl - pos_);
    pos_ = nl + 1;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
}

std::optional<std::string> TcpConnection::read_line() {
    for (;;) {
        if (auto line = buffered_line()) return line;
        if (!fill_buffer()) {
            if (pos_ < buf_.size())
                throw std::runtime_error("EOF in the middle of a line");
            return std::nullopt;
        }
    }
}

bool TcpConnection::wait_readable(int timeout_ms) {
    if (pos_ < buf_.size()) return true;
    return net::wait_fd_readable(fd_, timeout_ms);
}

void TcpConnection::read_exact(std::size_t n, std::string& out) {
    out.clear();
    out.reserve(n);
    // Drain readahead first.
    const std::size_t have = std::min(n, buf_.size() - pos_);
    out.append(buf_, pos_, have);
    pos_ += have;
    if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
    }
    while (out.size() < n) {
        char chunk[65536];
        const std::size_t want = std::min(sizeof chunk, n - out.size());
        const ssize_t got = ::read(fd_, chunk, want);
        if (got > 0) {
            out.append(chunk, static_cast<std::size_t>(got));
            tcp_metrics().bytes_read.inc(static_cast<std::uint64_t>(got));
            continue;
        }
        if (got == 0) throw std::runtime_error("EOF during body read");
        if (errno == EINTR) continue;
        throw_errno("read");
    }
}

void TcpConnection::discard_exact(std::size_t n) {
    std::string sink;
    read_exact(n, sink);
}

void TcpConnection::write_all(std::string_view data) {
    write_all(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

void TcpConnection::write_all(std::span<const std::uint8_t> data) {
    tcp_metrics().bytes_written.inc(data.size());
    std::size_t off = 0;
    while (off < data.size()) {
        // MSG_NOSIGNAL: a peer that closed early (e.g. curl aborting an
        // admin-endpoint read) must surface as EPIPE, not kill the process.
        const ssize_t n =
            ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        throw_errno("write");
    }
}

std::size_t TcpConnection::write_some(std::string_view data) {
    if (data.empty()) return 0;
    while (true) {
        const ssize_t n =
            ::send(fd_, data.data(), data.size(), MSG_DONTWAIT | MSG_NOSIGNAL);
        if (n >= 0) {
            tcp_metrics().bytes_written.inc(static_cast<std::uint64_t>(n));
            return static_cast<std::size_t>(n);
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
        throw_errno("write");
    }
}

TcpListener::TcpListener(std::uint16_t port) : TcpListener(Endpoint::loopback(port)) {}

TcpListener::TcpListener(const Endpoint& bind_addr) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket");
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in sa = bind_addr.to_sockaddr();
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
        close_fd();
        throw_errno("bind");
    }
    // Ask for the largest backlog the kernel allows (it clamps to
    // net.core.somaxconn). A small hard-coded backlog drops SYNs during
    // connect bursts — the client then sits in a ~1s retransmit stall even
    // though the accept loop is keeping up, which caps connection setup
    // throughput at backlog-per-second for serial clients.
    if (::listen(fd_, SOMAXCONN) < 0) {
        close_fd();
        throw_errno("listen");
    }
}

TcpListener::~TcpListener() { close_fd(); }

TcpListener::TcpListener(TcpListener&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
    if (this != &other) {
        close_fd();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void TcpListener::close_fd() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Endpoint TcpListener::local_endpoint() const {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0)
        throw_errno("getsockname");
    return Endpoint::from_sockaddr(sa);
}

std::optional<TcpConnection> TcpListener::accept(int timeout_ms) {
    if (!net::wait_fd_readable(fd_, timeout_ms)) return std::nullopt;
    const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED)
            return std::nullopt;
        throw_errno("accept");
    }
    const int one = 1;
    (void)::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    tcp_metrics().accepts.inc();
    return TcpConnection(conn);
}

}  // namespace sc
