// Bit-flip records for incremental summary updates (paper Section VI-A).
//
// Each record is one 32-bit integer: the most significant bit carries the
// *new value* of the bit and the low 31 bits carry its index. Encoding the
// absolute value (rather than "flip") makes updates idempotent, so they can
// be carried over an unreliable transport: losing an earlier message cannot
// invert the meaning of a later one. This caps the table size at 2^31 bits,
// which the paper notes is "for the time being large enough".
#pragma once

#include <cstdint>
#include <vector>

#include "util/sc_assert.hpp"

namespace sc {

struct BitFlip {
    std::uint32_t index = 0;
    bool value = false;

    friend bool operator==(const BitFlip&, const BitFlip&) = default;
};

inline constexpr std::uint32_t kBitFlipIndexMask = 0x7fffffffu;
inline constexpr std::uint32_t kBitFlipValueBit = 0x80000000u;

[[nodiscard]] constexpr std::uint32_t encode_bit_flip(BitFlip f) {
    SC_ASSERT(f.index <= kBitFlipIndexMask);
    return (f.value ? kBitFlipValueBit : 0u) | f.index;
}

[[nodiscard]] constexpr BitFlip decode_bit_flip(std::uint32_t raw) {
    return BitFlip{raw & kBitFlipIndexMask, (raw & kBitFlipValueBit) != 0};
}

/// Accumulates the flips since the last summary broadcast. Appending the
/// opposite value for an index supersedes the earlier record lazily: we
/// keep both and let compact() collapse them, since in the common case a
/// bit rarely toggles twice between updates.
class DeltaLog {
public:
    void record(BitFlip f) { flips_.push_back(f); }

    [[nodiscard]] const std::vector<BitFlip>& flips() const { return flips_; }
    [[nodiscard]] std::size_t size() const { return flips_.size(); }
    [[nodiscard]] bool empty() const { return flips_.empty(); }

    /// Drop superseded records, keeping only the last value per index
    /// (in first-touch order). Returns the number of records removed.
    std::size_t compact();

    void clear() { flips_.clear(); }

    /// Wire encoding: one 32-bit word per record.
    [[nodiscard]] std::vector<std::uint32_t> encode() const;

private:
    std::vector<BitFlip> flips_;
};

}  // namespace sc
