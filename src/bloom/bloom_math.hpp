// Analytic formulas from Section V-C of the paper: false-positive
// probability of a Bloom filter, the optimal number of hash functions, and
// the counter-overflow bounds that justify 4-bit counters.
#pragma once

#include <cstdint>

namespace sc {

/// Exact probability that a membership probe of a non-member returns true
/// after n keys were inserted into m bits with k hash functions:
///     (1 - (1 - 1/m)^(k n))^k
[[nodiscard]] double bloom_fp_exact(double m, double n, unsigned k);

/// The standard approximation (1 - e^{-k n / m})^k.
[[nodiscard]] double bloom_fp_approx(double m, double n, unsigned k);

/// Real-valued k that minimizes the false-positive rate: ln(2) * m / n.
[[nodiscard]] double bloom_optimal_k_real(double m, double n);

/// Integral k (>= 1) minimizing the exact false-positive probability.
[[nodiscard]] unsigned bloom_optimal_k(double m, double n);

/// Minimum achievable FP rate at load factor m/n (using the optimal
/// integral k): useful for sizing tables given an FP budget.
[[nodiscard]] double bloom_min_fp(double bits_per_entry);

/// Upper bound on Pr[some counter >= j] after inserting n keys with k hash
/// functions into m counters (paper Section V-C, from Knuth):
///     m * (e n k / (j m))^j
[[nodiscard]] double counter_overflow_bound(double m, double n, unsigned k, unsigned j);

/// Expected number of distinct bits set after n insertions with k functions
/// into m bits: m * (1 - (1 - 1/m)^(k n)).
[[nodiscard]] double bloom_expected_set_bits(double m, double n, unsigned k);

/// Bits required per entry so that the FP rate with k functions is <= p.
/// Returns +inf if k functions can never reach p.
[[nodiscard]] double bloom_bits_per_entry_for_fp(double p, unsigned k);

}  // namespace sc
