// Hash-function family of the SC-ICP protocol (paper Section VI-A).
//
// A summary's hash functions are fully described by three integers that
// travel in every ICP_OP_DIRUPDATE header, so any receiver can verify and
// probe the filter:
//   * function_num  — number of hash functions k,
//   * function_bits — bits taken from the MD5 stream per function,
//   * table_bits    — size m of the bit array (indices are mod m).
//
// Function i takes bits [i*function_bits, (i+1)*function_bits) out of
// MD5(URL); when 128 bits are exhausted, further bits come from
// MD5(URL + URL), then MD5(URL + URL + URL), and so on.
#pragma once

#include <cstdint>
#include <vector>

#include "util/md5.hpp"

namespace sc {

struct HashSpec {
    std::uint16_t function_num = 4;    ///< k — number of hash functions
    std::uint16_t function_bits = 32;  ///< bits consumed per function
    std::uint32_t table_bits = 0;      ///< m — bit-array size

    friend bool operator==(const HashSpec&, const HashSpec&) = default;

    /// True when the parameters are usable (k >= 1, 1 <= bits <= 64, m >= 1,
    /// and m fits in function_bits so indices can cover the whole table).
    [[nodiscard]] bool valid() const;
};

/// Incremental extractor of fixed-width bit groups from the MD5 stream
/// MD5(key), MD5(key+key), ... — the paper's recipe for generating an
/// unbounded number of hash functions from one signature.
class Md5BitStream {
public:
    explicit Md5BitStream(std::string_view key);

    /// Next `bits` bits (1..64) as the low bits of the result.
    std::uint64_t take(unsigned bits);

private:
    void refill();

    std::string key_;
    Md5Digest digest_{};
    unsigned bit_pos_ = 128;  // forces a refill on first take
    unsigned round_ = 0;      // how many key copies have been hashed
};

/// All k bit-array indices for `key` under `spec`.
[[nodiscard]] std::vector<std::uint32_t> bloom_indexes(std::string_view key,
                                                       const HashSpec& spec);

}  // namespace sc
