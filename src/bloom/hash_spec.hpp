// Hash-function family of the SC-ICP protocol (paper Section VI-A).
//
// A summary's hash functions are fully described by three integers that
// travel in every ICP_OP_DIRUPDATE header, so any receiver can verify and
// probe the filter:
//   * function_num  — number of hash functions k,
//   * function_bits — bits taken from the MD5 stream per function,
//   * table_bits    — size m of the bit array (indices are mod m).
//
// Function i takes bits [i*function_bits, (i+1)*function_bits) out of
// MD5(URL); when 128 bits are exhausted, further bits come from
// MD5(URL + URL), then MD5(URL + URL + URL), and so on.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/md5.hpp"

namespace sc {

/// Hard cap on the number of hash functions any summary that travels the
/// wire may use. The paper's configurations use k <= 16 and the optimal-k
/// sweep of Figure 4 tops out at 22 (32 bits/entry); 32 leaves headroom
/// while letting the request path keep all k indexes in a fixed inline
/// array (BloomIndexes) instead of a heap vector. decode_dirupdate
/// rejects specs above the cap, so replicas built from the wire always
/// fit the no-allocation probe path.
inline constexpr std::uint16_t kMaxWireHashFunctions = 32;

struct HashSpec {
    std::uint16_t function_num = 4;    ///< k — number of hash functions
    std::uint16_t function_bits = 32;  ///< bits consumed per function
    std::uint32_t table_bits = 0;      ///< m — bit-array size

    friend bool operator==(const HashSpec&, const HashSpec&) = default;

    /// True when the parameters are usable (k >= 1, 1 <= bits <= 64, m >= 1,
    /// and m fits in function_bits so indices can cover the whole table).
    [[nodiscard]] bool valid() const;
};

/// Incremental extractor of fixed-width bit groups from the MD5 stream
/// MD5(key), MD5(key+key), ... — the paper's recipe for generating an
/// unbounded number of hash functions from one signature.
class Md5BitStream {
public:
    /// `key` is referenced, not copied (the stream never outlives the
    /// probed URL in any caller) — constructing the stream allocates
    /// nothing, which the request path depends on.
    explicit Md5BitStream(std::string_view key);

    /// Next `bits` bits (1..64) as the low bits of the result.
    std::uint64_t take(unsigned bits);

private:
    void refill();

    std::string_view key_;
    Md5Digest digest_{};
    unsigned bit_pos_ = 128;  // forces a refill on first take
    unsigned round_ = 0;      // how many key copies have been hashed
};

/// The k bit-array indexes of one key, inline (no heap). Sized for
/// kMaxWireHashFunctions so every spec that can arrive over the wire
/// fits; converts to a span for the probe overloads.
class BloomIndexes {
public:
    [[nodiscard]] std::size_t size() const { return n_; }
    [[nodiscard]] bool empty() const { return n_ == 0; }
    [[nodiscard]] std::uint32_t operator[](std::size_t i) const { return v_[i]; }
    [[nodiscard]] const std::uint32_t* begin() const { return v_.data(); }
    [[nodiscard]] const std::uint32_t* end() const { return v_.data() + n_; }
    void push_back(std::uint32_t index) { v_[n_++] = index; }
    void clear() { n_ = 0; }
    [[nodiscard]] std::span<const std::uint32_t> span() const { return {v_.data(), n_}; }
    operator std::span<const std::uint32_t>() const { return span(); }

private:
    std::array<std::uint32_t, kMaxWireHashFunctions> v_;
    std::size_t n_ = 0;
};

/// All k bit-array indices for `key` under `spec`.
[[nodiscard]] std::vector<std::uint32_t> bloom_indexes(std::string_view key,
                                                       const HashSpec& spec);

/// Same, into a fixed inline buffer — the request path's form: no heap
/// allocation per probe. Requires spec.function_num <= kMaxWireHashFunctions.
void bloom_indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out);

}  // namespace sc
