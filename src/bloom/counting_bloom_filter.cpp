#include "bloom/counting_bloom_filter.hpp"

#include <algorithm>

#include "util/sc_assert.hpp"

namespace sc {

CountingBloomFilter::CountingBloomFilter(HashSpec spec, unsigned counter_bits)
    : spec_(spec),
      counter_bits_(counter_bits),
      counter_max_(static_cast<std::uint8_t>((1u << counter_bits) - 1)),
      counters_(spec.table_bits, 0),
      bits_(spec) {
    SC_ASSERT(spec_.valid());
    SC_ASSERT(counter_bits >= 1 && counter_bits <= 8);
}

void CountingBloomFilter::insert(std::string_view key) {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx) {
        std::uint8_t& c = counters_[i];
        if (c == counter_max_) {
            ++overflows_;
            continue;  // saturated: stays pinned at max forever
        }
        if (c == 0) {
            bits_.set_bit(i, true);
            delta_.record({i, true});
        }
        ++c;
    }
}

void CountingBloomFilter::erase(std::string_view key) {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx) {
        std::uint8_t& c = counters_[i];
        if (c == counter_max_) continue;  // pinned — never decremented
        if (c == 0) {
            ++underflows_;
            continue;
        }
        --c;
        if (c == 0) {
            bits_.set_bit(i, false);
            delta_.record({i, false});
        }
    }
}

bool CountingBloomFilter::may_contain(std::string_view key) const {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx)
        if (counters_[i] == 0) return false;
    return true;
}

std::uint8_t CountingBloomFilter::counter(std::uint32_t i) const {
    SC_ASSERT(i < spec_.table_bits);
    return counters_[i];
}

DeltaLog CountingBloomFilter::take_delta() {
    delta_.compact();
    DeltaLog out = std::move(delta_);
    delta_ = DeltaLog{};
    return out;
}

std::uint8_t CountingBloomFilter::max_counter() const {
    return counters_.empty() ? 0 : *std::max_element(counters_.begin(), counters_.end());
}

void CountingBloomFilter::clear() {
    std::fill(counters_.begin(), counters_.end(), 0);
    bits_.clear();
    delta_.clear();
    overflows_ = 0;
    underflows_ = 0;
}

}  // namespace sc
