#include "bloom/counting_bloom_filter.hpp"

#include <algorithm>

#include "bloom/counter_math.hpp"
#include "util/sc_assert.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

CountingBloomFilter::CountingBloomFilter(HashSpec spec, unsigned counter_bits)
    : spec_(spec),
      counter_bits_(counter_bits),
      counter_max_(counter_math::saturation_max(counter_bits)),
      counters_(spec.table_bits, 0),
      bits_(spec) {
    SC_ASSERT(spec_.valid());
    SC_ASSERT(counter_math::valid_counter_bits(counter_bits));
}

void CountingBloomFilter::insert(std::string_view key) {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx) {
        switch (counter_math::saturating_increment(counters_[i], counter_max_)) {
            case counter_math::CounterStep::kSaturated:
                ++overflows_;  // pinned at max forever
                break;
            case counter_math::CounterStep::kRoseFromZero:
                bits_.set_bit(i, true);
                delta_.record({i, true});
                break;
            default:
                break;
        }
    }
}

void CountingBloomFilter::erase(std::string_view key) {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx) {
        switch (counter_math::pinned_decrement(counters_[i], counter_max_)) {
            case counter_math::CounterStep::kUnderflow:
                ++underflows_;
                break;
            case counter_math::CounterStep::kDroppedToZero:
                bits_.set_bit(i, false);
                delta_.record({i, false});
                break;
            default:
                break;
        }
    }
}

SC_HOT_PATH bool CountingBloomFilter::may_contain(std::string_view key) const {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx)
        if (counters_[i] == 0) return false;
    return true;
}

std::uint8_t CountingBloomFilter::counter(std::uint32_t i) const {
    SC_ASSERT(i < spec_.table_bits);
    return counters_[i];
}

DeltaLog CountingBloomFilter::take_delta() {
    delta_.compact();
    DeltaLog out = std::move(delta_);
    delta_ = DeltaLog{};
    return out;
}

std::uint8_t CountingBloomFilter::max_counter() const {
    return counters_.empty() ? 0 : *std::max_element(counters_.begin(), counters_.end());
}

void CountingBloomFilter::clear() {
    std::fill(counters_.begin(), counters_.end(), 0);
    bits_.clear();
    delta_.clear();
    overflows_ = 0;
    underflows_ = 0;
}

}  // namespace sc
