// Counting Bloom filter — the structure this paper introduced (Section V-C).
//
// A proxy maintains its *own* summary as an array of small counters so that
// cache replacements (deletions) are supported: inserting a key increments
// the k counters it hashes to, deleting decrements them, and the derived
// bit array has bit i set iff counter i is non-zero. Counters saturate at
// their maximum (the paper recommends 4-bit counters saturating at 15): a
// saturated counter is never decremented again, trading a vanishing
// probability of a future false negative for overflow safety.
//
// Every 0->1 and 1->0 transition of the derived bit array is appended to a
// DeltaLog, which is exactly the stream of updates SC-ICP broadcasts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/delta_log.hpp"
#include "bloom/hash_spec.hpp"

namespace sc {

class CountingBloomFilter {
public:
    /// counter_bits in [1, 8]; the paper uses 4.
    explicit CountingBloomFilter(HashSpec spec, unsigned counter_bits = 4);

    [[nodiscard]] const HashSpec& spec() const { return spec_; }
    [[nodiscard]] unsigned counter_bits() const { return counter_bits_; }
    [[nodiscard]] std::uint8_t counter_max() const { return counter_max_; }

    /// Increment the key's counters (saturating). Records any 0->1 bit
    /// transitions in the delta log.
    void insert(std::string_view key);

    /// Decrement the key's counters. Saturated counters stay saturated.
    /// Records any 1->0 bit transitions. Deleting a key that was never
    /// inserted is a caller bug; counters already at zero are left at zero
    /// and counted in underflow_events() so tests can detect misuse.
    void erase(std::string_view key);

    [[nodiscard]] bool may_contain(std::string_view key) const;

    [[nodiscard]] std::uint8_t counter(std::uint32_t i) const;

    /// The derived plain filter (bit i == counter i non-zero), kept in sync
    /// incrementally. This is what gets broadcast to siblings.
    [[nodiscard]] const BloomFilter& bits() const { return bits_; }

    /// Flips accumulated since the last take_delta(). The log is compacted
    /// (superseded records dropped) before being returned.
    [[nodiscard]] DeltaLog take_delta();
    [[nodiscard]] std::size_t pending_delta_size() const { return delta_.size(); }

    /// Number of counters that have ever saturated (stuck at max).
    [[nodiscard]] std::uint64_t overflow_events() const { return overflows_; }
    /// Number of decrements that hit an already-zero counter.
    [[nodiscard]] std::uint64_t underflow_events() const { return underflows_; }
    /// Largest counter value currently in the table.
    [[nodiscard]] std::uint8_t max_counter() const;

    void clear();

private:
    HashSpec spec_;
    unsigned counter_bits_;
    std::uint8_t counter_max_;
    std::vector<std::uint8_t> counters_;  // one byte per counter for speed;
                                          // width is enforced by saturation
    BloomFilter bits_;
    DeltaLog delta_;
    std::uint64_t overflows_ = 0;
    std::uint64_t underflows_ = 0;
};

}  // namespace sc
