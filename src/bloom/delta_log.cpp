#include "bloom/delta_log.hpp"

#include <unordered_map>

namespace sc {

std::size_t DeltaLog::compact() {
    std::unordered_map<std::uint32_t, std::size_t> last;  // index -> position in out
    std::vector<BitFlip> out;
    out.reserve(flips_.size());
    for (const BitFlip& f : flips_) {
        if (auto it = last.find(f.index); it != last.end()) {
            out[it->second].value = f.value;
        } else {
            last.emplace(f.index, out.size());
            out.push_back(f);
        }
    }
    const std::size_t removed = flips_.size() - out.size();
    flips_ = std::move(out);
    return removed;
}

std::vector<std::uint32_t> DeltaLog::encode() const {
    std::vector<std::uint32_t> out;
    out.reserve(flips_.size());
    for (const BitFlip& f : flips_) out.push_back(encode_bit_flip(f));
    return out;
}

}  // namespace sc
