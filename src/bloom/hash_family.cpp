#include "bloom/hash_family.hpp"

#include <array>

#include "util/rng.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

// Low 64 bits of the irreducible polynomial x^64 + x^4 + x^3 + x + 1.
constexpr std::uint64_t kRabinPoly = 0x1b;

// T[t] = t(x) * x^64 mod P(x): the reduction of the byte shifted out of
// the top of the fingerprint.
const std::array<std::uint64_t, 256>& rabin_table() {
    static const std::array<std::uint64_t, 256> table = [] {
        std::array<std::uint64_t, 256> t{};
        for (std::uint32_t b = 0; b < 256; ++b) {
            std::uint64_t r = b;
            for (int shift = 0; shift < 64; ++shift) {
                const bool carry = (r >> 63) & 1;
                r <<= 1;
                if (carry) r ^= kRabinPoly;
            }
            t[b] = r;
        }
        return t;
    }();
    return table;
}

// Deterministic odd multipliers / offsets for derived hash functions.
std::uint64_t derived_multiplier(unsigned i) {
    std::uint64_t seed = 0x5ca1ab1e00000000ull + i;
    return splitmix64(seed) | 1;  // odd
}

std::uint64_t derived_offset(unsigned i) {
    std::uint64_t seed = 0x0ddba11000000000ull + i;
    return splitmix64(seed);
}

// One index-derivation loop per family, generic over the output container
// so the vector and inline-buffer overloads share the exact same bits.
template <typename Out>
void linear_indexes_into(std::string_view key, const HashSpec& spec, Out& out) {
    SC_ASSERT(spec.valid());
    const std::uint64_t h = fnv1a32(key);
    for (unsigned i = 0; i < spec.function_num; ++i) {
        const std::uint64_t v = derived_multiplier(i) * h + derived_offset(i);
        out.push_back(static_cast<std::uint32_t>((v >> 13) % spec.table_bits));
    }
}

template <typename Out>
void rabin_indexes_into(std::string_view key, const HashSpec& spec, Out& out) {
    SC_ASSERT(spec.valid());
    const std::uint64_t f = rabin_fingerprint(key);
    for (unsigned i = 0; i < spec.function_num; ++i) {
        const std::uint64_t v = derived_multiplier(i ^ 0x80) * f;
        out.push_back(static_cast<std::uint32_t>((v >> 21) % spec.table_bits));
    }
}

class Md5Hasher final : public UrlHasher {
public:
    void indexes(std::string_view key, const HashSpec& spec,
                 std::vector<std::uint32_t>& out) const override {
        const auto idx = bloom_indexes(key, spec);
        out.insert(out.end(), idx.begin(), idx.end());
    }
    void indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out) const override {
        bloom_indexes(key, spec, out);
    }
    [[nodiscard]] HashFamily family() const override { return HashFamily::md5; }
};

class LinearHasher final : public UrlHasher {
public:
    void indexes(std::string_view key, const HashSpec& spec,
                 std::vector<std::uint32_t>& out) const override {
        linear_indexes_into(key, spec, out);
    }
    void indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out) const override {
        SC_ASSERT(spec.function_num <= kMaxWireHashFunctions);
        out.clear();
        linear_indexes_into(key, spec, out);
    }
    [[nodiscard]] HashFamily family() const override { return HashFamily::linear; }
};

class RabinHasher final : public UrlHasher {
public:
    void indexes(std::string_view key, const HashSpec& spec,
                 std::vector<std::uint32_t>& out) const override {
        rabin_indexes_into(key, spec, out);
    }
    void indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out) const override {
        SC_ASSERT(spec.function_num <= kMaxWireHashFunctions);
        out.clear();
        rabin_indexes_into(key, spec, out);
    }
    [[nodiscard]] HashFamily family() const override { return HashFamily::rabin; }
};

}  // namespace

const char* hash_family_name(HashFamily family) {
    switch (family) {
        case HashFamily::md5: return "md5";
        case HashFamily::linear: return "linear";
        case HashFamily::rabin: return "rabin";
    }
    return "?";
}

void UrlHasher::indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out) const {
    SC_ASSERT(spec.function_num <= kMaxWireHashFunctions);
    out.clear();
    std::vector<std::uint32_t> tmp;
    tmp.reserve(spec.function_num);
    indexes(key, spec, tmp);
    for (const std::uint32_t i : tmp) out.push_back(i);
}

std::vector<std::uint32_t> UrlHasher::operator()(std::string_view key,
                                                 const HashSpec& spec) const {
    std::vector<std::uint32_t> out;
    out.reserve(spec.function_num);
    indexes(key, spec, out);
    return out;
}

std::unique_ptr<UrlHasher> make_hasher(HashFamily family) {
    switch (family) {
        case HashFamily::md5: return std::make_unique<Md5Hasher>();
        case HashFamily::linear: return std::make_unique<LinearHasher>();
        case HashFamily::rabin: return std::make_unique<RabinHasher>();
    }
    return nullptr;
}

std::uint64_t rabin_fingerprint(std::string_view data) {
    const auto& table = rabin_table();
    std::uint64_t f = 0;
    for (const char c : data) {
        const auto top = static_cast<std::uint8_t>(f >> 56);
        f = (f << 8) ^ static_cast<std::uint8_t>(c) ^ table[top];
    }
    return f;
}

std::uint32_t fnv1a32(std::string_view data) {
    std::uint32_t h = 0x811c9dc5u;
    for (const char c : data) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x01000193u;
    }
    return h;
}

}  // namespace sc
