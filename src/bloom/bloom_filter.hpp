// Plain Bloom filter (Bloom 1970), as used for the *remote* copy of a
// sibling proxy's summary: receivers only ever probe and apply bit flips,
// so no counters are needed on this side.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "bloom/hash_spec.hpp"

namespace sc {

class BloomFilter {
public:
    /// An empty filter with all bits zero.
    explicit BloomFilter(HashSpec spec);

    /// Reconstruct from a received bit array (size must match spec).
    BloomFilter(HashSpec spec, std::vector<std::uint64_t> words);

    [[nodiscard]] const HashSpec& spec() const { return spec_; }
    [[nodiscard]] std::uint32_t size_bits() const { return spec_.table_bits; }
    [[nodiscard]] std::size_t size_bytes() const { return words_.size() * 8; }

    /// Set all k positions for the key. Idempotent.
    void insert(std::string_view key);

    /// Probabilistic membership: false => definitely absent,
    /// true => present with probability 1 - false-positive rate.
    [[nodiscard]] bool may_contain(std::string_view key) const;

    /// Same, for callers that have already computed the indexes.
    [[nodiscard]] bool may_contain(std::span<const std::uint32_t> indexes) const;

    [[nodiscard]] bool test_bit(std::uint32_t i) const;
    void set_bit(std::uint32_t i, bool value);

    /// Number of 1-bits (the fill that determines the live FP rate).
    [[nodiscard]] std::uint64_t popcount() const;

    /// Fraction of bits set, in [0, 1].
    [[nodiscard]] double fill_ratio() const;

    /// Observed false-positive probability implied by the fill ratio:
    /// fill^k. (For a filter built from n keys this tracks the analytic
    /// (1 - e^{-kn/m})^k closely.)
    [[nodiscard]] double estimated_fp_rate() const;

    void clear();

    /// Raw word storage (little-endian bit order within each word);
    /// used for full-bitmap summary transfers.
    [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

    /// Replace contents from a received full bitmap.
    void assign_words(std::span<const std::uint64_t> words);

    /// Bit positions that differ from `other` (same spec required) —
    /// handy for tests and for choosing delta vs full update encodings.
    [[nodiscard]] std::vector<std::uint32_t> diff(const BloomFilter& other) const;

    friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

private:
    HashSpec spec_;
    std::vector<std::uint64_t> words_;
};

}  // namespace sc
