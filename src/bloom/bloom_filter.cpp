#include "bloom/bloom_filter.hpp"

#include <bit>
#include <cmath>

#include "util/sc_assert.hpp"
#include "util/thread_annotations.hpp"

namespace sc {
namespace {

std::size_t word_count(std::uint32_t bits) { return (static_cast<std::size_t>(bits) + 63) / 64; }

}  // namespace

BloomFilter::BloomFilter(HashSpec spec) : spec_(spec), words_(word_count(spec.table_bits), 0) {
    SC_ASSERT(spec_.valid());
}

BloomFilter::BloomFilter(HashSpec spec, std::vector<std::uint64_t> words)
    : spec_(spec), words_(std::move(words)) {
    SC_ASSERT(spec_.valid());
    SC_ASSERT(words_.size() == word_count(spec_.table_bits));
}

void BloomFilter::insert(std::string_view key) {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    for (std::uint32_t i : idx) set_bit(i, true);
}

SC_HOT_PATH bool BloomFilter::may_contain(std::string_view key) const {
    BloomIndexes idx;
    bloom_indexes(key, spec_, idx);
    return may_contain(idx.span());
}

SC_HOT_PATH bool BloomFilter::may_contain(std::span<const std::uint32_t> indexes) const {
    for (std::uint32_t i : indexes)
        if (!test_bit(i)) return false;
    return true;
}

bool BloomFilter::test_bit(std::uint32_t i) const {
    SC_ASSERT(i < spec_.table_bits);
    return (words_[i / 64] >> (i % 64)) & 1u;
}

void BloomFilter::set_bit(std::uint32_t i, bool value) {
    SC_ASSERT(i < spec_.table_bits);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

std::uint64_t BloomFilter::popcount() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::uint64_t>(std::popcount(w));
    return n;
}

double BloomFilter::fill_ratio() const {
    return static_cast<double>(popcount()) / static_cast<double>(spec_.table_bits);
}

double BloomFilter::estimated_fp_rate() const {
    return std::pow(fill_ratio(), static_cast<double>(spec_.function_num));
}

void BloomFilter::clear() {
    for (auto& w : words_) w = 0;
}

void BloomFilter::assign_words(std::span<const std::uint64_t> words) {
    SC_ASSERT(words.size() == words_.size());
    words_.assign(words.begin(), words.end());
}

std::vector<std::uint32_t> BloomFilter::diff(const BloomFilter& other) const {
    SC_ASSERT(spec_ == other.spec_);
    std::vector<std::uint32_t> out;
    for (std::size_t w = 0; w < words_.size(); ++w) {
        std::uint64_t x = words_[w] ^ other.words_[w];
        while (x != 0) {
            const int bit = std::countr_zero(x);
            out.push_back(static_cast<std::uint32_t>(w * 64 + static_cast<std::size_t>(bit)));
            x &= x - 1;
        }
    }
    return out;
}

}  // namespace sc
