#include "bloom/bloom_math.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "util/sc_assert.hpp"

namespace sc {

double bloom_fp_exact(double m, double n, unsigned k) {
    SC_ASSERT(m > 0 && n >= 0 && k >= 1);
    // (1 - 1/m)^(k n) computed via exp/log1p for numerical stability.
    const double zero_prob = std::exp(k * n * std::log1p(-1.0 / m));
    return std::pow(1.0 - zero_prob, static_cast<double>(k));
}

double bloom_fp_approx(double m, double n, unsigned k) {
    SC_ASSERT(m > 0 && n >= 0 && k >= 1);
    return std::pow(1.0 - std::exp(-static_cast<double>(k) * n / m), static_cast<double>(k));
}

double bloom_optimal_k_real(double m, double n) {
    SC_ASSERT(m > 0 && n > 0);
    return std::numbers::ln2 * m / n;
}

unsigned bloom_optimal_k(double m, double n) {
    const double kr = bloom_optimal_k_real(m, n);
    const auto lo = static_cast<unsigned>(std::max(1.0, std::floor(kr)));
    const unsigned hi = lo + 1;
    return bloom_fp_approx(m, n, lo) <= bloom_fp_approx(m, n, hi) ? lo : hi;
}

double bloom_min_fp(double bits_per_entry) {
    SC_ASSERT(bits_per_entry > 0);
    const unsigned k = bloom_optimal_k(bits_per_entry, 1.0);
    return bloom_fp_approx(bits_per_entry, 1.0, k);
}

double counter_overflow_bound(double m, double n, unsigned k, unsigned j) {
    SC_ASSERT(m > 0 && n >= 0 && k >= 1 && j >= 1);
    const double e = std::exp(1.0);
    return m * std::pow(e * n * k / (static_cast<double>(j) * m), static_cast<double>(j));
}

double bloom_expected_set_bits(double m, double n, unsigned k) {
    SC_ASSERT(m > 0 && n >= 0 && k >= 1);
    return m * (1.0 - std::exp(k * n * std::log1p(-1.0 / m)));
}

double bloom_bits_per_entry_for_fp(double p, unsigned k) {
    SC_ASSERT(p > 0 && p < 1 && k >= 1);
    // Invert p = (1 - e^{-k/r})^k for r = bits per entry.
    const double inner = 1.0 - std::pow(p, 1.0 / static_cast<double>(k));
    if (inner <= 0.0) return std::numeric_limits<double>::infinity();
    return -static_cast<double>(k) / std::log(inner);
}

}  // namespace sc
