#include "bloom/hash_spec.hpp"

#include "util/sc_assert.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

bool HashSpec::valid() const {
    if (function_num < 1 || function_bits < 1 || function_bits > 64 || table_bits < 1)
        return false;
    // The index space 2^function_bits must be able to address the table;
    // otherwise high slots could never be hit.
    if (function_bits < 64 && (std::uint64_t{1} << function_bits) < table_bits) return false;
    return true;
}

Md5BitStream::Md5BitStream(std::string_view key) : key_(key) {}

void Md5BitStream::refill() {
    // round_ == 0 hashes key, round_ == 1 hashes key+key, etc.
    ++round_;
    Md5 ctx;
    for (unsigned i = 0; i < round_; ++i) ctx.update(key_);
    digest_ = ctx.finish();
    bit_pos_ = 0;
}

std::uint64_t Md5BitStream::take(unsigned bits) {
    SC_ASSERT(bits >= 1 && bits <= 64);
    std::uint64_t out = 0;
    unsigned got = 0;
    while (got < bits) {
        if (bit_pos_ >= 128) refill();
        // Pull from the current digest one byte-aligned chunk at a time.
        const unsigned byte = bit_pos_ / 8;
        const unsigned off = bit_pos_ % 8;
        const unsigned avail = 8 - off;
        const unsigned want = std::min(avail, bits - got);
        const auto chunk =
            static_cast<std::uint64_t>((digest_.bytes[byte] >> off) & ((1u << want) - 1u));
        out |= chunk << got;
        got += want;
        bit_pos_ += want;
    }
    return out;
}

std::vector<std::uint32_t> bloom_indexes(std::string_view key, const HashSpec& spec) {
    SC_ASSERT(spec.valid());
    std::vector<std::uint32_t> idx;
    idx.reserve(spec.function_num);
    Md5BitStream stream(key);
    for (unsigned i = 0; i < spec.function_num; ++i) {
        const std::uint64_t raw = stream.take(spec.function_bits);
        idx.push_back(static_cast<std::uint32_t>(raw % spec.table_bits));
    }
    return idx;
}

SC_HOT_PATH void bloom_indexes(std::string_view key, const HashSpec& spec,
                               BloomIndexes& out) {
    SC_ASSERT(spec.valid());
    SC_ASSERT(spec.function_num <= kMaxWireHashFunctions);
    out.clear();
    Md5BitStream stream(key);
    for (unsigned i = 0; i < spec.function_num; ++i) {
        const std::uint64_t raw = stream.take(spec.function_bits);
        // sc_lint: allow(hotpath-alloc) BloomIndexes is a fixed inline array
        out.push_back(static_cast<std::uint32_t>(raw % spec.table_bits));
    }
}

}  // namespace sc
