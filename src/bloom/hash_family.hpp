// Alternative hash families for Bloom summaries (paper Section V-D).
//
// The protocol's default is MD5 (well-studied, and not efficiently
// invertible, so clients cannot craft URLs that collide on purpose). The
// paper notes two faster alternatives and their trade-off:
//
//   * linear  — one 32-bit base hash, further functions from random linear
//     transformations of it ("a simple hash function can be used to
//     generate, say 32 bits, and further bits can be obtained by taking
//     random linear transformations of these 32 bits");
//   * rabin   — Rabin's fingerprinting method: the key as a polynomial
//     over GF(2) reduced modulo a fixed irreducible polynomial.
//
// Both are "efficiently invertible (one can easily build an URL that
// hashes to a particular location), a fact that might be used by
// malicious users" — which is why they stay off the wire protocol and are
// offered for closed deployments only. bench/repro_hash_ablation
// quantifies the speed/false-positive trade.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "bloom/hash_spec.hpp"

namespace sc {

enum class HashFamily {
    md5,     ///< the protocol default (Section VI-A wire format)
    linear,  ///< FNV-1a base + random linear transformations
    rabin,   ///< 64-bit Rabin fingerprint + multiply-shift derivations
};

[[nodiscard]] const char* hash_family_name(HashFamily family);

/// Strategy interface: derive the k bit-array indexes for a key.
class UrlHasher {
public:
    virtual ~UrlHasher() = default;

    /// Append spec.function_num indexes (each < spec.table_bits) to out.
    virtual void indexes(std::string_view key, const HashSpec& spec,
                         std::vector<std::uint32_t>& out) const = 0;

    /// Same, into the fixed inline buffer (out is cleared first) — the
    /// request path's no-allocation form. Requires
    /// spec.function_num <= kMaxWireHashFunctions. The base implementation
    /// routes through the vector overload; the built-in families override
    /// it to stay allocation-free.
    virtual void indexes(std::string_view key, const HashSpec& spec, BloomIndexes& out) const;

    [[nodiscard]] virtual HashFamily family() const = 0;

    /// Convenience wrapper.
    [[nodiscard]] std::vector<std::uint32_t> operator()(std::string_view key,
                                                        const HashSpec& spec) const;
};

[[nodiscard]] std::unique_ptr<UrlHasher> make_hasher(HashFamily family);

/// 64-bit Rabin fingerprint of `data` modulo the fixed irreducible
/// polynomial x^64 + x^4 + x^3 + x + 1 (table-driven, byte at a time).
[[nodiscard]] std::uint64_t rabin_fingerprint(std::string_view data);

/// 32-bit FNV-1a (the "simple hash function" base for the linear family).
[[nodiscard]] std::uint32_t fnv1a32(std::string_view data);

}  // namespace sc
