// Checked counter-width arithmetic for the counting Bloom filter (§IV).
//
// The paper's overflow analysis fixes the counter width (4 bits) and
// proves Pr[any counter > 15] is negligible — but only if every
// increment saturates and every decrement respects the pin. Hand-rolled
// width arithmetic (`(1u << bits) - 1` and friends) scattered through
// the code is exactly where that proof silently breaks: an unchecked
// shift by 8 on a uint8_t, a decrement of a saturated counter, a width
// of 0 or 9. All counter-width math therefore lives here, behind
// range-checked helpers, and tools/sc_lint (rule `raw-counter-shift`)
// rejects counter-width shift expressions anywhere else.
#pragma once

#include <cstdint>

#include "util/sc_assert.hpp"

namespace sc::counter_math {

/// Valid widths for one counter, in bits. The paper uses 4; one byte of
/// backing storage caps the width at 8.
inline constexpr unsigned kMinCounterBits = 1;
inline constexpr unsigned kMaxCounterBits = 8;

[[nodiscard]] constexpr bool valid_counter_bits(unsigned bits) {
    return bits >= kMinCounterBits && bits <= kMaxCounterBits;
}

/// The saturation value for a `bits`-wide counter: 2^bits - 1 (15 for
/// the paper's 4-bit counters). The only place this shift may appear.
[[nodiscard]] constexpr std::uint8_t saturation_max(unsigned bits) {
    SC_ASSERT(valid_counter_bits(bits));
    return static_cast<std::uint8_t>((1u << bits) - 1u);
}

enum class CounterStep : std::uint8_t {
    kStepped,    // counter changed by one
    kRoseFromZero,   // 0 -> 1: the derived bit turns on
    kDroppedToZero,  // 1 -> 0: the derived bit turns off
    kSaturated,  // increment hit a pinned counter (overflow event)
    kUnderflow,  // decrement hit an already-zero counter (caller bug)
};

/// Saturating increment: a counter at `max` stays pinned forever (§IV —
/// a pinned counter trades a vanishing false-negative probability for
/// overflow safety). Reports 0->1 transitions so the caller can flip
/// the derived bit and journal the delta.
[[nodiscard]] constexpr CounterStep saturating_increment(std::uint8_t& counter,
                                                         std::uint8_t max) {
    SC_ASSERT(counter <= max);
    if (counter == max) return CounterStep::kSaturated;
    return ++counter == 1 ? CounterStep::kRoseFromZero : CounterStep::kStepped;
}

/// Pinned decrement: saturated counters are never decremented (their
/// true count is unknown), zero counters are left at zero and reported
/// as underflow. Reports 1->0 transitions for the delta journal.
[[nodiscard]] constexpr CounterStep pinned_decrement(std::uint8_t& counter,
                                                     std::uint8_t max) {
    SC_ASSERT(counter <= max);
    if (counter == max) return CounterStep::kSaturated;
    if (counter == 0) return CounterStep::kUnderflow;
    return --counter == 0 ? CounterStep::kDroppedToZero : CounterStep::kStepped;
}

}  // namespace sc::counter_math
