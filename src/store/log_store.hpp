// Log-structured persistent CacheStore (docs/STORAGE.md).
//
// The store is a *directory* on disk: append-only segment files carrying
// framed, checksummed insert/erase/touch records (segment_log.hpp), plus a
// RAM hash index + LRU list rebuilt from the log. Document bodies are never
// stored — like the paper's per-proxy directory, what must survive a crash
// is WHICH urls the cache holds (and their version/size), because that is
// exactly what the advertised Bloom summary is derived from. Warm restart
// replays the log, truncates a torn tail at the first bad checksum, and
// hands the recovered entries to SummaryCacheNode::rebuild_from_directory
// so the node re-advertises a truthful summary instead of an empty one.
//
// Locking (two locks, fixed order io_mu_ -> index_mu_):
//   * io_mu_    — segment writer, rotation, compaction, fsync pacing.
//   * index_mu_ — RAM index, LRU list, per-segment live-byte accounting.
// Mutators take io_mu_ then index_mu_; readers (lookup-free probes:
// contains / cached_version / entry_copy / counts) take only index_mu_, so
// a reader never waits behind an fsync. Hooks fire under both locks and
// must only take leaf locks (CacheStore contract).
//
// Compaction: segments seal at segment_target_bytes; a background thread
// rewrites the OLDEST sealed segment's still-live entries into the current
// log and deletes the file once its live ratio drops below
// compact_live_ratio. Oldest-first is what makes dropping tombstones safe:
// no older segment exists whose records an erased-in-this-segment url
// could resurrect through.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "cache/cache_store.hpp"
#include "obs/metrics.hpp"
#include "store/segment_log.hpp"
#include "util/thread_annotations.hpp"

namespace sc::store {

struct LogStoreConfig {
    std::string dir;                    ///< segment directory (created if absent)
    std::uint64_t capacity_bytes = 0;   ///< sum of entry sizes, like LruCache
    std::uint64_t max_object_bytes = 250'000;  ///< paper's hit-object cutoff
    std::uint64_t segment_target_bytes = 4ull * 1024 * 1024;
    double compact_live_ratio = 0.5;    ///< compact oldest sealed segment below this
    std::uint64_t fsync_interval_bytes = 1ull * 1024 * 1024;
    bool background_compaction = true;  ///< false = tests drive compact_once()
};

class LogStructuredStore final : public CacheStore {
public:
    /// Opens (creating the directory if needed) and recovers the log.
    explicit LogStructuredStore(LogStoreConfig config);
    ~LogStructuredStore() override;

    // CacheStore ----------------------------------------------------------
    Lookup lookup(std::string_view url, std::uint64_t version) override
        SC_EXCLUDES(io_mu_, index_mu_);
    [[nodiscard]] bool contains(std::string_view url) const override SC_EXCLUDES(index_mu_);
    [[nodiscard]] std::optional<std::uint64_t> cached_version(std::string_view url) const
        override SC_EXCLUDES(index_mu_);
    [[nodiscard]] std::optional<Entry> entry_copy(std::string_view url) const override
        SC_EXCLUDES(index_mu_);
    bool insert(std::string_view url, std::uint64_t size, std::uint64_t version) override
        SC_EXCLUDES(io_mu_, index_mu_);
    void touch(std::string_view url) override SC_EXCLUDES(io_mu_, index_mu_);
    bool erase(std::string_view url) override SC_EXCLUDES(io_mu_, index_mu_);
    void set_insert_hook(EntryHook hook) override SC_EXCLUDES(io_mu_, index_mu_);
    void set_removal_hook(EntryHook hook) override SC_EXCLUDES(io_mu_, index_mu_);
    void for_each_entry(const EntryHook& fn) const override SC_EXCLUDES(index_mu_);
    [[nodiscard]] std::size_t document_count() const override SC_EXCLUDES(index_mu_);
    [[nodiscard]] std::uint64_t used_bytes() const override SC_EXCLUDES(index_mu_);
    [[nodiscard]] std::uint64_t capacity_bytes() const override;

    // Store-specific ------------------------------------------------------

    /// Entries replayed alive from the log at construction.
    [[nodiscard]] std::size_t recovered_entries() const { return recovered_entries_; }

    /// fdatasync the current segment now (shutdown, tests).
    void flush() SC_EXCLUDES(io_mu_, index_mu_);

    /// Compact the oldest sealed segment if its live ratio is below the
    /// threshold (or unconditionally with force=true). Returns true if a
    /// segment was rewritten and deleted.
    bool compact_once(bool force = false) SC_EXCLUDES(io_mu_, index_mu_);

    /// Sealed + current segment count (same value as sc_store_segments).
    [[nodiscard]] std::size_t segment_count() const SC_EXCLUDES(index_mu_);

private:
    struct IndexEntry {
        std::string url;
        std::uint64_t size = 0;
        std::uint64_t version = 0;
        std::uint64_t seq = 0;         ///< winning record's sequence number
        std::uint64_t segment_id = 0;  ///< segment holding the winning record
        std::uint32_t record_bytes = 0;
    };
    using LruList = std::list<IndexEntry>;

    struct SegmentStats {
        std::uint64_t total_bytes = 0;  ///< file bytes incl. header
        std::uint64_t live_bytes = 0;   ///< bytes of winning records of live entries
    };

    void recover() SC_REQUIRES(io_mu_, index_mu_);
    void append_locked(const Record& rec) SC_REQUIRES(io_mu_);
    void rotate_segment_locked() SC_REQUIRES(io_mu_, index_mu_);
    void maybe_rotate_and_sync_locked() SC_REQUIRES(io_mu_, index_mu_);
    /// Log a record for `it` (touch/re-insert), moving its live bytes to
    /// the current segment and stamping a fresh seq.
    void relog_locked(LruList::iterator it, RecordType type) SC_REQUIRES(io_mu_, index_mu_);
    void evict_until_fits_locked(std::uint64_t incoming) SC_REQUIRES(io_mu_, index_mu_);
    void remove_entry_locked(LruList::iterator it) SC_REQUIRES(io_mu_, index_mu_);
    void compaction_main();

    const LogStoreConfig config_;
    std::size_t recovered_entries_ = 0;  // set once in ctor, then read-only

    mutable Mutex io_mu_ SC_ACQUIRED_BEFORE(index_mu_);
    SegmentWriter writer_ SC_GUARDED_BY(io_mu_);
    std::uint64_t next_segment_id_ SC_GUARDED_BY(io_mu_) = 0;
    std::uint64_t unsynced_bytes_ SC_GUARDED_BY(io_mu_) = 0;
    std::string encode_buf_ SC_GUARDED_BY(io_mu_);

    mutable Mutex index_mu_;
    LruList lru_ SC_GUARDED_BY(index_mu_);  // front = MRU
    std::unordered_map<std::string_view, LruList::iterator> index_ SC_GUARDED_BY(index_mu_);
    std::unordered_map<std::uint64_t, SegmentStats> segments_ SC_GUARDED_BY(index_mu_);
    std::uint64_t used_bytes_ SC_GUARDED_BY(index_mu_) = 0;
    std::uint64_t next_seq_ SC_GUARDED_BY(index_mu_) = 1;
    EntryHook insert_hook_ SC_GUARDED_BY(index_mu_);
    EntryHook removal_hook_ SC_GUARDED_BY(index_mu_);

    // Background compaction: kicked after every rotation, exits on stop.
    Mutex compact_mu_;
    CondVar compact_cv_;
    bool compact_kick_ SC_GUARDED_BY(compact_mu_) = false;
    bool stop_ SC_GUARDED_BY(compact_mu_) = false;
    std::thread compactor_;

    obs::Gauge segments_gauge_;
    obs::Counter recovered_total_;
    obs::Counter compactions_total_;
    obs::Histogram fsync_seconds_;
    obs::Histogram recovery_read_seconds_;
};

}  // namespace sc::store
