#include "store/segment_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>

#include "obs/metrics.hpp"
#include "util/byte_reader.hpp"
#include "util/byte_writer.hpp"

SC_UNTRUSTED_DECODE_TU;

namespace sc::store {
namespace {

struct Crc32Table {
    std::array<std::uint32_t, 256> t{};
    Crc32Table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

obs::Counter& malformed_records_total() {
    static obs::Counter c = obs::metrics().counter(
        "sc_store_malformed_records_total",
        "segment records that passed the checksum but carried impossible fields");
    return c;
}

/// A URL that checksums correctly but is empty or carries raw control
/// bytes never came from this store's write path; it is disk corruption
/// that happens to survive CRC, or a tampered file.
bool url_is_clean(std::string_view url) {
    if (url.empty()) return false;
    for (const char c : url) {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) return false;
    }
    return true;
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t len) {
    static const Crc32Table table;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::size_t encoded_record_bytes(std::size_t url_len) {
    // frame (crc + len) + type + seq + size + version + url_len + url
    return kRecordFrameBytes + 1 + 8 + 8 + 8 + 2 + url_len;
}

void encode_record(std::string& buf, const Record& rec) {
    std::string payload;
    payload.reserve(27 + rec.url.size());
    util::append_u8(payload, static_cast<std::uint8_t>(rec.type));
    util::append_u64le(payload, rec.seq);
    util::append_u64le(payload, rec.size);
    util::append_u64le(payload, rec.version);
    util::append_u16le(payload, static_cast<std::uint16_t>(rec.url.size()));
    payload.append(rec.url);

    util::append_u32le(buf, crc32_ieee(payload.data(), payload.size()));
    util::append_u32le(buf, static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
}

std::string segment_file_name(std::uint64_t segment_id) {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%016llx.log",
                  static_cast<unsigned long long>(segment_id));
    return name;
}

std::optional<std::uint64_t> parse_segment_file_name(const std::string& name) {
    unsigned long long id = 0;
    // "seg-" + 16 hex digits + ".log" == 24 chars.
    if (name.size() != 24) return std::nullopt;
    // sc_lint: allow(raw-decode) round-trip re-encode below validates the parse
    if (std::sscanf(name.c_str(), "seg-%16llx.log", &id) != 1) return std::nullopt;
    if (name != segment_file_name(id)) return std::nullopt;
    return id;
}

ScanResult scan_segment_bytes(std::string_view data) {
    ScanResult out;
    util::ByteReader header = util::ByteReader::over(data);
    const std::uint32_t magic = header.u32le();
    const std::uint32_t version = header.u32le();
    const std::uint64_t segment_id = header.u64le();
    if (!header.ok() || magic != kSegmentMagic || version != kSegmentFormatVersion)
        return out;
    out.segment_id = segment_id;
    out.header_ok = true;

    std::size_t off = kSegmentHeaderBytes;
    for (;;) {
        util::ByteReader frame = util::ByteReader::over(data.substr(off));
        const std::uint32_t crc = frame.u32le();
        const std::uint32_t len = frame.u32le();
        if (!frame.ok()) break;  // not even a frame header left
        constexpr std::uint32_t kMinPayload = 27;  // fixed fields, empty url
        if (len < kMinPayload || len > kMinPayload + kMaxUrlBytes) break;
        const std::string_view payload = frame.text(len);
        if (!frame.ok()) break;  // torn tail
        if (crc32_ieee(payload.data(), payload.size()) != crc) break;

        // The frame checksums clean; now the payload fields must also be
        // ones this store could have written. Anything else is counted
        // corruption and ends the scan like a torn frame.
        util::ByteReader p = util::ByteReader::over(payload);
        Record rec;
        const std::uint8_t type = p.u8();
        rec.seq = p.u64le();
        rec.size = p.u64le();
        rec.version = p.u64le();
        const std::uint16_t url_len = p.u16le();
        const std::string_view url = p.text(url_len);
        const bool well_formed = p.ok() && p.empty() && type >= 1 && type <= 3 &&
                                 rec.seq != 0 && rec.size <= kMaxRecordSizeBytes &&
                                 url_is_clean(url);
        if (!well_formed) {
            malformed_records_total().inc();
            break;
        }
        rec.type = static_cast<RecordType>(type);
        rec.url.assign(url);
        out.records.push_back(std::move(rec));
        off += kRecordFrameBytes + len;
    }
    out.valid_bytes = off;
    out.torn = off < data.size();
    return out;
}

ScanResult scan_segment(const std::string& path) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return {};

    std::string data;
    {
        char chunk[64 * 1024];
        for (;;) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                ::close(fd);
                return {};
            }
            if (n == 0) break;
            data.append(chunk, static_cast<std::size_t>(n));
        }
    }
    ::close(fd);
    return scan_segment_bytes(data);
}

SegmentWriter::~SegmentWriter() { close(); }

bool SegmentWriter::create(const std::string& path, std::uint64_t segment_id) {
    close();
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    fd_ = fd;
    segment_id_ = segment_id;
    bytes_written_ = 0;
    path_ = path;

    std::string header;
    util::append_u32le(header, kSegmentMagic);
    util::append_u32le(header, kSegmentFormatVersion);
    util::append_u64le(header, segment_id);
    return append(header.data(), header.size());
}

bool SegmentWriter::append(const char* data, std::size_t len) {
    if (fd_ < 0) return false;
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd_, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    bytes_written_ += len;
    return true;
}

bool SegmentWriter::sync() {
    if (fd_ < 0) return false;
#if defined(__APPLE__)
    return ::fsync(fd_) == 0;
#else
    return ::fdatasync(fd_) == 0;
#endif
}

void SegmentWriter::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

}  // namespace sc::store
