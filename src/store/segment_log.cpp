#include "store/segment_log.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace sc::store {
namespace {

// Little-endian encode/decode helpers. The on-disk format is declared
// little-endian; memcpy through these keeps the code alias-safe either way.
template <typename T>
void put_le(std::string& buf, T v) {
    std::array<char, sizeof(T)> raw{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
        raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    buf.append(raw.data(), raw.size());
}

template <typename T>
T get_le(const char* p) {
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i)
        v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
    return v;
}

struct Crc32Table {
    std::array<std::uint32_t, 256> t{};
    Crc32Table() {
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
    }
};

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t len) {
    static const Crc32Table table;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < len; ++i) c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::size_t encoded_record_bytes(std::size_t url_len) {
    // frame (crc + len) + type + seq + size + version + url_len + url
    return kRecordFrameBytes + 1 + 8 + 8 + 8 + 2 + url_len;
}

void encode_record(std::string& buf, const Record& rec) {
    std::string payload;
    payload.reserve(27 + rec.url.size());
    put_le<std::uint8_t>(payload, static_cast<std::uint8_t>(rec.type));
    put_le<std::uint64_t>(payload, rec.seq);
    put_le<std::uint64_t>(payload, rec.size);
    put_le<std::uint64_t>(payload, rec.version);
    put_le<std::uint16_t>(payload, static_cast<std::uint16_t>(rec.url.size()));
    payload.append(rec.url);

    put_le<std::uint32_t>(buf, crc32_ieee(payload.data(), payload.size()));
    put_le<std::uint32_t>(buf, static_cast<std::uint32_t>(payload.size()));
    buf.append(payload);
}

std::string segment_file_name(std::uint64_t segment_id) {
    char name[32];
    std::snprintf(name, sizeof(name), "seg-%016llx.log",
                  static_cast<unsigned long long>(segment_id));
    return name;
}

std::optional<std::uint64_t> parse_segment_file_name(const std::string& name) {
    unsigned long long id = 0;
    // "seg-" + 16 hex digits + ".log" == 24 chars.
    if (name.size() != 24) return std::nullopt;
    if (std::sscanf(name.c_str(), "seg-%16llx.log", &id) != 1) return std::nullopt;
    if (name != segment_file_name(id)) return std::nullopt;
    return id;
}

ScanResult scan_segment(const std::string& path) {
    ScanResult out;
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return out;

    std::string data;
    {
        char chunk[64 * 1024];
        for (;;) {
            const ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n < 0) {
                if (errno == EINTR) continue;
                ::close(fd);
                return out;
            }
            if (n == 0) break;
            data.append(chunk, static_cast<std::size_t>(n));
        }
    }
    ::close(fd);

    if (data.size() < kSegmentHeaderBytes) return out;
    if (get_le<std::uint32_t>(data.data()) != kSegmentMagic) return out;
    if (get_le<std::uint32_t>(data.data() + 4) != kSegmentFormatVersion) return out;
    out.segment_id = get_le<std::uint64_t>(data.data() + 8);
    out.header_ok = true;

    std::size_t off = kSegmentHeaderBytes;
    while (off + kRecordFrameBytes <= data.size()) {
        const std::uint32_t crc = get_le<std::uint32_t>(data.data() + off);
        const std::uint32_t len = get_le<std::uint32_t>(data.data() + off + 4);
        constexpr std::uint32_t kMinPayload = 27;  // fixed fields, empty url
        if (len < kMinPayload || len > kMinPayload + kMaxUrlBytes) break;
        if (off + kRecordFrameBytes + len > data.size()) break;  // torn tail
        const char* payload = data.data() + off + kRecordFrameBytes;
        if (crc32_ieee(payload, len) != crc) break;

        Record rec;
        const auto type = get_le<std::uint8_t>(payload);
        if (type < 1 || type > 3) break;
        rec.type = static_cast<RecordType>(type);
        rec.seq = get_le<std::uint64_t>(payload + 1);
        rec.size = get_le<std::uint64_t>(payload + 9);
        rec.version = get_le<std::uint64_t>(payload + 17);
        const std::uint16_t url_len = get_le<std::uint16_t>(payload + 25);
        if (27u + url_len != len) break;
        rec.url.assign(payload + 27, url_len);
        out.records.push_back(std::move(rec));
        off += kRecordFrameBytes + len;
    }
    out.valid_bytes = off;
    out.torn = off < data.size();
    return out;
}

SegmentWriter::~SegmentWriter() { close(); }

bool SegmentWriter::create(const std::string& path, std::uint64_t segment_id) {
    close();
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;
    fd_ = fd;
    segment_id_ = segment_id;
    bytes_written_ = 0;
    path_ = path;

    std::string header;
    put_le<std::uint32_t>(header, kSegmentMagic);
    put_le<std::uint32_t>(header, kSegmentFormatVersion);
    put_le<std::uint64_t>(header, segment_id);
    return append(header.data(), header.size());
}

bool SegmentWriter::append(const char* data, std::size_t len) {
    if (fd_ < 0) return false;
    std::size_t done = 0;
    while (done < len) {
        const ssize_t n = ::write(fd_, data + done, len - done);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    bytes_written_ += len;
    return true;
}

bool SegmentWriter::sync() {
    if (fd_ < 0) return false;
#if defined(__APPLE__)
    return ::fsync(fd_) == 0;
#else
    return ::fdatasync(fd_) == 0;
#endif
}

void SegmentWriter::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    path_.clear();
}

}  // namespace sc::store
