// Append-only segment files for the log-structured store.
//
// A segment is a fixed 16-byte header followed by framed records:
//
//   header : u32 magic 'SCLG' | u32 format version | u64 segment id
//   record : u32 crc32(payload) | u32 payload_len | payload
//   payload: u8 type | u64 seq | u64 size | u64 version | u16 url_len | url
//
// All integers are little-endian. `seq` is a store-wide monotonic counter
// that survives compaction rewrites, so replay order (last-writer-wins by
// seq) is independent of which segment a record currently lives in.
//
// Recovery contract: scan_segment() returns every record up to the first
// frame whose checksum or bounds fail, plus the byte offset of that frame.
// A torn tail (partial write at crash) is therefore detected, not fatal —
// the store truncates the file at `valid_bytes` and carries on. A file too
// short to hold a header, or with a wrong magic/version, is rejected whole.
//
// See docs/STORAGE.md for the full format and recovery algorithm.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sc::store {

inline constexpr std::uint32_t kSegmentMagic = 0x474C4353;  // "SCLG" little-endian
inline constexpr std::uint32_t kSegmentFormatVersion = 1;
inline constexpr std::size_t kSegmentHeaderBytes = 16;
inline constexpr std::size_t kRecordFrameBytes = 8;  // crc + payload_len
inline constexpr std::size_t kMaxUrlBytes = 8192;

/// Largest object size a record may claim (1 TiB). The size field feeds
/// capacity accounting; a flipped high bit in an otherwise checksum-valid
/// record must not be able to convince the store it is petabytes full.
inline constexpr std::uint64_t kMaxRecordSizeBytes = 1ull << 40;

enum class RecordType : std::uint8_t {
    insert = 1,  ///< url now cached with {size, version}
    erase = 2,   ///< url no longer cached (eviction or explicit erase)
    touch = 3,   ///< recency promotion; carries full state so any older
                 ///< record for the url may be compacted away
};

struct Record {
    RecordType type = RecordType::insert;
    std::uint64_t seq = 0;
    std::uint64_t size = 0;
    std::uint64_t version = 0;
    std::string url;
};

/// Bytes one encoded record occupies on disk (frame + payload).
[[nodiscard]] std::size_t encoded_record_bytes(std::size_t url_len);

/// Append the framed record to `buf`.
void encode_record(std::string& buf, const Record& rec);

/// Segment file name for an id: "seg-%016llx.log".
[[nodiscard]] std::string segment_file_name(std::uint64_t segment_id);

/// Parse a segment id back out of a file name; nullopt if not a segment.
[[nodiscard]] std::optional<std::uint64_t> parse_segment_file_name(const std::string& name);

/// CRC-32 (IEEE, reflected) of a byte range.
[[nodiscard]] std::uint32_t crc32_ieee(const void* data, std::size_t len);

struct ScanResult {
    std::uint64_t segment_id = 0;
    std::vector<Record> records;
    /// Offset of the first invalid frame (== file size when the log is clean).
    std::uint64_t valid_bytes = 0;
    /// True when the file ends in a torn/corrupt frame (valid_bytes < size).
    bool torn = false;
    /// False when the header itself is missing/foreign: no bytes are usable.
    bool header_ok = false;
};

/// Sequentially scan one segment file. Never throws; a missing or foreign
/// file yields header_ok=false and zero records.
[[nodiscard]] ScanResult scan_segment(const std::string& path);

/// The pure scanning core of scan_segment, over an in-memory image of the
/// file. Split out so recovery logic is testable (and fuzzable) without
/// touching the filesystem. Records that checksum correctly but carry
/// impossible fields (zero seq, empty or control-byte URL, absurd size)
/// stop the scan exactly like a torn frame and count toward
/// sc_store_malformed_records_total.
[[nodiscard]] ScanResult scan_segment_bytes(std::string_view data);

/// One open segment file being appended to. Not thread-safe: the store
/// serializes writers under its io mutex.
class SegmentWriter {
public:
    SegmentWriter() = default;
    ~SegmentWriter();
    SegmentWriter(const SegmentWriter&) = delete;
    SegmentWriter& operator=(const SegmentWriter&) = delete;

    /// Create (or truncate) `path` and write the segment header.
    [[nodiscard]] bool create(const std::string& path, std::uint64_t segment_id);

    /// Append raw pre-encoded bytes. Returns false on a short write (the
    /// store treats that as fatal for the segment and reopens a fresh one).
    [[nodiscard]] bool append(const char* data, std::size_t len);

    /// fdatasync() the file. Returns false on error.
    [[nodiscard]] bool sync();

    void close();

    [[nodiscard]] bool is_open() const { return fd_ >= 0; }
    [[nodiscard]] std::uint64_t segment_id() const { return segment_id_; }
    [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
    [[nodiscard]] const std::string& path() const { return path_; }

private:
    int fd_ = -1;
    std::uint64_t segment_id_ = 0;
    std::uint64_t bytes_written_ = 0;  // includes header
    std::string path_;
};

}  // namespace sc::store
