#include "store/tiered_store.hpp"

#include "util/sc_assert.hpp"

namespace sc::store {

TieredCacheStore::TieredCacheStore(std::unique_ptr<LruCache> l1,
                                   std::unique_ptr<LogStructuredStore> l2)
    : l1_(std::move(l1)), l2_(std::move(l2)) {
    SC_ASSERT(l1_ != nullptr);
    if (l2_ != nullptr) {
        // L1 ⊆ L2: every authoritative removal synchronously drops the RAM
        // copy. Installed before any user hook so the subset invariant does
        // not depend on the owner wiring hooks at all.
        l2_->set_removal_hook([this](const Entry& e) { l1_->erase(e.url); });
        // A recovered directory starts with a cold L1; warm it with the
        // most-recent recovered entries so the first requests after a
        // restart are not all L2 promotions. for_each_entry walks MRU→LRU
        // and L1 inserts push_front, so insertion naturally keeps the
        // hottest entries; stop once L1 is full.
        std::uint64_t budget = l1_->capacity_bytes();
        l2_->for_each_entry([this, &budget](const Entry& e) {
            if (e.size > budget) return;
            if (l1_->insert(e.url, e.size, e.version)) budget -= e.size;
        });
    }
}

CacheStore::Lookup TieredCacheStore::lookup(std::string_view url, std::uint64_t version) {
    if (!l2_) return l1_->lookup(url, version);
    // Fast path: fresh copy in RAM, confirmed against the authority (a
    // racing erase can leave a short-lived orphan; sweep it to a miss).
    if (const auto e = l1_->entry_copy(url); e && e->version == version) {
        if (l2_->cached_version(url) == version) {
            l1_->touch(url);
            l2_->touch(url);  // keeps the durable LRU order faithful
            return Lookup::hit;
        }
        l1_->erase(url);
    }
    const Lookup result = l2_->lookup(url, version);
    switch (result) {
    case Lookup::hit:
        // Promote-on-L2-hit: pull the entry into RAM (best effort — L1 may
        // refuse an object larger than its own budget).
        if (const auto e = l2_->entry_copy(url)) l1_->insert(e->url, e->size, e->version);
        break;
    case Lookup::miss_changed:
        break;  // the removal hook already dropped any stale L1 copy
    case Lookup::miss_absent:
        l1_->erase(url);  // orphan sweep (no-op in the common case)
        break;
    }
    return result;
}

bool TieredCacheStore::contains(std::string_view url) const {
    return authority().contains(url);
}

std::optional<std::uint64_t> TieredCacheStore::cached_version(std::string_view url) const {
    return authority().cached_version(url);
}

std::optional<CacheStore::Entry> TieredCacheStore::entry_copy(std::string_view url) const {
    return authority().entry_copy(url);
}

bool TieredCacheStore::insert(std::string_view url, std::uint64_t size,
                              std::uint64_t version) {
    if (!l2_) return l1_->insert(url, size, version);
    // Write-through, authority first: if the disk tier refuses, nothing is
    // cached anywhere (keeps L1 ⊆ L2). L1 admission is best effort.
    if (!l2_->insert(url, size, version)) return false;
    l1_->insert(url, size, version);
    return true;
}

void TieredCacheStore::touch(std::string_view url) {
    l1_->touch(url);
    if (l2_) l2_->touch(url);
}

bool TieredCacheStore::erase(std::string_view url) {
    if (!l2_) return l1_->erase(url);
    return l2_->erase(url);  // removal hook drops the L1 copy
}

void TieredCacheStore::set_insert_hook(EntryHook hook) {
    authority().set_insert_hook(std::move(hook));
}

void TieredCacheStore::set_removal_hook(EntryHook hook) {
    if (!l2_) {
        l1_->set_removal_hook(std::move(hook));
        return;
    }
    // Compose with the subset-maintenance hook (L1 erase stays first).
    l2_->set_removal_hook([this, user = std::move(hook)](const Entry& e) {
        l1_->erase(e.url);
        if (user) user(e);
    });
}

void TieredCacheStore::for_each_entry(const EntryHook& fn) const {
    authority().for_each_entry(fn);
}

std::size_t TieredCacheStore::document_count() const { return authority().document_count(); }

std::uint64_t TieredCacheStore::used_bytes() const { return authority().used_bytes(); }

std::uint64_t TieredCacheStore::capacity_bytes() const {
    return authority().capacity_bytes();
}

}  // namespace sc::store
