#include "store/log_store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <dirent.h>

#include "util/sc_assert.hpp"

namespace sc::store {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/// List segment ids present in `dir`, ascending.
std::vector<std::uint64_t> list_segment_ids(const std::string& dir) {
    std::vector<std::uint64_t> ids;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ids;
    while (const dirent* ent = ::readdir(d)) {
        if (const auto id = parse_segment_file_name(ent->d_name)) ids.push_back(*id);
    }
    ::closedir(d);
    std::sort(ids.begin(), ids.end());
    return ids;
}

void truncate_file(const std::string& path, std::uint64_t len) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
    if (fd < 0) return;
    while (::ftruncate(fd, static_cast<off_t>(len)) < 0 && errno == EINTR) {}
    ::close(fd);
}

}  // namespace

LogStructuredStore::LogStructuredStore(LogStoreConfig config) : config_(std::move(config)) {
    SC_ASSERT(!config_.dir.empty());
    SC_ASSERT(config_.capacity_bytes > 0);
    SC_ASSERT(config_.segment_target_bytes > kSegmentHeaderBytes);

    const obs::Labels labels{{"dir", config_.dir}};
    segments_gauge_ = obs::metrics().gauge(
        "sc_store_segments", "Log segments on disk (sealed + current)", labels);
    recovered_total_ = obs::metrics().counter(
        "sc_store_recovered_entries_total",
        "Directory entries replayed alive from the log at warm restart", labels);
    compactions_total_ = obs::metrics().counter(
        "sc_store_compactions_total", "Sealed segments rewritten and deleted", labels);
    fsync_seconds_ = obs::metrics().histogram(
        "sc_store_fsync_seconds", "Segment fdatasync latency",
        obs::default_latency_bounds(), labels);
    recovery_read_seconds_ = obs::metrics().histogram(
        "sc_store_recovery_read_seconds", "Warm-restart sequential segment scan time",
        obs::default_latency_bounds(), labels);

    ::mkdir(config_.dir.c_str(), 0755);  // EEXIST is fine; create() fails loudly below

    {
        const MutexLock io(io_mu_);
        const MutexLock ix(index_mu_);
        recover();
    }
    if (config_.background_compaction)
        compactor_ = std::thread([this] { compaction_main(); });
}

LogStructuredStore::~LogStructuredStore() {
    if (compactor_.joinable()) {
        {
            const MutexLock lock(compact_mu_);
            stop_ = true;
        }
        compact_cv_.notify_all();
        compactor_.join();
    }
    const MutexLock io(io_mu_);
    if (writer_.is_open()) (void)writer_.sync();
}

void LogStructuredStore::recover() {
    const auto start = Clock::now();
    const std::vector<std::uint64_t> ids = list_segment_ids(config_.dir);

    // Replay state: last-writer-wins by seq (compaction preserves seq, so a
    // crash between "rewrite" and "unlink old segment" leaves the same seq
    // in two files; >= lets the later scan — the rewritten, surviving copy —
    // claim the entry's live bytes).
    struct Replayed {
        RecordType type;
        std::uint64_t seq, size, version, segment_id;
        std::uint32_t record_bytes;
    };
    std::unordered_map<std::string, Replayed> replay;
    std::uint64_t max_seq = 0;

    for (const std::uint64_t id : ids) {
        const std::string path = config_.dir + "/" + segment_file_name(id);
        ScanResult scan = scan_segment(path);
        if (!scan.header_ok) {
            // Missing/foreign/truncated header: no frame is trustworthy.
            ::unlink(path.c_str());
            continue;
        }
        if (scan.torn) truncate_file(path, scan.valid_bytes);
        segments_[id] = SegmentStats{scan.valid_bytes, 0};
        for (Record& rec : scan.records) {
            max_seq = std::max(max_seq, rec.seq);
            const auto bytes =
                static_cast<std::uint32_t>(encoded_record_bytes(rec.url.size()));
            auto [it, inserted] = replay.try_emplace(
                std::move(rec.url),
                Replayed{rec.type, rec.seq, rec.size, rec.version, id, bytes});
            if (!inserted && rec.seq >= it->second.seq)
                it->second = Replayed{rec.type, rec.seq, rec.size, rec.version, id, bytes};
        }
    }

    // Materialize live entries oldest-seq first so the LRU list front ends
    // up at the highest seq (most recently touched before the crash).
    std::vector<std::pair<std::uint64_t, const std::string*>> live;
    for (const auto& [url, rep] : replay)
        if (rep.type != RecordType::erase) live.emplace_back(rep.seq, &url);
    std::sort(live.begin(), live.end());
    for (const auto& [seq, url] : live) {
        const Replayed& rep = replay.at(*url);
        lru_.push_front(IndexEntry{*url, rep.size, rep.version, rep.seq, rep.segment_id,
                                   rep.record_bytes});
        index_.emplace(std::string_view(lru_.front().url), lru_.begin());
        segments_[rep.segment_id].live_bytes += rep.record_bytes;
        used_bytes_ += rep.size;
    }
    recovered_entries_ = live.size();
    recovered_total_.inc(live.size());
    next_seq_ = max_seq + 1;

    // Always start a fresh segment: never append to a possibly-truncated
    // tail, and recovery-time evictions need somewhere to log tombstones.
    next_segment_id_ = ids.empty() ? 0 : ids.back() + 1;
    rotate_segment_locked();

    // Capacity may have shrunk across the restart (or the recovered set may
    // simply exceed it): shed LRU entries now, through the normal logged path.
    evict_until_fits_locked(0);

    recovery_read_seconds_.observe(seconds_since(start));
    segments_gauge_.set(static_cast<double>(segments_.size()));
}

void LogStructuredStore::append_locked(const Record& rec) {
    encode_buf_.clear();
    encode_record(encode_buf_, rec);
    if (!writer_.append(encode_buf_.data(), encode_buf_.size())) {
        // Disk write failed: the RAM index stays authoritative for the
        // running process; recovery after a crash may lose this op.
        return;
    }
    unsynced_bytes_ += encode_buf_.size();
}

void LogStructuredStore::rotate_segment_locked() {
    if (writer_.is_open()) {
        const auto start = Clock::now();
        (void)writer_.sync();
        fsync_seconds_.observe(seconds_since(start));
        unsynced_bytes_ = 0;
    }
    const std::uint64_t id = next_segment_id_++;
    const std::string path = config_.dir + "/" + segment_file_name(id);
    const bool ok = writer_.create(path, id);
    SC_ASSERT(ok);
    segments_[id] = SegmentStats{kSegmentHeaderBytes, 0};
    segments_gauge_.set(static_cast<double>(segments_.size()));
}

void LogStructuredStore::maybe_rotate_and_sync_locked() {
    segments_[writer_.segment_id()].total_bytes = writer_.bytes_written();
    if (writer_.bytes_written() >= config_.segment_target_bytes) {
        rotate_segment_locked();
        {
            const MutexLock lock(compact_mu_);
            compact_kick_ = true;
        }
        compact_cv_.notify_one();
        return;
    }
    if (unsynced_bytes_ >= config_.fsync_interval_bytes) {
        const auto start = Clock::now();
        (void)writer_.sync();
        fsync_seconds_.observe(seconds_since(start));
        unsynced_bytes_ = 0;
    }
}

void LogStructuredStore::relog_locked(LruList::iterator it, RecordType type) {
    Record rec{type, next_seq_++, it->size, it->version, it->url};
    segments_[it->segment_id].live_bytes -= it->record_bytes;
    it->seq = rec.seq;
    it->segment_id = writer_.segment_id();
    it->record_bytes = static_cast<std::uint32_t>(encoded_record_bytes(it->url.size()));
    append_locked(rec);
    segments_[it->segment_id].live_bytes += it->record_bytes;
    maybe_rotate_and_sync_locked();
}

void LogStructuredStore::remove_entry_locked(LruList::iterator it) {
    append_locked(Record{RecordType::erase, next_seq_++, it->size, it->version, it->url});
    segments_[it->segment_id].live_bytes -= it->record_bytes;
    if (removal_hook_) removal_hook_(Entry{it->url, it->size, it->version});
    used_bytes_ -= it->size;
    index_.erase(std::string_view(it->url));
    lru_.erase(it);
    maybe_rotate_and_sync_locked();
}

void LogStructuredStore::evict_until_fits_locked(std::uint64_t incoming) {
    SC_ASSERT(incoming <= config_.capacity_bytes);
    while (used_bytes_ + incoming > config_.capacity_bytes) {
        SC_ASSERT(!lru_.empty());
        remove_entry_locked(std::prev(lru_.end()));
    }
}

CacheStore::Lookup LogStructuredStore::lookup(std::string_view url, std::uint64_t version) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return Lookup::miss_absent;
    if (it->second->version != version) {
        remove_entry_locked(it->second);
        return Lookup::miss_changed;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    relog_locked(lru_.begin(), RecordType::touch);
    return Lookup::hit;
}

bool LogStructuredStore::contains(std::string_view url) const {
    const MutexLock lock(index_mu_);
    return index_.contains(url);
}

std::optional<std::uint64_t> LogStructuredStore::cached_version(std::string_view url) const {
    const MutexLock lock(index_mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    return it->second->version;
}

std::optional<CacheStore::Entry> LogStructuredStore::entry_copy(std::string_view url) const {
    const MutexLock lock(index_mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    return Entry{it->second->url, it->second->size, it->second->version};
}

bool LogStructuredStore::insert(std::string_view url, std::uint64_t size,
                                std::uint64_t version) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    if (size > config_.max_object_bytes || size > config_.capacity_bytes) return false;
    if (const auto it = index_.find(url); it != index_.end()) {
        // Refresh in place: adjust bytes, update version, promote, re-log.
        used_bytes_ -= it->second->size;
        it->second->size = size;
        it->second->version = version;
        lru_.splice(lru_.begin(), lru_, it->second);
        evict_until_fits_locked(size);
        used_bytes_ += size;
        relog_locked(lru_.begin(), RecordType::insert);
        return true;
    }
    evict_until_fits_locked(size);
    lru_.push_front(IndexEntry{std::string(url), size, version, next_seq_++,
                               writer_.segment_id(),
                               static_cast<std::uint32_t>(encoded_record_bytes(url.size()))});
    index_.emplace(std::string_view(lru_.front().url), lru_.begin());
    segments_[writer_.segment_id()].live_bytes += lru_.front().record_bytes;
    used_bytes_ += size;
    append_locked(
        Record{RecordType::insert, lru_.front().seq, size, version, lru_.front().url});
    if (insert_hook_) insert_hook_(Entry{lru_.front().url, size, version});
    maybe_rotate_and_sync_locked();
    return true;
}

void LogStructuredStore::touch(std::string_view url) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return;
    lru_.splice(lru_.begin(), lru_, it->second);
    relog_locked(lru_.begin(), RecordType::touch);
}

bool LogStructuredStore::erase(std::string_view url) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return false;
    remove_entry_locked(it->second);
    return true;
}

void LogStructuredStore::set_insert_hook(EntryHook hook) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    insert_hook_ = std::move(hook);
}

void LogStructuredStore::set_removal_hook(EntryHook hook) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);
    removal_hook_ = std::move(hook);
}

void LogStructuredStore::for_each_entry(const EntryHook& fn) const {
    const MutexLock lock(index_mu_);
    for (const IndexEntry& e : lru_) fn(Entry{e.url, e.size, e.version});
}

std::size_t LogStructuredStore::document_count() const {
    const MutexLock lock(index_mu_);
    return index_.size();
}

std::uint64_t LogStructuredStore::used_bytes() const {
    const MutexLock lock(index_mu_);
    return used_bytes_;
}

std::uint64_t LogStructuredStore::capacity_bytes() const { return config_.capacity_bytes; }

void LogStructuredStore::flush() {
    const MutexLock io(io_mu_);
    if (!writer_.is_open()) return;
    const auto start = Clock::now();
    (void)writer_.sync();
    fsync_seconds_.observe(seconds_since(start));
    unsynced_bytes_ = 0;
}

std::size_t LogStructuredStore::segment_count() const {
    const MutexLock lock(index_mu_);
    return segments_.size();
}

bool LogStructuredStore::compact_once(bool force) {
    const MutexLock io(io_mu_);
    const MutexLock ix(index_mu_);

    // Oldest sealed segment (never the one being appended to). Oldest-first
    // is the tombstone-safety invariant: an erase record here cannot be
    // shadowing an insert in some even-older segment, so dropping it is safe.
    const std::uint64_t current = writer_.segment_id();
    std::uint64_t victim = current;
    for (const auto& [id, stats] : segments_)
        if (id != current && id < victim) victim = id;
    if (victim == current) return false;

    const SegmentStats stats = segments_.at(victim);
    const double live_ratio =
        stats.total_bytes == 0
            ? 0.0
            : static_cast<double>(stats.live_bytes) / static_cast<double>(stats.total_bytes);
    if (!force && live_ratio >= config_.compact_live_ratio) return false;
    // A fully-live victim would reclaim nothing but its header: skip it
    // unless forced. (Also what lets the drain loop converge at
    // compact_live_ratio = 1.0 — the ratio never reaches 1.0 because the
    // header bytes are never live, so the threshold alone can't say stop.)
    if (!force && stats.live_bytes + kSegmentHeaderBytes >= stats.total_bytes) return false;

    // Rewrite every still-live entry whose winning record sits in the
    // victim into the current segment, PRESERVING seq so replay order and
    // recovered recency are unchanged by compaction.
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
        if (it->segment_id != victim) continue;
        append_locked(Record{RecordType::insert, it->seq, it->size, it->version, it->url});
        segments_[victim].live_bytes -= it->record_bytes;
        it->segment_id = writer_.segment_id();
        it->record_bytes = static_cast<std::uint32_t>(encoded_record_bytes(it->url.size()));
        segments_[writer_.segment_id()].live_bytes += it->record_bytes;
        segments_[writer_.segment_id()].total_bytes = writer_.bytes_written();
    }

    // The rewrites must be durable before the old copies vanish.
    const auto start = Clock::now();
    (void)writer_.sync();
    fsync_seconds_.observe(seconds_since(start));
    unsynced_bytes_ = 0;

    ::unlink((config_.dir + "/" + segment_file_name(victim)).c_str());
    segments_.erase(victim);
    compactions_total_.inc();
    segments_gauge_.set(static_cast<double>(segments_.size()));

    // The rewrite may have pushed the current segment past its target.
    maybe_rotate_and_sync_locked();
    return true;
}

void LogStructuredStore::compaction_main() {
    using namespace std::chrono_literals;
    for (;;) {
        {
            MutexLock lock(compact_mu_);
            while (!stop_ && !compact_kick_) {
                // Periodic poll: erase-driven live-ratio decay happens
                // without a rotation kick.
                if (compact_cv_.wait_until(lock, Clock::now() + 500ms) ==
                    std::cv_status::timeout)
                    break;
            }
            if (stop_) return;
            compact_kick_ = false;
        }
        // Drain, rechecking stop between segments so shutdown never waits
        // behind a long compaction backlog.
        while (compact_once(false)) {
            const MutexLock lock(compact_mu_);
            if (stop_) return;
        }
    }
}

}  // namespace sc::store
