// Two-tier CacheStore: sharded-LRU L1 (RAM) over a log-structured L2
// (disk directory). The L2 is the AUTHORITATIVE directory — document
// counts, byte accounting, capacity, and the insert/removal hooks that
// feed the counting Bloom filter all come from it; L1 is a hot subset
// (invariant: L1 ⊆ L2). Policy:
//
//   * insert      — write-through: L2 first (authoritative admission,
//                   logged), then L1 (best effort; L1 may refuse a large
//                   object the disk tier accepts).
//   * lookup      — L1 first; an L1 hit is confirmed against L2 (an
//                   orphan left by a racing erase is swept to a miss).
//                   On an L2 hit the entry is promoted into L1.
//   * erase       — through L2; its removal hook evicts the L1 copy
//                   synchronously, which is also how a demotion-free L1
//                   stays a subset when L2 evicts under its own pressure.
//   * L1 eviction — demote-on-evict is a no-op by construction: the entry
//                   already lives in the L2 log, so "demotion" is just
//                   dropping the RAM copy.
//
// Lock order: any L2 mutation may re-enter L1 through the removal hook,
// so l2.io_mu_ -> l2.index_mu_ -> l1.shard_mu is the global order; L1
// never calls into L2 while holding a shard lock (its hooks are not used
// here). User hooks installed on this store attach to L2.
//
// A null L2 (disk tier disabled, --disk-dir unset) degrades to an exact
// pass-through of the L1 LruCache — pinned by the reference-model parity
// test in tests/store/tiered_store_test.cpp.
#pragma once

#include <memory>

#include "cache/lru_cache.hpp"
#include "store/log_store.hpp"

namespace sc::store {

class TieredCacheStore final : public CacheStore {
public:
    /// `l1` must be non-null; `l2` may be null (pure RAM pass-through).
    TieredCacheStore(std::unique_ptr<LruCache> l1, std::unique_ptr<LogStructuredStore> l2);

    Lookup lookup(std::string_view url, std::uint64_t version) override;
    [[nodiscard]] bool contains(std::string_view url) const override;
    [[nodiscard]] std::optional<std::uint64_t> cached_version(
        std::string_view url) const override;
    [[nodiscard]] std::optional<Entry> entry_copy(std::string_view url) const override;
    bool insert(std::string_view url, std::uint64_t size, std::uint64_t version) override;
    void touch(std::string_view url) override;
    bool erase(std::string_view url) override;
    void set_insert_hook(EntryHook hook) override;
    void set_removal_hook(EntryHook hook) override;
    void for_each_entry(const EntryHook& fn) const override;
    [[nodiscard]] std::size_t document_count() const override;
    [[nodiscard]] std::uint64_t used_bytes() const override;
    [[nodiscard]] std::uint64_t capacity_bytes() const override;

    [[nodiscard]] LruCache& l1() { return *l1_; }
    [[nodiscard]] LogStructuredStore* l2() { return l2_.get(); }
    [[nodiscard]] const LogStructuredStore* l2() const { return l2_.get(); }
    [[nodiscard]] bool has_disk_tier() const { return l2_ != nullptr; }

private:
    [[nodiscard]] CacheStore& authority() { return l2_ ? static_cast<CacheStore&>(*l2_)
                                                       : static_cast<CacheStore&>(*l1_); }
    [[nodiscard]] const CacheStore& authority() const {
        return l2_ ? static_cast<const CacheStore&>(*l2_)
                   : static_cast<const CacheStore&>(*l1_);
    }

    std::unique_ptr<LruCache> l1_;
    std::unique_ptr<LogStructuredStore> l2_;
};

}  // namespace sc::store
