// Infinite-cache accounting used for Table I of the paper: the "infinite
// cache size" is the total bytes of unique documents in a trace (the
// smallest cache that never replaces), and the maximum hit / byte-hit
// ratios are what a cache of that size achieves under perfect consistency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

namespace sc {

class InfiniteCacheStats {
public:
    /// Feed one request. `version` models the last-modified stamp: a
    /// repeat request with a different version counts as a miss (document
    /// modification), exactly like the paper's consistency rule.
    void add_request(std::string_view url, std::uint64_t size, std::uint64_t version);

    [[nodiscard]] std::uint64_t requests() const { return requests_; }
    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t request_bytes() const { return request_bytes_; }
    [[nodiscard]] std::uint64_t hit_bytes() const { return hit_bytes_; }

    /// Total bytes of unique (url, version) bodies = the infinite cache size.
    [[nodiscard]] std::uint64_t infinite_cache_bytes() const { return unique_bytes_; }
    [[nodiscard]] std::uint64_t unique_documents() const { return docs_.size(); }

    [[nodiscard]] double max_hit_ratio() const;
    [[nodiscard]] double max_byte_hit_ratio() const;

    /// Track the set of distinct clients seen (for the Table I column).
    void add_client(std::uint32_t client_id) { clients_.insert(client_id); }
    [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

private:
    struct Doc {
        std::uint64_t size;
        std::uint64_t version;
    };

    std::unordered_map<std::string, Doc> docs_;
    std::unordered_set<std::uint32_t> clients_;
    std::uint64_t requests_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t request_bytes_ = 0;
    std::uint64_t hit_bytes_ = 0;
    std::uint64_t unique_bytes_ = 0;
};

}  // namespace sc
