// Proxy document cache with the replacement policy of Section II:
// least-recently-used eviction under a byte capacity, documents larger
// than 250 KB never cached, and perfect consistency modeled by treating a
// hit on a document whose last-modified stamp (version) changed as a miss.
//
// Eviction/insert/erase hooks let the owning proxy mirror the directory
// into its counting Bloom filter or other summary representation.
//
// Sharding: the cache is split into `config.shards` (a power of two)
// independent shards, each with its own mutex, LRU list, index, and byte
// budget (capacity_bytes / shards). A URL always lands in the shard its
// hash selects, so workers touching different URLs contend only when they
// collide on a shard. `shards = 1` (the default, used by every simulator)
// is exactly the historical single-list cache: one global LRU order, one
// global byte budget, identical eviction sequence. With more shards the
// LRU order and budget are per-shard — eviction order is only LRU within
// a shard, which is why byte-identical repro runs pin shards = 1.
//
// Thread safety: every public method takes the target shard's mutex, so a
// cache can be shared by the proxy's worker pool without external locking
// (`bench/micro_primitives` measures the contended cost; the
// `sc_cache_shard_lock_wait` histogram records waits observed in
// production). Hooks run under a shard mutex: they must not call back
// into the cache, and any lock they take must be a LEAF lock — one under
// which no code path calls back into the cache or takes further locks.
// The DeltaBatcher journal mutex is the canonical example; routing hook
// work through the journal (rather than into summary/node state guarded
// by coarser locks) is what lets flush callbacks call back into the cache
// safely. See docs/PROTOCOL.md "Locking" and
// tests/core/delta_batcher_test.cpp (deadlock regression).
// All accessors return copies (`entry_copy`, `lru_entry`); no pointer
// into cache-owned storage escapes a shard lock.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/cache_store.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

/// 250 KB in the paper's sense (decimal kilobytes, as proxies configured).
inline constexpr std::uint64_t kDefaultMaxObjectBytes = 250'000;

struct LruCacheConfig {
    std::uint64_t capacity_bytes = 0;
    std::uint64_t max_object_bytes = kDefaultMaxObjectBytes;
    /// Number of independent shards; must be a power of two. 1 (the
    /// default) preserves the historical single-list LRU exactly.
    std::size_t shards = 1;
};

class LruCache final : public CacheStore {
public:
    using Lookup = CacheStore::Lookup;
    using Entry = CacheStore::Entry;

    /// Called with the entry being removed — fires for every removal
    /// (evictions, explicit erase, stale replacement).
    using RemovalHook = CacheStore::EntryHook;

    explicit LruCache(LruCacheConfig config);

    /// Look up `url` expecting `version`; promotes to MRU on hit. A version
    /// mismatch removes the stale entry and reports miss_changed.
    Lookup lookup(std::string_view url, std::uint64_t version) override;

    /// Does the directory contain the URL (any version)? No promotion.
    [[nodiscard]] bool contains(std::string_view url) const override;

    /// Version of a cached URL, if present. No promotion.
    [[nodiscard]] std::optional<std::uint64_t> cached_version(
        std::string_view url) const override;

    /// Copy of the entry for a cached URL, if present. No promotion.
    [[nodiscard]] std::optional<Entry> entry_copy(std::string_view url) const override;

    /// Insert (or refresh) a document as MRU, evicting LRU entries as
    /// needed. Returns false — and caches nothing — if the document
    /// exceeds max_object_bytes or its shard's byte budget
    /// (capacity_bytes / shards; the whole capacity when shards == 1).
    bool insert(std::string_view url, std::uint64_t size, std::uint64_t version) override;

    /// Promote an entry to MRU without a version check (the single-copy
    /// sharing scheme does this on remote hits instead of copying).
    void touch(std::string_view url) override;

    /// Remove an entry if present. Returns true if something was removed.
    bool erase(std::string_view url) override;

    /// Hooks are shared by all shards; setting one locks every shard, so
    /// install hooks before concurrent use (or accept the stall).
    void set_removal_hook(RemovalHook hook) override;
    void set_insert_hook(EntryHook hook) override;

    [[nodiscard]] std::uint64_t used_bytes() const override;
    [[nodiscard]] std::uint64_t capacity_bytes() const override {
        return config_.capacity_bytes;
    }
    [[nodiscard]] std::size_t document_count() const override;
    [[nodiscard]] const LruCacheConfig& config() const { return config_; }
    [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

    /// Copy of the least-recently-used entry (eviction candidate), if any.
    /// With shards == 1 this is THE global LRU entry; with more shards it
    /// is the LRU of the lowest-numbered non-empty shard (each shard
    /// evicts independently, so no single global candidate exists).
    [[nodiscard]] std::optional<Entry> lru_entry() const;

    /// Iterate all entries, shard by shard, MRU to LRU within each shard
    /// (the full MRU→LRU order when shards == 1). Runs under each shard's
    /// mutex in turn: fn must not call back into the cache.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const Shard& s : shards_) {
            const MutexLock lock(s.mu);
            for (const Entry& e : s.order) fn(e);
        }
    }

    /// CacheStore iteration — delegates to for_each (same locking rules).
    void for_each_entry(const EntryHook& fn) const override { for_each(fn); }

    /// Cumulative eviction count across all shards.
    [[nodiscard]] std::uint64_t eviction_count() const;

private:
    using List = std::list<Entry>;

    struct Shard {
        mutable Mutex mu;
        List order SC_GUARDED_BY(mu);  // front = MRU, back = LRU
        // keys view into list nodes
        std::unordered_map<std::string_view, List::iterator> index SC_GUARDED_BY(mu);
        std::uint64_t capacity = 0;  ///< this shard's byte budget (set once, pre-thread)
        std::uint64_t used_bytes SC_GUARDED_BY(mu) = 0;
        std::uint64_t evictions SC_GUARDED_BY(mu) = 0;
    };

    [[nodiscard]] Shard& shard_for(std::string_view url);
    [[nodiscard]] const Shard& shard_for(std::string_view url) const;

    /// Lock a shard, recording the wait in sc_cache_shard_lock_wait when
    /// the fast try_lock loses (the uncontended path stays untimed).
    /// Returned by value: guaranteed copy elision hands the held scoped
    /// capability to the caller, which the analysis tracks via SC_ACQUIRE.
    [[nodiscard]] static MutexLock lock_shard(const Shard& shard) SC_ACQUIRE(shard.mu);

    void remove(Shard& shard, List::iterator it, bool is_eviction) SC_REQUIRES(shard.mu);
    void evict_until_fits(Shard& shard, std::uint64_t incoming) SC_REQUIRES(shard.mu);

    LruCacheConfig config_;
    std::vector<Shard> shards_;   // size is a power of two, never resized
    std::size_t shard_mask_ = 0;  // shards_.size() - 1
    // Hooks are read under any ONE shard's mutex and written only with ALL
    // shard mutexes held — a quorum rule the TSA cannot express, so the
    // two writers carry SC_NO_THREAD_SAFETY_ANALYSIS (see the .cpp).
    RemovalHook on_remove_;
    EntryHook on_insert_;
};

}  // namespace sc
