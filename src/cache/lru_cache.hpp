// Proxy document cache with the replacement policy of Section II:
// least-recently-used eviction under a byte capacity, documents larger
// than 250 KB never cached, and perfect consistency modeled by treating a
// hit on a document whose last-modified stamp (version) changed as a miss.
//
// Eviction/insert/erase hooks let the owning proxy mirror the directory
// into its counting Bloom filter or other summary representation.
//
// Thread safety: every public method takes an internal mutex, so a cache
// can be shared by the proxy's worker pool without external locking
// (`bench/micro_primitives` measures the uncontended cost). Hooks run
// under that mutex: they must not call back into the cache, and any lock
// they take must be a LEAF lock — one under which no code path calls back
// into the cache or takes further locks. The DeltaBatcher journal mutex
// is the canonical example; routing hook work through the journal (rather
// than into summary/node state guarded by coarser locks) is what lets
// flush callbacks call back into the cache safely. See docs/PROTOCOL.md
// "Locking" and tests/core/delta_batcher_test.cpp (deadlock regression).
// The pointer-returning accessors (`peek`, `lru_entry`) remain valid only
// until the next mutating call — concurrent readers should use
// `entry_copy` instead.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "cache/cache_store.hpp"

namespace sc {

/// 250 KB in the paper's sense (decimal kilobytes, as proxies configured).
inline constexpr std::uint64_t kDefaultMaxObjectBytes = 250'000;

struct LruCacheConfig {
    std::uint64_t capacity_bytes = 0;
    std::uint64_t max_object_bytes = kDefaultMaxObjectBytes;
};

class LruCache final : public CacheStore {
public:
    using Lookup = CacheStore::Lookup;
    using Entry = CacheStore::Entry;

    /// Called with the entry being removed — fires for every removal
    /// (evictions, explicit erase, stale replacement).
    using RemovalHook = CacheStore::EntryHook;

    explicit LruCache(LruCacheConfig config);

    /// Look up `url` expecting `version`; promotes to MRU on hit. A version
    /// mismatch removes the stale entry and reports miss_changed.
    Lookup lookup(std::string_view url, std::uint64_t version) override;

    /// Does the directory contain the URL (any version)? No promotion.
    [[nodiscard]] bool contains(std::string_view url) const override;

    /// Version of a cached URL, if present. No promotion.
    [[nodiscard]] std::optional<std::uint64_t> cached_version(
        std::string_view url) const override;

    /// Entry for a cached URL (any version), or nullptr. No promotion;
    /// the pointer is invalidated by the next mutating call.
    [[nodiscard]] const Entry* peek(std::string_view url) const;

    /// Copy of the entry for a cached URL, if present. No promotion. The
    /// race-free form of peek() for use from concurrent workers.
    [[nodiscard]] std::optional<Entry> entry_copy(std::string_view url) const override;

    /// Insert (or refresh) a document as MRU, evicting LRU entries as
    /// needed. Returns false — and caches nothing — if the document
    /// exceeds max_object_bytes or the total capacity.
    bool insert(std::string_view url, std::uint64_t size, std::uint64_t version) override;

    /// Promote an entry to MRU without a version check (the single-copy
    /// sharing scheme does this on remote hits instead of copying).
    void touch(std::string_view url) override;

    /// Remove an entry if present. Returns true if something was removed.
    bool erase(std::string_view url) override;

    void set_removal_hook(RemovalHook hook) override {
        const std::lock_guard lock(mu_);
        on_remove_ = std::move(hook);
    }
    void set_insert_hook(EntryHook hook) override {
        const std::lock_guard lock(mu_);
        on_insert_ = std::move(hook);
    }

    [[nodiscard]] std::uint64_t used_bytes() const override {
        const std::lock_guard lock(mu_);
        return used_bytes_;
    }
    [[nodiscard]] std::uint64_t capacity_bytes() const override {
        return config_.capacity_bytes;
    }
    [[nodiscard]] std::size_t document_count() const override {
        const std::lock_guard lock(mu_);
        return index_.size();
    }
    [[nodiscard]] const LruCacheConfig& config() const { return config_; }

    /// Least-recently-used entry (eviction candidate), if any.
    [[nodiscard]] const Entry* lru_entry() const;

    /// Iterate all entries from MRU to LRU (under the cache mutex: fn
    /// must not call back into the cache).
    template <typename Fn>
    void for_each(Fn&& fn) const {
        const std::lock_guard lock(mu_);
        for (const Entry& e : order_) fn(e);
    }

    /// Cumulative eviction count (capacity pressure indicator).
    [[nodiscard]] std::uint64_t eviction_count() const {
        const std::lock_guard lock(mu_);
        return evictions_;
    }

private:
    using List = std::list<Entry>;

    void remove(List::iterator it, bool is_eviction);
    void evict_until_fits(std::uint64_t incoming);

    mutable std::mutex mu_;
    LruCacheConfig config_;
    List order_;  // front = MRU, back = LRU
    std::unordered_map<std::string_view, List::iterator> index_;  // keys view into list nodes
    std::uint64_t used_bytes_ = 0;
    std::uint64_t evictions_ = 0;
    RemovalHook on_remove_;
    EntryHook on_insert_;
};

}  // namespace sc
