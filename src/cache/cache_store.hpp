// Abstract document-cache directory interface.
//
// The protocol engine (src/core/protocol_engine.hpp) and the live proxy
// talk to the cache through this interface so that the concrete store can
// be swapped — today a single mutex-protected LruCache, later a sharded
// implementation — without touching the protocol layers.
//
// Hook discipline (shared by every implementation): hooks run under the
// store's internal lock(s) and must not call back into the store; any
// lock a hook takes must be a leaf lock (see docs/PROTOCOL.md "Locking").
// The DeltaBatcher journal satisfies this by design.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace sc {

class CacheStore {
public:
    enum class Lookup {
        hit,              ///< present with matching version
        miss_absent,      ///< not in cache
        miss_changed,     ///< present but version differs (stale; evicted)
    };

    struct Entry {
        std::string url;
        std::uint64_t size = 0;
        std::uint64_t version = 0;
    };

    using EntryHook = std::function<void(const Entry&)>;

    virtual ~CacheStore() = default;

    /// Look up `url` expecting `version`; promotes on hit. A version
    /// mismatch removes the stale entry and reports miss_changed.
    virtual Lookup lookup(std::string_view url, std::uint64_t version) = 0;

    /// Does the directory contain the URL (any version)? No promotion.
    [[nodiscard]] virtual bool contains(std::string_view url) const = 0;

    /// Version of a cached URL, if present. No promotion.
    [[nodiscard]] virtual std::optional<std::uint64_t> cached_version(
        std::string_view url) const = 0;

    /// Copy of the entry for a cached URL, if present. No promotion.
    [[nodiscard]] virtual std::optional<Entry> entry_copy(std::string_view url) const = 0;

    /// Insert (or refresh) a document, evicting as needed. Returns false —
    /// and caches nothing — if the document cannot be admitted.
    virtual bool insert(std::string_view url, std::uint64_t size, std::uint64_t version) = 0;

    /// Promote an entry without a version check (single-copy sharing does
    /// this on remote hits instead of copying).
    virtual void touch(std::string_view url) = 0;

    /// Remove an entry if present. Returns true if something was removed.
    virtual bool erase(std::string_view url) = 0;

    /// Fires for every brand-new directory entry (not refreshes).
    virtual void set_insert_hook(EntryHook hook) = 0;

    /// Fires for every removal (evictions, explicit erase, stale replacement).
    virtual void set_removal_hook(EntryHook hook) = 0;

    /// Visit every directory entry (order is implementation-defined). Runs
    /// under the store's internal lock(s): `fn` must not call back into the
    /// store. This is the warm-restart path — SummaryCacheNode rebuilds its
    /// counting Bloom filter by walking a recovered directory.
    virtual void for_each_entry(const EntryHook& fn) const = 0;

    [[nodiscard]] virtual std::size_t document_count() const = 0;
    [[nodiscard]] virtual std::uint64_t used_bytes() const = 0;
    [[nodiscard]] virtual std::uint64_t capacity_bytes() const = 0;
};

}  // namespace sc
