#include "cache/infinite_cache.hpp"

namespace sc {

void InfiniteCacheStats::add_request(std::string_view url, std::uint64_t size,
                                     std::uint64_t version) {
    ++requests_;
    request_bytes_ += size;
    const auto [it, inserted] = docs_.try_emplace(std::string(url), Doc{size, version});
    if (inserted) {
        unique_bytes_ += size;
        return;  // cold miss
    }
    if (it->second.version != version) {
        // Modified document: miss; the new body replaces the old unique copy.
        unique_bytes_ += size - std::min(size, it->second.size);
        if (size > it->second.size) {
            // grew: already accounted above
        } else {
            // shrank or equal: infinite cache keeps the newest body; we
            // keep unique_bytes as the max concurrent footprint, which the
            // paper's "total size of unique documents" effectively is.
        }
        it->second = Doc{size, version};
        return;
    }
    ++hits_;
    hit_bytes_ += size;
}

double InfiniteCacheStats::max_hit_ratio() const {
    return requests_ == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(requests_);
}

double InfiniteCacheStats::max_byte_hit_ratio() const {
    return request_bytes_ == 0
               ? 0.0
               : static_cast<double>(hit_bytes_) / static_cast<double>(request_bytes_);
}

}  // namespace sc
