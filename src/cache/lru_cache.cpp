#include "cache/lru_cache.hpp"

#include "obs/metrics.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

// Process-wide counters shared by every LruCache instance (per-instance
// series would explode in the N-proxy simulators). Handles are raw
// pointers into the leaked global registry, so a single relaxed add per
// event — registration runs once, on first cache operation.
struct LruMetrics {
    obs::Counter hits = obs::metrics().counter(
        "sc_lru_hits_total", "LRU document-cache lookups that hit (all instances)");
    obs::Counter misses = obs::metrics().counter(
        "sc_lru_misses_total", "LRU lookups that missed (absent or stale version)");
    obs::Counter evictions = obs::metrics().counter(
        "sc_lru_evictions_total", "Documents evicted by capacity pressure");
    obs::Counter inserted_bytes = obs::metrics().counter(
        "sc_lru_inserted_bytes_total", "Bytes admitted into LRU caches");
};

LruMetrics& lru_metrics() {
    static LruMetrics m;
    return m;
}

}  // namespace

LruCache::LruCache(LruCacheConfig config) : config_(config) {
    SC_ASSERT(config_.capacity_bytes > 0);
}

LruCache::Lookup LruCache::lookup(std::string_view url, std::uint64_t version) {
    const std::lock_guard lock(mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) {
        lru_metrics().misses.inc();
        return Lookup::miss_absent;
    }
    if (it->second->version != version) {
        // Perfect-consistency model: a changed document is a miss and the
        // stale copy leaves the cache (the caller re-fetches and re-inserts).
        remove(it->second, /*is_eviction=*/false);
        lru_metrics().misses.inc();
        return Lookup::miss_changed;
    }
    order_.splice(order_.begin(), order_, it->second);
    lru_metrics().hits.inc();
    return Lookup::hit;
}

bool LruCache::contains(std::string_view url) const {
    const std::lock_guard lock(mu_);
    return index_.contains(url);
}

std::optional<std::uint64_t> LruCache::cached_version(std::string_view url) const {
    const std::lock_guard lock(mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    return it->second->version;
}

bool LruCache::insert(std::string_view url, std::uint64_t size, std::uint64_t version) {
    const std::lock_guard lock(mu_);
    if (size > config_.max_object_bytes || size > config_.capacity_bytes) return false;
    if (const auto it = index_.find(url); it != index_.end()) {
        // Refresh in place: adjust bytes, update version, promote.
        used_bytes_ -= it->second->size;
        it->second->size = size;
        it->second->version = version;
        order_.splice(order_.begin(), order_, it->second);
        evict_until_fits(size);
        used_bytes_ += size;
        lru_metrics().inserted_bytes.inc(size);
        return true;
    }
    evict_until_fits(size);
    order_.push_front(Entry{std::string(url), size, version});
    index_.emplace(std::string_view(order_.front().url), order_.begin());
    used_bytes_ += size;
    lru_metrics().inserted_bytes.inc(size);
    if (on_insert_) on_insert_(order_.front());
    return true;
}

void LruCache::touch(std::string_view url) {
    const std::lock_guard lock(mu_);
    if (const auto it = index_.find(url); it != index_.end())
        order_.splice(order_.begin(), order_, it->second);
}

bool LruCache::erase(std::string_view url) {
    const std::lock_guard lock(mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return false;
    remove(it->second, /*is_eviction=*/false);
    return true;
}

const LruCache::Entry* LruCache::peek(std::string_view url) const {
    const std::lock_guard lock(mu_);
    const auto it = index_.find(url);
    return it == index_.end() ? nullptr : &*it->second;
}

std::optional<LruCache::Entry> LruCache::entry_copy(std::string_view url) const {
    const std::lock_guard lock(mu_);
    const auto it = index_.find(url);
    if (it == index_.end()) return std::nullopt;
    return *it->second;
}

const LruCache::Entry* LruCache::lru_entry() const {
    const std::lock_guard lock(mu_);
    return order_.empty() ? nullptr : &order_.back();
}

void LruCache::remove(List::iterator it, bool is_eviction) {
    if (is_eviction) {
        ++evictions_;
        lru_metrics().evictions.inc();
    }
    if (on_remove_) on_remove_(*it);
    used_bytes_ -= it->size;
    index_.erase(std::string_view(it->url));
    order_.erase(it);
}

void LruCache::evict_until_fits(std::uint64_t incoming) {
    SC_ASSERT(incoming <= config_.capacity_bytes);
    while (used_bytes_ + incoming > config_.capacity_bytes) {
        SC_ASSERT(!order_.empty());
        remove(std::prev(order_.end()), /*is_eviction=*/true);
    }
}

}  // namespace sc
