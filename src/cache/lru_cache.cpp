#include "cache/lru_cache.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

// Process-wide counters shared by every LruCache instance (per-instance
// series would explode in the N-proxy simulators). Handles are raw
// pointers into the leaked global registry, so a single relaxed add per
// event — registration runs once, on first cache operation.
struct LruMetrics {
    obs::Counter hits = obs::metrics().counter(
        "sc_lru_hits_total", "LRU document-cache lookups that hit (all instances)");
    obs::Counter misses = obs::metrics().counter(
        "sc_lru_misses_total", "LRU lookups that missed (absent or stale version)");
    obs::Counter evictions = obs::metrics().counter(
        "sc_lru_evictions_total", "Documents evicted by capacity pressure");
    obs::Counter inserted_bytes = obs::metrics().counter(
        "sc_lru_inserted_bytes_total", "Bytes admitted into LRU caches");
    obs::Histogram shard_lock_wait = obs::metrics().histogram(
        "sc_cache_shard_lock_wait",
        "Seconds spent blocked on a cache shard mutex (contended acquisitions only)",
        {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1});
};

LruMetrics& lru_metrics() {
    static LruMetrics m;
    return m;
}

// FNV-1a, duplicated from sc_bloom so the cache library keeps its narrow
// dependency set (sc_util + sc_obs only). Must stay the 32-bit FNV-1a
// everyone expects: the shard of a URL is observable through for_each
// order and per-shard eviction.
std::uint32_t shard_hash(std::string_view url) {
    std::uint32_t h = 0x811c9dc5u;
    for (const char c : url) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x01000193u;
    }
    return h;
}

}  // namespace

LruCache::LruCache(LruCacheConfig config)
    : config_(config), shards_(config.shards), shard_mask_(config.shards - 1) {
    SC_ASSERT(config_.capacity_bytes > 0);
    SC_ASSERT(config_.shards >= 1 && std::has_single_bit(config_.shards));
    // Spread the byte budget evenly; the first capacity % shards shards
    // absorb the remainder so the totals always add up to capacity_bytes.
    const std::uint64_t base = config_.capacity_bytes / config_.shards;
    const std::uint64_t extra = config_.capacity_bytes % config_.shards;
    for (std::size_t i = 0; i < shards_.size(); ++i)
        shards_[i].capacity = base + (i < extra ? 1 : 0);
}

LruCache::Shard& LruCache::shard_for(std::string_view url) {
    return shards_[shard_mask_ == 0 ? 0 : (shard_hash(url) & shard_mask_)];
}

const LruCache::Shard& LruCache::shard_for(std::string_view url) const {
    return shards_[shard_mask_ == 0 ? 0 : (shard_hash(url) & shard_mask_)];
}

MutexLock LruCache::lock_shard(const Shard& shard) {
    return MutexLock(shard.mu,
                     [](double waited) { lru_metrics().shard_lock_wait.observe(waited); });
}

LruCache::Lookup LruCache::lookup(std::string_view url, std::uint64_t version) {
    Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    const auto it = s.index.find(url);
    if (it == s.index.end()) {
        lru_metrics().misses.inc();
        return Lookup::miss_absent;
    }
    if (it->second->version != version) {
        // Perfect-consistency model: a changed document is a miss and the
        // stale copy leaves the cache (the caller re-fetches and re-inserts).
        remove(s, it->second, /*is_eviction=*/false);
        lru_metrics().misses.inc();
        return Lookup::miss_changed;
    }
    s.order.splice(s.order.begin(), s.order, it->second);
    lru_metrics().hits.inc();
    return Lookup::hit;
}

bool LruCache::contains(std::string_view url) const {
    const Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    return s.index.contains(url);
}

std::optional<std::uint64_t> LruCache::cached_version(std::string_view url) const {
    const Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    const auto it = s.index.find(url);
    if (it == s.index.end()) return std::nullopt;
    return it->second->version;
}

bool LruCache::insert(std::string_view url, std::uint64_t size, std::uint64_t version) {
    Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    if (size > config_.max_object_bytes || size > s.capacity) return false;
    if (const auto it = s.index.find(url); it != s.index.end()) {
        // Refresh in place: adjust bytes, update version, promote.
        s.used_bytes -= it->second->size;
        it->second->size = size;
        it->second->version = version;
        s.order.splice(s.order.begin(), s.order, it->second);
        evict_until_fits(s, size);
        s.used_bytes += size;
        lru_metrics().inserted_bytes.inc(size);
        return true;
    }
    evict_until_fits(s, size);
    s.order.push_front(Entry{std::string(url), size, version});
    s.index.emplace(std::string_view(s.order.front().url), s.order.begin());
    s.used_bytes += size;
    lru_metrics().inserted_bytes.inc(size);
    if (on_insert_) on_insert_(s.order.front());
    return true;
}

void LruCache::touch(std::string_view url) {
    Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    if (const auto it = s.index.find(url); it != s.index.end())
        s.order.splice(s.order.begin(), s.order, it->second);
}

bool LruCache::erase(std::string_view url) {
    Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    const auto it = s.index.find(url);
    if (it == s.index.end()) return false;
    remove(s, it->second, /*is_eviction=*/false);
    return true;
}

std::optional<LruCache::Entry> LruCache::entry_copy(std::string_view url) const {
    const Shard& s = shard_for(url);
    const auto lock = lock_shard(s);
    const auto it = s.index.find(url);
    if (it == s.index.end()) return std::nullopt;
    return *it->second;
}

std::optional<LruCache::Entry> LruCache::lru_entry() const {
    for (const Shard& s : shards_) {
        const auto lock = lock_shard(s);
        if (!s.order.empty()) return s.order.back();
    }
    return std::nullopt;
}

namespace {

/// Holds every shard mutex at once (hook installation only). A runtime
/// count of locks is outside what the TSA can model, so acquisition and
/// release are opted out of the analysis; the invariant — index order in,
/// reverse order out, nothing else ever takes two shard locks — is
/// enforced by this being the only multi-shard lock site.
template <typename Shards>
class AllShardsLock {
public:
    explicit AllShardsLock(const Shards& shards) SC_NO_THREAD_SAFETY_ANALYSIS
        : shards_(shards) {
        for (const auto& s : shards_) s.mu.lock();
    }
    ~AllShardsLock() SC_NO_THREAD_SAFETY_ANALYSIS {
        for (auto it = shards_.rbegin(); it != shards_.rend(); ++it) it->mu.unlock();
    }
    AllShardsLock(const AllShardsLock&) = delete;
    AllShardsLock& operator=(const AllShardsLock&) = delete;

private:
    const Shards& shards_;
};

}  // namespace

void LruCache::set_removal_hook(RemovalHook hook) {
    // Hooks are read under any single shard's lock, so the write must
    // exclude every shard. Locked in index order; nothing else takes two
    // shard locks, so the order cannot deadlock.
    const AllShardsLock lock(shards_);
    on_remove_ = std::move(hook);
}

void LruCache::set_insert_hook(EntryHook hook) {
    const AllShardsLock lock(shards_);
    on_insert_ = std::move(hook);
}

std::uint64_t LruCache::used_bytes() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
        const auto lock = lock_shard(s);
        total += s.used_bytes;
    }
    return total;
}

std::size_t LruCache::document_count() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
        const auto lock = lock_shard(s);
        total += s.index.size();
    }
    return total;
}

std::uint64_t LruCache::eviction_count() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
        const auto lock = lock_shard(s);
        total += s.evictions;
    }
    return total;
}

void LruCache::remove(Shard& shard, List::iterator it, bool is_eviction) {
    if (is_eviction) {
        ++shard.evictions;
        lru_metrics().evictions.inc();
    }
    if (on_remove_) on_remove_(*it);
    shard.used_bytes -= it->size;
    shard.index.erase(std::string_view(it->url));
    shard.order.erase(it);
}

void LruCache::evict_until_fits(Shard& shard, std::uint64_t incoming) {
    SC_ASSERT(incoming <= shard.capacity);
    while (shard.used_bytes + incoming > shard.capacity) {
        SC_ASSERT(!shard.order.empty());
        remove(shard, std::prev(shard.order.end()), /*is_eviction=*/true);
    }
}

}  // namespace sc
