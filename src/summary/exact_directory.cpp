#include "summary/exact_directory.hpp"

#include "summary/message_costs.hpp"

namespace sc {

void ExactDirectorySummary::on_insert(std::string_view url) {
    const Md5Digest sig = md5(url);
    if (current_.insert(sig).second) pending_.push_back({sig, true});
}

void ExactDirectorySummary::on_erase(std::string_view url) {
    const Md5Digest sig = md5(url);
    if (current_.erase(sig) > 0) pending_.push_back({sig, false});
}

bool ExactDirectorySummary::published_may_contain(std::string_view url) const {
    return published_.contains(md5(url));
}

bool ExactDirectorySummary::current_may_contain(std::string_view url) const {
    return current_.contains(md5(url));
}

std::uint64_t ExactDirectorySummary::publish() {
    if (pending_.empty()) return 0;
    for (const Change& c : pending_) {
        if (c.added)
            published_.insert(c.sig);
        else
            published_.erase(c.sig);
    }
    const std::uint64_t bytes =
        kDirectoryUpdateHeaderBytes + kDirectoryUpdatePerChangeBytes * pending_.size();
    pending_.clear();
    return bytes;
}

std::uint64_t ExactDirectorySummary::pending_changes() const { return pending_.size(); }

std::uint64_t ExactDirectorySummary::replica_memory_bytes() const {
    // 16 bytes of signature per cached document, as the paper accounts it.
    return 16 * current_.size();
}

std::uint64_t ExactDirectorySummary::owner_memory_bytes() const {
    // The owner keeps its own signature set plus the pending change list.
    return 16 * current_.size() + 17 * pending_.size();
}

}  // namespace sc
