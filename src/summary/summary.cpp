#include "summary/summary.hpp"

#include "summary/bloom_summary.hpp"
#include "summary/exact_directory.hpp"
#include "summary/server_name.hpp"

namespace sc {

const char* summary_kind_name(SummaryKind kind) {
    switch (kind) {
        case SummaryKind::exact_directory: return "exact-directory";
        case SummaryKind::server_name: return "server-name";
        case SummaryKind::bloom: return "bloom";
    }
    return "?";
}

std::unique_ptr<DirectorySummary> make_summary(SummaryKind kind, std::uint64_t expected_docs,
                                               const BloomSummaryConfig& bloom_cfg) {
    switch (kind) {
        case SummaryKind::exact_directory: return std::make_unique<ExactDirectorySummary>();
        case SummaryKind::server_name: return std::make_unique<ServerNameSummary>();
        case SummaryKind::bloom: return std::make_unique<BloomSummary>(expected_docs, bloom_cfg);
    }
    return nullptr;
}

}  // namespace sc
