// Server-name summary (paper Section V-B): the list of distinct server
// host names appearing among cached URLs. With the web's ~10:1 ratio of
// URLs to servers it is compact, but any URL on a listed server probes as
// a hit, so its false-hit ratio is an order of magnitude above Bloom
// filters (Figure 6) — this representation exists as the paper's negative
// result and as a baseline in Figures 5-8 / Table III.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "summary/summary.hpp"

namespace sc {

class ServerNameSummary final : public DirectorySummary {
public:
    ServerNameSummary() = default;

    void on_insert(std::string_view url) override;
    void on_erase(std::string_view url) override;
    [[nodiscard]] bool published_may_contain(std::string_view url) const override;
    [[nodiscard]] bool current_may_contain(std::string_view url) const override;
    std::uint64_t publish() override;
    [[nodiscard]] std::uint64_t pending_changes() const override;
    [[nodiscard]] std::uint64_t replica_memory_bytes() const override;
    [[nodiscard]] std::uint64_t owner_memory_bytes() const override;
    [[nodiscard]] SummaryKind kind() const override { return SummaryKind::server_name; }

    [[nodiscard]] std::size_t distinct_servers() const { return refcount_.size(); }

private:
    struct Change {
        std::string host;
        bool added;
    };

    std::unordered_map<std::string, std::uint32_t> refcount_;  // host -> cached docs on it
    std::unordered_set<std::string> published_;
    std::vector<Change> pending_;
};

}  // namespace sc
