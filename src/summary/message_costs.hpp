// The byte model of Section V-D, used to estimate inter-proxy bandwidth
// (Figure 8): queries are small and per-miss; summary updates are
// occasional bursts whose size depends on the representation.
#pragma once

#include <cstdint>

namespace sc {

/// ICP-style query/reply: 20-byte header + 50-byte average URL.
inline constexpr std::uint64_t kQueryHeaderBytes = 20;
inline constexpr std::uint64_t kAverageUrlBytes = 50;
inline constexpr std::uint64_t kQueryMessageBytes = kQueryHeaderBytes + kAverageUrlBytes;

/// Exact-directory / server-name update: 20-byte header + 16 bytes per change.
inline constexpr std::uint64_t kDirectoryUpdateHeaderBytes = 20;
inline constexpr std::uint64_t kDirectoryUpdatePerChangeBytes = 16;

/// Bloom-filter update: 32-byte SC-ICP header (Section VI-A) + 4 bytes per
/// bit flip, or header + the full bit array when that is smaller.
inline constexpr std::uint64_t kBloomUpdateHeaderBytes = 32;
inline constexpr std::uint64_t kBloomUpdatePerFlipBytes = 4;

/// The paper's average-document assumption used for sizing summaries:
/// expected cached documents = cache bytes / 8 KB.
inline constexpr std::uint64_t kAverageDocumentBytes = 8 * 1024;

}  // namespace sc
