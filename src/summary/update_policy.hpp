// When to broadcast a summary update (paper Section V-A).
//
// The paper's criterion: defer until the fraction of cached documents not
// yet reflected in the published summary reaches a threshold (0.1%-10%;
// 1%-10% recommended). A time-interval policy is equivalent — intervals
// convert to thresholds through the request rate and miss ratio — so both
// are provided; the threshold form is what the simulations use.
#pragma once

#include <cstdint>

#include "util/sc_assert.hpp"

namespace sc {

class UpdateThresholdPolicy {
public:
    /// fraction == 0 means publish after every change (the no-delay
    /// baseline at the top of Figure 2).
    explicit UpdateThresholdPolicy(double fraction) : fraction_(fraction) {
        SC_ASSERT(fraction >= 0.0 && fraction <= 1.0);
    }

    /// Record that a document entered the cache that the published summary
    /// does not reflect.
    void on_new_document() { ++unreflected_; }

    /// Should we broadcast now, given the current directory size?
    [[nodiscard]] bool should_publish(std::uint64_t cached_docs) const {
        if (unreflected_ == 0) return false;
        if (fraction_ == 0.0) return true;
        return static_cast<double>(unreflected_) >=
               fraction_ * static_cast<double>(cached_docs);
    }

    /// Reset after a broadcast.
    void on_published() { unreflected_ = 0; }

    [[nodiscard]] std::uint64_t unreflected() const { return unreflected_; }
    [[nodiscard]] double fraction() const { return fraction_; }

private:
    double fraction_;
    std::uint64_t unreflected_ = 0;
};

/// Time-interval alternative (Section V-A): broadcast at fixed wall-clock
/// intervals, regardless of how many documents changed. The false-miss
/// behaviour is equivalent to a threshold via interval_to_threshold().
class TimeIntervalPolicy {
public:
    explicit TimeIntervalPolicy(double interval_seconds) : interval_(interval_seconds) {
        SC_ASSERT(interval_seconds > 0.0);
    }

    void on_new_document() { ++unreflected_; }

    /// Should we broadcast at time `now` (seconds)?
    [[nodiscard]] bool should_publish(double now) const {
        return unreflected_ > 0 && now - last_publish_ >= interval_;
    }

    void on_published(double now) {
        unreflected_ = 0;
        last_publish_ = now;
    }

    [[nodiscard]] std::uint64_t unreflected() const { return unreflected_; }
    [[nodiscard]] double interval() const { return interval_; }

private:
    double interval_;
    double last_publish_ = 0.0;
    std::uint64_t unreflected_ = 0;
};

/// Convert a time-based update interval into the equivalent threshold
/// fraction (Section V-A): new documents per interval over cached docs.
/// new-docs/sec = request rate * miss ratio (each miss inserts one doc).
[[nodiscard]] constexpr double interval_to_threshold(double interval_seconds,
                                                     double request_rate,
                                                     double miss_ratio,
                                                     double cached_docs) {
    if (cached_docs <= 0.0) return 1.0;
    return interval_seconds * request_rate * miss_ratio / cached_docs;
}

/// The reverse conversion: threshold fraction to seconds between updates.
[[nodiscard]] constexpr double threshold_to_interval(double fraction, double request_rate,
                                                     double miss_ratio, double cached_docs) {
    const double new_per_sec = request_rate * miss_ratio;
    if (new_per_sec <= 0.0) return 0.0;
    return fraction * cached_docs / new_per_sec;
}

}  // namespace sc
