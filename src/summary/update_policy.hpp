// Update-delay conversions (paper Section V-A).
//
// The paper's criterion: defer summary broadcasts until the fraction of
// cached documents not yet reflected in the published summary reaches a
// threshold (0.1%-10%; 1%-10% recommended). A time-interval policy is
// equivalent — intervals convert to thresholds through the request rate
// and miss ratio. The policies themselves live in core::DeltaBatcher
// (src/core/delta_batcher.hpp), which both the simulators and the live
// proxy drive; this header keeps the closed-form conversions between the
// two parameterizations.
#pragma once

namespace sc {

/// Convert a time-based update interval into the equivalent threshold
/// fraction (Section V-A): new documents per interval over cached docs.
/// new-docs/sec = request rate * miss ratio (each miss inserts one doc).
[[nodiscard]] constexpr double interval_to_threshold(double interval_seconds,
                                                     double request_rate,
                                                     double miss_ratio,
                                                     double cached_docs) {
    if (cached_docs <= 0.0) return 1.0;
    return interval_seconds * request_rate * miss_ratio / cached_docs;
}

/// The reverse conversion: threshold fraction to seconds between updates.
[[nodiscard]] constexpr double threshold_to_interval(double fraction, double request_rate,
                                                     double miss_ratio, double cached_docs) {
    const double new_per_sec = request_rate * miss_ratio;
    if (new_per_sec <= 0.0) return 0.0;
    return fraction * cached_docs / new_per_sec;
}

}  // namespace sc
