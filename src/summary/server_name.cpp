#include "summary/server_name.hpp"

#include "summary/message_costs.hpp"
#include "trace/request.hpp"
#include "util/sc_assert.hpp"

namespace sc {

void ServerNameSummary::on_insert(std::string_view url) {
    const std::string host(url_host(url));
    auto [it, inserted] = refcount_.try_emplace(host, 0);
    if (it->second++ == 0) pending_.push_back({host, true});
}

void ServerNameSummary::on_erase(std::string_view url) {
    const std::string host(url_host(url));
    const auto it = refcount_.find(host);
    if (it == refcount_.end()) return;  // erase of an untracked URL: no-op
    SC_ASSERT(it->second > 0);
    if (--it->second == 0) {
        refcount_.erase(it);
        pending_.push_back({host, false});
    }
}

bool ServerNameSummary::published_may_contain(std::string_view url) const {
    return published_.contains(std::string(url_host(url)));
}

bool ServerNameSummary::current_may_contain(std::string_view url) const {
    return refcount_.contains(std::string(url_host(url)));
}

std::uint64_t ServerNameSummary::publish() {
    if (pending_.empty()) return 0;
    for (Change& c : pending_) {
        if (c.added)
            published_.insert(std::move(c.host));
        else
            published_.erase(c.host);
    }
    const std::uint64_t bytes =
        kDirectoryUpdateHeaderBytes + kDirectoryUpdatePerChangeBytes * pending_.size();
    pending_.clear();
    return bytes;
}

std::uint64_t ServerNameSummary::pending_changes() const { return pending_.size(); }

std::uint64_t ServerNameSummary::replica_memory_bytes() const {
    // The paper's model charges 16 bytes per listed server name.
    return 16 * refcount_.size();
}

std::uint64_t ServerNameSummary::owner_memory_bytes() const {
    // Host strings plus a 4-byte refcount each.
    std::uint64_t bytes = 0;
    for (const auto& [host, _] : refcount_) bytes += host.size() + 4;
    return bytes;
}

}  // namespace sc
