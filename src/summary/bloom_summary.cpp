#include "summary/bloom_summary.hpp"

#include <algorithm>

#include "summary/message_costs.hpp"
#include "util/sc_assert.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

std::uint32_t bloom_table_bits(std::uint64_t expected_docs, std::uint32_t load_factor) {
    SC_ASSERT(load_factor >= 1);
    const std::uint64_t raw = std::max<std::uint64_t>(64, expected_docs * load_factor);
    const std::uint64_t rounded = (raw + 63) / 64 * 64;
    SC_ASSERT(rounded <= 0x7fffffffull);  // wire format caps indexes at 2^31
    return static_cast<std::uint32_t>(rounded);
}

namespace {

HashSpec make_spec(std::uint64_t expected_docs, const BloomSummaryConfig& config) {
    HashSpec spec;
    spec.function_num = config.hash_functions;
    spec.function_bits = 32;
    spec.table_bits = bloom_table_bits(expected_docs, config.load_factor);
    return spec;
}

}  // namespace

BloomSummary::BloomSummary(std::uint64_t expected_docs, const BloomSummaryConfig& config)
    : config_(config),
      counting_(make_spec(expected_docs, config), config.counter_bits),
      published_(counting_.spec()) {}

void BloomSummary::on_insert(std::string_view url) { counting_.insert(url); }

void BloomSummary::on_erase(std::string_view url) { counting_.erase(url); }

bool BloomSummary::published_may_contain(std::string_view url) const {
    return published_.may_contain(url);
}

SC_HOT_PATH SummaryProbe BloomSummary::make_probe(std::string_view url) const {
    SummaryProbe probe{url, &counting_.spec(), {}};
    bloom_indexes(url, counting_.spec(), probe.indexes);
    return probe;
}

SC_HOT_PATH bool BloomSummary::predicts(const SummaryProbe& probe) const {
    if (probe.spec != nullptr && *probe.spec == published_.spec())
        return published_.may_contain(probe.indexes.span());
    return published_.may_contain(probe.url);
}

bool BloomSummary::current_may_contain(std::string_view url) const {
    return counting_.may_contain(url);
}

std::uint64_t BloomSummary::publish() {
    const DeltaLog delta = counting_.take_delta();
    if (delta.empty()) return 0;
    for (const BitFlip& f : delta.flips()) published_.set_bit(f.index, f.value);
    // Wire cost: whichever encoding is smaller (Section VI-A both exist).
    const std::uint64_t delta_bytes =
        kBloomUpdateHeaderBytes + kBloomUpdatePerFlipBytes * delta.size();
    const std::uint64_t full_bytes = kBloomUpdateHeaderBytes + published_.size_bytes();
    return std::min(delta_bytes, full_bytes);
}

std::uint64_t BloomSummary::pending_changes() const { return counting_.pending_delta_size(); }

std::uint64_t BloomSummary::replica_memory_bytes() const {
    return counting_.spec().table_bits / 8;
}

std::uint64_t BloomSummary::owner_memory_bytes() const {
    // Counters (counter_bits per slot) plus the derived bit array.
    return counting_.spec().table_bits * config_.counter_bits / 8 +
           counting_.spec().table_bits / 8;
}

}  // namespace sc
