// Directory-summary representations (paper Section V-B/V-D).
//
// A proxy mirrors its cache directory into a DirectorySummary. The summary
// has two views:
//   * the *current* view, updated synchronously with every cache insert
//     and eviction, and
//   * the *published* view — the snapshot remote proxies hold, which lags
//     until publish() is called (the update-threshold policy decides when).
// Remote probes always ask the published view; the gap between the views
// is exactly what produces false misses and (for delayed deletions) false
// hits, independent of any representation-induced false positives.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bloom/hash_spec.hpp"

namespace sc {

enum class SummaryKind {
    exact_directory,  ///< 16-byte MD5 signature per URL
    server_name,      ///< list of distinct server-name components
    bloom,            ///< Bloom filter (the paper's recommendation)
};

[[nodiscard]] const char* summary_kind_name(SummaryKind kind);

/// A URL prepared for probing many peer summaries. A summary's
/// make_probe() may attach precomputed state (Bloom indexes plus the
/// hash spec they were computed under) so the URL is hashed once per
/// request, not once per peer; predicts() on a same-spec summary then
/// skips rehashing. Summaries that share nothing fall back to the URL.
struct SummaryProbe {
    std::string_view url;
    const HashSpec* spec = nullptr;  ///< spec `indexes` was computed under
    BloomIndexes indexes;            ///< bit-array indexes, if spec != nullptr (inline, no heap)
};

class DirectorySummary {
public:
    virtual ~DirectorySummary() = default;

    /// Mirror a document entering the cache directory.
    virtual void on_insert(std::string_view url) = 0;

    /// Mirror a document leaving the cache directory.
    virtual void on_erase(std::string_view url) = 0;

    /// What a remote proxy's replica would answer right now.
    [[nodiscard]] virtual bool published_may_contain(std::string_view url) const = 0;

    /// Prepare `url` for probing a set of peers whose summaries were built
    /// like this one. The base implementation carries only the URL.
    [[nodiscard]] virtual SummaryProbe make_probe(std::string_view url) const {
        return SummaryProbe{url, nullptr, {}};
    }

    /// Would this summary's published view predict the probe's URL is
    /// cached? Equivalent to published_may_contain(probe.url) but may use
    /// the probe's precomputed state (see BloomSummary).
    [[nodiscard]] virtual bool predicts(const SummaryProbe& probe) const {
        return published_may_contain(probe.url);
    }

    /// Current (unpublished) view — useful for tests and diagnostics.
    [[nodiscard]] virtual bool current_may_contain(std::string_view url) const = 0;

    /// Propagate pending changes into the published view; returns the size
    /// in bytes of the update message this would send to ONE peer (0 when
    /// nothing changed, in which case no message is sent).
    virtual std::uint64_t publish() = 0;

    /// Changes accumulated since the last publish.
    [[nodiscard]] virtual std::uint64_t pending_changes() const = 0;

    /// DRAM one remote proxy spends to replicate this summary.
    [[nodiscard]] virtual std::uint64_t replica_memory_bytes() const = 0;

    /// DRAM the owner spends maintaining it (counters etc.).
    [[nodiscard]] virtual std::uint64_t owner_memory_bytes() const = 0;

    [[nodiscard]] virtual SummaryKind kind() const = 0;
};

/// Sizing parameters for Bloom summaries (see bloom_summary.hpp for the
/// concrete class). `load_factor` is bits per expected cached document —
/// the paper evaluates 8, 16, and 32 with 4 hash functions.
struct BloomSummaryConfig {
    std::uint32_t load_factor = 16;
    std::uint16_t hash_functions = 4;
    unsigned counter_bits = 4;
};

/// Create a summary sized for a cache expected to hold `expected_docs`
/// documents (the paper derives this as cache bytes / 8 KB).
[[nodiscard]] std::unique_ptr<DirectorySummary> make_summary(SummaryKind kind,
                                                             std::uint64_t expected_docs,
                                                             const BloomSummaryConfig& bloom_cfg = {});

}  // namespace sc
