// Bloom-filter summary — the paper's recommended representation.
//
// The owner maintains a counting Bloom filter (insertions and cache
// replacements adjust 4-bit counters); remote proxies hold only the
// derived bit array. publish() drains the bit-flip log into the published
// replica and charges the cheaper of the two wire encodings of Section
// VI-A: delta (32-byte header + 4 bytes per flip) or the full bit array.
#pragma once

#include <cstdint>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "summary/summary.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

class BloomSummary final : public DirectorySummary {
public:
    /// Sized per the paper: table bits = load_factor * expected_docs.
    BloomSummary(std::uint64_t expected_docs, const BloomSummaryConfig& config);

    void on_insert(std::string_view url) override;
    void on_erase(std::string_view url) override;
    [[nodiscard]] bool published_may_contain(std::string_view url) const override;

    /// Hash once: the probe carries the bit-array indexes plus the spec
    /// they were computed under.
    [[nodiscard]] SummaryProbe make_probe(std::string_view url) const override;

    /// Same-spec probes reuse the precomputed indexes; anything else
    /// (different sizing, non-Bloom origin) rehashes the URL.
    [[nodiscard]] bool predicts(const SummaryProbe& probe) const override;
    [[nodiscard]] bool current_may_contain(std::string_view url) const override;
    std::uint64_t publish() override;
    [[nodiscard]] std::uint64_t pending_changes() const override;
    [[nodiscard]] std::uint64_t replica_memory_bytes() const override;
    [[nodiscard]] std::uint64_t owner_memory_bytes() const override;
    [[nodiscard]] SummaryKind kind() const override { return SummaryKind::bloom; }

    [[nodiscard]] const HashSpec& hash_spec() const { return counting_.spec(); }
    [[nodiscard]] const CountingBloomFilter& counting_filter() const { return counting_; }
    [[nodiscard]] const BloomFilter& published_filter() const { return published_; }

    /// Probe the published replica with precomputed indexes (lets a caller
    /// hash a URL once and test many same-spec peers).
    SC_HOT_PATH [[nodiscard]] bool published_may_contain(
        std::span<const std::uint32_t> indexes) const {
        return published_.may_contain(indexes);
    }

private:
    BloomSummaryConfig config_;
    CountingBloomFilter counting_;
    BloomFilter published_;
};

/// Table size (bits) the paper's sizing rule gives: load_factor bits per
/// expected document, rounded up to a multiple of 64, at least 64.
[[nodiscard]] std::uint32_t bloom_table_bits(std::uint64_t expected_docs,
                                             std::uint32_t load_factor);

}  // namespace sc
