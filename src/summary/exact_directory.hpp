// Exact-directory summary: the cache directory itself, each URL condensed
// to its 16-byte MD5 signature (paper Section V-B). No representation
// error — every false hit/miss it produces comes purely from update delay.
// Its flaw is memory: ~0.2% of cache size per peer, which at 16 peers of
// 8 GB costs hundreds of megabytes of proxy DRAM.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "summary/summary.hpp"
#include "util/md5.hpp"

namespace sc {

class ExactDirectorySummary final : public DirectorySummary {
public:
    ExactDirectorySummary() = default;

    void on_insert(std::string_view url) override;
    void on_erase(std::string_view url) override;
    [[nodiscard]] bool published_may_contain(std::string_view url) const override;
    [[nodiscard]] bool current_may_contain(std::string_view url) const override;
    std::uint64_t publish() override;
    [[nodiscard]] std::uint64_t pending_changes() const override;
    [[nodiscard]] std::uint64_t replica_memory_bytes() const override;
    [[nodiscard]] std::uint64_t owner_memory_bytes() const override;
    [[nodiscard]] SummaryKind kind() const override { return SummaryKind::exact_directory; }

private:
    struct SigHash {
        std::size_t operator()(const Md5Digest& d) const { return d.word64(0); }
    };
    using SigSet = std::unordered_set<Md5Digest, SigHash>;

    struct Change {
        Md5Digest sig;
        bool added;
    };

    SigSet current_;
    SigSet published_;
    std::vector<Change> pending_;
};

}  // namespace sc
