#include "core/delta_batcher.hpp"

#include <utility>

#include "util/sc_assert.hpp"

namespace sc::core {

DeltaBatcher::DeltaBatcher(DeltaBatcherConfig config) : config_(config) {
    SC_ASSERT(config_.update_threshold >= 0.0 && config_.update_threshold <= 1.0);
    SC_ASSERT(config_.update_interval_seconds >= 0.0);
    metric_batch_size_ = obs::metrics().histogram(
        "sc_core_delta_batch_size", "Documents coalesced into one directory-update flush",
        {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096});
}

void DeltaBatcher::record_insert(std::string_view url) {
    const MutexLock lock(journal_mu_);
    journal_.push_back(Op{true, std::string(url)});
}

void DeltaBatcher::record_erase(std::string_view url) {
    const MutexLock lock(journal_mu_);
    journal_.push_back(Op{false, std::string(url)});
}

std::vector<DeltaBatcher::Op> DeltaBatcher::drain_journal() {
    const MutexLock lock(journal_mu_);
    return std::exchange(journal_, {});
}

bool DeltaBatcher::journal_empty() const {
    const MutexLock lock(journal_mu_);
    return journal_.empty();
}

bool DeltaBatcher::due(std::uint64_t cached_docs, double now) const {
    const std::uint64_t unreflected = unreflected_.load(std::memory_order_relaxed);
    if (unreflected == 0) return false;
    if (config_.update_interval_seconds > 0.0)
        return now - last_publish_.load(std::memory_order_relaxed) >=
               config_.update_interval_seconds;
    if (config_.update_threshold == 0.0) return true;
    return static_cast<double>(unreflected) >=
           config_.update_threshold * static_cast<double>(cached_docs);
}

std::optional<std::uint64_t> DeltaBatcher::try_begin_flush(std::uint64_t cached_docs,
                                                           double now,
                                                           std::uint64_t pending_changes) {
    if (!due(cached_docs, now)) return std::nullopt;
    if (config_.min_update_changes > 0 && pending_changes < config_.min_update_changes)
        return std::nullopt;  // batch until the update fills an IP packet
    bool expected = false;
    if (!flushing_.compare_exchange_strong(expected, true, std::memory_order_acq_rel))
        return std::nullopt;  // another worker owns this epoch; coalesced
    const std::uint64_t batch = unreflected_.exchange(0, std::memory_order_acq_rel);
    if (batch == 0) {
        // The owning thread of the previous epoch drained the counter
        // between our due() check and the exchange; nothing left to flush.
        flushing_.store(false, std::memory_order_release);
        return std::nullopt;
    }
    epoch_.fetch_add(1, std::memory_order_relaxed);
    return batch;
}

void DeltaBatcher::finish_flush(double now, std::uint64_t batch_size) {
    SC_ASSERT(flushing_.load(std::memory_order_relaxed));
    last_publish_.store(now, std::memory_order_relaxed);
    metric_batch_size_.observe(static_cast<double>(batch_size));
    flushing_.store(false, std::memory_order_release);
}

}  // namespace sc::core
