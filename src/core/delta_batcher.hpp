// DeltaBatcher — when to turn directory churn into one wire update.
//
// Owns the paper's Section V-A update-delay decision (threshold fraction
// or time interval) plus the Section VI-B "enough changes to fill an IP
// packet" batching floor, and makes that decision safe to drive from many
// worker threads at once: an epoch-based compare-and-swap elects exactly
// one flusher per threshold crossing, so concurrent inserts coalesce into
// a single delta/full-bitmap flush instead of a per-insert broadcast.
//
// It also carries the hook journal that decouples cache hooks from
// summary state. LruCache hooks run under the cache mutex and therefore
// must only take leaf locks; record_insert/record_erase take exactly one
// (the journal mutex, under which nothing else is called), and the
// elected flusher later drains the journal into the counting filter /
// SummaryCacheNode outside the cache lock. That inversion-free shape is
// what lets a flush callback call back into the cache (document_count,
// even insert) without deadlocking — see tests/core/delta_batcher_test.cpp.
//
// Single-threaded callers (the simulators) use the same object; the
// atomics cost nothing there and the decision logic is shared, which is
// the point — one implementation of the §V-A rules for sim and proxy.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "util/thread_annotations.hpp"

namespace sc::core {

struct DeltaBatcherConfig {
    /// Fraction of cached documents that must be unreflected before a
    /// flush is due (0 = flush after every change). Ignored when
    /// update_interval_seconds > 0.
    double update_threshold = 0.01;
    /// > 0 switches to the time-based policy: a flush is due when this
    /// many seconds passed since the last one (and something changed).
    double update_interval_seconds = 0.0;
    /// Also require this many pending summary changes before flushing —
    /// the prototype "sends updates whenever there are enough changes to
    /// fill an IP packet" (Section VI-B). 0 disables the floor. The floor
    /// does NOT reset the unreflected count; the flush stays due.
    std::uint64_t min_update_changes = 0;
};

class DeltaBatcher {
public:
    /// One journaled directory event (true = insert, false = erase).
    struct Op {
        bool insert = true;
        std::string url;
    };

    explicit DeltaBatcher(DeltaBatcherConfig config);

    // --- hook journal (leaf lock; callable from cache hooks) -------------
    void record_insert(std::string_view url) SC_EXCLUDES(journal_mu_);
    void record_erase(std::string_view url) SC_EXCLUDES(journal_mu_);

    /// Take the journaled ops (in order). Called by whoever mirrors them
    /// into the summary/node — never from a cache hook.
    [[nodiscard]] std::vector<Op> drain_journal() SC_EXCLUDES(journal_mu_);

    [[nodiscard]] bool journal_empty() const SC_EXCLUDES(journal_mu_);

    // --- update-delay accounting -----------------------------------------
    /// A document entered the directory that the published summary does
    /// not reflect yet.
    void on_new_document() { unreflected_.fetch_add(1, std::memory_order_relaxed); }

    [[nodiscard]] std::uint64_t unreflected() const {
        return unreflected_.load(std::memory_order_relaxed);
    }

    /// Is a flush due? Exactly the UpdateThresholdPolicy /
    /// TimeIntervalPolicy criterion, keyed by config.
    [[nodiscard]] bool due(std::uint64_t cached_docs, double now) const;

    /// Try to become THE flusher for the current epoch. Returns the batch
    /// size (documents coalesced into this flush) if this caller won, or
    /// nullopt when no flush is due, the floor blocks it, or another
    /// thread already holds the flush. `pending_changes` feeds the
    /// min_update_changes floor (pass 0 when unused).
    [[nodiscard]] std::optional<std::uint64_t> try_begin_flush(std::uint64_t cached_docs,
                                                               double now,
                                                               std::uint64_t pending_changes);

    /// Complete the flush begun by try_begin_flush: stamps the publish
    /// time (time mode) and records the batch size histogram.
    void finish_flush(double now, std::uint64_t batch_size);

    /// Flush epochs completed (each coalesces >= 1 insert).
    [[nodiscard]] std::uint64_t epoch() const {
        return epoch_.load(std::memory_order_relaxed);
    }

    [[nodiscard]] const DeltaBatcherConfig& config() const { return config_; }

private:
    DeltaBatcherConfig config_;
    std::atomic<std::uint64_t> unreflected_{0};
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> flushing_{false};
    std::atomic<double> last_publish_{0.0};

    mutable Mutex journal_mu_;  // leaf lock: nothing is called under it
    std::vector<Op> journal_ SC_GUARDED_BY(journal_mu_);

    obs::Histogram metric_batch_size_;
};

}  // namespace sc::core
