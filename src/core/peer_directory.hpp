// PeerDirectory — "which peers look promising for this URL?"
//
// The probe that replaces ICP's multicast-on-every-miss, abstracted away
// from how peer summaries are stored. The simulators hold peers' actual
// DirectorySummary objects (SummaryPeerView below); the live proxy holds
// decoded Bloom replicas inside SummaryCacheNode, which implements this
// interface directly. Either way the protocol engine sees one probe call
// and never downcasts to a concrete summary type.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "summary/summary.hpp"

namespace sc::core {

class PeerDirectory {
public:
    virtual ~PeerDirectory() = default;

    /// Peers (in a stable, caller-defined order) whose replicated summary
    /// says the URL may be cached there. The order is the probe order of
    /// the sequential query round, so it is part of protocol behaviour.
    [[nodiscard]] virtual std::vector<std::uint32_t> promising_peers(
        std::string_view url) const = 0;
};

/// Peers as (id, DirectorySummary*) pairs, probed in insertion order. The
/// prober summary (normally the home proxy's own) prepares the URL once —
/// for Bloom summaries that means hashing once per request, with
/// same-spec peers tested by precomputed indexes (DirectorySummary::
/// make_probe / predicts replace the old BloomSummary downcasts).
class SummaryPeerView final : public PeerDirectory {
public:
    void set_prober(const DirectorySummary* prober) { prober_ = prober; }

    void add_peer(std::uint32_t id, const DirectorySummary* summary) {
        peers_.push_back(Peer{id, summary});
    }

    [[nodiscard]] std::vector<std::uint32_t> promising_peers(
        std::string_view url) const override {
        std::vector<std::uint32_t> out;
        const SummaryProbe probe =
            prober_ != nullptr ? prober_->make_probe(url) : SummaryProbe{url, nullptr, {}};
        for (const Peer& p : peers_)
            if (p.summary->predicts(probe)) out.push_back(p.id);
        return out;
    }

private:
    struct Peer {
        std::uint32_t id = 0;
        const DirectorySummary* summary = nullptr;
    };

    const DirectorySummary* prober_ = nullptr;
    std::vector<Peer> peers_;
};

}  // namespace sc::core
