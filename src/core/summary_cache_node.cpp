#include "core/summary_cache_node.hpp"

#include <algorithm>
#include <random>
#include <string>

#include "cache/cache_store.hpp"
#include "obs/trace_ring.hpp"
#include "summary/bloom_summary.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

HashSpec spec_for(const SummaryCacheNodeConfig& config) {
    HashSpec spec;
    spec.function_num = config.bloom.hash_functions;
    spec.function_bits = 32;
    spec.table_bits = bloom_table_bits(config.expected_docs, config.bloom.load_factor);
    return spec;
}

std::uint32_t make_boot_id(std::uint32_t configured) {
    if (configured != 0) return configured;
    std::random_device rd;
    std::uint32_t id = 0;
    while (id == 0) id = rd();  // 0 is reserved for "not configured"
    return id;
}

/// Repack the filter's 64-bit words into the wire's big-endian 32-bit words.
std::vector<std::uint32_t> bitmap_words_of(const BloomFilter& filter) {
    const std::size_t n32 = (filter.spec().table_bits + 31) / 32;
    std::vector<std::uint32_t> out(n32, 0);
    const auto words = filter.words();
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t w64 = words[i / 2];
        out[i] = static_cast<std::uint32_t>((i % 2 == 0) ? w64 : (w64 >> 32));
    }
    return out;
}

void apply_bitmap_words(BloomFilter& filter, std::span<const std::uint32_t> words32) {
    std::vector<std::uint64_t> w64((filter.spec().table_bits + 63) / 64, 0);
    for (std::size_t i = 0; i < words32.size(); ++i) {
        if (i % 2 == 0)
            w64[i / 2] |= words32[i];
        else
            w64[i / 2] |= static_cast<std::uint64_t>(words32[i]) << 32;
    }
    filter.assign_words(w64);
}

}  // namespace

SummaryCacheNode::SummaryCacheNode(SummaryCacheNodeConfig config)
    : config_(config),
      counting_(spec_for(config), config.bloom.counter_bits),
      boot_id_(make_boot_id(config.boot_id)) {
    replicas_.store(std::make_shared<const ReplicaTable>(), std::memory_order_release);
    const obs::Labels labels{{"node", std::to_string(config_.node_id)}};
    metric_updates_sent_ = obs::metrics().counter(
        "sc_node_updates_sent_total", "SC-ICP update datagrams encoded for broadcast", labels);
    metric_updates_applied_ = obs::metrics().counter(
        "sc_node_updates_applied_total", "Sibling update messages applied", labels);
    metric_updates_rejected_ = obs::metrics().counter(
        "sc_node_updates_rejected_total", "Sibling updates rejected (hash-spec mismatch)",
        labels);
    metric_replica_swaps_ = obs::metrics().counter(
        "sc_node_replica_swaps_total",
        "Sibling replica snapshots atomically published (RCU swaps)", labels);
    metric_divergences_ = obs::metrics().counter(
        "sc_node_replica_divergence_total",
        "Sibling replicas dropped after a sequence gap or sender reboot", labels);
    metric_resyncs_ = obs::metrics().counter(
        "sc_node_resyncs_total",
        "Unsynced or quarantined sibling streams reinitialized by a full bitmap", labels);
}

void SummaryCacheNode::on_cache_insert(std::string_view url) { counting_.insert(url); }

void SummaryCacheNode::on_cache_erase(std::string_view url) { counting_.erase(url); }

std::size_t SummaryCacheNode::rebuild_from_directory(const CacheStore& store) {
    std::size_t count = 0;
    store.for_each_entry([this, &count](const CacheStore::Entry& e) {
        counting_.insert(e.url);
        ++count;
    });
    // The recovered baseline is announced with a full update, not streamed
    // as a delta — drop the bit-flip log the inserts just accumulated.
    (void)counting_.take_delta();
    return count;
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_pending_updates() {
    DeltaLog delta = counting_.take_delta();
    if (delta.empty()) return {};
    const std::vector<std::uint32_t> records = delta.encode();

    // Delta vs full bitmap: pick the smaller wire encoding (Section VI-A;
    // the Squid cache-digest variant always sends the full array). Both
    // costs include per-chunk header + spec framing — comparing the raw
    // record bytes against a framed full previously mis-elected large
    // chunked deltas.
    const std::size_t delta_bytes = dirupdate_delta_wire_bytes(records.size());
    const std::size_t full_bytes = dirupdate_full_wire_bytes(counting_.spec());
    const bool send_full = full_bytes < delta_bytes && full_bytes <= kMaxIcpDatagram;
    std::vector<std::vector<std::uint8_t>> out;
    if (send_full) {
        // The elected full replaces delta records that were drained from
        // the log, so it must consume a sequence slot: if it is lost, the
        // next delta shows up as a gap and triggers a resync instead of a
        // silent divergence.
        ++delta_seq_;
        out.push_back(encode_full_update());
    } else {
        out = encode_delta_chunks(records);
    }
    updates_sent_ += out.size();
    metric_updates_sent_.inc(out.size());
    obs::trace(obs::TraceEventType::summary_update_emitted,
               static_cast<std::uint16_t>(config_.node_id), out.size(), send_full ? 1 : 0);
    return out;
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_delta_chunks(
    std::span<const std::uint32_t> records) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t off = 0; off < records.size(); off += kMaxRecordsPerUpdate) {
        const std::size_t count = std::min(kMaxRecordsPerUpdate, records.size() - off);
        IcpDirUpdate msg;
        msg.request_number = delta_seq_++;
        msg.sender_host = config_.node_id;
        msg.boot_id = boot_id_;
        msg.spec = counting_.spec();
        msg.full = false;
        msg.records.assign(records.begin() + static_cast<std::ptrdiff_t>(off),
                           records.begin() + static_cast<std::ptrdiff_t>(off + count));
        out.push_back(encode_dirupdate(msg));
    }
    return out;
}

std::vector<std::uint8_t> SummaryCacheNode::encode_full_update() {
    IcpDirUpdate msg;
    // A full bitmap is a snapshot, not churn: it advertises the sequence
    // the next delta will carry so the receiver resumes gap detection
    // there. (Flips still sitting unencoded in the delta log are already
    // folded into the bitmap; their later delta records are idempotent.)
    msg.request_number = delta_seq_;
    msg.sender_host = config_.node_id;
    msg.boot_id = boot_id_;
    msg.spec = counting_.spec();
    msg.full = true;
    msg.bitmap_words = bitmap_words_of(counting_.bits());
    return encode_dirupdate(msg);
}

std::vector<std::uint8_t> SummaryCacheNode::encode_seq_heartbeat() {
    IcpDirUpdate msg;
    // An empty delta advertising the sequence the next real delta will
    // use, consuming nothing. A receiver in sync drops it; one that lost
    // the tail of the stream sees the gap and quarantines/resyncs.
    msg.request_number = delta_seq_;
    msg.sender_host = config_.node_id;
    msg.boot_id = boot_id_;
    msg.spec = counting_.spec();
    return encode_dirupdate(msg);
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_full_update_chunks() {
    const std::vector<std::uint32_t> words = bitmap_words_of(counting_.bits());
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t off = 0; off < words.size(); off += kMaxWordsPerFullChunk) {
        const std::size_t count = std::min(kMaxWordsPerFullChunk, words.size() - off);
        IcpDirUpdate msg;
        msg.request_number = delta_seq_;
        msg.sender_host = config_.node_id;
        msg.boot_id = boot_id_;
        msg.word_offset = static_cast<std::uint32_t>(off);
        msg.spec = counting_.spec();
        msg.full = true;
        msg.bitmap_words.assign(words.begin() + static_cast<std::ptrdiff_t>(off),
                                words.begin() + static_cast<std::ptrdiff_t>(off + count));
        out.push_back(encode_dirupdate(msg));
    }
    return out;
}

void SummaryCacheNode::discard_delta() { (void)counting_.take_delta(); }

SummaryCacheNode::ReplicaTable::const_iterator SummaryCacheNode::find_replica(
    const ReplicaTable& table, NodeId sibling) {
    const auto pos =
        std::lower_bound(table.begin(), table.end(), sibling,
                         [](const auto& entry, NodeId id) { return entry.first < id; });
    return (pos != table.end() && pos->first == sibling) ? pos : table.end();
}

SummaryApplyResult SummaryCacheNode::apply_sibling_update(const IcpDirUpdate& update) {
    // RCU writer: build the successor snapshot off the published table,
    // then swap it in. Readers keep probing the old snapshot meanwhile.
    const MutexLock lock(replica_write_mu_);
    return update.full ? apply_full_locked(update) : apply_delta_locked(update);
}

void SummaryCacheNode::store_replica_locked(NodeId sibling,
                                            std::shared_ptr<BloomFilter> filter) {
    const auto current = replicas_.load(std::memory_order_acquire);
    auto pos = std::lower_bound(current->begin(), current->end(), sibling,
                                [](const auto& entry, NodeId id) { return entry.first < id; });
    const bool known = pos != current->end() && pos->first == sibling;
    auto next = std::make_shared<ReplicaTable>(*current);
    if (known)
        (*next)[static_cast<std::size_t>(pos - current->begin())].second = std::move(filter);
    else
        next->insert(next->begin() + (pos - current->begin()), {sibling, std::move(filter)});
    publish_replicas(std::move(next));
}

void SummaryCacheNode::quarantine_locked(NodeId sibling, PeerStream& stream,
                                         std::uint32_t boot_id) {
    const auto current = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*current, sibling);
    if (pos != current->end()) {
        auto next = std::make_shared<ReplicaTable>(*current);
        next->erase(next->begin() + (pos - current->begin()));
        publish_replicas(std::move(next));
    }
    obs::trace(obs::TraceEventType::replica_quarantined,
               static_cast<std::uint16_t>(config_.node_id), sibling, stream.expected_seq);
    stream.boot_id = boot_id;
    stream.expected_seq = 0;
    stream.quarantined = true;
    stream.pending.reset();
    divergences_.fetch_add(1, std::memory_order_relaxed);
    metric_divergences_.inc();
}

SummaryApplyResult SummaryCacheNode::apply_delta_locked(const IcpDirUpdate& update) {
    const NodeId sender = update.sender_host;
    const auto it = streams_.find(sender);
    if (it == streams_.end()) {
        // First contact via delta. The old behaviour fabricated an empty
        // replica here, which in push mode under-predicts indefinitely
        // (bits set before we joined never arrive). Instead: record the
        // sender's boot and ask the transport to bootstrap via DIRREQ —
        // the replica only exists once a full bitmap has seeded it.
        PeerStream stream;
        stream.boot_id = update.boot_id;
        streams_.emplace(sender, stream);
        return SummaryApplyResult::need_bootstrap;
    }
    PeerStream& stream = it->second;
    if (stream.boot_id != update.boot_id) {
        // The sender restarted: its sequence space reset and our replica
        // describes the previous incarnation's cache.
        quarantine_locked(sender, stream, update.boot_id);
        return SummaryApplyResult::gap;
    }
    const auto current = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*current, sender);
    if (pos != current->end() && pos->second->spec() != update.spec) {
        updates_rejected_.fetch_add(1, std::memory_order_relaxed);
        metric_updates_rejected_.inc();
        obs::trace(obs::TraceEventType::summary_update_rejected,
                   static_cast<std::uint16_t>(config_.node_id), sender);
        return SummaryApplyResult::rejected;
    }
    if (stream.quarantined || stream.expected_seq == 0 || pos == current->end())
        return SummaryApplyResult::need_resync;
    if (update.request_number < stream.expected_seq) return SummaryApplyResult::duplicate;
    if (update.request_number > stream.expected_seq) {
        // One or more deltas were lost (or reordered beyond repair): the
        // replica has silently missed flips, so stop predicting from it.
        quarantine_locked(sender, stream, update.boot_id);
        return SummaryApplyResult::gap;
    }
    if (update.records.empty()) {
        // Sequence heartbeat: the broadcast path never emits an empty
        // delta, so zero records means the sender is advertising its
        // next sequence without consuming it. Matching our sync point
        // means we are current — nothing to do (a receiver that missed
        // the stream's tail took the gap branch above instead).
        return SummaryApplyResult::duplicate;
    }

    auto next_filter = std::make_shared<BloomFilter>(*pos->second);
    for (const std::uint32_t rec : update.records) {
        const BitFlip flip = decode_bit_flip(rec);
        next_filter->set_bit(flip.index, flip.value);
    }
    store_replica_locked(sender, std::move(next_filter));
    stream.expected_seq = update.request_number + 1;

    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    metric_updates_applied_.inc();
    obs::trace(obs::TraceEventType::summary_update_applied,
               static_cast<std::uint16_t>(config_.node_id), sender, 0);
    return SummaryApplyResult::applied;
}

SummaryApplyResult SummaryCacheNode::apply_full_locked(const IcpDirUpdate& update) {
    const NodeId sender = update.sender_host;
    PeerStream& stream = streams_[sender];  // fulls may arrive before any delta
    const bool was_unsynced = stream.quarantined || stream.expected_seq == 0;
    if (!was_unsynced && stream.boot_id == update.boot_id &&
        update.request_number < stream.expected_seq)
        return SummaryApplyResult::stale;  // snapshot older than our sync point

    const std::size_t total_words = (update.spec.table_bits + 31) / 32;
    std::span<const std::uint32_t> words;
    if (update.word_offset == 0 && update.bitmap_words.size() == total_words) {
        // Single-datagram fast path (and the final state of a one-chunk
        // "chunked" encoding).
        stream.pending.reset();
        words = update.bitmap_words;
    } else {
        if (update.word_offset == 0) {
            PendingFull pending;
            pending.boot_id = update.boot_id;
            pending.seq = update.request_number;
            pending.spec = update.spec;
            pending.words.assign(total_words, 0);
            stream.pending = std::move(pending);
        } else if (!stream.pending || stream.pending->boot_id != update.boot_id ||
                   stream.pending->seq != update.request_number ||
                   stream.pending->spec != update.spec ||
                   stream.pending->filled != update.word_offset) {
            // A chunk was lost, reordered, or belongs to a different
            // snapshot: abandon the reassembly. The resync retry loop will
            // request a fresh one.
            stream.pending.reset();
            return SummaryApplyResult::partial;
        }
        PendingFull& pending = *stream.pending;
        std::copy(update.bitmap_words.begin(), update.bitmap_words.end(),
                  pending.words.begin() + static_cast<std::ptrdiff_t>(update.word_offset));
        pending.filled = update.word_offset + update.bitmap_words.size();
        if (pending.filled < total_words) return SummaryApplyResult::partial;
        words = pending.words;
    }

    auto next_filter = std::make_shared<BloomFilter>(update.spec);
    apply_bitmap_words(*next_filter, words);
    store_replica_locked(sender, std::move(next_filter));
    stream.boot_id = update.boot_id;
    stream.expected_seq = update.request_number;
    stream.quarantined = false;
    stream.pending.reset();
    if (was_unsynced) {
        resyncs_.fetch_add(1, std::memory_order_relaxed);
        metric_resyncs_.inc();
    }

    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    metric_updates_applied_.inc();
    obs::trace(obs::TraceEventType::summary_update_applied,
               static_cast<std::uint16_t>(config_.node_id), sender, 1);
    return SummaryApplyResult::applied;
}

void SummaryCacheNode::forget_sibling(NodeId sibling) {
    const MutexLock lock(replica_write_mu_);
    streams_.erase(sibling);
    const auto current = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*current, sibling);
    if (pos == current->end()) return;
    auto next = std::make_shared<ReplicaTable>(*current);
    next->erase(next->begin() + (pos - current->begin()));
    publish_replicas(std::move(next));
}

bool SummaryCacheNode::sibling_needs_resync(NodeId sibling) const {
    const MutexLock lock(replica_write_mu_);
    const auto it = streams_.find(sibling);
    if (it == streams_.end()) return true;  // never heard a thing: bootstrap
    return it->second.quarantined || it->second.expected_seq == 0;
}

std::vector<NodeId> SummaryCacheNode::siblings_awaiting_resync() const {
    const MutexLock lock(replica_write_mu_);
    std::vector<NodeId> out;
    for (const auto& [id, stream] : streams_)
        if (stream.quarantined || stream.expected_seq == 0) out.push_back(id);
    return out;
}

void SummaryCacheNode::publish_replicas(std::shared_ptr<const ReplicaTable> next) {
    replicas_.store(std::move(next), std::memory_order_release);
    metric_replica_swaps_.inc();
}

std::vector<NodeId> SummaryCacheNode::promising_siblings(std::string_view url) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    std::vector<NodeId> out;
    // Hash once per distinct spec (normally all siblings share ours),
    // into the inline buffer — no heap traffic on the probe path.
    BloomIndexes own_indexes;
    bloom_indexes(url, counting_.spec(), own_indexes);
    for (const auto& [id, filter] : *table) {
        const bool promising = (filter->spec() == counting_.spec())
                                   ? filter->may_contain(own_indexes.span())
                                   : filter->may_contain(url);
        if (promising) out.push_back(id);
    }
    return out;
}

SC_HOT_PATH bool SummaryCacheNode::sibling_may_contain(NodeId sibling,
                                                       std::string_view url) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*table, sibling);
    return pos != table->end() && pos->second->may_contain(url);
}

std::shared_ptr<const BloomFilter> SummaryCacheNode::sibling_filter(NodeId sibling) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*table, sibling);
    return pos == table->end() ? nullptr : pos->second;
}

}  // namespace sc
