#include "core/summary_cache_node.hpp"

#include <algorithm>
#include <string>

#include "cache/cache_store.hpp"
#include "obs/trace_ring.hpp"
#include "summary/bloom_summary.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

HashSpec spec_for(const SummaryCacheNodeConfig& config) {
    HashSpec spec;
    spec.function_num = config.bloom.hash_functions;
    spec.function_bits = 32;
    spec.table_bits = bloom_table_bits(config.expected_docs, config.bloom.load_factor);
    return spec;
}

/// Repack the filter's 64-bit words into the wire's big-endian 32-bit words.
std::vector<std::uint32_t> bitmap_words_of(const BloomFilter& filter) {
    const std::size_t n32 = (filter.spec().table_bits + 31) / 32;
    std::vector<std::uint32_t> out(n32, 0);
    const auto words = filter.words();
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t w64 = words[i / 2];
        out[i] = static_cast<std::uint32_t>((i % 2 == 0) ? w64 : (w64 >> 32));
    }
    return out;
}

void apply_bitmap_words(BloomFilter& filter, std::span<const std::uint32_t> words32) {
    std::vector<std::uint64_t> w64((filter.spec().table_bits + 63) / 64, 0);
    for (std::size_t i = 0; i < words32.size(); ++i) {
        if (i % 2 == 0)
            w64[i / 2] |= words32[i];
        else
            w64[i / 2] |= static_cast<std::uint64_t>(words32[i]) << 32;
    }
    filter.assign_words(w64);
}

}  // namespace

SummaryCacheNode::SummaryCacheNode(SummaryCacheNodeConfig config)
    : config_(config), counting_(spec_for(config), config.bloom.counter_bits) {
    replicas_.store(std::make_shared<const ReplicaTable>(), std::memory_order_release);
    const obs::Labels labels{{"node", std::to_string(config_.node_id)}};
    metric_updates_sent_ = obs::metrics().counter(
        "sc_node_updates_sent_total", "SC-ICP update datagrams encoded for broadcast", labels);
    metric_updates_applied_ = obs::metrics().counter(
        "sc_node_updates_applied_total", "Sibling update messages applied", labels);
    metric_updates_rejected_ = obs::metrics().counter(
        "sc_node_updates_rejected_total", "Sibling updates rejected (hash-spec mismatch)",
        labels);
    metric_replica_swaps_ = obs::metrics().counter(
        "sc_node_replica_swaps_total",
        "Sibling replica snapshots atomically published (RCU swaps)", labels);
}

void SummaryCacheNode::on_cache_insert(std::string_view url) { counting_.insert(url); }

void SummaryCacheNode::on_cache_erase(std::string_view url) { counting_.erase(url); }

std::size_t SummaryCacheNode::rebuild_from_directory(const CacheStore& store) {
    std::size_t count = 0;
    store.for_each_entry([this, &count](const CacheStore::Entry& e) {
        counting_.insert(e.url);
        ++count;
    });
    // The recovered baseline is announced with a full update, not streamed
    // as a delta — drop the bit-flip log the inserts just accumulated.
    (void)counting_.take_delta();
    return count;
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_pending_updates() {
    DeltaLog delta = counting_.take_delta();
    if (delta.empty()) return {};

    // Delta vs full bitmap: pick the smaller wire encoding (Section VI-A;
    // the Squid cache-digest variant always sends the full array).
    const std::size_t delta_bytes = kIcpHeaderBytes + 12 + 4 * delta.size();
    const std::size_t full_bytes =
        kIcpHeaderBytes + 12 + 4 * ((counting_.spec().table_bits + 31) / 32);
    std::vector<std::vector<std::uint8_t>> out;
    if (full_bytes < delta_bytes && full_bytes <= kMaxIcpDatagram) {
        out.push_back(encode_full_update());
    } else {
        out = encode_delta_chunks(delta);
    }
    updates_sent_ += out.size();
    metric_updates_sent_.inc(out.size());
    obs::trace(obs::TraceEventType::summary_update_emitted,
               static_cast<std::uint16_t>(config_.node_id), out.size(),
               full_bytes < delta_bytes ? 1 : 0);
    return out;
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_delta_chunks(
    const DeltaLog& delta) {
    std::vector<std::vector<std::uint8_t>> out;
    const std::vector<std::uint32_t> records = delta.encode();
    for (std::size_t off = 0; off < records.size(); off += kMaxRecordsPerUpdate) {
        const std::size_t count = std::min(kMaxRecordsPerUpdate, records.size() - off);
        IcpDirUpdate msg;
        msg.request_number = next_request_number_++;
        msg.sender_host = config_.node_id;
        msg.spec = counting_.spec();
        msg.full = false;
        msg.records.assign(records.begin() + static_cast<std::ptrdiff_t>(off),
                           records.begin() + static_cast<std::ptrdiff_t>(off + count));
        out.push_back(encode_dirupdate(msg));
    }
    return out;
}

std::vector<std::uint8_t> SummaryCacheNode::encode_full_update() {
    IcpDirUpdate msg;
    msg.request_number = next_request_number_++;
    msg.sender_host = config_.node_id;
    msg.spec = counting_.spec();
    msg.full = true;
    msg.bitmap_words = bitmap_words_of(counting_.bits());
    return encode_dirupdate(msg);
}

void SummaryCacheNode::discard_delta() { (void)counting_.take_delta(); }

SummaryCacheNode::ReplicaTable::const_iterator SummaryCacheNode::find_replica(
    const ReplicaTable& table, NodeId sibling) {
    const auto pos =
        std::lower_bound(table.begin(), table.end(), sibling,
                         [](const auto& entry, NodeId id) { return entry.first < id; });
    return (pos != table.end() && pos->first == sibling) ? pos : table.end();
}

bool SummaryCacheNode::apply_sibling_update(const IcpDirUpdate& update) {
    // RCU writer: build the successor snapshot off the published table,
    // then swap it in. Readers keep probing the old snapshot meanwhile.
    const MutexLock lock(replica_write_mu_);
    const auto current = replicas_.load(std::memory_order_acquire);
    auto pos = std::lower_bound(
        current->begin(), current->end(), update.sender_host,
        [](const auto& entry, NodeId id) { return entry.first < id; });
    const bool known = pos != current->end() && pos->first == update.sender_host;

    std::shared_ptr<BloomFilter> next_filter;
    bool full_trace;
    if (update.full) {
        // Full bitmap replaces the replica wholesale (and re-creates it
        // after a spec change), so start from a fresh filter either way.
        next_filter = std::make_shared<BloomFilter>(update.spec);
        apply_bitmap_words(*next_filter, update.bitmap_words);
        full_trace = true;
    } else {
        if (known && pos->second->spec() != update.spec) {
            updates_rejected_.fetch_add(1, std::memory_order_relaxed);
            metric_updates_rejected_.inc();
            obs::trace(obs::TraceEventType::summary_update_rejected,
                       static_cast<std::uint16_t>(config_.node_id), update.sender_host);
            return false;
        }
        // First contact via delta: start from an empty filter with the
        // advertised spec. (Bits set before we joined arrive with the next
        // full refresh; meanwhile we only under-estimate, which is safe —
        // the penalty is false misses, never incorrect service.)
        next_filter = known ? std::make_shared<BloomFilter>(*pos->second)
                            : std::make_shared<BloomFilter>(update.spec);
        for (const std::uint32_t rec : update.records) {
            const BitFlip flip = decode_bit_flip(rec);
            next_filter->set_bit(flip.index, flip.value);
        }
        full_trace = false;
    }

    auto next = std::make_shared<ReplicaTable>(*current);
    if (known)
        (*next)[static_cast<std::size_t>(pos - current->begin())].second = std::move(next_filter);
    else
        next->insert(next->begin() + (pos - current->begin()),
                     {update.sender_host, std::move(next_filter)});
    publish_replicas(std::move(next));

    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    metric_updates_applied_.inc();
    obs::trace(obs::TraceEventType::summary_update_applied,
               static_cast<std::uint16_t>(config_.node_id), update.sender_host,
               full_trace ? 1 : 0);
    return true;
}

void SummaryCacheNode::forget_sibling(NodeId sibling) {
    const MutexLock lock(replica_write_mu_);
    const auto current = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*current, sibling);
    if (pos == current->end()) return;
    auto next = std::make_shared<ReplicaTable>(*current);
    next->erase(next->begin() + (pos - current->begin()));
    publish_replicas(std::move(next));
}

void SummaryCacheNode::publish_replicas(std::shared_ptr<const ReplicaTable> next) {
    replicas_.store(std::move(next), std::memory_order_release);
    metric_replica_swaps_.inc();
}

std::vector<NodeId> SummaryCacheNode::promising_siblings(std::string_view url) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    std::vector<NodeId> out;
    // Hash once per distinct spec (normally all siblings share ours),
    // into the inline buffer — no heap traffic on the probe path.
    BloomIndexes own_indexes;
    bloom_indexes(url, counting_.spec(), own_indexes);
    for (const auto& [id, filter] : *table) {
        const bool promising = (filter->spec() == counting_.spec())
                                   ? filter->may_contain(own_indexes.span())
                                   : filter->may_contain(url);
        if (promising) out.push_back(id);
    }
    return out;
}

SC_HOT_PATH bool SummaryCacheNode::sibling_may_contain(NodeId sibling,
                                                       std::string_view url) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*table, sibling);
    return pos != table->end() && pos->second->may_contain(url);
}

std::shared_ptr<const BloomFilter> SummaryCacheNode::sibling_filter(NodeId sibling) const {
    const auto table = replicas_.load(std::memory_order_acquire);
    const auto pos = find_replica(*table, sibling);
    return pos == table->end() ? nullptr : pos->second;
}

}  // namespace sc
