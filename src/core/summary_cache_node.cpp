#include "core/summary_cache_node.hpp"

#include <algorithm>
#include <string>

#include "obs/trace_ring.hpp"
#include "summary/bloom_summary.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

HashSpec spec_for(const SummaryCacheNodeConfig& config) {
    HashSpec spec;
    spec.function_num = config.bloom.hash_functions;
    spec.function_bits = 32;
    spec.table_bits = bloom_table_bits(config.expected_docs, config.bloom.load_factor);
    return spec;
}

/// Repack the filter's 64-bit words into the wire's big-endian 32-bit words.
std::vector<std::uint32_t> bitmap_words_of(const BloomFilter& filter) {
    const std::size_t n32 = (filter.spec().table_bits + 31) / 32;
    std::vector<std::uint32_t> out(n32, 0);
    const auto words = filter.words();
    for (std::size_t i = 0; i < out.size(); ++i) {
        const std::uint64_t w64 = words[i / 2];
        out[i] = static_cast<std::uint32_t>((i % 2 == 0) ? w64 : (w64 >> 32));
    }
    return out;
}

void apply_bitmap_words(BloomFilter& filter, std::span<const std::uint32_t> words32) {
    std::vector<std::uint64_t> w64((filter.spec().table_bits + 63) / 64, 0);
    for (std::size_t i = 0; i < words32.size(); ++i) {
        if (i % 2 == 0)
            w64[i / 2] |= words32[i];
        else
            w64[i / 2] |= static_cast<std::uint64_t>(words32[i]) << 32;
    }
    filter.assign_words(w64);
}

}  // namespace

SummaryCacheNode::SummaryCacheNode(SummaryCacheNodeConfig config)
    : config_(config), counting_(spec_for(config), config.bloom.counter_bits) {
    const obs::Labels labels{{"node", std::to_string(config_.node_id)}};
    metric_updates_sent_ = obs::metrics().counter(
        "sc_node_updates_sent_total", "SC-ICP update datagrams encoded for broadcast", labels);
    metric_updates_applied_ = obs::metrics().counter(
        "sc_node_updates_applied_total", "Sibling update messages applied", labels);
    metric_updates_rejected_ = obs::metrics().counter(
        "sc_node_updates_rejected_total", "Sibling updates rejected (hash-spec mismatch)",
        labels);
}

void SummaryCacheNode::on_cache_insert(std::string_view url) { counting_.insert(url); }

void SummaryCacheNode::on_cache_erase(std::string_view url) { counting_.erase(url); }

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_pending_updates() {
    DeltaLog delta = counting_.take_delta();
    if (delta.empty()) return {};

    // Delta vs full bitmap: pick the smaller wire encoding (Section VI-A;
    // the Squid cache-digest variant always sends the full array).
    const std::size_t delta_bytes = kIcpHeaderBytes + 12 + 4 * delta.size();
    const std::size_t full_bytes =
        kIcpHeaderBytes + 12 + 4 * ((counting_.spec().table_bits + 31) / 32);
    std::vector<std::vector<std::uint8_t>> out;
    if (full_bytes < delta_bytes && full_bytes <= kMaxIcpDatagram) {
        out.push_back(encode_full_update());
    } else {
        out = encode_delta_chunks(delta);
    }
    updates_sent_ += out.size();
    metric_updates_sent_.inc(out.size());
    obs::trace(obs::TraceEventType::summary_update_emitted,
               static_cast<std::uint16_t>(config_.node_id), out.size(),
               full_bytes < delta_bytes ? 1 : 0);
    return out;
}

std::vector<std::vector<std::uint8_t>> SummaryCacheNode::encode_delta_chunks(
    const DeltaLog& delta) {
    std::vector<std::vector<std::uint8_t>> out;
    const std::vector<std::uint32_t> records = delta.encode();
    for (std::size_t off = 0; off < records.size(); off += kMaxRecordsPerUpdate) {
        const std::size_t count = std::min(kMaxRecordsPerUpdate, records.size() - off);
        IcpDirUpdate msg;
        msg.request_number = next_request_number_++;
        msg.sender_host = config_.node_id;
        msg.spec = counting_.spec();
        msg.full = false;
        msg.records.assign(records.begin() + static_cast<std::ptrdiff_t>(off),
                           records.begin() + static_cast<std::ptrdiff_t>(off + count));
        out.push_back(encode_dirupdate(msg));
    }
    return out;
}

std::vector<std::uint8_t> SummaryCacheNode::encode_full_update() {
    IcpDirUpdate msg;
    msg.request_number = next_request_number_++;
    msg.sender_host = config_.node_id;
    msg.spec = counting_.spec();
    msg.full = true;
    msg.bitmap_words = bitmap_words_of(counting_.bits());
    return encode_dirupdate(msg);
}

void SummaryCacheNode::discard_delta() { (void)counting_.take_delta(); }

bool SummaryCacheNode::apply_sibling_update(const IcpDirUpdate& update) {
    auto it = siblings_.find(update.sender_host);
    if (update.full) {
        if (it == siblings_.end() || it->second.spec() != update.spec) {
            it = siblings_.insert_or_assign(update.sender_host, BloomFilter(update.spec)).first;
        }
        apply_bitmap_words(it->second, update.bitmap_words);
        ++updates_applied_;
        metric_updates_applied_.inc();
        obs::trace(obs::TraceEventType::summary_update_applied,
                   static_cast<std::uint16_t>(config_.node_id), update.sender_host, 1);
        return true;
    }
    if (it == siblings_.end()) {
        // First contact via delta: start from an empty filter with the
        // advertised spec. (Bits set before we joined arrive with the next
        // full refresh; meanwhile we only under-estimate, which is safe —
        // the penalty is false misses, never incorrect service.)
        it = siblings_.emplace(update.sender_host, BloomFilter(update.spec)).first;
    } else if (it->second.spec() != update.spec) {
        ++updates_rejected_;
        metric_updates_rejected_.inc();
        obs::trace(obs::TraceEventType::summary_update_rejected,
                   static_cast<std::uint16_t>(config_.node_id), update.sender_host);
        return false;
    }
    for (const std::uint32_t rec : update.records) {
        const BitFlip flip = decode_bit_flip(rec);
        it->second.set_bit(flip.index, flip.value);
    }
    ++updates_applied_;
    metric_updates_applied_.inc();
    obs::trace(obs::TraceEventType::summary_update_applied,
               static_cast<std::uint16_t>(config_.node_id), update.sender_host, 0);
    return true;
}

void SummaryCacheNode::forget_sibling(NodeId sibling) { siblings_.erase(sibling); }

std::vector<NodeId> SummaryCacheNode::promising_siblings(std::string_view url) const {
    std::vector<NodeId> out;
    // Hash once per distinct spec (normally all siblings share ours).
    const auto own_indexes = bloom_indexes(url, counting_.spec());
    for (const auto& [id, filter] : siblings_) {
        const bool promising =
            (filter.spec() == counting_.spec())
                ? filter.may_contain(std::span<const std::uint32_t>(own_indexes))
                : filter.may_contain(url);
        if (promising) out.push_back(id);
    }
    return out;
}

bool SummaryCacheNode::sibling_may_contain(NodeId sibling, std::string_view url) const {
    const auto it = siblings_.find(sibling);
    return it != siblings_.end() && it->second.may_contain(url);
}

const BloomFilter* SummaryCacheNode::sibling_filter(NodeId sibling) const {
    const auto it = siblings_.find(sibling);
    return it == siblings_.end() ? nullptr : &it->second;
}

}  // namespace sc
