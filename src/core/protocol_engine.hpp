// ProtocolEngine — the summary-cache decision pipeline, transport-free.
//
// One engine per proxy. It owns the full request path of Section III/V:
//
//   lookup_local  — is the document in our own cache (version-checked)?
//   probe         — which peers' replicated summaries look promising?
//   run_*_round   — the sibling-query/origin-fetch decision: sequential
//                   probing for the summary protocol (one query at a
//                   time, stop at the first fresh copy; a stale copy ends
//                   the round), multicast for classic ICP;
//   admit         — insert the fetched document and account it toward the
//                   update-delay threshold;
//   maybe_flush / maybe_publish — directory maintenance: elect one
//                   flusher per threshold crossing (DeltaBatcher) and
//                   emit the cheaper of delta / full-bitmap (§VI-A, done
//                   by the summary or SummaryCacheNode the caller hands
//                   the flush to).
//
// The trace simulators (src/sim) and the live MiniProxy (src/proto) both
// drive THIS object, so the semantics measured in Figures 5-8 are, by
// construction, the semantics on the wire. How to actually ask a peer is
// the caller's job: the round helpers take a callback that returns what
// the peer answered, so the simulator peeks sibling caches while the
// proxy sends real ICP datagrams — the decision logic stays here.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "cache/cache_store.hpp"
#include "core/delta_batcher.hpp"
#include "core/peer_directory.hpp"
#include "summary/summary.hpp"

namespace sc::core {

struct ProtocolEngineConfig {
    std::uint32_t node_id = 0;
    DeltaBatcherConfig batching;
};

/// What a queried peer turned out to hold.
enum class PeerAnswer {
    absent,  ///< nothing cached — the summary was wrong (wasted query)
    fresh,   ///< cached, version matches — remote hit
    stale,   ///< cached but out of date — the document comes from the origin
};

/// Result of one sibling-query round.
struct RoundOutcome {
    std::optional<std::uint32_t> winner;  ///< peer that served a fresh copy
    bool stale_ended = false;             ///< a stale copy ended the round
    std::uint64_t queries = 0;            ///< queries actually sent
    std::uint64_t wasted_queries = 0;     ///< queries answered "absent"
};

/// Outcome of a directory flush elected by maybe_publish.
struct PublishOutcome {
    std::uint64_t wire_bytes = 0;  ///< update bytes for ONE peer (0: churn netted out)
    std::uint64_t batch_size = 0;  ///< inserts coalesced into this flush
};

class ProtocolEngine {
public:
    /// `summary` (nullable) is the engine's own directory summary — the
    /// simulators pass it so maybe_publish can snapshot it; the live proxy
    /// passes nullptr and routes flushes through its SummaryCacheNode via
    /// maybe_flush. `peers` (nullable) answers probe().
    ProtocolEngine(ProtocolEngineConfig config, CacheStore& cache, DirectorySummary* summary,
                   const PeerDirectory* peers)
        : config_(config),
          cache_(cache),
          summary_(summary),
          peers_(peers),
          batcher_(config.batching) {}

    [[nodiscard]] std::uint32_t id() const { return config_.node_id; }
    [[nodiscard]] CacheStore& cache() { return cache_; }
    [[nodiscard]] DeltaBatcher& batcher() { return batcher_; }
    [[nodiscard]] DirectorySummary* summary() { return summary_; }

    // --- step 1: local lookup --------------------------------------------
    [[nodiscard]] CacheStore::Lookup lookup_local(std::string_view url,
                                                  std::uint64_t version) {
        return cache_.lookup(url, version);
    }

    // --- step 2: peer-digest probe ---------------------------------------
    [[nodiscard]] std::vector<std::uint32_t> probe(std::string_view url) const {
        return peers_ != nullptr ? peers_->promising_peers(url)
                                 : std::vector<std::uint32_t>{};
    }

    // --- step 3: the query round -----------------------------------------
    /// Summary protocol: probe candidates ONE AT A TIME (the Squid
    /// cache-digest behaviour the paper's message accounting reflects). An
    /// "absent" answer is a wasted query and probing moves on; "fresh"
    /// wins the round; "stale" ends it — the document comes from the
    /// origin. `ask(peer)` performs the actual query.
    template <typename AskFn>
    RoundOutcome run_sequential_round(const std::vector<std::uint32_t>& candidates,
                                      AskFn&& ask) {
        RoundOutcome out;
        for (const std::uint32_t peer : candidates) {
            ++out.queries;
            switch (ask(peer)) {
                case PeerAnswer::absent:
                    ++out.wasted_queries;  // summary lied about this peer
                    continue;
                case PeerAnswer::fresh:
                    out.winner = peer;
                    return out;
                case PeerAnswer::stale:
                    out.stale_ended = true;
                    return out;
            }
        }
        return out;
    }

    /// Classic ICP: the query goes to every candidate at once and every
    /// reply comes back; the first fresh answer (in candidate order) wins.
    template <typename AskFn>
    RoundOutcome run_multicast_round(const std::vector<std::uint32_t>& candidates,
                                     AskFn&& ask) {
        RoundOutcome out;
        out.queries = candidates.size();
        for (const std::uint32_t peer : candidates) {
            switch (ask(peer)) {
                case PeerAnswer::absent: continue;
                case PeerAnswer::fresh: out.winner = peer; return out;
                case PeerAnswer::stale: out.stale_ended = true; continue;
            }
        }
        return out;
    }

    // --- step 4: insert --------------------------------------------------
    /// Admit a fetched document into the local cache. Returns whether the
    /// cache accepted it; every accepted document counts toward the
    /// update-delay threshold (the directory summary itself is mirrored by
    /// the cache hooks, not here).
    bool admit(std::string_view url, std::uint64_t size, std::uint64_t version) {
        const bool inserted = cache_.insert(url, size, version);
        if (inserted) batcher_.on_new_document();
        return inserted;
    }

    // --- step 5: directory maintenance -----------------------------------
    /// If the update threshold is crossed (and this caller wins the flush
    /// epoch), run `flush()` to encode/apply the pending changes and
    /// return its result plus the batch size. `flush` runs outside any
    /// cache lock and may call back into the cache.
    template <typename FlushFn>
    auto maybe_flush(double now, FlushFn&& flush)
        -> std::optional<std::pair<decltype(flush()), std::uint64_t>> {
        const std::uint64_t pending =
            batcher_.config().min_update_changes > 0 && summary_ != nullptr
                ? summary_->pending_changes()
                : batcher_.config().min_update_changes;  // floor self-satisfied
        const auto batch = batcher_.try_begin_flush(cache_.document_count(), now, pending);
        if (!batch) return std::nullopt;
        auto result = flush();
        batcher_.finish_flush(now, *batch);
        return std::make_pair(std::move(result), *batch);
    }

    /// The simulators' flush: snapshot the own summary's published view
    /// and report the one-peer wire cost (cheaper of delta / full, §VI-A).
    std::optional<PublishOutcome> maybe_publish(double now) {
        auto flushed = maybe_flush(now, [this] { return summary_->publish(); });
        if (!flushed) return std::nullopt;
        return PublishOutcome{flushed->first, flushed->second};
    }

private:
    ProtocolEngineConfig config_;
    CacheStore& cache_;
    DirectorySummary* summary_;
    const PeerDirectory* peers_;
    DeltaBatcher batcher_;
};

}  // namespace sc::core
