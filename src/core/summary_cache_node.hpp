// SummaryCacheNode — the paper's wire state machine (Section VI),
// transport-agnostic. One node per proxy:
//
//   * mirrors the local cache directory into a counting Bloom filter,
//   * encodes pending directory changes as ready-to-send
//     ICP_OP_DIRUPDATE / ICP_OP_DIRFULL datagrams (chunked to fit UDP,
//     cheaper of delta / full bitmap per Section VI-A),
//   * ingests siblings' update datagrams into per-sibling replica filters
//     (self-describing: the hash spec travels in every message), and
//   * answers "which siblings look promising for this URL?" — the probe
//     that replaces ICP's multicast-on-every-miss (it implements
//     core::PeerDirectory, so the ProtocolEngine can drive it).
//
// WHEN to encode is not decided here: the update-delay threshold lives in
// core::DeltaBatcher, shared with the simulators. The mini-proxy in
// src/proto/ drives this node over real sockets.
//
// Thread safety: the sibling-replica side is RCU-style. Each sibling's
// Bloom replica is an immutable snapshot behind a shared_ptr; the set of
// replicas is an immutable, NodeId-sorted table behind an atomic
// shared_ptr. Probes (`promising_siblings` / `sibling_may_contain` /
// `sibling_filter`) load the current table and never take a lock — they
// see a complete, untorn filter, at worst one update behind. Writers
// (`apply_sibling_update` / `forget_sibling`) serialize on an internal
// mutex, build the next snapshot OFF that publication (clone the affected
// filter, apply the flips, assemble a new table), then publish with one
// atomic store (`sc_node_replica_swaps_total` counts these). The LOCAL
// directory side (`on_cache_insert` / `on_cache_erase` /
// `encode_pending_updates` / the counting filter) is NOT internally
// synchronized — callers serialize those as before (MiniProxy under its
// node mutex; simulators are single-threaded).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "core/peer_directory.hpp"
#include "icp/icp_message.hpp"
#include "obs/metrics.hpp"
#include "summary/summary.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

class CacheStore;  // cache/cache_store.hpp

/// Stable identifier for a cooperating proxy (the ICP sender_host field).
using NodeId = std::uint32_t;

struct SummaryCacheNodeConfig {
    NodeId node_id = 0;
    /// Documents the local cache is expected to hold (cache bytes / 8 KB).
    std::uint64_t expected_docs = 1024;
    BloomSummaryConfig bloom;
    /// Per-process incarnation id carried in every outgoing update so
    /// receivers detect restarts (sequence space reset). 0 = pick a random
    /// nonzero id at construction; tests pin explicit values.
    std::uint32_t boot_id = 0;
};

/// What happened to an inbound sibling update (docs/PROTOCOL.md, "Losing
/// and regaining sync"). Only `applied` changed the published replica;
/// everything else tells the transport what repair action — if any — the
/// update calls for.
enum class SummaryApplyResult : std::uint8_t {
    applied,         ///< replica updated (delta in sequence, or full committed)
    partial,         ///< full-bitmap chunk buffered; reassembly not complete yet
    duplicate,       ///< delta sequence already applied — dropped, no action
    stale,           ///< full bitmap older than the replica's sync point — dropped
    gap,             ///< sequence gap or sender reboot: replica dropped + quarantined
    need_bootstrap,  ///< first contact via delta: no replica yet, send DIRREQ
    need_resync,     ///< delta while quarantined/unsynced: still waiting for a full
    rejected,        ///< hash spec mismatches the live replica
};

[[nodiscard]] constexpr bool summary_apply_needs_resync(SummaryApplyResult r) {
    return r == SummaryApplyResult::gap || r == SummaryApplyResult::need_bootstrap ||
           r == SummaryApplyResult::need_resync;
}

class SummaryCacheNode : public core::PeerDirectory {
public:
    explicit SummaryCacheNode(SummaryCacheNodeConfig config);

    [[nodiscard]] NodeId id() const { return config_.node_id; }
    [[nodiscard]] const HashSpec& hash_spec() const { return counting_.spec(); }
    [[nodiscard]] std::uint32_t boot_id() const { return boot_id_; }

    // --- local directory events -----------------------------------------
    void on_cache_insert(std::string_view url);
    void on_cache_erase(std::string_view url);

    /// Warm restart (docs/STORAGE.md): re-derive the counting Bloom filter
    /// from a recovered directory so the node re-advertises a truthful
    /// summary instead of an empty one. Inserts every entry the store
    /// holds, then drops the resulting bit-flip log — the recovered state
    /// is a baseline to be announced via encode_full_update(), not churn
    /// to be streamed as a (huge) delta. Call before the store's hooks are
    /// wired and before any traffic; externally synchronized like the rest
    /// of the local directory side. Returns the number of entries folded in.
    std::size_t rebuild_from_directory(const CacheStore& store);

    // --- outbound updates -------------------------------------------------
    /// Drain the accumulated bit-flip log and return the encoded datagrams
    /// to broadcast to every sibling (possibly more than one if the delta
    /// needs chunking; possibly a single full-bitmap message if that is
    /// smaller — the Section VI-A cheaper-encoding rule). Empty when the
    /// directory churn netted out. Deciding WHEN to call this is the
    /// DeltaBatcher's job.
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_pending_updates();

    /// Unconditionally encode a full-bitmap snapshot in one datagram (used
    /// to initialize a freshly (re)started sibling, mirroring Squid's
    /// recovery behaviour, and served as the payload of the pull-based
    /// Cache Digest variant). Carries the current delta sequence so the
    /// receiver resumes gap detection exactly where the snapshot leaves
    /// off; does NOT consume a sequence number. Throws WireError if the
    /// bitmap exceeds one datagram — use encode_full_update_chunks then.
    [[nodiscard]] std::vector<std::uint8_t> encode_full_update();

    /// Same snapshot, chunked to fit kMaxIcpDatagram (DIRFULL word_offset
    /// reassembly). This is the DIRREQ resync / bootstrap answer.
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_full_update_chunks();

    /// Sequence heartbeat: an empty delta advertising the sequence the
    /// next real delta will use (consumes nothing; one datagram, ~32 B).
    /// Closes the tail-loss window — losing the *last* delta before a
    /// quiet period leaves a receiver synced-but-stale forever, since gap
    /// detection needs a later datagram to notice. Broadcast on the
    /// keepalive tick; in-sync receivers drop it, lagging ones quarantine
    /// and resync. Externally synchronized like the other encoders.
    [[nodiscard]] std::vector<std::uint8_t> encode_seq_heartbeat();

    /// Drop the accumulated bit-flip log without emitting it. Pull-based
    /// digest deployments never send deltas, so the log would otherwise
    /// grow without bound.
    void discard_delta();

    // --- inbound updates --------------------------------------------------
    /// Apply a sibling's decoded update message, tracking the sender's
    /// per-boot delta sequence. A full bitmap (re)creates the replica and
    /// sets the sync point; an in-sequence delta advances it. Out-of-
    /// sequence deltas, sender reboots, and first contact never corrupt the
    /// replica — they quarantine/withhold it and report what repair the
    /// transport should run (see SummaryApplyResult). Thread-safe against
    /// concurrent probes and other writers (see the RCU note above).
    SummaryApplyResult apply_sibling_update(const IcpDirUpdate& update)
        SC_EXCLUDES(replica_write_mu_);

    /// Drop a sibling's replica and its sequence-tracking state (peer
    /// detected as failed; Section VI-B). A later rejoin starts from the
    /// bootstrap handshake. Thread-safe like apply_sibling_update.
    void forget_sibling(NodeId sibling) SC_EXCLUDES(replica_write_mu_);

    /// True when we cannot currently predict for `sibling` and a DIRREQ is
    /// called for: nothing ever heard, awaiting the bootstrap full, or
    /// quarantined after a gap/reboot. Drives the proxy's resync retries.
    [[nodiscard]] bool sibling_needs_resync(NodeId sibling) const
        SC_EXCLUDES(replica_write_mu_);

    /// The siblings whose streams are unsynced or quarantined right now.
    [[nodiscard]] std::vector<NodeId> siblings_awaiting_resync() const
        SC_EXCLUDES(replica_write_mu_);

    // --- probing (lock-free) ----------------------------------------------
    /// Siblings whose replicated summary says the URL may be cached there,
    /// in ascending NodeId order (the sequential-round probe order).
    /// Takes no lock: probes the atomically published replica snapshot.
    [[nodiscard]] std::vector<NodeId> promising_siblings(std::string_view url) const;

    /// core::PeerDirectory — same answer, engine-facing name.
    [[nodiscard]] std::vector<std::uint32_t> promising_peers(
        std::string_view url) const override {
        return promising_siblings(url);
    }

    [[nodiscard]] bool sibling_may_contain(NodeId sibling, std::string_view url) const;
    [[nodiscard]] std::size_t known_siblings() const {
        return replicas_.load(std::memory_order_acquire)->size();
    }
    /// The sibling's current replica snapshot (immutable), or nullptr.
    /// Safe to keep: a snapshot never changes after publication.
    [[nodiscard]] std::shared_ptr<const BloomFilter> sibling_filter(NodeId sibling) const;

    // --- introspection ----------------------------------------------------
    [[nodiscard]] const CountingBloomFilter& local_filter() const { return counting_; }
    [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
    [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }
    [[nodiscard]] std::uint64_t updates_rejected() const { return updates_rejected_; }
    /// Replicas dropped after a sequence gap or sender reboot.
    [[nodiscard]] std::uint64_t replica_divergences() const { return divergences_; }
    /// Unsynced/quarantined streams reinitialized by a full bitmap.
    [[nodiscard]] std::uint64_t resyncs() const { return resyncs_; }

private:
    /// Immutable, NodeId-sorted set of sibling replicas. A table and every
    /// filter it points at are frozen at publication; updates replace the
    /// whole table (sharing the untouched filters).
    using ReplicaTable = std::vector<std::pair<NodeId, std::shared_ptr<const BloomFilter>>>;

    /// In-flight reassembly of a chunked DIRFULL from one sender. The
    /// decode layer caps table_bits (kMaxWireTableBits), so `words` is a
    /// bounded allocation.
    struct PendingFull {
        std::uint32_t boot_id = 0;
        std::uint32_t seq = 0;  ///< the full's sync point (next expected delta)
        HashSpec spec;
        std::vector<std::uint32_t> words;
        std::size_t filled = 0;  ///< words received so far == next expected offset
    };

    /// Per-sender reliability state, keyed alongside (not inside) the
    /// replica table so dropping a diverged replica keeps the knowledge of
    /// *why* it is gone.
    struct PeerStream {
        std::uint32_t boot_id = 0;
        std::uint32_t expected_seq = 0;  ///< 0 = unsynced (no full applied yet)
        bool quarantined = false;
        std::optional<PendingFull> pending;
    };

    [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_delta_chunks(
        std::span<const std::uint32_t> records);

    SummaryApplyResult apply_full_locked(const IcpDirUpdate& update)
        SC_REQUIRES(replica_write_mu_);
    SummaryApplyResult apply_delta_locked(const IcpDirUpdate& update)
        SC_REQUIRES(replica_write_mu_);

    /// Commit `filter` as the sender's replica snapshot.
    void store_replica_locked(NodeId sibling, std::shared_ptr<BloomFilter> filter)
        SC_REQUIRES(replica_write_mu_);
    /// Drop the replica (if any) and mark the stream quarantined under the
    /// sender's (possibly new) boot id.
    void quarantine_locked(NodeId sibling, PeerStream& stream, std::uint32_t boot_id)
        SC_REQUIRES(replica_write_mu_);

    /// Publish `next` as the current table (writer mutex must be held).
    void publish_replicas(std::shared_ptr<const ReplicaTable> next)
        SC_REQUIRES(replica_write_mu_);

    /// Position of `sibling` in the NodeId-sorted table, or end().
    [[nodiscard]] static ReplicaTable::const_iterator find_replica(const ReplicaTable& table,
                                                                   NodeId sibling);

    SummaryCacheNodeConfig config_;
    // Local directory side: externally synchronized (MiniProxy's node
    // mutex; simulators are single-threaded), so no SC_GUARDED_BY here —
    // no single capability in this class guards it.
    CountingBloomFilter counting_;
    mutable Mutex replica_write_mu_;  ///< serializes snapshot builders
    // RCU publication point: readers do lock-free acquire loads, so this
    // is deliberately NOT SC_GUARDED_BY(replica_write_mu_) — only the
    // *store* side is serialized, via publish_replicas' SC_REQUIRES.
    std::atomic<std::shared_ptr<const ReplicaTable>> replicas_;
    /// Per-sender sequence/quarantine state. Guarded by the same writer
    /// mutex as the replica table so the two views can never disagree.
    std::map<NodeId, PeerStream> streams_ SC_GUARDED_BY(replica_write_mu_);
    std::uint32_t boot_id_ = 0;
    /// Next delta sequence to assign (per-boot, starts at 1). Each delta
    /// chunk consumes one; an elected full-bitmap broadcast consumes one
    /// slot too, so losing it is detectable as a gap. Local-directory side:
    /// externally synchronized like counting_.
    std::uint32_t delta_seq_ = 1;
    std::uint64_t updates_sent_ = 0;
    std::atomic<std::uint64_t> updates_applied_{0};
    std::atomic<std::uint64_t> updates_rejected_{0};
    std::atomic<std::uint64_t> divergences_{0};
    std::atomic<std::uint64_t> resyncs_{0};
    // Registry mirrors of the member counters, labeled node=<id>
    // (docs/OBSERVABILITY.md).
    obs::Counter metric_updates_sent_;
    obs::Counter metric_updates_applied_;
    obs::Counter metric_updates_rejected_;
    obs::Counter metric_replica_swaps_;
    obs::Counter metric_divergences_;
    obs::Counter metric_resyncs_;
};

}  // namespace sc
