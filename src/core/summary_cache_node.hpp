// SummaryCacheNode — the paper's protocol state machine (Section VI),
// transport-agnostic. One node per proxy:
//
//   * mirrors the local cache directory into a counting Bloom filter,
//   * decides when the update threshold is crossed and emits ready-to-send
//     ICP_OP_DIRUPDATE / ICP_OP_DIRFULL datagrams (chunked to fit UDP),
//   * ingests siblings' update datagrams into per-sibling replica filters
//     (self-describing: the hash spec travels in every message), and
//   * answers "which siblings look promising for this URL?" — the probe
//     that replaces ICP's multicast-on-every-miss.
//
// The mini-proxy in src/proto/ drives this over real sockets; the
// simulator uses the same building blocks directly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "icp/icp_message.hpp"
#include "obs/metrics.hpp"
#include "summary/summary.hpp"
#include "summary/update_policy.hpp"

namespace sc {

/// Stable identifier for a cooperating proxy (the ICP sender_host field).
using NodeId = std::uint32_t;

struct SummaryCacheNodeConfig {
    NodeId node_id = 0;
    /// Documents the local cache is expected to hold (cache bytes / 8 KB).
    std::uint64_t expected_docs = 1024;
    BloomSummaryConfig bloom;
    /// Section V-A update-delay threshold (fraction of cached docs).
    double update_threshold = 0.01;
};

class SummaryCacheNode {
public:
    explicit SummaryCacheNode(SummaryCacheNodeConfig config);

    [[nodiscard]] NodeId id() const { return config_.node_id; }
    [[nodiscard]] const HashSpec& hash_spec() const { return counting_.spec(); }

    // --- local directory events -----------------------------------------
    void on_cache_insert(std::string_view url);
    void on_cache_erase(std::string_view url);

    /// Current directory size, used by the threshold test. The owner of
    /// the cache calls this setter whenever the count changes; keeping it
    /// here avoids a circular dependency on the cache type.
    void set_directory_size(std::uint64_t docs) { directory_docs_ = docs; }

    // --- outbound updates -------------------------------------------------
    /// If the update threshold is crossed, drain the delta log and return
    /// the encoded datagrams to broadcast to every sibling (possibly more
    /// than one if the delta needs chunking; possibly a single full-bitmap
    /// message if that is smaller). Empty when below threshold.
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> poll_updates();

    /// Unconditionally encode a full-bitmap update (used to initialize a
    /// freshly (re)started sibling, mirroring Squid's recovery behaviour,
    /// and served as the payload of the pull-based Cache Digest variant).
    [[nodiscard]] std::vector<std::uint8_t> encode_full_update();

    /// Drop the accumulated bit-flip log without emitting it. Pull-based
    /// digest deployments never send deltas, so the log would otherwise
    /// grow without bound.
    void discard_delta();

    // --- inbound updates --------------------------------------------------
    /// Apply a sibling's decoded update message. Creates the replica on
    /// first contact; a full update also re-creates it after spec changes.
    /// Returns false (and ignores the message) if a delta arrives whose
    /// spec mismatches the existing replica — the sender will refresh us
    /// with a full update eventually.
    bool apply_sibling_update(const IcpDirUpdate& update);

    /// Drop a sibling's replica (peer detected as failed; Section VI-B).
    void forget_sibling(NodeId sibling);

    // --- probing ----------------------------------------------------------
    /// Siblings whose replicated summary says the URL may be cached there.
    [[nodiscard]] std::vector<NodeId> promising_siblings(std::string_view url) const;

    [[nodiscard]] bool sibling_may_contain(NodeId sibling, std::string_view url) const;
    [[nodiscard]] std::size_t known_siblings() const { return siblings_.size(); }
    [[nodiscard]] const BloomFilter* sibling_filter(NodeId sibling) const;

    // --- introspection ----------------------------------------------------
    [[nodiscard]] const CountingBloomFilter& local_filter() const { return counting_; }
    [[nodiscard]] std::uint64_t updates_sent() const { return updates_sent_; }
    [[nodiscard]] std::uint64_t updates_applied() const { return updates_applied_; }
    [[nodiscard]] std::uint64_t updates_rejected() const { return updates_rejected_; }

private:
    [[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_delta_chunks(
        const DeltaLog& delta);

    SummaryCacheNodeConfig config_;
    CountingBloomFilter counting_;
    UpdateThresholdPolicy policy_;
    std::uint64_t directory_docs_ = 0;
    std::map<NodeId, BloomFilter> siblings_;
    std::uint32_t next_request_number_ = 1;
    std::uint64_t updates_sent_ = 0;
    std::uint64_t updates_applied_ = 0;
    std::uint64_t updates_rejected_ = 0;
    // Registry mirrors of the member counters, labeled node=<id>
    // (docs/OBSERVABILITY.md).
    obs::Counter metric_updates_sent_;
    obs::Counter metric_updates_applied_;
    obs::Counter metric_updates_rejected_;
};

}  // namespace sc
