#include "net/event_backend.hpp"

#include <poll.h>
#ifdef __linux__
#include <sys/epoll.h>
#endif
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace sc::net {
namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

/// Milliseconds until `deadline`, in the int form poll/epoll want:
/// -1 blocks, 0 is a non-blocking check, rounding is up so a wait never
/// returns before the deadline it was asked for.
int timeout_ms(std::optional<std::chrono::steady_clock::time_point> deadline) {
    if (!deadline) return -1;
    const auto now = std::chrono::steady_clock::now();
    if (*deadline <= now) return 0;
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - now +
                                                              std::chrono::milliseconds(1) -
                                                              std::chrono::nanoseconds(1));
    if (ms.count() > INT_MAX) return INT_MAX;
    return static_cast<int>(ms.count());
}

obs::Histogram wait_histogram(const char* backend) {
    return obs::metrics().histogram(
        "sc_event_backend_wait_seconds",
        "Time spent blocked in the kernel readiness wait",
        obs::default_latency_bounds(), {{"backend", backend}});
}

class WaitTimer {
public:
    explicit WaitTimer(obs::Histogram& h)
        : h_(h), start_(std::chrono::steady_clock::now()) {}
    ~WaitTimer() {
        const std::chrono::duration<double> d =
            std::chrono::steady_clock::now() - start_;
        h_.observe(d.count());
    }

private:
    obs::Histogram& h_;
    std::chrono::steady_clock::time_point start_;
};

// ---------------------------------------------------------------------------
// poll(2): portable reference backend. The pollfd vector is kept densely
// packed (swap-remove) with a parallel tag vector and an fd → slot index.
// ---------------------------------------------------------------------------
class PollBackend final : public EventBackend {
public:
    void add(int fd, bool read, bool write, std::uint64_t tag) override {
        assert(!slots_.contains(fd) && "fd registered twice");
        slots_.emplace(fd, pfds_.size());
        pfds_.push_back({fd, events_for(read, write), 0});
        tags_.push_back(tag);
    }

    void modify(int fd, bool read, bool write, std::uint64_t tag) override {
        const std::size_t i = slot_of(fd, "PollBackend::modify");
        pfds_[i].events = events_for(read, write);
        tags_[i] = tag;
    }

    void remove(int fd) override {
        const std::size_t i = slot_of(fd, "PollBackend::remove");
        slots_.erase(fd);
        const std::size_t last = pfds_.size() - 1;
        if (i != last) {
            pfds_[i] = pfds_[last];
            tags_[i] = tags_[last];
            slots_[pfds_[i].fd] = i;
        }
        pfds_.pop_back();
        tags_.pop_back();
    }

    [[nodiscard]] bool contains(int fd) const override { return slots_.contains(fd); }

    [[nodiscard]] std::size_t registered() const override { return pfds_.size(); }

    std::size_t wait(std::optional<std::chrono::steady_clock::time_point> deadline,
                     std::vector<ReadyEvent>& out) SC_EVENT_LOOP_ONLY override {
        int n;
        {
            WaitTimer timer(wait_seconds_);
            n = ::poll(pfds_.data(), pfds_.size(), timeout_ms(deadline));
        }
        if (n < 0) {
            if (errno == EINTR) return 0;
            throw_errno("poll");
        }
        std::size_t appended = 0;
        for (std::size_t i = 0; i < pfds_.size() && n > 0; ++i) {
            const short re = pfds_[i].revents;
            if (re == 0) continue;
            --n;
            out.push_back({tags_[i], (re & POLLIN) != 0, (re & POLLOUT) != 0,
                           (re & POLLHUP) != 0, (re & (POLLERR | POLLNVAL)) != 0});
            ++appended;
        }
        return appended;
    }

    [[nodiscard]] const char* name() const override { return "poll"; }

private:
    static short events_for(bool read, bool write) {
        return static_cast<short>((read ? POLLIN : 0) | (write ? POLLOUT : 0));
    }

    std::size_t slot_of(int fd, const char* what) const {
        const auto it = slots_.find(fd);
        if (it == slots_.end()) throw std::logic_error(std::string(what) + ": fd not registered");
        return it->second;
    }

    std::vector<pollfd> pfds_;
    std::vector<std::uint64_t> tags_;           // parallel to pfds_
    std::unordered_map<int, std::size_t> slots_;  // fd → index in pfds_
    obs::Histogram wait_seconds_ = wait_histogram("poll");
};

#ifdef __linux__
// ---------------------------------------------------------------------------
// epoll: O(ready) wait. Level-triggered (no EPOLLET) so behavior matches the
// poll backend exactly. The interest map exists only for bookkeeping
// (contains/registered and the remove-before-close contract).
// ---------------------------------------------------------------------------
class EpollBackend final : public EventBackend {
public:
    EpollBackend() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
        if (epfd_ < 0) throw_errno("epoll_create1");
    }
    ~EpollBackend() override { ::close(epfd_); }
    EpollBackend(const EpollBackend&) = delete;
    EpollBackend& operator=(const EpollBackend&) = delete;

    void add(int fd, bool read, bool write, std::uint64_t tag) override {
        assert(!interest_.contains(fd) && "fd registered twice");
        ctl(EPOLL_CTL_ADD, fd, read, write, tag, "epoll_ctl(ADD)");
        interest_.emplace(fd, tag);
    }

    void modify(int fd, bool read, bool write, std::uint64_t tag) override {
        const auto it = interest_.find(fd);
        if (it == interest_.end())
            throw std::logic_error("EpollBackend::modify: fd not registered");
        ctl(EPOLL_CTL_MOD, fd, read, write, tag, "epoll_ctl(MOD)");
        it->second = tag;
    }

    void remove(int fd) override {
        if (interest_.erase(fd) == 0)
            throw std::logic_error("EpollBackend::remove: fd not registered");
        if (::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr) < 0) throw_errno("epoll_ctl(DEL)");
    }

    [[nodiscard]] bool contains(int fd) const override { return interest_.contains(fd); }

    [[nodiscard]] std::size_t registered() const override { return interest_.size(); }

    std::size_t wait(std::optional<std::chrono::steady_clock::time_point> deadline,
                     std::vector<ReadyEvent>& out) SC_EVENT_LOOP_ONLY override {
        events_.resize(std::max<std::size_t>(16, interest_.size()));
        int n;
        {
            WaitTimer timer(wait_seconds_);
            n = ::epoll_wait(epfd_, events_.data(), static_cast<int>(events_.size()),
                             timeout_ms(deadline));
        }
        if (n < 0) {
            if (errno == EINTR) return 0;
            throw_errno("epoll_wait");
        }
        for (int i = 0; i < n; ++i) {
            const std::uint32_t ev = events_[i].events;
            out.push_back({events_[i].data.u64, (ev & EPOLLIN) != 0, (ev & EPOLLOUT) != 0,
                           (ev & EPOLLHUP) != 0, (ev & EPOLLERR) != 0});
        }
        return static_cast<std::size_t>(n);
    }

    [[nodiscard]] const char* name() const override { return "epoll"; }

private:
    void ctl(int op, int fd, bool read, bool write, std::uint64_t tag, const char* what) {
        epoll_event ev{};
        ev.events = (read ? EPOLLIN : 0u) | (write ? EPOLLOUT : 0u);
        ev.data.u64 = tag;
        if (::epoll_ctl(epfd_, op, fd, &ev) < 0) throw_errno(what);
    }

    int epfd_;
    std::unordered_map<int, std::uint64_t> interest_;  // fd → tag
    std::vector<epoll_event> events_;
    obs::Histogram wait_seconds_ = wait_histogram("epoll");
};
#endif  // __linux__

}  // namespace

const char* event_backend_kind_name(EventBackendKind kind) {
    switch (kind) {
        case EventBackendKind::poll: return "poll";
        case EventBackendKind::epoll: return "epoll";
    }
    return "?";
}

std::optional<EventBackendKind> parse_event_backend_kind(std::string_view name) {
    if (name == "poll") return EventBackendKind::poll;
    if (name == "epoll") return EventBackendKind::epoll;
    return std::nullopt;
}

EventBackendKind default_event_backend_kind() {
#ifdef __linux__
    return EventBackendKind::epoll;
#else
    return EventBackendKind::poll;
#endif
}

EventBackendKind resolve_event_backend_kind(
    std::optional<EventBackendKind> explicit_kind) {
    if (explicit_kind) return *explicit_kind;
    if (const char* env = std::getenv("SC_EVENT_BACKEND")) {
        if (const auto parsed = parse_event_backend_kind(env)) return *parsed;
    }
    return default_event_backend_kind();
}

std::unique_ptr<EventBackend> make_event_backend(EventBackendKind kind) {
#ifdef __linux__
    if (kind == EventBackendKind::epoll) return std::make_unique<EpollBackend>();
#else
    if (kind == EventBackendKind::epoll)
        throw std::runtime_error("epoll event backend is only available on Linux");
#endif
    return std::make_unique<PollBackend>();
}

}  // namespace sc::net
