// Readiness-notification abstraction for the single-threaded event loops.
//
// Two implementations share one interface: a portable poll(2) backend whose
// wait cost is O(registered fds), and a Linux epoll backend whose wait cost
// is O(ready fds) — the difference that lets one proxy park 10k idle
// keep-alive sessions without rescanning them every wakeup. Both are
// level-triggered, so callers may leave bytes buffered in the kernel and be
// re-notified on the next wait.
//
// Selection order (resolve_event_backend_kind): explicit config →
// SC_EVENT_BACKEND env var ("poll"/"epoll") → platform default (epoll on
// Linux, poll elsewhere).
//
// Threading: a backend instance belongs to exactly one loop thread. wait()
// is marked SC_EVENT_LOOP_ONLY — raw ::poll/::epoll_wait calls outside
// src/net/ are a lint error (rule "raw-poll"), so every kernel readiness
// wait in the tree flows through here (or wait_fd_readable in fd_poll.hpp
// for one-shot single-fd waits).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sc::net {

/// One fd that became ready. `tag` is the caller's cookie from add().
struct ReadyEvent {
    std::uint64_t tag = 0;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  ///< peer closed (POLLHUP / EPOLLHUP)
    bool error = false;   ///< POLLERR / POLLNVAL / EPOLLERR
};

enum class EventBackendKind { poll, epoll };

[[nodiscard]] const char* event_backend_kind_name(EventBackendKind kind);
[[nodiscard]] std::optional<EventBackendKind> parse_event_backend_kind(
    std::string_view name);

/// Platform default: epoll on Linux, poll everywhere else.
[[nodiscard]] EventBackendKind default_event_backend_kind();

/// Explicit choice → SC_EVENT_BACKEND env var → platform default.
/// An unparseable env value is ignored (falls through to the default).
[[nodiscard]] EventBackendKind resolve_event_backend_kind(
    std::optional<EventBackendKind> explicit_kind);

class EventBackend {
public:
    virtual ~EventBackend() = default;

    /// Register `fd` with the given interest set. `tag` is returned verbatim
    /// in ReadyEvent so callers can map events back to their own state
    /// without an fd lookup. Registering an fd twice is a logic error.
    virtual void add(int fd, bool read, bool write, std::uint64_t tag) = 0;

    /// Change the interest set (and tag) of a registered fd.
    virtual void modify(int fd, bool read, bool write, std::uint64_t tag) = 0;

    /// Deregister. Must be called BEFORE the fd is closed — a closed fd is
    /// auto-removed from an epoll set but not from the poll vector, and the
    /// two backends must stay behaviorally identical.
    virtual void remove(int fd) = 0;

    /// Whether `fd` is currently registered.
    [[nodiscard]] virtual bool contains(int fd) const = 0;

    /// Number of registered fds.
    [[nodiscard]] virtual std::size_t registered() const = 0;

    /// Block until at least one registered fd is ready or `deadline` passes.
    /// nullopt blocks indefinitely (a wake-pipe fd must be registered to
    /// interrupt). A deadline already in the past polls without blocking.
    /// Appends to `out` (caller clears) and returns the number appended;
    /// returns 0 on timeout or EINTR.
    virtual std::size_t wait(
        std::optional<std::chrono::steady_clock::time_point> deadline,
        std::vector<ReadyEvent>& out) SC_EVENT_LOOP_ONLY = 0;

    [[nodiscard]] virtual const char* name() const = 0;
};

[[nodiscard]] std::unique_ptr<EventBackend> make_event_backend(
    EventBackendKind kind);

}  // namespace sc::net
