// One-shot single-fd readiness wait. The "raw-poll" lint rule bans ::poll /
// ::epoll_wait outside src/net/, so blocking-path callers (TcpConnection,
// TcpListener, UdpSocket) that need a bounded wait on exactly one fd use
// this instead of an EventBackend — registering and tearing down a backend
// per call would be pure overhead.
#pragma once

#include <poll.h>

#include <cerrno>
#include <system_error>

namespace sc::net {

/// Wait up to `timeout_ms` (-1 blocks) for `fd` to become readable.
/// Returns false on timeout or EINTR, throws std::system_error on failure.
inline bool wait_fd_readable(int fd, int timeout_ms) {
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
        if (errno == EINTR) return false;
        throw std::system_error(errno, std::generic_category(), "poll");
    }
    return ready > 0;
}

}  // namespace sc::net
