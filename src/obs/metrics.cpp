#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace sc::obs {
namespace detail {

std::atomic<std::uint64_t> sink_u64{0};
std::atomic<double> sink_f64{0.0};

void atomic_add_double(std::atomic<double>& cell, double delta) {
    double cur = cell.load(std::memory_order_relaxed);
    while (!cell.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
    }
}

}  // namespace detail

const char* metric_kind_name(MetricKind k) {
    switch (k) {
        case MetricKind::counter: return "counter";
        case MetricKind::gauge: return "gauge";
        case MetricKind::histogram: return "histogram";
    }
    return "?";
}

void Histogram::observe(double x) {
    if (!series_) return;
    detail::Series& s = *series_;
    std::size_t i = 0;
    while (i < s.bounds.size() && x > s.bounds[i]) ++i;
    s.buckets[i].fetch_add(1, std::memory_order_relaxed);
    s.observations.fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add_double(s.sum, x);
}

const std::vector<double>& default_latency_bounds() {
    static const std::vector<double> bounds{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
                                            0.05,   0.1,   0.25,   0.5,   1.0,  2.5};
    return bounds;
}

double SeriesSnapshot::quantile(double q) const {
    if (observations == 0 || bucket_counts.empty()) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(observations);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
        const std::uint64_t prev = cum;
        cum += bucket_counts[i];
        if (static_cast<double>(cum) < target || bucket_counts[i] == 0) continue;
        if (i == bounds.size()) return bounds.empty() ? 0.0 : bounds.back();  // +Inf bucket
        const double lo = i == 0 ? 0.0 : bounds[i - 1];
        const double hi = bounds[i];
        const double into = target - static_cast<double>(prev);
        return lo + (hi - lo) * into / static_cast<double>(bucket_counts[i]);
    }
    return bounds.empty() ? 0.0 : bounds.back();
}

namespace {

/// Canonical map key: name + '\0' + sorted "k=v" pairs. '\0' cannot occur
/// in metric names, so keys never collide across families.
std::string series_key(std::string_view name, const Labels& labels) {
    std::string key(name);
    for (const auto& [k, v] : labels) {
        key += '\0';
        key += k;
        key += '=';
        key += v;
    }
    return key;
}

Labels canonical(Labels labels) {
    std::sort(labels.begin(), labels.end());
    return labels;
}

}  // namespace

const SeriesSnapshot* MetricsSnapshot::find(std::string_view name, const Labels& labels) const {
    for (const SeriesSnapshot& s : series) {
        if (s.name != name) continue;
        bool match = true;
        for (const auto& want : labels) {
            if (std::find(s.labels.begin(), s.labels.end(), want) == s.labels.end()) {
                match = false;
                break;
            }
        }
        if (match) return &s;
    }
    return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry* instance = [] {
        const char* disabled = std::getenv("SC_OBS_DISABLED");
        const bool off = disabled != nullptr && disabled[0] != '\0' && disabled[0] != '0';
        return new MetricsRegistry(!off);  // leaked: outlives every thread
    }();
    return *instance;
}

detail::Series* MetricsRegistry::intern(std::string_view name, std::string_view help,
                                        MetricKind kind, Labels labels,
                                        std::vector<double> bounds) {
    labels = canonical(std::move(labels));
    const std::string key = series_key(name, labels);
    const MutexLock lock(mu_);
    const auto it = series_.find(key);
    if (it != series_.end()) {
        if (it->second->kind != kind)
            throw std::logic_error("metric re-registered with different kind: " +
                                   std::string(name));
        return it->second.get();
    }
    auto s = std::make_unique<detail::Series>();
    s->name = std::string(name);
    s->help = std::string(help);
    s->kind = kind;
    s->labels = std::move(labels);
    if (kind == MetricKind::histogram) {
        s->bounds = std::move(bounds);
        s->buckets = std::make_unique<std::atomic<std::uint64_t>[]>(s->bounds.size() + 1);
        for (std::size_t i = 0; i <= s->bounds.size(); ++i) s->buckets[i] = 0;
    }
    return series_.emplace(key, std::move(s)).first->second.get();
}

Counter MetricsRegistry::counter(std::string_view name, std::string_view help, Labels labels) {
    if (!enabled_.load(std::memory_order_relaxed)) return Counter{};
    return Counter{&intern(name, help, MetricKind::counter, std::move(labels), {})->counter};
}

Gauge MetricsRegistry::gauge(std::string_view name, std::string_view help, Labels labels) {
    if (!enabled_.load(std::memory_order_relaxed)) return Gauge{};
    return Gauge{&intern(name, help, MetricKind::gauge, std::move(labels), {})->gauge};
}

Histogram MetricsRegistry::histogram(std::string_view name, std::string_view help,
                                     std::vector<double> bounds, Labels labels) {
    if (!enabled_.load(std::memory_order_relaxed)) return Histogram{};
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        throw std::logic_error("histogram bounds must be ascending: " + std::string(name));
    return Histogram{
        intern(name, help, MetricKind::histogram, std::move(labels), std::move(bounds))};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
    MetricsSnapshot out;
    const MutexLock lock(mu_);
    out.series.reserve(series_.size());
    for (const auto& [key, s] : series_) {  // map order == sorted by (name, labels)
        SeriesSnapshot snap;
        snap.name = s->name;
        snap.help = s->help;
        snap.kind = s->kind;
        snap.labels = s->labels;
        switch (s->kind) {
            case MetricKind::counter:
                snap.counter = s->counter.load(std::memory_order_relaxed);
                break;
            case MetricKind::gauge:
                snap.gauge = s->gauge.load(std::memory_order_relaxed);
                break;
            case MetricKind::histogram:
                snap.bounds = s->bounds;
                snap.bucket_counts.resize(s->bounds.size() + 1);
                for (std::size_t i = 0; i <= s->bounds.size(); ++i)
                    snap.bucket_counts[i] = s->buckets[i].load(std::memory_order_relaxed);
                snap.observations = s->observations.load(std::memory_order_relaxed);
                snap.sum = s->sum.load(std::memory_order_relaxed);
                break;
        }
        out.series.push_back(std::move(snap));
    }
    return out;
}

void MetricsRegistry::reset() {
    const MutexLock lock(mu_);
    for (auto& [key, s] : series_) {
        s->counter.store(0, std::memory_order_relaxed);
        s->gauge.store(0.0, std::memory_order_relaxed);
        s->observations.store(0, std::memory_order_relaxed);
        s->sum.store(0.0, std::memory_order_relaxed);
        for (std::size_t i = 0; s->buckets && i <= s->bounds.size(); ++i)
            s->buckets[i].store(0, std::memory_order_relaxed);
    }
}

std::size_t MetricsRegistry::series_count() const {
    const MutexLock lock(mu_);
    return series_.size();
}

namespace {

/// Shortest round-trip double rendering that prints integers without a
/// trailing ".0" ("42", "0.25", "1e-05").
std::string format_double(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.15g", v);
    return buf;
}

std::string escape_label_value(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/// {a="1",b="2"} — with `extra` ("le=0.5") appended when non-empty.
std::string label_block(const Labels& labels, const std::string& extra = {}) {
    if (labels.empty() && extra.empty()) return {};
    std::string out = "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) out += ',';
        first = false;
        out += k;
        out += "=\"";
        out += escape_label_value(v);
        out += '"';
    }
    if (!extra.empty()) {
        if (!first) out += ',';
        out += extra;
    }
    out += '}';
    return out;
}

std::string json_escape(std::string_view v) {
    std::string out;
    out.reserve(v.size());
    for (const char c : v) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

}  // namespace

std::string to_prometheus(const MetricsSnapshot& snapshot) {
    std::string out;
    std::string last_family;
    for (const SeriesSnapshot& s : snapshot.series) {
        if (s.name != last_family) {
            last_family = s.name;
            out += "# HELP " + s.name + ' ' + s.help + '\n';
            out += "# TYPE " + s.name + ' ' + metric_kind_name(s.kind) + '\n';
        }
        switch (s.kind) {
            case MetricKind::counter:
                out += s.name + label_block(s.labels) + ' ' + std::to_string(s.counter) + '\n';
                break;
            case MetricKind::gauge:
                out += s.name + label_block(s.labels) + ' ' + format_double(s.gauge) + '\n';
                break;
            case MetricKind::histogram: {
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
                    cum += s.bucket_counts[i];
                    const std::string le =
                        i == s.bounds.size() ? "le=\"+Inf\""
                                             : "le=\"" + format_double(s.bounds[i]) + '"';
                    out += s.name + "_bucket" + label_block(s.labels, le) + ' ' +
                           std::to_string(cum) + '\n';
                }
                out += s.name + "_sum" + label_block(s.labels) + ' ' + format_double(s.sum) +
                       '\n';
                out += s.name + "_count" + label_block(s.labels) + ' ' +
                       std::to_string(s.observations) + '\n';
                break;
            }
        }
    }
    return out;
}

std::string to_json(const MetricsSnapshot& snapshot) {
    std::string out = "{\"metrics\":[";
    bool first = true;
    for (const SeriesSnapshot& s : snapshot.series) {
        if (!first) out += ',';
        first = false;
        out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"";
        out += metric_kind_name(s.kind);
        out += "\",\"labels\":{";
        bool first_label = true;
        for (const auto& [k, v] : s.labels) {
            if (!first_label) out += ',';
            first_label = false;
            out += '"' + json_escape(k) + "\":\"" + json_escape(v) + '"';
        }
        out += '}';
        switch (s.kind) {
            case MetricKind::counter:
                out += ",\"value\":" + std::to_string(s.counter);
                break;
            case MetricKind::gauge:
                out += ",\"value\":" + format_double(s.gauge);
                break;
            case MetricKind::histogram: {
                out += ",\"buckets\":[";
                for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
                    if (i > 0) out += ',';
                    out += "{\"le\":";
                    out += i == s.bounds.size() ? "\"+Inf\"" : format_double(s.bounds[i]);
                    out += ",\"count\":" + std::to_string(s.bucket_counts[i]) + '}';
                }
                out += "],\"sum\":" + format_double(s.sum) +
                       ",\"count\":" + std::to_string(s.observations);
                break;
            }
        }
        out += '}';
    }
    out += "]}";
    return out;
}

}  // namespace sc::obs
