// sc::obs — process-wide metrics registry (counters, gauges, histograms).
//
// The paper's whole evaluation is quantitative (messages, bytes, CPU, hit
// ratio); this registry makes those quantities observable from a *running*
// system instead of end-of-run printouts. Design constraints:
//
//   * Hot-path increments are a single relaxed atomic add — no lock, no
//     allocation, no branch (a disabled registry hands out handles backed
//     by a shared sink cell, so instrumented code never checks a flag).
//   * Registration takes a mutex once per (name, labels) series; handles
//     are plain pointers into registry-owned storage that stays valid for
//     the registry's lifetime.
//   * snapshot() is wait-free with respect to writers (relaxed loads) and
//     produces a deterministic, sorted view that the exporters (Prometheus
//     text and JSON, see exposition functions below) render.
//
// The global() registry is a leaked singleton so instrumented code may run
// during static destruction; standalone registries are supported for tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sc::obs {

/// Label set: key/value pairs, canonicalized (sorted by key) at
/// registration so {a=1,b=2} and {b=2,a=1} name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricKind { counter, gauge, histogram };

[[nodiscard]] const char* metric_kind_name(MetricKind k);

namespace detail {

/// One registered time series. Owned by the registry; never moved or
/// freed while the registry lives, so instrument handles can hold raw
/// pointers into it.
struct Series {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::counter;
    Labels labels;

    std::atomic<std::uint64_t> counter{0};
    std::atomic<double> gauge{0.0};

    // Histogram state: buckets[i] counts observations <= bounds[i];
    // buckets[bounds.size()] is the +Inf overflow bucket.
    std::vector<double> bounds;
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> observations{0};
    std::atomic<double> sum{0.0};
};

void atomic_add_double(std::atomic<double>& cell, double delta);

/// Shared sink for handles from a disabled registry: increments land
/// here and are never exported.
extern std::atomic<std::uint64_t> sink_u64;
extern std::atomic<double> sink_f64;

}  // namespace detail

/// Monotonic counter handle. Cheap to copy; default-constructed handles
/// are valid no-ops (they increment the shared sink).
class Counter {
public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { cell_->fetch_add(n, std::memory_order_relaxed); }
    [[nodiscard]] std::uint64_t value() const { return cell_->load(std::memory_order_relaxed); }

private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
    std::atomic<std::uint64_t>* cell_ = &detail::sink_u64;
};

/// Instantaneous-value handle (set/add). Same lifetime rules as Counter.
class Gauge {
public:
    Gauge() = default;

    void set(double v) { cell_->store(v, std::memory_order_relaxed); }
    void add(double delta) { detail::atomic_add_double(*cell_, delta); }
    [[nodiscard]] double value() const { return cell_->load(std::memory_order_relaxed); }

private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
    std::atomic<double>* cell_ = &detail::sink_f64;
};

/// Fixed-bucket histogram handle. observe() is a short bound scan plus
/// relaxed atomic adds; bucket bounds are fixed at registration.
class Histogram {
public:
    Histogram() = default;

    void observe(double x);
    [[nodiscard]] std::uint64_t count() const {
        return series_ ? series_->observations.load(std::memory_order_relaxed) : 0;
    }

private:
    friend class MetricsRegistry;
    explicit Histogram(detail::Series* series) : series_(series) {}
    detail::Series* series_ = nullptr;  // null = no-op (disabled registry)
};

/// Prometheus-style default latency bucket bounds, in seconds.
[[nodiscard]] const std::vector<double>& default_latency_bounds();

/// Point-in-time copy of one series, safe to hold after the registry
/// has moved on (all plain values).
struct SeriesSnapshot {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::counter;
    Labels labels;

    std::uint64_t counter = 0;  ///< kind == counter
    double gauge = 0.0;         ///< kind == gauge

    std::vector<double> bounds;               ///< kind == histogram
    std::vector<std::uint64_t> bucket_counts; ///< bounds.size() + 1 (+Inf last)
    std::uint64_t observations = 0;
    double sum = 0.0;

    /// q in [0, 1]: estimated quantile by linear interpolation inside the
    /// chosen bucket (lower edge 0 for the first bucket; the +Inf bucket
    /// reports its lower bound). Returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;
};

struct MetricsSnapshot {
    std::vector<SeriesSnapshot> series;  ///< sorted by (name, labels)

    /// First series with this name (and label subset, if given), or null.
    [[nodiscard]] const SeriesSnapshot* find(std::string_view name,
                                             const Labels& labels = {}) const;
};

class MetricsRegistry {
public:
    explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// Process-wide registry (leaked singleton). Honors SC_OBS_DISABLED=1
    /// in the environment at first use.
    [[nodiscard]] static MetricsRegistry& global();

    /// Register (or look up) a series. Re-registering the same
    /// (name, labels) returns a handle to the same cell; a kind conflict
    /// throws std::logic_error.
    [[nodiscard]] Counter counter(std::string_view name, std::string_view help,
                                  Labels labels = {});
    [[nodiscard]] Gauge gauge(std::string_view name, std::string_view help,
                              Labels labels = {});
    /// `bounds` are ascending upper bucket edges; a +Inf bucket is implied.
    [[nodiscard]] Histogram histogram(std::string_view name, std::string_view help,
                                      std::vector<double> bounds, Labels labels = {});

    [[nodiscard]] MetricsSnapshot snapshot() const SC_EXCLUDES(mu_);

    /// Handles minted while disabled point at the shared sink and stay
    /// no-ops forever; series registered while enabled keep counting.
    void set_enabled(bool enabled) { enabled_ = enabled; }
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Zero every registered series (tests / between benchmark runs).
    void reset() SC_EXCLUDES(mu_);

    [[nodiscard]] std::size_t series_count() const SC_EXCLUDES(mu_);

private:
    detail::Series* intern(std::string_view name, std::string_view help, MetricKind kind,
                           Labels labels, std::vector<double> bounds) SC_EXCLUDES(mu_);

    std::atomic<bool> enabled_{true};
    mutable Mutex mu_;
    // key: name + labels
    std::map<std::string, std::unique_ptr<detail::Series>> series_ SC_GUARDED_BY(mu_);
};

/// Shorthand for MetricsRegistry::global().
[[nodiscard]] inline MetricsRegistry& metrics() { return MetricsRegistry::global(); }

/// Prometheus text exposition format 0.0.4 (HELP/TYPE per family,
/// histogram as _bucket{le=...}/_sum/_count).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// JSON exposition: {"metrics": [{name, kind, labels, ...}, ...]}.
[[nodiscard]] std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace sc::obs
