#include "obs/trace_ring.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace sc::obs {

const char* trace_event_name(TraceEventType t) {
    switch (t) {
        case TraceEventType::none: return "none";
        case TraceEventType::summary_update_emitted: return "summary_update_emitted";
        case TraceEventType::summary_update_applied: return "summary_update_applied";
        case TraceEventType::summary_update_rejected: return "summary_update_rejected";
        case TraceEventType::false_positive_probe: return "false_positive_probe";
        case TraceEventType::remote_hit: return "remote_hit";
        case TraceEventType::icp_timeout: return "icp_timeout";
        case TraceEventType::sibling_dead: return "sibling_dead";
        case TraceEventType::sibling_recovered: return "sibling_recovered";
        case TraceEventType::replica_quarantined: return "replica_quarantined";
        case TraceEventType::resync_requested: return "resync_requested";
        case TraceEventType::resync_served: return "resync_served";
        case TraceEventType::sibling_joined: return "sibling_joined";
        case TraceEventType::session_idle_closed: return "session_idle_closed";
    }
    return "?";
}

namespace {

std::uint64_t monotonic_ns() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
}

std::uint64_t next_ring_id() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

TraceRing::TraceRing(std::size_t capacity_per_thread)
    : id_(next_ring_id()), capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread) {}

TraceRing& TraceRing::global() {
    static TraceRing* instance = new TraceRing();  // leaked: outlives every thread
    return *instance;
}

TraceRing::Buffer& TraceRing::local_buffer() {
    // Keyed by registry id, not address: a test-scoped ring destroyed and
    // another allocated at the same address must not inherit its buffer.
    thread_local std::unordered_map<std::uint64_t, std::shared_ptr<Buffer>> rings;
    auto& slot = rings[id_];
    if (!slot) {
        slot = std::make_shared<Buffer>(capacity_);
        const MutexLock lock(mu_);
        buffers_.push_back(slot);  // stays registered after thread exit so
                                   // its tail is still drainable
    }
    return *slot;
}

void TraceRing::record(TraceEventType type, std::uint16_t node, std::uint64_t a,
                       std::uint64_t b) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    Buffer& buf = local_buffer();
    const MutexLock lock(buf.mu);
    TraceEvent& slot = buf.slots[buf.next % capacity_];
    slot.ns = monotonic_ns();
    slot.type = type;
    slot.node = node;
    slot.seq = static_cast<std::uint32_t>(buf.next);
    slot.a = a;
    slot.b = b;
    ++buf.next;
}

std::vector<TraceEvent> TraceRing::drain() {
    std::vector<std::shared_ptr<Buffer>> buffers;
    {
        const MutexLock lock(mu_);
        buffers = buffers_;
    }
    std::vector<TraceEvent> out;
    for (const auto& buf : buffers) {
        const MutexLock lock(buf->mu);
        // Undrained window, clipped to the ring capacity (older events
        // were overwritten).
        const std::uint64_t lo =
            std::max(buf->drained, buf->next > capacity_ ? buf->next - capacity_ : 0);
        for (std::uint64_t i = lo; i < buf->next; ++i)
            out.push_back(buf->slots[i % capacity_]);
        buf->drained = buf->next;
    }
    std::sort(out.begin(), out.end(), [](const TraceEvent& x, const TraceEvent& y) {
        return x.ns != y.ns ? x.ns < y.ns : x.seq < y.seq;
    });
    return out;
}

void TraceRing::clear() { (void)drain(); }

std::string trace_to_json(const std::vector<TraceEvent>& events) {
    std::string out = "[";
    bool first = true;
    for (const TraceEvent& e : events) {
        if (!first) out += ',';
        first = false;
        out += "{\"ns\":" + std::to_string(e.ns) + ",\"type\":\"";
        out += trace_event_name(e.type);
        out += "\",\"node\":" + std::to_string(e.node) + ",\"a\":" + std::to_string(e.a) +
               ",\"b\":" + std::to_string(e.b) + '}';
    }
    out += ']';
    return out;
}

}  // namespace sc::obs
