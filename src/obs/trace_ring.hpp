// sc::obs — fixed-capacity, per-thread event-trace ring buffer.
//
// Records protocol events (summary update emitted/applied/rejected,
// false-positive probe, remote hit, ICP timeout, liveness transitions)
// with monotonic nanosecond timestamps. Each thread writes into its own
// ring, so recording never contends with other recorders; when a ring is
// full the oldest events are overwritten (tracing must never block or
// grow the protocol path). drain() collects and clears every thread's
// undrained events, merged in timestamp order.
//
// Recording takes the ring's per-thread mutex, which is uncontended
// except while a drain is copying that same ring — a deliberate trade:
// ~20 ns on an event that already reads the monotonic clock, in exchange
// for race-free drains from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sc::obs {

/// Protocol trace points (docs/OBSERVABILITY.md catalogues the payloads).
enum class TraceEventType : std::uint16_t {
    none = 0,
    summary_update_emitted,   ///< a = datagrams encoded, b = full bitmap? 1 : 0
    summary_update_applied,   ///< a = sender node, b = full? 1 : 0
    summary_update_rejected,  ///< a = sender node (spec mismatch)
    false_positive_probe,     ///< a = sibling that replied MISS after the summary said hit
    remote_hit,               ///< a = sibling that served the document
    icp_timeout,              ///< a = replies missing when the wait expired
    sibling_dead,             ///< a = sibling declared dead (liveness)
    sibling_recovered,        ///< a = sibling heard from again
    replica_quarantined,      ///< a = sender whose replica diverged, b = expected seq
    resync_requested,         ///< a = peer we sent DIRREQ to
    resync_served,            ///< a = peer whose DIRREQ we answered with a full bitmap
    sibling_joined,           ///< a = sibling learned at runtime (dynamic membership)
    session_idle_closed,      ///< a = session id reaped by the idle keep-alive sweep
};

[[nodiscard]] const char* trace_event_name(TraceEventType t);

struct TraceEvent {
    std::uint64_t ns = 0;   ///< steady_clock nanoseconds (monotonic)
    TraceEventType type = TraceEventType::none;
    std::uint16_t node = 0; ///< reporting node id (0 when not applicable)
    std::uint32_t seq = 0;  ///< per-thread sequence number (drain ordering)
    std::uint64_t a = 0;    ///< type-specific payload
    std::uint64_t b = 0;
};

class TraceRing {
public:
    explicit TraceRing(std::size_t capacity_per_thread = 4096);

    TraceRing(const TraceRing&) = delete;
    TraceRing& operator=(const TraceRing&) = delete;

    /// Process-wide ring (leaked singleton, capacity 4096 per thread).
    [[nodiscard]] static TraceRing& global();

    void record(TraceEventType type, std::uint16_t node = 0, std::uint64_t a = 0,
                std::uint64_t b = 0);

    /// Collect (and mark as consumed) every thread's undrained events,
    /// merged by timestamp. Events overwritten before a drain are lost —
    /// that is the ring semantics.
    [[nodiscard]] std::vector<TraceEvent> drain();

    /// Drop all undrained events.
    void clear();

    void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
    [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    [[nodiscard]] std::size_t capacity_per_thread() const { return capacity_; }

private:
    struct Buffer {
        explicit Buffer(std::size_t cap) : slots(cap) {}
        Mutex mu;
        std::vector<TraceEvent> slots SC_GUARDED_BY(mu);
        std::uint64_t next SC_GUARDED_BY(mu) = 0;     ///< total events ever recorded
        std::uint64_t drained SC_GUARDED_BY(mu) = 0;  ///< events consumed by drain()
    };

    [[nodiscard]] Buffer& local_buffer() SC_EXCLUDES(mu_);

    const std::uint64_t id_;  ///< distinguishes registries across reuse of addresses
    const std::size_t capacity_;
    std::atomic<bool> enabled_{true};
    Mutex mu_;
    std::vector<std::shared_ptr<Buffer>> buffers_ SC_GUARDED_BY(mu_);
};

/// Shorthand: record into the global ring.
inline void trace(TraceEventType type, std::uint16_t node = 0, std::uint64_t a = 0,
                  std::uint64_t b = 0) {
    TraceRing::global().record(type, node, a, b);
}

/// JSON array rendering of drained events (admin endpoint / tools).
[[nodiscard]] std::string trace_to_json(const std::vector<TraceEvent>& events);

}  // namespace sc::obs
