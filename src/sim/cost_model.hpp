// Packet / CPU / latency cost model reproducing the *accounting* of the
// paper's testbed experiments (Sections IV and VII): 10 SPARC-20-class
// machines, Squid proxies, netstat packet counts, and the Wisconsin Proxy
// Benchmark's 1-second origin-server delay.
//
// The absolute constants are calibrated, not measured — what the
// reproduction must preserve is the *relative* overhead of ICP vs no-ICP
// vs SC-ICP (factors of tens in UDP messages, tens of percent in CPU,
// ~10% in latency), which depends on event counts, not on the constants'
// absolute scale. Every constant is documented and adjustable.
#pragma once

#include <cstdint>

namespace sc {

struct CostModelConfig {
    // --- CPU charges, seconds per event (SPARC-20-era Squid scale) ------
    double user_cpu_per_http = 0.0100;      ///< parse+serve one HTTP request
    double sys_cpu_per_tcp_packet = 0.00025;///< kernel cost per TCP packet
    double user_cpu_per_icp_event = 0.00024;///< build/parse one ICP message
    double sys_cpu_per_udp = 0.00014;       ///< kernel cost per UDP datagram
    double user_cpu_per_md5 = 0.00001;      ///< one MD5 signature (SC-ICP)
    double user_cpu_per_remote_hit = 0.0040;///< extra work serving a sibling

    // --- latency components, seconds ------------------------------------
    double server_delay = 1.0;       ///< benchmark origin servers sleep 1 s
    double hit_service_time = 0.020; ///< local-hit turnaround (no queueing)
    double remote_hit_fetch = 0.150; ///< LAN fetch from a sibling
    double lan_rtt = 0.002;          ///< ICP query/reply round trip

    // --- packet accounting ----------------------------------------------
    double tcp_mss = 1460.0;
    /// Non-data TCP packets per HTTP transfer leg as seen at one NIC
    /// (SYN/SYN-ACK/ACK, request, FIN exchange): sent + received.
    double tcp_leg_overhead_pkts = 8.0;
    /// ACKs per data segment (delayed acks: one per two segments).
    double acks_per_segment = 0.5;
    /// UDP datagram payload capacity for chunking summary updates.
    double udp_mtu_payload = 1400.0;

    // --- background traffic ----------------------------------------------
    /// Squid peers exchange liveness probes; this is the only inter-proxy
    /// UDP in the no-ICP baseline (the paper's Table II footnote).
    double keepalive_interval_s = 1.5;
};

/// TCP packets (sent + received at one proxy NIC) for transferring a body
/// of `bytes` over one HTTP leg.
[[nodiscard]] double tcp_packets_per_leg(const CostModelConfig& cfg, double bytes);

/// UDP datagrams needed to carry a summary-update message of `bytes`.
[[nodiscard]] std::uint64_t udp_datagrams_for_update(const CostModelConfig& cfg,
                                                     std::uint64_t bytes);

/// M/M/1-style queueing inflation: expected time in system for work `c`
/// at utilization rho (clamped below 0.95 to keep the model stable).
[[nodiscard]] double queueing_delay(double c, double rho);

}  // namespace sc
