#include "sim/share_sim.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "summary/message_costs.hpp"
#include "util/sc_assert.hpp"

namespace sc {

const char* sharing_scheme_name(SharingScheme s) {
    switch (s) {
        case SharingScheme::none: return "no-sharing";
        case SharingScheme::simple: return "simple";
        case SharingScheme::single_copy: return "single-copy";
        case SharingScheme::global: return "global";
    }
    return "?";
}

const char* query_protocol_name(QueryProtocol p) {
    switch (p) {
        case QueryProtocol::none: return "none";
        case QueryProtocol::icp: return "icp";
        case QueryProtocol::oracle: return "oracle";
        case QueryProtocol::summary: return "summary";
    }
    return "?";
}

double ShareSimResult::total_hit_ratio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(local_hits + remote_hits) / static_cast<double>(requests);
}

double ShareSimResult::byte_hit_ratio() const {
    return request_bytes == 0
               ? 0.0
               : static_cast<double>(hit_bytes) / static_cast<double>(request_bytes);
}

double ShareSimResult::local_hit_ratio() const {
    return requests == 0 ? 0.0 : static_cast<double>(local_hits) / static_cast<double>(requests);
}

double ShareSimResult::remote_hit_ratio() const {
    return requests == 0 ? 0.0 : static_cast<double>(remote_hits) / static_cast<double>(requests);
}

double ShareSimResult::false_hit_ratio() const {
    return requests == 0 ? 0.0 : static_cast<double>(false_hits) / static_cast<double>(requests);
}

double ShareSimResult::false_miss_ratio() const {
    return requests == 0 ? 0.0 : static_cast<double>(false_misses) / static_cast<double>(requests);
}

double ShareSimResult::remote_stale_hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(remote_stale_hits) / static_cast<double>(requests);
}

std::uint64_t ShareSimResult::total_messages() const {
    // Matches the paper's Figure 7 accounting: queries + summary updates.
    // (Replies are tracked separately; the packet-level model counts them.)
    return query_messages + update_messages;
}

std::uint64_t ShareSimResult::total_message_bytes() const {
    return query_bytes + update_bytes;
}

double ShareSimResult::messages_per_request() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(total_messages()) / static_cast<double>(requests);
}

double ShareSimResult::message_bytes_per_request() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(total_message_bytes()) / static_cast<double>(requests);
}

ShareSimulator::ShareSimulator(ShareSimConfig config) : config_(std::move(config)) {
    SC_ASSERT(config_.num_proxies >= 1);
    SC_ASSERT(config_.cache_bytes_per_proxy > 0 || !config_.per_proxy_cache_bytes.empty());
    SC_ASSERT(config_.per_proxy_cache_bytes.empty() ||
              config_.per_proxy_cache_bytes.size() == config_.num_proxies);

    const auto capacity_of = [this](std::uint32_t proxy) {
        return config_.per_proxy_cache_bytes.empty() ? config_.cache_bytes_per_proxy
                                                     : config_.per_proxy_cache_bytes[proxy];
    };

    if (config_.scheme == SharingScheme::global) {
        std::uint64_t total = 0;
        for (std::uint32_t p = 0; p < config_.num_proxies; ++p) total += capacity_of(p);
        const auto capacity = static_cast<std::uint64_t>(
            static_cast<double>(total) * config_.global_capacity_scale);
        global_cache_ = std::make_unique<LruCache>(
            LruCacheConfig{capacity, config_.max_object_bytes});
        return;
    }

    proxies_.resize(config_.num_proxies);
    for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
        auto& p = proxies_[i];
        const std::uint64_t capacity = capacity_of(i);
        SC_ASSERT(capacity > 0);
        const std::uint64_t expected_docs =
            std::max<std::uint64_t>(1, capacity / kAverageDocumentBytes);
        p.cache =
            std::make_unique<LruCache>(LruCacheConfig{capacity, config_.max_object_bytes});
        if (config_.protocol == QueryProtocol::summary) {
            p.summary = make_summary(config_.summary_kind, expected_docs, config_.bloom);
            DirectorySummary* summary = p.summary.get();
            p.cache->set_insert_hook(
                [summary](const LruCache::Entry& e) { summary->on_insert(e.url); });
            p.cache->set_removal_hook(
                [summary](const LruCache::Entry& e) { summary->on_erase(e.url); });
        }
    }
    // Second pass: every proxy's peer view points at the siblings'
    // summaries (index order — the probe order of the sequential round),
    // and one ProtocolEngine per proxy drives the shared pipeline.
    const core::DeltaBatcherConfig batching{config_.update_threshold,
                                            config_.update_interval_seconds,
                                            config_.min_update_changes};
    for (std::uint32_t i = 0; i < config_.num_proxies; ++i) {
        auto& p = proxies_[i];
        if (config_.protocol == QueryProtocol::summary) {
            p.peers = std::make_unique<core::SummaryPeerView>();
            p.peers->set_prober(p.summary.get());
            for (std::uint32_t q = 0; q < config_.num_proxies; ++q)
                if (q != i) p.peers->add_peer(q, proxies_[q].summary.get());
        }
        p.engine = std::make_unique<core::ProtocolEngine>(
            core::ProtocolEngineConfig{i, batching}, *p.cache, p.summary.get(),
            p.peers.get());
    }
}

void ShareSimulator::process(const Request& r) {
    ++result_.requests;
    result_.request_bytes += r.size;

    if (config_.scheme == SharingScheme::global) {
        if (global_cache_->lookup(r.url, r.version) == LruCache::Lookup::hit) {
            ++result_.local_hits;
            result_.hit_bytes += r.size;
        } else {
            ++result_.server_fetches;
            global_cache_->insert(r.url, r.size, r.version);
        }
        return;
    }

    const std::uint32_t home = r.client_id % config_.num_proxies;

    if (proxies_[home].cache->lookup(r.url, r.version) == LruCache::Lookup::hit) {
        ++result_.local_hits;
        result_.hit_bytes += r.size;
        return;
    }

    if (config_.scheme == SharingScheme::none || config_.protocol == QueryProtocol::none) {
        ++result_.server_fetches;
        insert_local(r, home);
        return;
    }

    process_shared(r, home);
}

void ShareSimulator::process_shared(const Request& r, std::uint32_t home) {
    std::vector<std::uint32_t> queried;
    bool summary_mode = false;
    switch (config_.protocol) {
        case QueryProtocol::icp:
        case QueryProtocol::oracle:
            queried.reserve(config_.num_proxies - 1);
            for (std::uint32_t q = 0; q < config_.num_proxies; ++q)
                if (q != home) queried.push_back(q);
            break;
        case QueryProtocol::summary:
            // The engine probes every sibling's published summary through
            // the home proxy's peer view (one hash per request; same-spec
            // Bloom peers are tested by precomputed indexes).
            queried = proxies_[home].engine->probe(r.url);
            summary_mode = true;
            break;
        case QueryProtocol::none:
            SC_ASSERT(false);  // handled by the caller
    }
    handle_miss_via_queries(r, home, queried, summary_mode);
}

void ShareSimulator::handle_miss_via_queries(const Request& r, std::uint32_t home,
                                             const std::vector<std::uint32_t>& queried,
                                             bool summary_mode) {
    const bool count_messages = config_.protocol != QueryProtocol::oracle;
    core::ProtocolEngine& engine = *proxies_[home].engine;

    // The simulator's transport: "ask" a sibling by peeking its cache —
    // the zero-latency form of the query/reply exchange.
    const auto ask = [&](std::uint32_t q) {
        const auto v = proxies_[q].cache->cached_version(r.url);
        if (!v) return core::PeerAnswer::absent;
        return *v == r.version ? core::PeerAnswer::fresh : core::PeerAnswer::stale;
    };

    if (summary_mode) {
        // Summary protocol: the engine probes the promising siblings ONE
        // AT A TIME — the Squid cache-digest behaviour the paper's message
        // accounting reflects ("the number of query messages ... includes
        // remote cache hits, false hits and remote stale hits"). A sibling
        // whose copy turns out stale ends the round (the document comes
        // from the server); an absent answer is a wasted query and probing
        // moves to the next candidate.
        const core::RoundOutcome round = engine.run_sequential_round(queried, ask);
        result_.query_messages += round.queries;
        result_.reply_messages += round.queries;
        result_.query_bytes += kQueryMessageBytes * round.queries;
        result_.reply_bytes += kQueryMessageBytes * round.queries;
        result_.wasted_queries += round.wasted_queries;
        // One false-hit event per request that wasted at least one query.
        if (round.wasted_queries > 0) ++result_.false_hits;
        if (round.winner) {
            ++result_.remote_hits;
            result_.hit_bytes += r.size;
            proxies_[*round.winner].cache->touch(r.url);
            if (config_.scheme == SharingScheme::simple) insert_local(r, home);
            return;
        }
        if (round.stale_ended) ++result_.remote_stale_hits;
        // A fresh copy held by a sibling whose summary stayed silent is a
        // false miss — the cost of update delay and of inclusive errors.
        for (std::uint32_t q = 0; q < config_.num_proxies; ++q) {
            if (q == home) continue;
            if (std::find(queried.begin(), queried.end(), q) != queried.end()) continue;
            const auto v = proxies_[q].cache->cached_version(r.url);
            if (v && *v == r.version) {
                ++result_.false_misses;
                break;
            }
        }
        ++result_.server_fetches;
        insert_local(r, home);
        return;
    }

    // ICP / oracle: the query (if any) is multicast to every sibling at
    // once and all replies come back.
    const core::RoundOutcome round = engine.run_multicast_round(queried, ask);
    if (count_messages) {
        result_.query_messages += round.queries;
        result_.reply_messages += round.queries;
        result_.query_bytes += kQueryMessageBytes * round.queries;
        result_.reply_bytes += kQueryMessageBytes * round.queries;
    }
    if (round.winner) {
        ++result_.remote_hits;
        result_.hit_bytes += r.size;
        proxies_[*round.winner].cache->touch(r.url);
        if (config_.scheme == SharingScheme::simple) insert_local(r, home);
        return;
    }
    if (round.stale_ended) ++result_.remote_stale_hits;
    ++result_.server_fetches;
    insert_local(r, home);
}

void ShareSimulator::insert_local(const Request& r, std::uint32_t home) {
    Proxy& p = proxies_[home];
    if (!p.engine->admit(r.url, r.size, r.version)) return;
    if (p.summary) maybe_publish(home, r.timestamp);
}

void ShareSimulator::maybe_publish(std::uint32_t proxy, double now) {
    Proxy& p = proxies_[proxy];
    const auto pub = p.engine->maybe_publish(now);
    if (!pub) return;                   // not due, floor not met, or already flushing
    if (pub->wire_bytes == 0) return;   // directory churn netted out; nothing to send
    ++result_.summary_publishes;
    // One multicast datagram reaches every peer; unicast costs N-1 sends.
    const std::uint64_t peers = config_.multicast_updates ? 1 : config_.num_proxies - 1;
    result_.update_messages += peers;
    result_.update_bytes += pub->wire_bytes * peers;
}

void ShareSimulator::process_all(const std::vector<Request>& trace) {
    for (const Request& r : trace) process(r);
    finalize_memory_metrics();
}

void ShareSimulator::finalize_memory_metrics() {
    if (config_.protocol != QueryProtocol::summary || proxies_.empty()) return;
    // DRAM proxy 0 spends: replicas of every sibling's summary, plus the
    // structures maintaining its own.
    std::uint64_t replicas = 0;
    for (std::uint32_t q = 1; q < config_.num_proxies; ++q)
        replicas += proxies_[q].summary->replica_memory_bytes();
    result_.summary_replica_bytes = replicas;
    result_.summary_owner_bytes = proxies_[0].summary->owner_memory_bytes();
}

std::vector<std::size_t> ShareSimulator::directory_sizes() const {
    std::vector<std::size_t> out;
    if (global_cache_) {
        out.push_back(global_cache_->document_count());
        return out;
    }
    out.reserve(proxies_.size());
    for (const auto& p : proxies_) out.push_back(p.cache->document_count());
    return out;
}

void ShareSimResult::publish_metrics(const ShareSimConfig& config) const {
    const obs::Labels labels{{"protocol", query_protocol_name(config.protocol)},
                             {"scheme", sharing_scheme_name(config.scheme)}};
    auto& reg = obs::metrics();
    const auto set = [&](const char* name, const char* help, std::uint64_t v) {
        reg.counter(name, help, labels).inc(v);
    };
    set("sc_sim_requests_total", "Trace requests simulated", requests);
    set("sc_sim_local_hits_total", "Requests served by the home proxy", local_hits);
    set("sc_sim_remote_hits_total", "Requests served by a sibling", remote_hits);
    set("sc_sim_false_hits_total", "Requests with >=1 wasted query (summary wrong)",
        false_hits);
    set("sc_sim_false_misses_total", "Fresh remote copy missed (summary silent)",
        false_misses);
    set("sc_sim_wasted_queries_total", "Individual queries answered absent (summary wrong)",
        wasted_queries);
    set("sc_sim_server_fetches_total", "Requests fetched from the origin server",
        server_fetches);
    set("sc_sim_query_messages_total", "Inter-proxy query messages", query_messages);
    set("sc_sim_reply_messages_total", "Inter-proxy reply messages", reply_messages);
    set("sc_sim_update_messages_total", "Summary update messages", update_messages);
    set("sc_sim_query_bytes_total", "Query message bytes", query_bytes);
    set("sc_sim_reply_bytes_total", "Reply message bytes", reply_bytes);
    set("sc_sim_update_bytes_total", "Update message bytes", update_bytes);
    reg.gauge("sc_sim_hit_ratio", "Total (local + remote) hit ratio", labels)
        .set(total_hit_ratio());
    reg.gauge("sc_sim_summary_replica_bytes", "Per-proxy DRAM for peers' summaries",
              labels)
        .set(static_cast<double>(summary_replica_bytes));
    reg.gauge("sc_sim_summary_owner_bytes", "Per-proxy DRAM for the own summary", labels)
        .set(static_cast<double>(summary_owner_bytes));
}

ShareSimResult run_share_sim(const ShareSimConfig& config, const std::vector<Request>& trace) {
    ShareSimulator sim(config);
    sim.process_all(trace);
    sim.result().publish_metrics(config);
    return sim.result();
}

}  // namespace sc
