#include "sim/hierarchy_sim.hpp"

#include "summary/message_costs.hpp"
#include "util/sc_assert.hpp"

namespace sc {

const char* hierarchy_protocol_name(HierarchyProtocol p) {
    switch (p) {
        case HierarchyProtocol::always_query: return "always-query";
        case HierarchyProtocol::summary: return "summary";
    }
    return "?";
}

double HierarchySimResult::total_hit_ratio() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(child_hits + parent_hits) / static_cast<double>(requests);
}

double HierarchySimResult::parent_hit_ratio() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(parent_hits) / static_cast<double>(requests);
}

double HierarchySimResult::queries_per_request() const {
    return requests == 0
               ? 0.0
               : static_cast<double>(query_messages) / static_cast<double>(requests);
}

HierarchySimulator::HierarchySimulator(HierarchySimConfig config) : config_(config) {
    SC_ASSERT(config_.num_children >= 1);
    SC_ASSERT(config_.child_cache_bytes > 0 && config_.parent_cache_bytes > 0);
    for (std::uint32_t i = 0; i < config_.num_children; ++i)
        children_.push_back(std::make_unique<LruCache>(
            LruCacheConfig{config_.child_cache_bytes, config_.max_object_bytes}));
    parent_ = std::make_unique<LruCache>(
        LruCacheConfig{config_.parent_cache_bytes, config_.max_object_bytes});

    if (config_.protocol == HierarchyProtocol::summary) {
        const std::uint64_t expected_docs =
            std::max<std::uint64_t>(1, config_.parent_cache_bytes / kAverageDocumentBytes);
        parent_summary_ = make_summary(config_.summary_kind, expected_docs, config_.bloom);
        DirectorySummary* summary = parent_summary_.get();
        parent_->set_insert_hook(
            [summary](const LruCache::Entry& e) { summary->on_insert(e.url); });
        parent_->set_removal_hook(
            [summary](const LruCache::Entry& e) { summary->on_erase(e.url); });
        parent_view_ = std::make_unique<core::SummaryPeerView>();
        parent_view_->set_prober(parent_summary_.get());
        parent_view_->add_peer(0, parent_summary_.get());
    }
    // Engine for the parent tier: its cache, its summary, and (summary
    // mode) the one-peer view the children probe.
    parent_engine_ = std::make_unique<core::ProtocolEngine>(
        core::ProtocolEngineConfig{
            0, core::DeltaBatcherConfig{config_.update_threshold, 0.0,
                                        config_.min_update_changes}},
        *parent_, parent_summary_.get(), parent_view_.get());
}

void HierarchySimulator::maybe_publish() {
    const auto pub = parent_engine_->maybe_publish(0.0);
    if (!pub || pub->wire_bytes == 0) return;
    const std::uint64_t receivers = config_.multicast_updates ? 1 : config_.num_children;
    result_.update_messages += receivers;
    result_.update_bytes += pub->wire_bytes * receivers;
}

void HierarchySimulator::parent_relay_fetch(const Request& r, std::uint32_t child) {
    // The parent fetches from the origin on the child's behalf, caches the
    // document (it is the shared tier), and relays it down.
    ++result_.parent_fetches;
    if (parent_engine_->admit(r.url, r.size, r.version) && parent_summary_) maybe_publish();
    children_[child]->insert(r.url, r.size, r.version);
}

void HierarchySimulator::child_direct_fetch(const Request& r, std::uint32_t child) {
    // Summary said the parent has nothing: skip the detour entirely.
    ++result_.direct_fetches;
    children_[child]->insert(r.url, r.size, r.version);
}

void HierarchySimulator::process(const Request& r) {
    // Route the parent's own user population straight to the parent.
    const auto bucket = (r.client_id * 2654435761u) % 1000u;
    if (static_cast<double>(bucket) < 1000.0 * config_.parent_client_fraction) {
        ++result_.parent_own_requests;
        if (parent_engine_->lookup_local(r.url, r.version) == LruCache::Lookup::hit) {
            ++result_.parent_own_hits;
            return;
        }
        ++result_.parent_fetches;
        if (parent_engine_->admit(r.url, r.size, r.version) && parent_summary_)
            maybe_publish();
        return;
    }

    ++result_.requests;
    const std::uint32_t child = r.client_id % config_.num_children;

    if (children_[child]->lookup(r.url, r.version) == LruCache::Lookup::hit) {
        ++result_.child_hits;
        return;
    }

    const bool ask_parent = config_.protocol == HierarchyProtocol::always_query ||
                            !parent_engine_->probe(r.url).empty();

    if (ask_parent) {
        // One-candidate sequential round against the parent tier — the
        // same decision helper the flat-mesh simulators and the live
        // proxy drive, with the parent's version-checked lookup as the
        // "ask". fresh = parent hit, stale = out-of-date copy (the lookup
        // evicted it; the parent re-fetches), absent = the summary lied.
        const core::RoundOutcome outcome = parent_engine_->run_sequential_round(
            {0u}, [&](std::uint32_t) {
                switch (parent_engine_->lookup_local(r.url, r.version)) {
                    case LruCache::Lookup::hit: return core::PeerAnswer::fresh;
                    case LruCache::Lookup::miss_changed: return core::PeerAnswer::stale;
                    case LruCache::Lookup::miss_absent: break;
                }
                return core::PeerAnswer::absent;
            });
        result_.query_messages += outcome.queries;
        result_.reply_messages += outcome.queries;
        if (outcome.winner) {
            ++result_.parent_hits;
            children_[child]->insert(r.url, r.size, r.version);
        } else if (outcome.stale_ended) {
            ++result_.parent_stale_hits;
            parent_relay_fetch(r, child);
        } else if (config_.protocol == HierarchyProtocol::summary) {
            // Summary promised a copy and the parent had none.
            ++result_.false_hits;
            child_direct_fetch(r, child);
        } else {
            parent_relay_fetch(r, child);
        }
        return;
    }

    // Summary protocol, parent not promising: check for the false miss
    // (fresh copy at the parent that the lagging summary hides).
    if (const auto v = parent_->cached_version(r.url); v && *v == r.version)
        ++result_.false_misses;
    child_direct_fetch(r, child);
}

void HierarchySimulator::process_all(const std::vector<Request>& trace) {
    for (const Request& r : trace) process(r);
}

HierarchySimResult run_hierarchy_sim(const HierarchySimConfig& config,
                                     const std::vector<Request>& trace) {
    HierarchySimulator sim(config);
    sim.process_all(trace);
    return sim.result();
}

}  // namespace sc
