// Discrete-event latency simulation of the testbed (Section IV / VII).
//
// Where wisconsin.cpp derives latency and CPU from a closed-form queueing
// model, this simulator *measures* them: clients are closed-loop entities
// (next request issued when the previous reply lands), each proxy is a
// single-CPU FIFO server whose work items (HTTP handling, ICP message
// processing, remote-hit service) take the CostModelConfig service times,
// the origin delays every fetch by server_delay, and every inter-proxy or
// client message pays a one-way network latency. The two methods agreeing
// on the protocol ordering (no-ICP vs ICP vs SC-ICP) is the evidence that
// Table II's latency story is not an artifact of the closed-form model.
//
// Fully deterministic: event ordering breaks ties by insertion sequence
// and all randomness comes from the workload generator's seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lru_cache.hpp"
#include "sim/cost_model.hpp"
#include "sim/event_queue.hpp"
#include "sim/wisconsin.hpp"  // BenchProtocol, WisconsinConfig
#include "summary/bloom_summary.hpp"
#include "util/stats.hpp"

namespace sc {

struct LatencySimResult {
    OnlineStats client_latency_s;   ///< per-request client-visible latency
    double duration_s = 0.0;        ///< completion time of the last request
    double max_cpu_utilization = 0.0;  ///< busiest proxy's busy fraction
    std::uint64_t requests = 0;
    std::uint64_t local_hits = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t queries_sent = 0;
    std::uint64_t updates_sent = 0;

    [[nodiscard]] double hit_ratio() const {
        return requests == 0
                   ? 0.0
                   : static_cast<double>(local_hits + remote_hits) /
                         static_cast<double>(requests);
    }

    /// Mirror the tallies into the global sc::obs registry as
    /// sc_latency_sim_* series labeled {protocol}.
    void publish_metrics(BenchProtocol protocol) const;
};

/// Run the Wisconsin-benchmark scenario through the event simulator.
/// Reuses WisconsinConfig so the two methods consume identical workloads.
[[nodiscard]] LatencySimResult run_latency_sim(const WisconsinConfig& cfg);

}  // namespace sc
