#include "sim/latency_sim.hpp"

#include <deque>
#include <optional>

#include "core/peer_directory.hpp"
#include "core/protocol_engine.hpp"
#include "obs/metrics.hpp"
#include "summary/message_costs.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

/// One-way network latency between any two hosts on the testbed LAN.
double one_way(const CostModelConfig& cost) { return cost.lan_rtt / 2.0; }

struct SimProxy {
    std::unique_ptr<LruCache> cache;
    std::unique_ptr<BloomSummary> summary;  // SC-ICP only
    std::unique_ptr<core::SummaryPeerView> peers;
    std::unique_ptr<core::ProtocolEngine> engine;
    double cpu_free_at = 0.0;
    double busy_s = 0.0;
};

class Engine {
public:
    explicit Engine(const WisconsinConfig& cfg)
        : cfg_(cfg), cost_(cfg.cost), proxies_(cfg.num_proxies) {
        const std::uint64_t expected_docs =
            std::max<std::uint64_t>(1, cfg.cache_bytes / kAverageDocumentBytes);
        for (auto& p : proxies_) {
            p.cache = std::make_unique<LruCache>(LruCacheConfig{cfg.cache_bytes});
            if (cfg_.protocol == BenchProtocol::sc_icp) {
                p.summary = std::make_unique<BloomSummary>(expected_docs, cfg.bloom);
                BloomSummary* summary = p.summary.get();
                p.cache->set_insert_hook(
                    [summary](const LruCache::Entry& e) { summary->on_insert(e.url); });
                p.cache->set_removal_hook(
                    [summary](const LruCache::Entry& e) { summary->on_erase(e.url); });
            }
        }
        // The prototype "sends updates whenever there are enough changes
        // to fill an IP packet" — the 350-change floor of Section VI-B.
        const core::DeltaBatcherConfig batching{cfg.update_threshold, 0.0, 350};
        for (std::uint32_t i = 0; i < cfg.num_proxies; ++i) {
            SimProxy& p = proxies_[i];
            if (cfg_.protocol == BenchProtocol::sc_icp) {
                p.peers = std::make_unique<core::SummaryPeerView>();
                p.peers->set_prober(p.summary.get());
                for (std::uint32_t q = 0; q < cfg.num_proxies; ++q)
                    if (q != i) p.peers->add_peer(q, proxies_[q].summary.get());
            }
            p.engine = std::make_unique<core::ProtocolEngine>(
                core::ProtocolEngineConfig{i, batching}, *p.cache, p.summary.get(),
                p.peers.get());
        }

        const auto workload = generate_wisconsin_workload(cfg);
        const std::uint32_t total_clients = cfg.num_proxies * cfg.clients_per_proxy;
        queues_.resize(total_clients);
        for (const Request& r : workload) queues_[r.client_id].push_back(r);
    }

    LatencySimResult run() {
        // Stagger client starts across one millisecond so the opening
        // burst does not arrive as one mega-tie.
        for (std::uint32_t c = 0; c < queues_.size(); ++c) {
            const double start = 1e-6 * c;
            q_.schedule(start, [this, c] { issue(c); });
        }
        q_.run(500'000'000ull);  // generous runaway guard
        result_.duration_s = last_completion_;
        for (const auto& p : proxies_) {
            if (result_.duration_s > 0)
                result_.max_cpu_utilization =
                    std::max(result_.max_cpu_utilization, p.busy_s / result_.duration_s);
        }
        return std::move(result_);
    }

private:
    // Reserve the proxy CPU for `service` seconds starting no earlier than
    // now; returns the completion time.
    double exec(SimProxy& p, double service) {
        const double start = std::max(q_.now(), p.cpu_free_at);
        const double done = start + service;
        p.cpu_free_at = done;
        p.busy_s += service;
        return done;
    }

    void issue(std::uint32_t client) {
        auto& queue = queues_[client];
        if (queue.empty()) return;
        const Request req = std::move(queue.front());
        queue.pop_front();
        const double start = q_.now();
        const std::uint32_t home = client % cfg_.num_proxies;
        q_.schedule_in(one_way(cost_), [this, req, client, home, start] {
            arrive(req, client, home, start);
        });
    }

    void arrive(const Request& req, std::uint32_t client, std::uint32_t home, double start) {
        SimProxy& p = proxies_[home];
        const double done = exec(p, cost_.user_cpu_per_http);
        q_.schedule(done,
                    [this, req, client, home, start] { after_lookup(req, client, home, start); });
    }

    void after_lookup(const Request& req, std::uint32_t client, std::uint32_t home,
                      double start) {
        SimProxy& p = proxies_[home];
        if (p.engine->lookup_local(req.url, req.version) == LruCache::Lookup::hit) {
            ++result_.local_hits;
            reply_to_client(client, start, q_.now() + cost_.hit_service_time);
            return;
        }
        std::vector<std::uint32_t> targets;
        if (cfg_.protocol == BenchProtocol::icp) {
            for (std::uint32_t s = 0; s < cfg_.num_proxies; ++s)
                if (s != home) targets.push_back(s);
        } else if (cfg_.protocol == BenchProtocol::sc_icp) {
            targets = p.engine->probe(req.url);
        }
        if (targets.empty()) {
            origin_fetch(req, client, home, start);
            return;
        }
        query_siblings(req, client, home, start, targets);
    }

    struct QueryCtx {
        Request req;
        std::uint32_t client;
        std::uint32_t home;
        double start;
        std::size_t pending;
        /// Replies in ARRIVAL order; the engine's multicast round replays
        /// them in that order, so "first fresh reply wins" is preserved.
        std::vector<std::pair<std::uint32_t, core::PeerAnswer>> answers;
    };

    void query_siblings(const Request& req, std::uint32_t client, std::uint32_t home,
                        double start, const std::vector<std::uint32_t>& targets) {
        auto ctx = std::make_shared<QueryCtx>(
            QueryCtx{req, client, home, start, targets.size(), {}});
        for (const std::uint32_t s : targets) {
            q_.schedule_in(one_way(cost_), [this, ctx, s] {
                // Query arrives at the sibling: it burns CPU, snapshots its
                // answer at completion, and the reply travels back.
                SimProxy& sib = proxies_[s];
                const double done = exec(sib, cost_.user_cpu_per_icp_event);
                q_.schedule(done, [this, ctx, s] {
                    const auto v = proxies_[s].cache->cached_version(ctx->req.url);
                    const core::PeerAnswer answer =
                        !v ? core::PeerAnswer::absent
                           : (*v == ctx->req.version ? core::PeerAnswer::fresh
                                                     : core::PeerAnswer::stale);
                    q_.schedule_in(one_way(cost_), [this, ctx, s, answer] {
                        // Reply lands at the requester (more CPU).
                        const double processed =
                            exec(proxies_[ctx->home], cost_.user_cpu_per_icp_event);
                        ctx->answers.emplace_back(s, answer);
                        SC_ASSERT(ctx->pending > 0);
                        if (--ctx->pending == 0)
                            q_.schedule(processed, [this, ctx] { after_queries(ctx); });
                    });
                });
            });
        }
    }

    void after_queries(const std::shared_ptr<QueryCtx>& ctx) {
        // Every reply is in: replay them through the engine's multicast
        // round (the same decision path the share simulator and the live
        // proxy use) in arrival order.
        std::vector<std::uint32_t> arrival_order;
        arrival_order.reserve(ctx->answers.size());
        for (const auto& [sibling, answer] : ctx->answers) arrival_order.push_back(sibling);
        std::size_t next = 0;
        const core::RoundOutcome outcome = proxies_[ctx->home].engine->run_multicast_round(
            arrival_order, [&](std::uint32_t) { return ctx->answers[next++].second; });
        result_.queries_sent += outcome.queries;
        if (outcome.winner) {
            // Fetch the document from the sibling over TCP.
            const std::uint32_t s = *outcome.winner;
            q_.schedule_in(cost_.remote_hit_fetch, [this, ctx, s] {
                const double done = exec(proxies_[s], cost_.user_cpu_per_remote_hit);
                q_.schedule(done, [this, ctx, s] {
                    proxies_[s].cache->touch(ctx->req.url);
                    ++result_.remote_hits;
                    insert_and_publish(ctx->req, ctx->home);
                    reply_to_client(ctx->client, ctx->start, q_.now());
                });
            });
            return;
        }
        origin_fetch(ctx->req, ctx->client, ctx->home, ctx->start);
    }

    void origin_fetch(const Request& req, std::uint32_t client, std::uint32_t home,
                      double start) {
        q_.schedule_in(cost_.server_delay, [this, req, client, home, start] {
            insert_and_publish(req, home);
            reply_to_client(client, start, q_.now());
        });
    }

    void insert_and_publish(const Request& req, std::uint32_t home) {
        SimProxy& p = proxies_[home];
        if (!p.engine->admit(req.url, req.size, req.version)) return;
        if (!p.summary) return;
        const auto pub = p.engine->maybe_publish(q_.now());
        if (!pub || pub->wire_bytes == 0) return;
        for (std::uint32_t s = 0; s < cfg_.num_proxies; ++s) {
            if (s == home) continue;
            ++result_.updates_sent;
            q_.schedule_in(one_way(cost_), [this, s] {
                (void)exec(proxies_[s], cost_.user_cpu_per_icp_event);
            });
        }
    }

    void reply_to_client(std::uint32_t client, double start, double ready) {
        const double arrive_at = std::max(ready, q_.now()) + one_way(cost_);
        q_.schedule(arrive_at, [this, client, start] {
            ++result_.requests;
            result_.client_latency_s.add(q_.now() - start);
            last_completion_ = std::max(last_completion_, q_.now());
            issue(client);  // closed loop: no think time
        });
    }

    WisconsinConfig cfg_;
    CostModelConfig cost_;
    EventQueue q_;
    std::vector<SimProxy> proxies_;
    std::vector<std::deque<Request>> queues_;
    LatencySimResult result_;
    double last_completion_ = 0.0;
};

}  // namespace

void LatencySimResult::publish_metrics(BenchProtocol protocol) const {
    const obs::Labels labels{{"protocol", bench_protocol_name(protocol)}};
    auto& reg = obs::metrics();
    const auto set = [&](const char* name, const char* help, std::uint64_t v) {
        reg.counter(name, help, labels).inc(v);
    };
    set("sc_latency_sim_requests_total", "Requests completed", requests);
    set("sc_latency_sim_local_hits_total", "Local cache hits", local_hits);
    set("sc_latency_sim_remote_hits_total", "Remote (sibling) hits", remote_hits);
    set("sc_latency_sim_queries_sent_total", "ICP queries sent", queries_sent);
    set("sc_latency_sim_updates_sent_total", "Summary updates sent", updates_sent);
    reg.gauge("sc_latency_sim_mean_latency_seconds",
              "Mean client-visible request latency", labels)
        .set(client_latency_s.mean());
    reg.gauge("sc_latency_sim_max_cpu_utilization",
              "Busiest proxy's busy fraction", labels)
        .set(max_cpu_utilization);
}

LatencySimResult run_latency_sim(const WisconsinConfig& cfg) {
    LatencySimResult result = Engine(cfg).run();
    result.publish_metrics(cfg.protocol);
    return result;
}

}  // namespace sc
