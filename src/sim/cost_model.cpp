#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace sc {

double tcp_packets_per_leg(const CostModelConfig& cfg, double bytes) {
    const double segments = std::ceil(std::max(0.0, bytes) / cfg.tcp_mss);
    return cfg.tcp_leg_overhead_pkts + segments * (1.0 + cfg.acks_per_segment);
}

std::uint64_t udp_datagrams_for_update(const CostModelConfig& cfg, std::uint64_t bytes) {
    if (bytes == 0) return 0;
    return static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(bytes) / cfg.udp_mtu_payload));
}

double queueing_delay(double c, double rho) {
    const double bounded = std::clamp(rho, 0.0, 0.95);
    return c / (1.0 - bounded);
}

}  // namespace sc
