// Trace-driven simulation of cooperative proxy caching (paper Sections
// II, III, V). A time-ordered request stream is partitioned onto N proxies
// (client mod N); the simulator runs one of the paper's sharing schemes
// and, for miss-path discovery, either the ICP query protocol or the
// summary-cache protocol, and accounts every inter-proxy message and byte
// using the Section V-D cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lru_cache.hpp"
#include "core/peer_directory.hpp"
#include "core/protocol_engine.hpp"
#include "summary/summary.hpp"
#include "trace/request.hpp"

namespace sc {

/// Section III's four cooperation schemes.
enum class SharingScheme {
    none,         ///< proxies do not cooperate
    simple,       ///< serve each other's misses; fetched docs cached locally (ICP-style)
    single_copy,  ///< remote hits promote the remote copy; no local duplicate
    global,       ///< one unified cache with global LRU
};

[[nodiscard]] const char* sharing_scheme_name(SharingScheme s);

/// How misses discover remote copies.
enum class QueryProtocol {
    none,     ///< no discovery (schemes none/global, or oracle-free runs)
    icp,      ///< multicast query to every sibling on every miss
    oracle,   ///< perfect knowledge, zero messages (upper bound; Figure 1)
    summary,  ///< probe replicated summaries, query only promising siblings
};

[[nodiscard]] const char* query_protocol_name(QueryProtocol p);

struct ShareSimConfig {
    std::uint32_t num_proxies = 4;
    std::uint64_t cache_bytes_per_proxy = 0;
    /// When non-empty (size == num_proxies), per-proxy capacities override
    /// the uniform cache_bytes_per_proxy — Section III's remark that cache
    /// sizes should be "proportional to [the] user population size" under
    /// load imbalance.
    std::vector<std::uint64_t> per_proxy_cache_bytes;
    std::uint64_t max_object_bytes = kDefaultMaxObjectBytes;
    SharingScheme scheme = SharingScheme::simple;
    QueryProtocol protocol = QueryProtocol::icp;

    // Summary-protocol parameters (used when protocol == summary).
    SummaryKind summary_kind = SummaryKind::bloom;
    double update_threshold = 0.01;  ///< Section V-A delay threshold
    BloomSummaryConfig bloom;
    /// Also require this many pending changes before broadcasting — the
    /// prototype "sends updates whenever there are enough changes to fill
    /// an IP packet" (Section VI-B). 0 disables the batching floor.
    std::size_t min_update_changes = 0;

    /// > 0 switches to the time-based policy of Section V-A: broadcast
    /// every this-many seconds of trace time instead of at the threshold.
    double update_interval_seconds = 0.0;

    /// Deliver each summary update as ONE multicast message instead of
    /// N-1 unicasts (Section V-F suggests a non-reliable multicast scheme
    /// for update distribution).
    bool multicast_updates = false;

    /// Scale factor on the global cache capacity (Figure 1 also plots a
    /// global cache 10% smaller, i.e. 0.9).
    double global_capacity_scale = 1.0;
};

struct ShareSimResult {
    std::uint64_t requests = 0;
    std::uint64_t request_bytes = 0;

    std::uint64_t local_hits = 0;
    std::uint64_t remote_hits = 0;
    std::uint64_t remote_stale_hits = 0;  ///< sibling had it, but stale
    std::uint64_t false_hits = 0;  ///< requests where >=1 query was wasted (summary wrong)
    std::uint64_t wasted_queries = 0;  ///< individual queries answered "absent"
    std::uint64_t false_misses = 0;       ///< fresh copy existed, summary silent
    std::uint64_t server_fetches = 0;

    std::uint64_t hit_bytes = 0;  ///< bytes served locally or from a sibling

    std::uint64_t query_messages = 0;
    std::uint64_t reply_messages = 0;
    std::uint64_t update_messages = 0;
    std::uint64_t summary_publishes = 0;

    std::uint64_t query_bytes = 0;
    std::uint64_t reply_bytes = 0;
    std::uint64_t update_bytes = 0;

    std::uint64_t summary_replica_bytes = 0;  ///< per-proxy DRAM for peers' summaries
    std::uint64_t summary_owner_bytes = 0;    ///< per-proxy DRAM for own summary

    [[nodiscard]] double total_hit_ratio() const;
    [[nodiscard]] double byte_hit_ratio() const;
    [[nodiscard]] double local_hit_ratio() const;
    [[nodiscard]] double remote_hit_ratio() const;
    [[nodiscard]] double false_hit_ratio() const;
    [[nodiscard]] double false_miss_ratio() const;
    [[nodiscard]] double remote_stale_hit_ratio() const;
    [[nodiscard]] std::uint64_t total_messages() const;
    [[nodiscard]] std::uint64_t total_message_bytes() const;
    [[nodiscard]] double messages_per_request() const;
    [[nodiscard]] double message_bytes_per_request() const;

    /// Mirror the tallies into the global sc::obs registry as
    /// sc_sim_* series labeled {scheme, protocol}, so `--metrics-out`
    /// exports exactly what the report prints.
    void publish_metrics(const ShareSimConfig& config) const;
};

/// Runs one configuration over a request stream. Reusable: construct once,
/// feed requests one at a time (or all at once), read the result.
class ShareSimulator {
public:
    explicit ShareSimulator(ShareSimConfig config);

    void process(const Request& r);
    void process_all(const std::vector<Request>& trace);

    [[nodiscard]] const ShareSimResult& result() const { return result_; }
    [[nodiscard]] const ShareSimConfig& config() const { return config_; }

    /// Per-proxy cache directory sizes (diagnostics / tests).
    [[nodiscard]] std::vector<std::size_t> directory_sizes() const;

private:
    /// One cooperating proxy: the cache, its directory summary (summary
    /// protocol only), the view of every sibling's summary it probes, and
    /// the ProtocolEngine that drives the shared decision pipeline.
    struct Proxy {
        std::unique_ptr<LruCache> cache;
        std::unique_ptr<DirectorySummary> summary;  // protocol == summary only
        std::unique_ptr<core::SummaryPeerView> peers;
        std::unique_ptr<core::ProtocolEngine> engine;
    };

    void process_shared(const Request& r, std::uint32_t home);
    void handle_miss_via_queries(const Request& r, std::uint32_t home,
                                 const std::vector<std::uint32_t>& queried, bool summary_mode);
    void insert_local(const Request& r, std::uint32_t home);
    void maybe_publish(std::uint32_t proxy, double now);
    void finalize_memory_metrics();

    ShareSimConfig config_;
    std::vector<Proxy> proxies_;
    std::unique_ptr<LruCache> global_cache_;  // scheme == global only
    ShareSimResult result_;
};

/// Convenience wrapper: run a whole trace through one configuration.
[[nodiscard]] ShareSimResult run_share_sim(const ShareSimConfig& config,
                                           const std::vector<Request>& trace);

}  // namespace sc
