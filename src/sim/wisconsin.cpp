#include "sim/wisconsin.hpp"

#include <algorithm>
#include <cmath>

#include "util/distributions.hpp"
#include "util/rng.hpp"
#include "util/sc_assert.hpp"

namespace sc {

const char* bench_protocol_name(BenchProtocol p) {
    switch (p) {
        case BenchProtocol::no_icp: return "no-ICP";
        case BenchProtocol::icp: return "ICP";
        case BenchProtocol::sc_icp: return "SC-ICP";
    }
    return "?";
}

std::vector<Request> generate_wisconsin_workload(const WisconsinConfig& cfg) {
    SC_ASSERT(cfg.num_proxies >= 1 && cfg.clients_per_proxy >= 1);
    const std::uint32_t total_clients = cfg.num_proxies * cfg.clients_per_proxy;
    const BoundedParetoSampler sizes(cfg.size_alpha, cfg.size_lo, cfg.size_hi);

    struct Client {
        Rng rng{0};
        std::vector<std::pair<std::string, std::uint64_t>> history;  // (url, size)
        std::uint64_t next_doc = 0;
    };
    Rng master(cfg.seed);
    std::vector<Client> clients(total_clients);
    for (auto& c : clients) c.rng = master.fork();

    std::vector<Request> out;
    out.reserve(static_cast<std::size_t>(total_clients) * cfg.requests_per_client);

    // Clients issue with no think time, which in the benchmark makes them
    // advance in near lockstep: emit in rounds.
    for (std::uint32_t step = 0; step < cfg.requests_per_client; ++step) {
        for (std::uint32_t id = 0; id < total_clients; ++id) {
            Client& c = clients[id];
            Request r;
            r.timestamp = step;
            r.client_id = id;
            r.version = 0;
            if (!c.history.empty() && c.rng.next_bool(cfg.inherent_hit_ratio)) {
                const auto& [url, size] =
                    c.history[c.rng.next_below(c.history.size())];
                r.url = url;
                r.size = size;
            } else {
                r.url = "http://wb" + std::to_string(id) + "/o" + std::to_string(c.next_doc++);
                r.size = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(sizes.sample(c.rng)));
                c.history.emplace_back(r.url, r.size);
            }
            out.push_back(std::move(r));
        }
    }
    return out;
}

namespace {

ShareSimConfig sim_config_for(BenchProtocol protocol, std::uint32_t num_proxies,
                              std::uint64_t cache_bytes, double update_threshold,
                              const BloomSummaryConfig& bloom) {
    ShareSimConfig sim;
    sim.num_proxies = num_proxies;
    sim.cache_bytes_per_proxy = cache_bytes;
    switch (protocol) {
        case BenchProtocol::no_icp:
            sim.scheme = SharingScheme::none;
            sim.protocol = QueryProtocol::none;
            break;
        case BenchProtocol::icp:
            sim.scheme = SharingScheme::simple;
            sim.protocol = QueryProtocol::icp;
            break;
        case BenchProtocol::sc_icp:
            sim.scheme = SharingScheme::simple;
            sim.protocol = QueryProtocol::summary;
            sim.summary_kind = SummaryKind::bloom;
            sim.update_threshold = update_threshold;
            sim.bloom = bloom;
            // The prototype batches updates until they fill an IP packet
            // (~350 four-byte flip records; Section VI-B).
            sim.min_update_changes = 350;
            break;
    }
    return sim;
}

}  // namespace

namespace detail {

BenchRow derive_bench_row(const ShareSimResult& sim, const CostModelConfig& cost,
                          BenchProtocol protocol, std::uint32_t num_proxies,
                          std::uint32_t total_clients, double mean_doc_bytes,
                          std::string label) {
    SC_ASSERT(sim.requests > 0);
    const double n = num_proxies;
    const double requests = static_cast<double>(sim.requests);
    const double req_pp = requests / n;

    const double local_frac = sim.local_hit_ratio();
    const double remote_frac = sim.remote_hit_ratio();
    const double miss_frac = std::max(0.0, 1.0 - local_frac - remote_frac);

    // Fraction of requests that wait on at least one ICP query round trip.
    double query_wait_frac = 0.0;
    if (protocol == BenchProtocol::icp) {
        query_wait_frac = 1.0 - local_frac;  // every local miss multicasts
    } else if (protocol == BenchProtocol::sc_icp) {
        query_wait_frac = static_cast<double>(sim.remote_hits + sim.remote_stale_hits +
                                              sim.false_hits) /
                          requests;
    }

    // Inter-proxy UDP events per proxy (each datagram counted at its sender
    // and at its receiver, as netstat does).
    const double query_events = 2.0 *
                                static_cast<double>(sim.query_messages + sim.reply_messages) / n;
    double update_events = 0.0;
    if (sim.update_messages > 0) {
        const std::uint64_t avg_update_bytes = sim.update_bytes / sim.update_messages;
        const auto dgrams = static_cast<double>(udp_datagrams_for_update(cost, avg_update_bytes));
        update_events = 2.0 * static_cast<double>(sim.update_messages) * dgrams / n;
    }

    // TCP packets per proxy: client leg on every request, server leg on
    // every origin fetch, and two inter-proxy legs per remote hit (fetching
    // side and serving side).
    const double leg = tcp_packets_per_leg(cost, mean_doc_bytes);
    const double tcp_pp = req_pp * leg + static_cast<double>(sim.server_fetches) / n * leg +
                          2.0 * static_cast<double>(sim.remote_hits) / n * leg;

    // MD5 signatures computed (SC-ICP only): one per directory insert plus
    // one per summary probe on a local miss.
    double md5_ops = 0.0;
    if (protocol == BenchProtocol::sc_icp) {
        md5_ops = (static_cast<double>(sim.server_fetches) + requests * (1.0 - local_frac)) / n;
    }

    // Fixed point: latency -> duration -> keepalive/UDP counts and CPU
    // utilization -> queueing delay -> latency.
    double latency = cost.server_delay;  // initial guess
    double duration = 1.0;
    double udp_pp = 0.0;
    double user_pp = 0.0;
    double sys_pp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
        duration = requests * latency / static_cast<double>(total_clients);
        const double keepalive_events =
            2.0 * (n - 1.0) * duration / cost.keepalive_interval_s;
        udp_pp = query_events + update_events + keepalive_events;

        user_pp = req_pp * cost.user_cpu_per_http +
                  (query_events + update_events) * cost.user_cpu_per_icp_event +
                  md5_ops * cost.user_cpu_per_md5 +
                  static_cast<double>(sim.remote_hits) / n * cost.user_cpu_per_remote_hit;
        sys_pp = tcp_pp * cost.sys_cpu_per_tcp_packet + udp_pp * cost.sys_cpu_per_udp;

        const double c = (user_pp + sys_pp) / req_pp;       // CPU work per request
        const double lambda = req_pp / duration;            // arrivals per second
        const double rho = lambda * c;
        const double wait = queueing_delay(c, rho);

        const double path = cost.hit_service_time + miss_frac * cost.server_delay +
                            remote_frac * cost.remote_hit_fetch +
                            query_wait_frac * cost.lan_rtt;
        latency = 0.5 * latency + 0.5 * (path + wait);  // damped update
    }

    BenchRow row;
    row.label = std::move(label);
    row.hit_ratio = sim.total_hit_ratio();
    row.remote_hit_ratio = remote_frac;
    row.avg_latency_s = latency;
    row.user_cpu_s = user_pp;
    row.sys_cpu_s = sys_pp;
    row.udp_msgs = udp_pp;
    row.tcp_pkts = tcp_pp;
    row.total_pkts = tcp_pp + udp_pp;
    row.duration_s = duration;
    row.requests_per_proxy = sim.requests / num_proxies;
    return row;
}

}  // namespace detail

BenchRow run_wisconsin(const WisconsinConfig& cfg) {
    const std::vector<Request> workload = generate_wisconsin_workload(cfg);
    const ShareSimConfig sim_cfg = sim_config_for(cfg.protocol, cfg.num_proxies, cfg.cache_bytes,
                                                  cfg.update_threshold, cfg.bloom);
    const ShareSimResult sim = run_share_sim(sim_cfg, workload);
    const double mean_doc =
        static_cast<double>(sim.request_bytes) / static_cast<double>(sim.requests);
    return detail::derive_bench_row(sim, cfg.cost, cfg.protocol, cfg.num_proxies,
                                    cfg.num_proxies * cfg.clients_per_proxy, mean_doc,
                                    bench_protocol_name(cfg.protocol));
}

BenchRow run_replay(const ReplayConfig& cfg, const std::vector<Request>& trace) {
    SC_ASSERT(!trace.empty());
    // Fold trace clients onto the benchmark's client processes.
    std::vector<Request> replay;
    replay.reserve(trace.size());
    std::uint64_t seq = 0;
    for (const Request& r : trace) {
        Request copy = r;
        copy.client_id = (cfg.assignment == ReplayAssignment::by_client)
                             ? r.client_id % cfg.client_processes
                             : static_cast<std::uint32_t>(seq % cfg.client_processes);
        replay.push_back(std::move(copy));
        ++seq;
    }
    const ShareSimConfig sim_cfg = sim_config_for(cfg.protocol, cfg.num_proxies, cfg.cache_bytes,
                                                  cfg.update_threshold, cfg.bloom);
    const ShareSimResult sim = run_share_sim(sim_cfg, replay);
    const double mean_doc =
        static_cast<double>(sim.request_bytes) / static_cast<double>(sim.requests);
    return detail::derive_bench_row(sim, cfg.cost, cfg.protocol, cfg.num_proxies,
                                    cfg.client_processes, mean_doc,
                                    bench_protocol_name(cfg.protocol));
}

}  // namespace sc
