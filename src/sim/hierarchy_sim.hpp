// Parent-child proxy hierarchy (paper Section VIII).
//
// Hierarchical caching differs from sibling cooperation in one way: a
// proxy may ask its *parent* to fetch a document from the origin server,
// but can only take what a *sibling* already has. The paper notes that
// summary-cache enhanced ICP applies between parent and child too: each
// child replicates the parent's summary, asks the parent only when the
// summary looks promising, and otherwise goes straight to the origin —
// eliminating the per-miss parent query of classic hierarchies.
//
// This simulator models N children under one parent:
//   * always_query — classic hierarchy: every child miss queries the
//     parent; on a parent miss the parent fetches, caches, and relays.
//   * summary      — children hold the parent's summary; non-promising
//     misses bypass the parent entirely (direct origin fetch).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/lru_cache.hpp"
#include "core/peer_directory.hpp"
#include "core/protocol_engine.hpp"
#include "summary/summary.hpp"
#include "trace/request.hpp"

namespace sc {

enum class HierarchyProtocol { always_query, summary };

[[nodiscard]] const char* hierarchy_protocol_name(HierarchyProtocol p);

struct HierarchySimConfig {
    std::uint32_t num_children = 4;
    std::uint64_t child_cache_bytes = 0;
    std::uint64_t parent_cache_bytes = 0;
    std::uint64_t max_object_bytes = kDefaultMaxObjectBytes;
    HierarchyProtocol protocol = HierarchyProtocol::always_query;
    SummaryKind summary_kind = SummaryKind::bloom;
    double update_threshold = 0.01;
    BloomSummaryConfig bloom;
    std::size_t min_update_changes = 0;
    bool multicast_updates = false;
    /// Fraction of clients that are the parent's *own* users (a parent
    /// proxy usually serves a population of its own besides its children);
    /// their requests hit the parent directly and populate its cache.
    double parent_client_fraction = 0.2;
};

struct HierarchySimResult {
    std::uint64_t requests = 0;            ///< child-population requests
    std::uint64_t parent_own_requests = 0; ///< the parent's own users
    std::uint64_t parent_own_hits = 0;
    std::uint64_t child_hits = 0;          ///< served from the child's own cache
    std::uint64_t parent_hits = 0;         ///< fresh copy at the parent
    std::uint64_t parent_stale_hits = 0;   ///< parent copy out of date
    std::uint64_t false_hits = 0;          ///< summary flagged, parent had nothing
    std::uint64_t false_misses = 0;        ///< parent had it, summary silent
    std::uint64_t parent_fetches = 0;      ///< origin fetches routed via the parent
    std::uint64_t direct_fetches = 0;      ///< origin fetches bypassing the parent
    std::uint64_t query_messages = 0;
    std::uint64_t reply_messages = 0;
    std::uint64_t update_messages = 0;
    std::uint64_t update_bytes = 0;

    [[nodiscard]] double total_hit_ratio() const;
    [[nodiscard]] double parent_hit_ratio() const;
    [[nodiscard]] double queries_per_request() const;
};

class HierarchySimulator {
public:
    explicit HierarchySimulator(HierarchySimConfig config);

    void process(const Request& r);
    void process_all(const std::vector<Request>& trace);

    [[nodiscard]] const HierarchySimResult& result() const { return result_; }

private:
    void parent_relay_fetch(const Request& r, std::uint32_t child);
    void child_direct_fetch(const Request& r, std::uint32_t child);
    void maybe_publish();

    HierarchySimConfig config_;
    std::vector<std::unique_ptr<LruCache>> children_;
    std::unique_ptr<LruCache> parent_;
    std::unique_ptr<DirectorySummary> parent_summary_;        // summary mode
    /// Children's shared view of the parent's summary (summary mode): one
    /// peer — the parent — probed before deciding to ask it at all.
    std::unique_ptr<core::SummaryPeerView> parent_view_;
    std::unique_ptr<core::ProtocolEngine> parent_engine_;
    HierarchySimResult result_;
};

[[nodiscard]] HierarchySimResult run_hierarchy_sim(const HierarchySimConfig& config,
                                                   const std::vector<Request>& trace);

}  // namespace sc
