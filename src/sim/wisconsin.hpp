// Replica of the paper's testbed experiments:
//   * Table II  — Wisconsin Proxy Benchmark 1.0, four proxies, synthetic
//     disjoint workloads (no remote hits), inherent hit ratio 25% / 45%;
//   * Tables IV & V — UPisa trace replay with two request-to-proxy
//     assignment modes (experiment 3: clients keep their proxy;
//     experiment 4: round-robin, load-balanced).
//
// The request streams run through ShareSimulator for exact hit/miss and
// message counts; the CostModelConfig then converts event counts into the
// rows the paper reports (latency, user/system CPU, UDP messages, TCP and
// total packets per proxy), with throughput and CPU utilization solved by
// fixed-point iteration (clients issue requests back to back, so the
// request rate depends on the latency the model itself produces).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cost_model.hpp"
#include "sim/share_sim.hpp"
#include "trace/request.hpp"

namespace sc {

enum class BenchProtocol { no_icp, icp, sc_icp };

[[nodiscard]] const char* bench_protocol_name(BenchProtocol p);

/// How trace-replay requests map onto proxies (Tables IV vs V).
enum class ReplayAssignment {
    by_client,    ///< experiment 3: a client's requests all hit its proxy
    round_robin,  ///< experiment 4: requests dealt to proxies in order
};

struct WisconsinConfig {
    std::uint32_t num_proxies = 4;
    std::uint32_t clients_per_proxy = 30;
    std::uint32_t requests_per_client = 200;
    double inherent_hit_ratio = 0.25;  ///< re-reference probability
    std::uint64_t cache_bytes = 75ull * 1024 * 1024;  ///< 75 MB per proxy
    BenchProtocol protocol = BenchProtocol::no_icp;
    double update_threshold = 0.01;
    BloomSummaryConfig bloom;
    // Pareto document sizes (alpha 1.1 heavy tail, ~18 KB mean).
    double size_alpha = 1.1;
    double size_lo = 3'000;
    double size_hi = 10'000'000;
    std::uint64_t seed = 42;
    CostModelConfig cost;
};

/// One column of Table II / IV / V (all figures are per proxy).
struct BenchRow {
    std::string label;
    double hit_ratio = 0.0;         ///< total cache hit ratio, local+remote
    double remote_hit_ratio = 0.0;
    double avg_latency_s = 0.0;     ///< mean client-visible latency
    double user_cpu_s = 0.0;
    double sys_cpu_s = 0.0;
    double udp_msgs = 0.0;          ///< UDP datagrams sent + received
    double tcp_pkts = 0.0;          ///< TCP packets sent + received
    double total_pkts = 0.0;        ///< IP packets at the NIC (≈ TCP + UDP)
    double duration_s = 0.0;        ///< wall-clock length of the run
    std::uint64_t requests_per_proxy = 0;
};

/// Synthetic Wisconsin-benchmark workload: each client re-requests one of
/// its own previous URLs with probability `inherent_hit_ratio`, otherwise
/// fetches a brand-new URL in its private namespace (so there are no
/// inter-proxy hits, the paper's worst case for ICP). Clients issue
/// requests round-robin with no think time.
[[nodiscard]] std::vector<Request> generate_wisconsin_workload(const WisconsinConfig& cfg);

/// Run the Table II experiment for one protocol setting.
[[nodiscard]] BenchRow run_wisconsin(const WisconsinConfig& cfg);

struct ReplayConfig {
    std::uint32_t num_proxies = 4;
    std::uint32_t client_processes = 80;  ///< trace clients folded onto these
    std::uint64_t cache_bytes = 75ull * 1024 * 1024;
    BenchProtocol protocol = BenchProtocol::no_icp;
    ReplayAssignment assignment = ReplayAssignment::by_client;
    double update_threshold = 0.01;
    BloomSummaryConfig bloom;
    CostModelConfig cost;
};

/// Run a Tables IV/V style trace replay over `trace`.
[[nodiscard]] BenchRow run_replay(const ReplayConfig& cfg, const std::vector<Request>& trace);

namespace detail {

/// Shared core: convert exact simulation counts into a BenchRow.
[[nodiscard]] BenchRow derive_bench_row(const ShareSimResult& sim, const CostModelConfig& cost,
                                        BenchProtocol protocol, std::uint32_t num_proxies,
                                        std::uint32_t total_clients, double mean_doc_bytes,
                                        std::string label);

}  // namespace detail

}  // namespace sc
