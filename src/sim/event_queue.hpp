// Deterministic discrete-event core: a time-ordered queue of callbacks
// with FIFO tie-breaking (insertion sequence) so runs are bit-reproducible
// regardless of floating-point ties.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/sc_assert.hpp"

namespace sc {

class EventQueue {
public:
    using Handler = std::function<void()>;

    /// Schedule `fn` at absolute time `t` (must be >= now()).
    void schedule(double t, Handler fn) {
        SC_ASSERT(t >= now_ - 1e-12);
        heap_.push(Event{t, next_seq_++, std::move(fn)});
    }

    /// Convenience: schedule `fn` after a delay.
    void schedule_in(double delay, Handler fn) { schedule(now_ + delay, std::move(fn)); }

    /// Pop and run the earliest event. Returns false when empty.
    bool step() {
        if (heap_.empty()) return false;
        // Moving out of a priority_queue top requires a const_cast; the
        // element is popped immediately after, so this is safe.
        Event ev = std::move(const_cast<Event&>(heap_.top()));
        heap_.pop();
        now_ = ev.time;
        ev.fn();
        return true;
    }

    /// Run until the queue drains or max_events fire (runaway guard).
    /// Returns the number of events executed.
    std::uint64_t run(std::uint64_t max_events = ~0ull) {
        std::uint64_t n = 0;
        while (n < max_events && step()) ++n;
        return n;
    }

    [[nodiscard]] double now() const { return now_; }
    [[nodiscard]] bool empty() const { return heap_.empty(); }
    [[nodiscard]] std::size_t pending() const { return heap_.size(); }

private:
    struct Event {
        double time;
        std::uint64_t seq;
        Handler fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const {
            if (a.time != b.time) return a.time > b.time;
            return a.seq > b.seq;  // FIFO among simultaneous events
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    double now_ = 0.0;
    std::uint64_t next_seq_ = 0;
};

}  // namespace sc
