#include "trace/request.hpp"

namespace sc {

std::string_view url_host(std::string_view url) {
    constexpr std::string_view scheme = "://";
    std::size_t start = url.find(scheme);
    start = (start == std::string_view::npos) ? 0 : start + scheme.size();
    const std::size_t end = url.find('/', start);
    return url.substr(start, end == std::string_view::npos ? std::string_view::npos : end - start);
}

}  // namespace sc
