// Synthetic stand-ins for the paper's five proprietary traces (Table I).
//
// The originals (DEC, UCB, UPisa, Questnet, NLANR) are not redistributable,
// so each profile captures the aggregate properties the protocol results
// depend on: client population and grouping, request volume, popularity
// skew (drives hit ratio vs. cache size), per-client private working sets
// (drives cold misses and the sharing benefit), document sizes (Pareto),
// and document modification rate (drives remote *stale* hits). DESIGN.md
// documents the substitution; EXPERIMENTS.md reports the calibrated
// statistics our generator actually achieves next to the paper's.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sc {

enum class TraceKind { dec, ucb, upisa, questnet, nlanr };

inline constexpr std::array<TraceKind, 5> kAllTraceKinds = {
    TraceKind::dec, TraceKind::ucb, TraceKind::upisa, TraceKind::questnet, TraceKind::nlanr};

[[nodiscard]] const char* trace_name(TraceKind kind);

struct TraceProfile {
    std::string name;

    // Volume / population
    std::uint64_t requests = 0;
    std::uint32_t clients = 0;
    std::uint32_t proxy_groups = 0;  ///< number of cooperating proxies (Section II)

    // Popularity model
    std::uint64_t shared_docs = 0;      ///< size of the globally shared document universe
    double zipf_exponent = 0.75;        ///< skew of shared-document popularity
    double private_fraction = 0.25;     ///< fraction of requests to client-private docs
    std::uint32_t private_docs = 400;   ///< private universe size per client
    double client_zipf_exponent = 0.6;  ///< activity skew across clients

    // Document properties. Calibrated so the mean *cacheable* document
    // (<= 250 KB) is ~8 KB — the figure the paper's summary-sizing rule
    // (cache bytes / 8 KB) assumes.
    double size_alpha = 1.1;            ///< Pareto shape (heavy-tailed sizes)
    double size_lo = 2'000;             ///< min body bytes
    double size_hi = 8.0e7;             ///< max body bytes (80 MB tail)
    std::uint32_t docs_per_server = 10; ///< URL-to-server-name ratio (paper: ~10:1)
    double modify_probability = 0.003;  ///< per-access chance the doc changed
    /// Probability a client's next request stays on the same server as its
    /// previous one (pages embed many objects from one host). This is what
    /// clusters cached URLs onto few servers — the paper's observed ~10:1
    /// ratio that makes the server-name summary compact.
    double session_locality = 0.7;

    // Arrival process
    double request_rate = 50.0;  ///< aggregate requests per second

    // NLANR anomaly (Section V-A): a few clients fire the same request
    // at two proxies nearly simultaneously, which punishes update delay.
    bool duplicate_anomaly = false;
    double duplicate_fraction = 0.0;

    std::uint64_t seed = 0;
};

/// The calibrated default profile for one of the five traces. `scale`
/// multiplies request count and document populations together so that
/// quick runs stay representative (hit ratios move only mildly with scale).
[[nodiscard]] TraceProfile standard_profile(TraceKind kind, double scale = 1.0);

}  // namespace sc
