#include "trace/profile.hpp"

#include <algorithm>
#include <cmath>

#include "util/sc_assert.hpp"

namespace sc {

const char* trace_name(TraceKind kind) {
    switch (kind) {
        case TraceKind::dec: return "DEC";
        case TraceKind::ucb: return "UCB";
        case TraceKind::upisa: return "UPisa";
        case TraceKind::questnet: return "Questnet";
        case TraceKind::nlanr: return "NLANR";
    }
    return "?";
}

TraceProfile standard_profile(TraceKind kind, double scale) {
    SC_ASSERT(scale > 0.0);
    TraceProfile p;
    p.name = trace_name(kind);
    switch (kind) {
        case TraceKind::dec:
            // Corporate proxy population: many clients, 16 groups, broad
            // shared universe, moderate skew.
            p.requests = 1'200'000;
            p.clients = 10'000;
            p.proxy_groups = 16;
            p.shared_docs = 600'000;
            p.zipf_exponent = 0.77;
            p.private_fraction = 0.22;
            p.private_docs = 300;
            p.request_rate = 60.0;
            p.seed = 0xdec0'0001;
            break;
        case TraceKind::ucb:
            // Dial-IP service: fewer clients, 8 groups.
            p.requests = 900'000;
            p.clients = 5'800;
            p.proxy_groups = 8;
            p.shared_docs = 450'000;
            p.zipf_exponent = 0.75;
            p.private_fraction = 0.25;
            p.private_docs = 350;
            p.request_rate = 40.0;
            p.seed = 0x0cb0'0002;
            break;
        case TraceKind::upisa:
            // One CS department over months: small population, high locality.
            p.requests = 400'000;
            p.clients = 2'000;
            p.proxy_groups = 8;
            p.shared_docs = 160'000;
            p.zipf_exponent = 0.82;
            p.private_fraction = 0.18;
            p.private_docs = 250;
            p.request_rate = 8.0;
            p.seed = 0x0915'0003;
            break;
        case TraceKind::questnet:
            // Parent-proxy logs: each "client" is a child proxy whose own
            // cache already absorbed its hits, so streams are miss-heavy:
            // weaker skew, large private working sets.
            p.requests = 700'000;
            p.clients = 12;
            p.proxy_groups = 12;
            p.shared_docs = 500'000;
            p.zipf_exponent = 0.62;
            p.private_fraction = 0.35;
            p.private_docs = 30'000;
            p.client_zipf_exponent = 0.3;
            p.request_rate = 45.0;
            p.seed = 0x9e37'0004;
            break;
        case TraceKind::nlanr:
            // Four national parent proxies, one day. Includes the trace
            // anomaly Section V-A diagnoses: duplicate simultaneous
            // requests hitting two different proxies.
            p.requests = 600'000;
            p.clients = 4'000;
            p.proxy_groups = 4;
            p.shared_docs = 400'000;
            p.zipf_exponent = 0.70;
            p.private_fraction = 0.28;
            p.private_docs = 400;
            p.request_rate = 70.0;
            p.duplicate_anomaly = true;
            p.duplicate_fraction = 0.04;
            p.seed = 0x1a2b'0005;
            break;
    }
    if (scale != 1.0) {
        const auto scaled = [scale](std::uint64_t v) {
            return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                                  std::llround(static_cast<double>(v) * scale)));
        };
        p.requests = scaled(p.requests);
        p.shared_docs = scaled(p.shared_docs);
        // Private universes and client counts scale with the square root so
        // small runs keep a realistic requests-per-document ratio.
        const double root = std::sqrt(scale);
        p.clients = std::max<std::uint32_t>(
            p.proxy_groups,
            static_cast<std::uint32_t>(std::llround(static_cast<double>(p.clients) * root)));
        p.private_docs = std::max<std::uint32_t>(
            10,
            static_cast<std::uint32_t>(std::llround(static_cast<double>(p.private_docs) * root)));
        if (p.name == "Questnet") p.clients = 12;  // clients *are* the child proxies
    }
    return p;
}

}  // namespace sc
