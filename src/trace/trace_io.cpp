#include "trace/trace_io.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sc {
namespace {

constexpr const char* kHeader = "timestamp,client,url,size,version";

[[noreturn]] void malformed(std::size_t line_no, const std::string& why) {
    throw std::runtime_error("trace csv line " + std::to_string(line_no) + ": " + why);
}

template <typename Int>
Int parse_int(std::string_view field, std::size_t line_no) {
    Int value{};
    const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size())
        malformed(line_no, "bad integer field '" + std::string(field) + "'");
    return value;
}

}  // namespace

void write_trace_csv(std::ostream& out, const std::vector<Request>& trace) {
    out << kHeader << '\n';
    char ts[64];
    for (const Request& r : trace) {
        std::snprintf(ts, sizeof ts, "%.6f", r.timestamp);
        out << ts << ',' << r.client_id << ',' << r.url << ',' << r.size << ',' << r.version
            << '\n';
    }
}

void write_trace_csv_file(const std::string& path, const std::vector<Request>& trace) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open for write: " + path);
    write_trace_csv(out, trace);
    if (!out) throw std::runtime_error("write failed: " + path);
}

std::vector<Request> read_trace_csv(std::istream& in) {
    std::vector<Request> out;
    std::string line;
    std::size_t line_no = 0;

    if (!std::getline(in, line)) throw std::runtime_error("trace csv: empty input");
    ++line_no;
    if (line != kHeader) malformed(line_no, "bad header");

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        // Split into exactly five fields. The URL (field 3) is comma-free.
        std::array<std::string_view, 5> fields;
        std::string_view rest = line;
        for (int i = 0; i < 4; ++i) {
            const std::size_t comma = rest.find(',');
            if (comma == std::string_view::npos) malformed(line_no, "too few fields");
            fields[static_cast<std::size_t>(i)] = rest.substr(0, comma);
            rest.remove_prefix(comma + 1);
        }
        if (rest.find(',') != std::string_view::npos) malformed(line_no, "too many fields");
        fields[4] = rest;

        Request r;
        try {
            r.timestamp = std::stod(std::string(fields[0]));
        } catch (const std::exception&) {
            malformed(line_no, "bad timestamp");
        }
        r.client_id = parse_int<std::uint32_t>(fields[1], line_no);
        r.url = std::string(fields[2]);
        r.size = parse_int<std::uint64_t>(fields[3], line_no);
        r.version = parse_int<std::uint64_t>(fields[4], line_no);
        out.push_back(std::move(r));
    }
    return out;
}

std::vector<Request> read_trace_csv_file(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open for read: " + path);
    return read_trace_csv(in);
}

}  // namespace sc
