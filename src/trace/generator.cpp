#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>

#include "util/sc_assert.hpp"

namespace sc {
namespace {

// Stateless 64-bit mix for deterministic per-document values.
std::uint64_t mix64(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

}  // namespace

TraceGenerator::TraceGenerator(TraceProfile profile)
    : profile_(std::move(profile)),
      rng_(profile_.seed),
      // Two-level popularity: pick a server (Zipf), then a document on it
      // (Zipf). Correlated popularity is what gives real caches their
      // ~10:1 URL-to-server ratio *among cached documents*.
      server_popularity_(std::max<std::uint64_t>(
                             1, profile_.shared_docs / profile_.docs_per_server),
                         profile_.zipf_exponent),
      private_popularity_(std::max<std::uint64_t>(1, profile_.private_docs), 0.8),
      client_activity_(std::max<std::uint64_t>(1, profile_.clients),
                       profile_.client_zipf_exponent),
      size_sampler_(profile_.size_alpha, profile_.size_lo, profile_.size_hi) {
    SC_ASSERT(profile_.requests > 0);
    SC_ASSERT(profile_.clients >= 1);
    SC_ASSERT(profile_.proxy_groups >= 1);
    server_count_ = server_popularity_.population();

    // Carve the shared-document id space into per-server ranges whose
    // sizes follow ~1/(s+1): popular servers host many documents, the
    // long tail hosts one or two. Everyone gets at least one document;
    // any remainder goes to the head.
    const std::uint64_t servers = server_count_;
    double harmonic = 0.0;
    for (std::uint64_t s = 0; s < servers; ++s) harmonic += 1.0 / static_cast<double>(s + 1);
    server_offsets_.reserve(servers + 1);
    server_offsets_.push_back(0);
    std::uint64_t assigned = 0;
    for (std::uint64_t s = 0; s < servers; ++s) {
        const double share =
            static_cast<double>(profile_.shared_docs) / (static_cast<double>(s + 1) * harmonic);
        const auto docs = std::max<std::uint64_t>(1, static_cast<std::uint64_t>(share));
        assigned += docs;
        server_offsets_.push_back(assigned);
    }
    // Rounding (the max(1, ...) floor) can assign slightly more ids than
    // profile_.shared_docs; private ids start after whatever was assigned.
    shared_id_count_ = server_offsets_.back();
}

std::uint64_t TraceGenerator::shared_server_of(std::uint64_t doc) const {
    const auto it = std::upper_bound(server_offsets_.begin(), server_offsets_.end(), doc);
    SC_ASSERT(it != server_offsets_.begin());
    return static_cast<std::uint64_t>(it - server_offsets_.begin()) - 1;
}

std::uint64_t TraceGenerator::pick_document(std::uint32_t client) {
    if (rng_.next_bool(profile_.private_fraction) && profile_.private_docs > 0) {
        const std::uint64_t rank = private_popularity_.sample(rng_);
        return shared_id_count_ +
               static_cast<std::uint64_t>(client) * profile_.private_docs + rank;
    }
    const std::uint64_t server = server_popularity_.sample(rng_);
    const std::uint64_t hosted = server_offsets_[server + 1] - server_offsets_[server];
    if (hosted == 1) return server_offsets_[server];
    const std::uint64_t within = ZipfSampler(hosted, 0.8).sample(rng_);
    return server_offsets_[server] + within;
}

std::uint64_t TraceGenerator::document_size(std::uint64_t doc, std::uint64_t version) {
    // Deterministic per (document, version): a modified document may change
    // size, which the consistency rule detects as a miss.
    Rng local(mix64(doc * 0x9e3779b97f4a7c15ull + version + profile_.seed));
    const double raw = size_sampler_.sample(local);
    return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(raw));
}

std::string TraceGenerator::document_url(std::uint64_t doc) const {
    // Shared documents live on their Zipf-sized server; private documents
    // get contiguous per-client server blocks after the shared range.
    // Correlated popularity is what makes the server-name summary compact
    // inside caches (and collision-prone), as the paper observes.
    const std::uint64_t server =
        doc < shared_id_count_
            ? shared_server_of(doc)
            : server_count_ + (doc - shared_id_count_) / profile_.docs_per_server;
    std::string url = "http://s";
    url += std::to_string(server);
    url += '.';
    url += profile_.name;
    url += "/d";
    url += std::to_string(doc);
    return url;
}

Request TraceGenerator::materialize(double t, std::uint32_t client, std::uint64_t doc) {
    DocState& st = doc_state_[doc];
    if (rng_.next_bool(profile_.modify_probability)) ++st.version;
    Request r;
    r.timestamp = t;
    r.client_id = client;
    r.url = document_url(doc);
    r.version = st.version;
    r.size = document_size(doc, st.version);
    return r;
}

std::optional<Request> TraceGenerator::next() {
    if (emitted_ >= profile_.requests) return std::nullopt;
    ++emitted_;

    if (pending_duplicate_) {
        Request r = std::move(*pending_duplicate_);
        pending_duplicate_.reset();
        return r;
    }

    now_ += sample_exponential(rng_, 1.0 / profile_.request_rate);
    const auto client = static_cast<std::uint32_t>(client_activity_.sample(rng_));
    const std::uint64_t doc = pick_document(client);
    Request r = materialize(now_, client, doc);

    if (profile_.duplicate_anomaly && profile_.proxy_groups > 1 &&
        rng_.next_bool(profile_.duplicate_fraction) && emitted_ < profile_.requests) {
        // Same document, (nearly) same instant, different proxy group —
        // the NLANR pathology that defeats any update delay.
        Request dup = r;
        dup.client_id = client + 1;  // lands in the adjacent group
        dup.timestamp = r.timestamp + 1e-4;
        pending_duplicate_ = std::move(dup);
    }
    return r;
}

std::vector<Request> TraceGenerator::generate_all() {
    std::vector<Request> out;
    out.reserve(profile_.requests);
    while (auto r = next()) out.push_back(std::move(*r));
    return out;
}

}  // namespace sc
