// Seeded synthetic request-stream generator. Given a TraceProfile it emits
// requests in timestamp order with:
//   * Zipf-skewed shared-document popularity (cross-client overlap — the
//     source of remote cache hits),
//   * per-client private working sets (cold misses; limits shareability),
//   * per-(document, version) Pareto sizes,
//   * Bernoulli document modifications (remote *stale* hits),
//   * optionally the NLANR duplicate-request anomaly of Section V-A.
//
// Generation is fully deterministic in the profile's seed.
#pragma once

#include <optional>
#include <vector>

#include "trace/profile.hpp"
#include "trace/request.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

#include <unordered_map>

namespace sc {

class TraceGenerator {
public:
    explicit TraceGenerator(TraceProfile profile);

    /// Next request, or nullopt once profile.requests have been emitted.
    std::optional<Request> next();

    /// Drain the whole stream into a vector.
    [[nodiscard]] std::vector<Request> generate_all();

    [[nodiscard]] const TraceProfile& profile() const { return profile_; }

    /// Proxy group a client belongs to: clientID mod group count (Section II).
    [[nodiscard]] static std::uint32_t proxy_group(std::uint32_t client_id,
                                                   std::uint32_t groups) {
        return client_id % groups;
    }

private:
    struct DocState {
        std::uint64_t version = 0;
    };

    [[nodiscard]] std::uint64_t pick_document(std::uint32_t client);
    [[nodiscard]] Request materialize(double t, std::uint32_t client, std::uint64_t doc);
    [[nodiscard]] std::uint64_t document_size(std::uint64_t doc, std::uint64_t version);
    [[nodiscard]] std::string document_url(std::uint64_t doc) const;

    [[nodiscard]] std::uint64_t shared_server_of(std::uint64_t doc) const;

    TraceProfile profile_;
    Rng rng_;
    ZipfSampler server_popularity_;  ///< which shared server a request hits
    ZipfSampler private_popularity_;
    ZipfSampler client_activity_;
    /// Document-id ranges per shared server: server s owns ids
    /// [server_offsets_[s], server_offsets_[s+1]). Popular servers host
    /// more documents (size ~ 1/(s+1)), mirroring the real web's skew.
    std::vector<std::uint64_t> server_offsets_;
    std::uint64_t shared_id_count_ = 0;  ///< first private document id
    /// Per-client session state: the document-id range of the server the
    /// client visited last (session locality keeps the next request there).
    std::unordered_map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> sessions_;
    BoundedParetoSampler size_sampler_;
    std::unordered_map<std::uint64_t, DocState> doc_state_;
    std::uint64_t emitted_ = 0;
    double now_ = 0.0;
    std::uint64_t server_count_ = 0;
    std::optional<Request> pending_duplicate_;
};

}  // namespace sc
