// CSV serialization of request streams so generated traces can be saved,
// inspected, and replayed byte-identically (the prototype's trace-replay
// client reads this format).
//
// Format: header line "timestamp,client,url,size,version", then one record
// per line. URLs must not contain commas or newlines (ours never do).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/request.hpp"

namespace sc {

void write_trace_csv(std::ostream& out, const std::vector<Request>& trace);
void write_trace_csv_file(const std::string& path, const std::vector<Request>& trace);

/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<Request> read_trace_csv(std::istream& in);
[[nodiscard]] std::vector<Request> read_trace_csv_file(const std::string& path);

}  // namespace sc
