// One HTTP GET record, the unit every simulation consumes. Matches the
// fields the paper's traces carry: time, client, URL, reply size, and a
// last-modified stamp (version) used for the perfect-consistency rule.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace sc {

struct Request {
    double timestamp = 0.0;      ///< seconds since trace start
    std::uint32_t client_id = 0; ///< stable client identifier
    std::string url;             ///< absolute URL, e.g. "http://s12.dec/d3456"
    std::uint64_t size = 0;      ///< document body size in bytes
    std::uint64_t version = 0;   ///< last-modified stamp; change => modified

    friend bool operator==(const Request&, const Request&) = default;
};

/// Host component of a URL ("http://host/path" -> "host"); the
/// server-name summary representation stores exactly these.
[[nodiscard]] std::string_view url_host(std::string_view url);

}  // namespace sc
