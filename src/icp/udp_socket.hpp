// RAII UDP socket for the SC-ICP prototype. ICP is UDP-based (the paper's
// prototype sends both queries and directory updates over UDP), so this is
// the only transport the protocol strictly needs; the mini-proxy adds TCP
// for the HTTP side separately.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sc {

/// IPv4 endpoint.
struct Endpoint {
    std::uint32_t host = 0;  ///< host byte order (e.g. 0x7f000001 for loopback)
    std::uint16_t port = 0;

    friend bool operator==(const Endpoint&, const Endpoint&) = default;

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] sockaddr_in to_sockaddr() const;
    [[nodiscard]] static Endpoint from_sockaddr(const sockaddr_in& sa);
    [[nodiscard]] static Endpoint loopback(std::uint16_t port);
    /// 0.0.0.0:<port> — bind on every interface.
    [[nodiscard]] static Endpoint any(std::uint16_t port);

    /// Parse "a.b.c.d:port", ":port", or "port" (bare port -> loopback).
    /// Returns nullopt on malformed input.
    [[nodiscard]] static std::optional<Endpoint> parse(std::string_view spec);
};

struct Datagram {
    Endpoint from;
    std::vector<std::uint8_t> payload;
};

/// Non-copyable, movable UDP socket. Throws std::system_error on
/// construction failure; runtime send/recv errors surface as exceptions
/// except EAGAIN, which is reported as "nothing available".
class UdpSocket {
public:
    /// Bind to 127.0.0.1:port. port == 0 picks an ephemeral port.
    explicit UdpSocket(std::uint16_t port = 0);

    /// Bind to an arbitrary local endpoint (host 0 = INADDR_ANY).
    explicit UdpSocket(const Endpoint& bind_addr);
    ~UdpSocket();

    UdpSocket(UdpSocket&& other) noexcept;
    UdpSocket& operator=(UdpSocket&& other) noexcept;
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    [[nodiscard]] Endpoint local_endpoint() const;
    [[nodiscard]] int fd() const { return fd_; }

    void send_to(const Endpoint& to, std::span<const std::uint8_t> payload);

    /// Wait up to timeout_ms (-1 = forever, 0 = poll) for one datagram.
    /// Returns nullopt on timeout.
    [[nodiscard]] std::optional<Datagram> receive(int timeout_ms);

private:
    void close_fd() noexcept;

    int fd_ = -1;
};

}  // namespace sc
