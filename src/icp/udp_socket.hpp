// RAII UDP socket for the SC-ICP prototype. ICP is UDP-based (the paper's
// prototype sends both queries and directory updates over UDP), so this is
// the only transport the protocol strictly needs; the mini-proxy adds TCP
// for the HTTP side separately.
#pragma once

#include <netinet/in.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "util/thread_annotations.hpp"

namespace sc {

/// IPv4 endpoint.
struct Endpoint {
    std::uint32_t host = 0;  ///< host byte order (e.g. 0x7f000001 for loopback)
    std::uint16_t port = 0;

    friend bool operator==(const Endpoint&, const Endpoint&) = default;

    [[nodiscard]] std::string to_string() const;
    [[nodiscard]] sockaddr_in to_sockaddr() const;
    [[nodiscard]] static Endpoint from_sockaddr(const sockaddr_in& sa);
    [[nodiscard]] static Endpoint loopback(std::uint16_t port);
    /// 0.0.0.0:<port> — bind on every interface.
    [[nodiscard]] static Endpoint any(std::uint16_t port);

    /// Parse "a.b.c.d:port", ":port", or "port" (bare port -> loopback).
    /// Returns nullopt on malformed input.
    [[nodiscard]] static std::optional<Endpoint> parse(std::string_view spec);
};

struct Datagram {
    Endpoint from;
    std::vector<std::uint8_t> payload;
};

/// Deterministic send-side fault injection: each outgoing datagram is
/// independently dropped, duplicated, or held back one send (reordered)
/// with the configured probabilities, driven by a seeded PRNG so a failing
/// run replays exactly. This is how the mesh convergence tests (and CI
/// loss-rate sweeps) exercise the DIRUPDATE gap-detection/resync path
/// without real packet loss.
struct UdpFaultConfig {
    double loss = 0.0;       ///< P(drop the datagram)
    double duplicate = 0.0;  ///< P(send it twice)
    double reorder = 0.0;    ///< P(hold it until after the next send)
    std::uint64_t seed = 1;

    [[nodiscard]] bool any() const { return loss > 0.0 || duplicate > 0.0 || reorder > 0.0; }

    /// Read SC_UDP_FAULT_LOSS / SC_UDP_FAULT_DUP / SC_UDP_FAULT_REORDER /
    /// SC_UDP_FAULT_SEED; unset variables leave the default (no faults).
    [[nodiscard]] static UdpFaultConfig from_env();
};

/// Non-copyable, movable UDP socket. Throws std::system_error on
/// construction failure; runtime send/recv errors surface as exceptions
/// except EAGAIN, which is reported as "nothing available".
class UdpSocket {
public:
    /// Bind to 127.0.0.1:port. port == 0 picks an ephemeral port.
    explicit UdpSocket(std::uint16_t port = 0);

    /// Bind to an arbitrary local endpoint (host 0 = INADDR_ANY).
    explicit UdpSocket(const Endpoint& bind_addr);
    ~UdpSocket();

    UdpSocket(UdpSocket&& other) noexcept;
    UdpSocket& operator=(UdpSocket&& other) noexcept;
    UdpSocket(const UdpSocket&) = delete;
    UdpSocket& operator=(const UdpSocket&) = delete;

    [[nodiscard]] Endpoint local_endpoint() const;
    [[nodiscard]] int fd() const { return fd_; }

    void send_to(const Endpoint& to, std::span<const std::uint8_t> payload);

    /// Wait up to timeout_ms (-1 = forever, 0 = poll) for one datagram.
    /// Returns nullopt on timeout.
    [[nodiscard]] std::optional<Datagram> receive(int timeout_ms);

    /// Install (or, with an all-zero config, remove) send-side fault
    /// injection. Safe to call before concurrent senders start; the fault
    /// state itself is mutex-guarded against concurrent send_to calls.
    void set_fault_injection(const UdpFaultConfig& cfg);

private:
    struct HeldDatagram {
        Endpoint to;
        std::vector<std::uint8_t> payload;
    };
    struct FaultState {
        Mutex mu;
        UdpFaultConfig cfg SC_GUARDED_BY(mu);
        std::mt19937_64 rng SC_GUARDED_BY(mu);
        std::optional<HeldDatagram> held SC_GUARDED_BY(mu);
    };

    void transmit(const Endpoint& to, std::span<const std::uint8_t> payload);
    void close_fd() noexcept;

    int fd_ = -1;
    std::unique_ptr<FaultState> fault_;  ///< null = no fault injection (hot default)
};

}  // namespace sc
