#include "icp/wire.hpp"

#include "util/byte_writer.hpp"

SC_UNTRUSTED_DECODE_TU;

namespace sc {

void BufWriter::u16(std::uint16_t v) { util::append_u16be(buf_, v); }

void BufWriter::u32(std::uint32_t v) { util::append_u32be(buf_, v); }

void BufWriter::bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufWriter::cstring(std::string_view s) {
    if (s.find('\0') != std::string_view::npos) throw WireError("embedded NUL in string");
    buf_.insert(buf_.end(), s.begin(), s.end());
    buf_.push_back(0);
}

void BufWriter::patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) throw WireError("patch_u16 out of range");
    util::patch_u16be(buf_, offset, v);
}

std::uint8_t BufReader::u8() {
    const std::uint8_t v = r_.u8();
    if (!r_.ok()) throw WireError("truncated message");
    return v;
}

std::uint16_t BufReader::u16() {
    const std::uint16_t v = r_.u16be();
    if (!r_.ok()) throw WireError("truncated message");
    return v;
}

std::uint32_t BufReader::u32() {
    const std::uint32_t v = r_.u32be();
    if (!r_.ok()) throw WireError("truncated message");
    return v;
}

std::string BufReader::cstring() {
    const std::string_view v = r_.cstring_view();
    if (!r_.ok()) throw WireError("unterminated string");
    return std::string(v);
}

std::span<const std::uint8_t> BufReader::bytes(std::size_t n) {
    const auto out = r_.bytes(n);
    if (!r_.ok()) throw WireError("truncated message");
    return out;
}

}  // namespace sc
