#include "icp/wire.hpp"

#include <algorithm>

namespace sc {

void BufWriter::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void BufWriter::bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
}

void BufWriter::cstring(std::string_view s) {
    if (s.find('\0') != std::string_view::npos) throw WireError("embedded NUL in string");
    buf_.insert(buf_.end(), s.begin(), s.end());
    buf_.push_back(0);
}

void BufWriter::patch_u16(std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf_.size()) throw WireError("patch_u16 out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

void BufReader::need(std::size_t n) const {
    if (remaining() < n) throw WireError("truncated message");
}

std::uint8_t BufReader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint16_t BufReader::u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_]) << 8 | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t BufReader::u32() {
    need(4);
    const std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                            (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                            (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                            static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
}

std::string BufReader::cstring() {
    const auto begin = data_.begin() + static_cast<std::ptrdiff_t>(pos_);
    const auto nul = std::find(begin, data_.end(), std::uint8_t{0});
    if (nul == data_.end()) throw WireError("unterminated string");
    std::string out(begin, nul);
    pos_ += out.size() + 1;
    return out;
}

std::span<const std::uint8_t> BufReader::bytes(std::size_t n) {
    need(n);
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
}

}  // namespace sc
