#include "icp/icp_message.hpp"

#include "bloom/delta_log.hpp"
#include "obs/metrics.hpp"
#include "util/byte_reader.hpp"
#include "util/sc_assert.hpp"

SC_UNTRUSTED_DECODE_TU;

namespace sc {
namespace {

constexpr std::size_t kLengthFieldOffset = 2;

obs::Counter& malformed_total() {
    static obs::Counter c = obs::metrics().counter(
        "sc_icp_malformed_total", "ICP datagrams rejected by the checked-decode layer");
    return c;
}

/// Every public decode_* runs through here so each rejection — truncation,
/// length-field lie, hostile spec, bad URL — lands in sc_icp_malformed_total
/// before the WireError propagates to the caller's drop path.
template <typename Fn>
auto counted_decode(Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (const WireError&) {
        malformed_total().inc();
        throw;
    }
}

/// URLs come from untrusted peers and are echoed into hash probes, logs and
/// HTTP fetches; bound and sanitize them at the trust boundary. Only the
/// SECHO/DECHO liveness probes legitimately carry an empty URL.
void require_url(std::string_view url, bool allow_empty = false) {
    if (url.empty()) {
        if (!allow_empty) throw WireError("empty URL");
        return;
    }
    if (url.size() > kMaxIcpUrlBytes) throw WireError("URL exceeds wire limit");
    for (const char c : url)
        if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f)
            throw WireError("control byte in URL");
}

void write_header(BufWriter& w, IcpOpcode op, std::uint32_t request_number,
                  std::uint32_t sender_host, std::uint32_t options = 0,
                  std::uint32_t option_data = 0) {
    w.u8(static_cast<std::uint8_t>(op));
    w.u8(kIcpVersion);
    w.u16(0);  // length, patched after the payload is written
    w.u32(request_number);
    w.u32(options);
    w.u32(option_data);
    w.u32(sender_host);
}

std::vector<std::uint8_t> seal(BufWriter& w) {
    if (w.size() > kMaxIcpDatagram) throw WireError("message exceeds max datagram");
    w.patch_u16(kLengthFieldOffset, static_cast<std::uint16_t>(w.size()));
    return w.take();
}

IcpHeader read_header(BufReader& r, std::size_t datagram_size) {
    IcpHeader h;
    h.opcode = static_cast<IcpOpcode>(r.u8());
    h.version = r.u8();
    h.length = r.u16();
    h.request_number = r.u32();
    h.options = r.u32();
    h.option_data = r.u32();
    h.sender_host = r.u32();
    if (h.opcode == IcpOpcode::invalid) throw WireError("ICP_OP_INVALID on the wire");
    if (h.version != kIcpVersion) throw WireError("unsupported ICP version");
    if (h.length != datagram_size) throw WireError("length field does not match datagram");
    return h;
}

void expect_opcode(const IcpHeader& h, IcpOpcode want) {
    if (h.opcode != want) throw WireError("unexpected opcode");
}

}  // namespace

const char* icp_opcode_name(IcpOpcode op) {
    switch (op) {
        case IcpOpcode::invalid: return "INVALID";
        case IcpOpcode::query: return "QUERY";
        case IcpOpcode::hit: return "HIT";
        case IcpOpcode::miss: return "MISS";
        case IcpOpcode::err: return "ERR";
        case IcpOpcode::secho: return "SECHO";
        case IcpOpcode::decho: return "DECHO";
        case IcpOpcode::miss_nofetch: return "MISS_NOFETCH";
        case IcpOpcode::denied: return "DENIED";
        case IcpOpcode::hit_obj: return "HIT_OBJ";
        case IcpOpcode::dirupdate: return "DIRUPDATE";
        case IcpOpcode::dirfull: return "DIRFULL";
        case IcpOpcode::dirreq: return "DIRREQ";
    }
    return "?";
}

std::vector<std::uint8_t> encode_query(const IcpQuery& q) {
    BufWriter w;
    write_header(w, IcpOpcode::query, q.request_number, q.sender_host);
    w.u32(q.requester_host);
    w.cstring(q.url);
    return seal(w);
}

namespace {

bool is_reply_opcode(IcpOpcode op) {
    return op == IcpOpcode::hit || op == IcpOpcode::miss || op == IcpOpcode::miss_nofetch ||
           op == IcpOpcode::err || op == IcpOpcode::denied || op == IcpOpcode::secho ||
           op == IcpOpcode::decho;
}

bool is_probe_opcode(IcpOpcode op) {
    return op == IcpOpcode::secho || op == IcpOpcode::decho;
}

}  // namespace

std::vector<std::uint8_t> encode_reply(const IcpReply& r) {
    SC_ASSERT(is_reply_opcode(r.opcode));
    BufWriter w;
    write_header(w, r.opcode, r.request_number, r.sender_host, r.options);
    w.cstring(r.url);
    return seal(w);
}

std::vector<std::uint8_t> encode_hit_obj(const IcpHitObj& h) {
    if (h.object.size() > kMaxHitObjBytes) throw WireError("object too large for HIT_OBJ");
    BufWriter w;
    write_header(w, IcpOpcode::hit_obj, h.request_number, h.sender_host);
    // Version rides in option_data (offset 12..16 of the header).
    w.patch_u16(12, static_cast<std::uint16_t>(h.version >> 16));
    w.patch_u16(14, static_cast<std::uint16_t>(h.version));
    w.cstring(h.url);
    w.u16(static_cast<std::uint16_t>(h.object.size()));
    w.bytes(h.object);
    return seal(w);
}

std::vector<std::uint8_t> encode_dirupdate(const IcpDirUpdate& u) {
    if (!u.spec.valid()) throw WireError("invalid hash spec");
    if (u.spec.function_num > kMaxWireHashFunctions)
        throw WireError("too many hash functions for the wire format");
    if (u.spec.table_bits > kMaxWireTableBits)
        throw WireError("bit array too large for the wire format");
    BufWriter w;
    write_header(w, u.full ? IcpOpcode::dirfull : IcpOpcode::dirupdate, u.request_number,
                 u.sender_host, u.boot_id, u.full ? u.word_offset : 0);
    w.u16(u.spec.function_num);
    w.u16(u.spec.function_bits);
    w.u32(u.spec.table_bits);
    if (u.full) {
        const std::size_t expected_words = (u.spec.table_bits + 31) / 32;
        if (u.bitmap_words.empty() || u.word_offset >= expected_words ||
            u.bitmap_words.size() > expected_words - u.word_offset)
            throw WireError("bitmap chunk out of range for table size");
        w.u32(static_cast<std::uint32_t>(u.bitmap_words.size()));
        for (std::uint32_t word : u.bitmap_words) w.u32(word);
    } else {
        w.u32(static_cast<std::uint32_t>(u.records.size()));
        for (std::uint32_t rec : u.records) w.u32(rec);
    }
    return seal(w);
}

std::vector<std::uint8_t> encode_dirreq(const IcpDirReq& q) {
    BufWriter w;
    write_header(w, IcpOpcode::dirreq, q.request_number, q.sender_host, q.http_port);
    if (q.subject_id != 0) {  // introduction: the vouched-for peer's identity
        w.u32(q.subject_id);
        w.u32(q.subject_icp_host);
        w.u16(q.subject_icp_port);
        w.u16(q.subject_http_port);
    }
    return seal(w);
}

IcpHeader decode_header(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        return read_header(r, datagram.size());
    });
}

IcpQuery decode_query(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        const IcpHeader h = read_header(r, datagram.size());
        expect_opcode(h, IcpOpcode::query);
        IcpQuery q;
        q.request_number = h.request_number;
        q.sender_host = h.sender_host;
        q.requester_host = r.u32();
        q.url = r.cstring();
        require_url(q.url);
        if (!r.empty()) throw WireError("trailing bytes after query");
        return q;
    });
}

IcpReply decode_reply(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        const IcpHeader h = read_header(r, datagram.size());
        if (!is_reply_opcode(h.opcode)) throw WireError("not a reply opcode");
        IcpReply reply;
        reply.opcode = h.opcode;
        reply.request_number = h.request_number;
        reply.sender_host = h.sender_host;
        reply.options = h.options;
        reply.url = r.cstring();
        require_url(reply.url, /*allow_empty=*/is_probe_opcode(h.opcode));
        if (!r.empty()) throw WireError("trailing bytes after reply");
        return reply;
    });
}

IcpHitObj decode_hit_obj(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        const IcpHeader h = read_header(r, datagram.size());
        expect_opcode(h, IcpOpcode::hit_obj);
        IcpHitObj out;
        out.request_number = h.request_number;
        out.sender_host = h.sender_host;
        out.version = h.option_data;
        out.url = r.cstring();
        require_url(out.url);
        const std::uint16_t len = r.u16();
        if (r.remaining() != len) throw WireError("HIT_OBJ length mismatch");
        const auto body = r.bytes(len);
        out.object.assign(body.begin(), body.end());
        return out;
    });
}

IcpDirUpdate decode_dirupdate(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        const IcpHeader h = read_header(r, datagram.size());
        if (h.opcode != IcpOpcode::dirupdate && h.opcode != IcpOpcode::dirfull)
            throw WireError("not a directory update");
        IcpDirUpdate u;
        u.request_number = h.request_number;
        u.sender_host = h.sender_host;
        u.boot_id = h.options;
        // Gap detection keys on the sender's incarnation; 0 is reserved for
        // "not configured" (make_boot_id never hands it out), so an update
        // claiming it can only be forged or corrupt.
        if (u.boot_id == 0) throw WireError("update without a boot id");
        u.full = h.opcode == IcpOpcode::dirfull;
        if (u.full) {
            u.word_offset = h.option_data;
        } else if (h.option_data != 0) {
            // option_data is the DIRFULL chunk offset; a delta carrying one
            // is a framing confusion (or a DIRFULL with a flipped opcode).
            throw WireError("delta update with a word offset");
        }
        u.spec.function_num = r.u16();
        u.spec.function_bits = r.u16();
        u.spec.table_bits = r.u32();
        if (!u.spec.valid()) throw WireError("invalid hash spec in update");
        // Replicas built from the wire must fit the fixed-capacity probe path
        // (BloomIndexes); a hostile peer must not be able to push k past it.
        if (u.spec.function_num > kMaxWireHashFunctions)
            throw WireError("too many hash functions in update");
        // A hostile spec must not be able to trigger an unbounded reassembly
        // allocation on the receiver (kMaxWireTableBits caps it at 8 MiB).
        if (u.spec.table_bits > kMaxWireTableBits)
            throw WireError("bit array too large in update");
        const std::uint32_t count = r.u32();
        if (u.full) {
            const std::size_t expected_words = (u.spec.table_bits + 31) / 32;
            if (count == 0 || u.word_offset >= expected_words ||
                count > expected_words - u.word_offset)
                throw WireError("bitmap chunk out of range");
            u.bitmap_words.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) u.bitmap_words.push_back(r.u32());
            // Wire word i covers table bits [i*32, i*32+32); when table_bits
            // is not word-aligned the final word has slack bits that no
            // sender can legitimately set. Letting them through would poison
            // the replica's fill-ratio and diff math (assign_words does not
            // mask), so reject them at the boundary.
            const std::uint32_t tail_bits = u.spec.table_bits % 32;
            if (tail_bits != 0 && u.word_offset + count == expected_words &&
                (u.bitmap_words.back() >> tail_bits) != 0)
                throw WireError("bitmap bits beyond table size");
        } else {
            if (r.remaining() != static_cast<std::size_t>(count) * 4)
                throw WireError("record count does not match payload");
            u.records.reserve(count);
            for (std::uint32_t i = 0; i < count; ++i) {
                const std::uint32_t rec = r.u32();
                if ((rec & kBitFlipIndexMask) >= u.spec.table_bits)
                    throw WireError("bit index out of range");
                u.records.push_back(rec);
            }
        }
        if (!r.empty()) throw WireError("trailing bytes after update");
        return u;
    });
}

IcpDirReq decode_dirreq(std::span<const std::uint8_t> datagram) {
    return counted_decode([&] {
        BufReader r(datagram);
        const IcpHeader h = read_header(r, datagram.size());
        expect_opcode(h, IcpOpcode::dirreq);
        IcpDirReq q;
        q.request_number = h.request_number;
        q.sender_host = h.sender_host;
        q.http_port = static_cast<std::uint16_t>(h.options);
        if (!r.empty()) {  // introduction payload
            q.subject_id = r.u32();
            q.subject_icp_host = r.u32();
            q.subject_icp_port = r.u16();
            q.subject_http_port = r.u16();
            if (!r.empty()) throw WireError("trailing bytes after dirreq");
            if (q.subject_id == 0) throw WireError("dirreq introduction without a subject");
            // An introduction exists to make the subject dialable; port 0
            // cannot be connected to, so the datagram is junk (and a mesh
            // that forwarded it would poison peers' membership tables).
            if (q.subject_icp_port == 0)
                throw WireError("dirreq introduction without a usable port");
        }
        return q;
    });
}

}  // namespace sc
