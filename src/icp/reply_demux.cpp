#include "icp/reply_demux.hpp"

#include "obs/metrics.hpp"
#include "util/sc_assert.hpp"

namespace sc {
namespace {

// Process-wide: stale replies are a wire-level pathology (delayed rounds,
// restarted peers), interesting in aggregate like the UDP/TCP counters.
obs::Counter& stale_counter() {
    static obs::Counter c = obs::metrics().counter(
        "sc_icp_stale_replies_total",
        "ICP replies dropped because their request number matched no outstanding query");
    return c;
}

}  // namespace

IcpReplyWaiter::IcpReplyWaiter(IcpReplyWaiter&& other) noexcept
    : demux_(other.demux_), qn_(other.qn_) {
    other.demux_ = nullptr;
}

IcpReplyWaiter& IcpReplyWaiter::operator=(IcpReplyWaiter&& other) noexcept {
    if (this != &other) {
        if (demux_) demux_->unregister(qn_);
        demux_ = other.demux_;
        qn_ = other.qn_;
        other.demux_ = nullptr;
    }
    return *this;
}

IcpReplyWaiter::~IcpReplyWaiter() {
    if (demux_) demux_->unregister(qn_);
}

std::optional<Datagram> IcpReplyWaiter::wait_next(
    std::chrono::steady_clock::time_point deadline) {
    SC_ASSERT(demux_ != nullptr);
    MutexLock lock(demux_->mu_);
    const auto it = demux_->rounds_.find(qn_);
    SC_ASSERT(it != demux_->rounds_.end());
    // Element references survive rehashing (iterators do not), and only
    // this waiter ever erases its own round, so `round` stays valid while
    // the lock is released inside wait_until.
    ReplyDemux::Round& round = it->second;
    for (;;) {
        if (!round.replies.empty()) {
            Datagram d = std::move(round.replies.front());
            round.replies.pop_front();
            return d;
        }
        if (demux_->shutdown_) return std::nullopt;
        if (demux_->cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
            round.replies.empty())
            return std::nullopt;
    }
}

ReplyDemux::ReplyDemux() { (void)stale_counter(); }

IcpReplyWaiter ReplyDemux::register_query(std::uint32_t qn) {
    const MutexLock lock(mu_);
    const auto [it, inserted] = rounds_.try_emplace(qn);
    (void)it;
    SC_ASSERT(inserted);  // rounds are allocated from an atomic counter
    return IcpReplyWaiter(this, qn);
}

bool ReplyDemux::dispatch(std::uint32_t request_number, Datagram dgram) {
    {
        const MutexLock lock(mu_);
        const auto it = rounds_.find(request_number);
        if (it != rounds_.end()) {
            it->second.replies.push_back(std::move(dgram));
            cv_.notify_all();
            return true;
        }
        ++stale_;
    }
    stale_counter().inc();
    return false;
}

void ReplyDemux::shutdown() {
    const MutexLock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
}

std::uint64_t ReplyDemux::stale_replies() const {
    const MutexLock lock(mu_);
    return stale_;
}

std::size_t ReplyDemux::pending_rounds() const {
    const MutexLock lock(mu_);
    return rounds_.size();
}

void ReplyDemux::unregister(std::uint32_t qn) {
    const MutexLock lock(mu_);
    rounds_.erase(qn);
}

}  // namespace sc
