// ICP version 2 wire codec (RFC 2186 layout) plus the paper's SC-ICP
// extension opcode ICP_OP_DIRUPDATE (Section VI-A).
//
// Every ICP message starts with the 20-byte fixed header:
//   opcode:8  version:8  length:16  request_number:32
//   options:32  option_data:32  sender_host:32
// A query's payload is [requester_host:32][URL NUL-terminated]; a hit/miss
// payload is just the URL.
//
// ICP_OP_DIRUPDATE carries, after the fixed header, the summary header
//   function_num:16  function_bits:16  bit_array_size_in_bits:32
//   number_of_updates:32
// followed by number_of_updates 32-bit records (MSB = new bit value, low
// 31 bits = bit index). Because every update message repeats the hash-spec
// header, receivers can verify the parameters and messages survive
// unreliable delivery. A companion opcode ICP_OP_DIRFULL replaces the
// records with the complete bit array (the Squid cache-digest style
// transfer for large thresholds); number_of_updates then counts 32-bit
// bitmap words.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bloom/hash_spec.hpp"
#include "icp/wire.hpp"

namespace sc {

enum class IcpOpcode : std::uint8_t {
    invalid = 0,
    query = 1,
    hit = 2,
    miss = 3,
    err = 4,
    secho = 10,
    decho = 11,
    miss_nofetch = 21,
    denied = 22,
    hit_obj = 23,
    dirupdate = 30,  ///< SC-ICP delta update (paper Section VI-A)
    dirfull = 31,    ///< SC-ICP full-bitmap update
    dirreq = 32,     ///< SC-ICP resync request: "send me your full bitmap"
};

[[nodiscard]] const char* icp_opcode_name(IcpOpcode op);

inline constexpr std::uint8_t kIcpVersion = 2;
inline constexpr std::size_t kIcpHeaderBytes = 20;

/// The fixed 20-byte header shared by all ICP messages.
struct IcpHeader {
    IcpOpcode opcode = IcpOpcode::invalid;
    std::uint8_t version = kIcpVersion;
    std::uint16_t length = 0;  ///< total message bytes including header
    std::uint32_t request_number = 0;
    std::uint32_t options = 0;
    std::uint32_t option_data = 0;
    std::uint32_t sender_host = 0;

    friend bool operator==(const IcpHeader&, const IcpHeader&) = default;
};

struct IcpQuery {
    std::uint32_t request_number = 0;
    std::uint32_t sender_host = 0;
    std::uint32_t requester_host = 0;
    std::string url;

    friend bool operator==(const IcpQuery&, const IcpQuery&) = default;
};

/// HIT / MISS / MISS_NOFETCH / ERR / DENIED replies and SECHO / DECHO
/// liveness probes all share this shape (header + URL payload; probes
/// typically carry an empty URL).
struct IcpReply {
    IcpOpcode opcode = IcpOpcode::miss;
    std::uint32_t request_number = 0;
    std::uint32_t sender_host = 0;
    /// Free-form header options word. SECHO liveness probes use the low 16
    /// bits to advertise the sender's HTTP port so unknown peers can be
    /// learned at runtime (dynamic membership); 0 everywhere else.
    std::uint32_t options = 0;
    std::string url;

    friend bool operator==(const IcpReply&, const IcpReply&) = default;
};

/// ICP_OP_HIT_OBJ — a hit reply that carries the object inline (RFC 2186
/// payload: URL, NUL, 16-bit object length, object bytes), saving the
/// follow-up TCP fetch for small documents. We additionally carry the
/// document's version stamp in the header's option_data field so the
/// requester can reject a stale inline copy.
struct IcpHitObj {
    std::uint32_t request_number = 0;
    std::uint32_t sender_host = 0;
    std::uint32_t version = 0;  ///< travels in option_data
    std::string url;
    std::vector<std::uint8_t> object;

    friend bool operator==(const IcpHitObj&, const IcpHitObj&) = default;
};

/// Largest object that fits an ICP_OP_HIT_OBJ (16-bit length field).
inline constexpr std::size_t kMaxHitObjBytes = 0xffff;

/// Longest URL accepted from the wire. Decoders reject anything longer (and
/// any URL carrying control bytes) before it can reach the hash path or be
/// echoed into logs; matches the store's kMaxUrlBytes so a URL that fits a
/// datagram always fits a disk record too.
inline constexpr std::size_t kMaxIcpUrlBytes = 8192;

/// SC-ICP directory update: either a delta (records of bit flips) or a
/// full bitmap, always self-describing via the hash spec.
///
/// Reliability fields (rides in the fixed header, so the payload layout is
/// unchanged from the original extension):
///  * `request_number` is the sender's per-boot delta sequence. Each delta
///    chunk consumes one sequence number; a full bitmap carries the sequence
///    the *next* delta will use, so applying it tells the receiver exactly
///    where to resume gap detection.
///  * `boot_id` (header `options`) is a random per-process incarnation id.
///    A changed boot id means the sender restarted and its sequence space
///    reset; receivers must drop the replica and resync.
///  * `word_offset` (header `option_data`, DIRFULL only) chunks bitmaps too
///    large for one datagram: this message carries `bitmap_words.size()`
///    words starting at that word index. Offset 0 starts (or restarts) the
///    reassembly; the replica is committed once every word has arrived.
struct IcpDirUpdate {
    std::uint32_t request_number = 0;
    std::uint32_t sender_host = 0;
    std::uint32_t boot_id = 0;
    std::uint32_t word_offset = 0;
    HashSpec spec;
    bool full = false;
    std::vector<std::uint32_t> records;       ///< delta form (encoded bit flips)
    std::vector<std::uint32_t> bitmap_words;  ///< full form (big-endian 32-bit words)

    friend bool operator==(const IcpDirUpdate&, const IcpDirUpdate&) = default;
};

/// SC-ICP resync request (ICP_OP_DIRREQ): "my replica of you diverged (or I
/// have none) — send me your full bitmap." The requester's HTTP port rides
/// in the header options so an unknown requester can be learned as a
/// runtime sibling before it is answered.
///
/// With a non-zero `subject_id` the same datagram is instead an
/// INTRODUCTION (membership exchange): the sender vouches for a third
/// peer — "node `subject_id` is reachable at this ICP endpoint and HTTP
/// port". Receivers that did not know the subject learn it and pass the
/// introduction on, so membership propagates transitively from a single
/// point of contact; an introduction requests no bitmap.
struct IcpDirReq {
    std::uint32_t request_number = 0;
    std::uint32_t sender_host = 0;
    std::uint16_t http_port = 0;
    std::uint32_t subject_id = 0;  ///< 0 = plain resync request, no payload
    std::uint32_t subject_icp_host = 0;
    std::uint16_t subject_icp_port = 0;
    std::uint16_t subject_http_port = 0;

    friend bool operator==(const IcpDirReq&, const IcpDirReq&) = default;
};

// --- encode ---------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_query(const IcpQuery& q);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(const IcpReply& r);
[[nodiscard]] std::vector<std::uint8_t> encode_dirupdate(const IcpDirUpdate& u);
[[nodiscard]] std::vector<std::uint8_t> encode_dirreq(const IcpDirReq& q);
[[nodiscard]] std::vector<std::uint8_t> encode_hit_obj(const IcpHitObj& h);

// --- decode ---------------------------------------------------------------

/// Peek at the fixed header (validates length vs. buffer). Throws WireError.
[[nodiscard]] IcpHeader decode_header(std::span<const std::uint8_t> datagram);

[[nodiscard]] IcpQuery decode_query(std::span<const std::uint8_t> datagram);
[[nodiscard]] IcpReply decode_reply(std::span<const std::uint8_t> datagram);
[[nodiscard]] IcpDirUpdate decode_dirupdate(std::span<const std::uint8_t> datagram);
[[nodiscard]] IcpDirReq decode_dirreq(std::span<const std::uint8_t> datagram);
[[nodiscard]] IcpHitObj decode_hit_obj(std::span<const std::uint8_t> datagram);

/// Datagrams larger than this are never produced (fits any sane UDP MTU
/// configuration; callers chunk delta updates to stay under it).
inline constexpr std::size_t kMaxIcpDatagram = 60'000;

/// How many delta records fit in one datagram under kMaxIcpDatagram.
inline constexpr std::size_t kMaxRecordsPerUpdate =
    (kMaxIcpDatagram - kIcpHeaderBytes - 12) / 4;

/// How many 32-bit bitmap words fit in one DIRFULL chunk (same framing
/// arithmetic as delta records: header + spec + count leave this much room).
inline constexpr std::size_t kMaxWordsPerFullChunk = kMaxRecordsPerUpdate;

/// Largest bit-array size accepted from (or emitted onto) the wire. A full
/// bitmap at this cap is an 8 MiB reassembly buffer — large enough for any
/// realistic directory (the paper's biggest trace needs ~2 Mbit), small
/// enough that a hostile spec cannot trigger an unbounded allocation.
inline constexpr std::uint32_t kMaxWireTableBits = 1u << 26;

/// Wire cost of a delta DIRUPDATE carrying `records` bit-flip records,
/// including the per-chunk header + hash-spec + count framing the chunker
/// adds (ceil(records / kMaxRecordsPerUpdate) messages). Exposed so the
/// delta-vs-full election can be unit-tested at the crossover point.
[[nodiscard]] constexpr std::size_t dirupdate_delta_wire_bytes(std::size_t records) {
    const std::size_t chunks =
        records == 0 ? 1 : (records + kMaxRecordsPerUpdate - 1) / kMaxRecordsPerUpdate;
    return chunks * (kIcpHeaderBytes + 12) + records * 4;
}

/// Wire cost of the full-bitmap DIRFULL transfer for `spec`, including
/// per-chunk framing.
[[nodiscard]] constexpr std::size_t dirupdate_full_wire_bytes(const HashSpec& spec) {
    const std::size_t words = (static_cast<std::size_t>(spec.table_bits) + 31) / 32;
    const std::size_t chunks =
        words == 0 ? 1 : (words + kMaxWordsPerFullChunk - 1) / kMaxWordsPerFullChunk;
    return chunks * (kIcpHeaderBytes + 12) + words * 4;
}

}  // namespace sc
