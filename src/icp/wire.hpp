// Big-endian (network byte order) buffer primitives used by the ICP and
// SC-ICP codecs. Reads are bounds-checked and throw WireError — a malformed
// datagram from the network must never crash the proxy.
//
// BufReader is a thin throwing adapter over util::ByteReader (the checked-
// decode cursor): ByteReader does every bounds check, BufReader translates
// its latched failure into the codec's WireError at the exact read that
// went short.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/byte_reader.hpp"

namespace sc {

class WireError : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class BufWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    /// Raw bytes, no length prefix.
    void bytes(std::span<const std::uint8_t> data);
    /// NUL-terminated string (the ICP URL payload convention).
    void cstring(std::string_view s);

    [[nodiscard]] std::size_t size() const { return buf_.size(); }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }

    /// Overwrite a previously written big-endian u16 at `offset`
    /// (for length fields known only after the payload is written).
    void patch_u16(std::size_t offset, std::uint16_t v);

private:
    std::vector<std::uint8_t> buf_;
};

class BufReader {
public:
    explicit BufReader(std::span<const std::uint8_t> data) : r_(data) {}

    [[nodiscard]] std::uint8_t u8();
    [[nodiscard]] std::uint16_t u16();
    [[nodiscard]] std::uint32_t u32();
    /// Read a NUL-terminated string; consumes the terminator.
    [[nodiscard]] std::string cstring();
    /// Read exactly n raw bytes.
    [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n);

    [[nodiscard]] std::size_t remaining() const { return r_.remaining(); }
    [[nodiscard]] bool empty() const { return r_.empty(); }

private:
    util::ByteReader r_;
};

}  // namespace sc
