// Reply demultiplexer for concurrent ICP query rounds sharing one UDP
// socket. Exactly one thread (the proxy event loop) receives datagrams;
// reply opcodes are routed here by request number to the worker that
// registered the query, so concurrent workers never steal each other's
// replies. Replies for unknown or expired request numbers — a delayed
// reply from a previous round, or a restarted peer replaying an old
// number — are dropped and counted (`sc_icp_stale_replies_total`), never
// delivered to the wrong round.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>

#include "icp/udp_socket.hpp"
#include "util/thread_annotations.hpp"

namespace sc {

class ReplyDemux;

/// RAII registration of one outstanding query round. Destruction
/// unregisters the request number; replies arriving afterwards count as
/// stale.
class IcpReplyWaiter {
public:
    IcpReplyWaiter(IcpReplyWaiter&& other) noexcept;
    IcpReplyWaiter& operator=(IcpReplyWaiter&& other) noexcept;
    IcpReplyWaiter(const IcpReplyWaiter&) = delete;
    IcpReplyWaiter& operator=(const IcpReplyWaiter&) = delete;
    ~IcpReplyWaiter();

    /// Block until a reply routed to this query arrives (FIFO), the
    /// deadline passes, or the demux shuts down. nullopt on the latter two.
    [[nodiscard]] std::optional<Datagram> wait_next(
        std::chrono::steady_clock::time_point deadline) SC_EXCLUDES(demux_->mu_);

    [[nodiscard]] std::uint32_t query_number() const { return qn_; }

private:
    friend class ReplyDemux;
    IcpReplyWaiter(ReplyDemux* demux, std::uint32_t qn) : demux_(demux), qn_(qn) {}

    ReplyDemux* demux_ = nullptr;  ///< null after move-from
    std::uint32_t qn_ = 0;
};

class ReplyDemux {
public:
    ReplyDemux();

    ReplyDemux(const ReplyDemux&) = delete;
    ReplyDemux& operator=(const ReplyDemux&) = delete;

    /// Register an outstanding query. `qn` must not already be registered
    /// (callers allocate from an atomic counter, so rounds never collide).
    [[nodiscard]] IcpReplyWaiter register_query(std::uint32_t qn) SC_EXCLUDES(mu_);

    /// Route a reply datagram to its waiter. Returns false — and counts a
    /// stale reply — when no round with this request number is outstanding.
    bool dispatch(std::uint32_t request_number, Datagram dgram) SC_EXCLUDES(mu_);

    /// Wake every waiter with "no more replies"; subsequent waits return
    /// nullopt immediately. Used at proxy shutdown so workers blocked on
    /// a query round join promptly instead of riding out their timeout.
    void shutdown() SC_EXCLUDES(mu_);

    /// Replies dropped because their request number was unknown/expired.
    [[nodiscard]] std::uint64_t stale_replies() const SC_EXCLUDES(mu_);

    /// Rounds currently outstanding (tests).
    [[nodiscard]] std::size_t pending_rounds() const SC_EXCLUDES(mu_);

private:
    friend class IcpReplyWaiter;

    struct Round {
        std::deque<Datagram> replies;
    };

    void unregister(std::uint32_t qn) SC_EXCLUDES(mu_);

    mutable Mutex mu_;
    CondVar cv_;  ///< shared: waiters re-check their round
    bool shutdown_ SC_GUARDED_BY(mu_) = false;
    std::unordered_map<std::uint32_t, Round> rounds_ SC_GUARDED_BY(mu_);
    std::uint64_t stale_ SC_GUARDED_BY(mu_) = 0;
};

}  // namespace sc
