#include "icp/udp_socket.hpp"

#include "net/fd_poll.hpp"

#include <arpa/inet.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <system_error>
#include <utility>

#include "obs/metrics.hpp"

namespace sc {
namespace {

[[noreturn]] void throw_errno(const char* what) {
    throw std::system_error(errno, std::generic_category(), what);
}

// Process-wide datagram accounting, shared by every socket (the ICP
// control plane is one logical transport per proxy process).
struct UdpMetrics {
    obs::Counter datagrams_sent = obs::metrics().counter(
        "sc_udp_datagrams_sent_total", "UDP datagrams sent (ICP queries, replies, updates)");
    obs::Counter datagrams_received = obs::metrics().counter(
        "sc_udp_datagrams_received_total", "UDP datagrams received");
    obs::Counter bytes_sent =
        obs::metrics().counter("sc_udp_bytes_sent_total", "UDP payload bytes sent");
    obs::Counter bytes_received =
        obs::metrics().counter("sc_udp_bytes_received_total", "UDP payload bytes received");
    obs::Counter send_errors =
        obs::metrics().counter("sc_udp_send_errors_total", "sendto() failures");
    obs::Counter faults_injected = obs::metrics().counter(
        "sc_udp_faults_injected_total",
        "datagrams dropped/duplicated/held by configured fault injection");
};

UdpMetrics& udp_metrics() {
    static UdpMetrics m;
    return m;
}

}  // namespace

std::string Endpoint::to_string() const {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u:%u", (host >> 24) & 0xff, (host >> 16) & 0xff,
                  (host >> 8) & 0xff, host & 0xff, port);
    return buf;
}

sockaddr_in Endpoint::to_sockaddr() const {
    sockaddr_in sa{};
    sa.sin_family = AF_INET;
    sa.sin_addr.s_addr = htonl(host);
    sa.sin_port = htons(port);
    return sa;
}

Endpoint Endpoint::from_sockaddr(const sockaddr_in& sa) {
    return Endpoint{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

Endpoint Endpoint::loopback(std::uint16_t port) { return Endpoint{0x7f000001u, port}; }

Endpoint Endpoint::any(std::uint16_t port) { return Endpoint{0, port}; }

std::optional<Endpoint> Endpoint::parse(std::string_view spec) {
    if (spec.empty()) return std::nullopt;
    std::uint32_t host = 0x7f000001u;  // bare port -> loopback
    std::string_view port_part = spec;
    if (const auto colon = spec.rfind(':'); colon != std::string_view::npos) {
        port_part = spec.substr(colon + 1);
        const std::string_view host_part = spec.substr(0, colon);
        if (!host_part.empty()) {
            unsigned a = 0, b = 0, c = 0, d = 0;
            char tail = 0;
            const std::string host_str(host_part);
            if (std::sscanf(host_str.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4 ||
                a > 255 || b > 255 || c > 255 || d > 255)
                return std::nullopt;
            host = (a << 24) | (b << 16) | (c << 8) | d;
        } else {
            host = 0;  // ":port" -> any
        }
    }
    if (port_part.empty()) return std::nullopt;
    long port = 0;
    for (const char ch : port_part) {
        if (ch < '0' || ch > '9') return std::nullopt;
        port = port * 10 + (ch - '0');
        if (port > 65535) return std::nullopt;
    }
    return Endpoint{host, static_cast<std::uint16_t>(port)};
}

UdpSocket::UdpSocket(std::uint16_t port) : UdpSocket(Endpoint::loopback(port)) {}

UdpSocket::UdpSocket(const Endpoint& bind_addr) {
    fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) throw_errno("socket");
    const int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    const sockaddr_in sa = bind_addr.to_sockaddr();
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sa), sizeof sa) < 0) {
        close_fd();
        throw_errno("bind");
    }
}

UdpSocket::~UdpSocket() { close_fd(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
    if (this != &other) {
        close_fd();
        fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
}

void UdpSocket::close_fd() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Endpoint UdpSocket::local_endpoint() const {
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&sa), &len) < 0)
        throw_errno("getsockname");
    return Endpoint::from_sockaddr(sa);
}

UdpFaultConfig UdpFaultConfig::from_env() {
    UdpFaultConfig cfg;
    const auto read_rate = [](const char* name, double& out) {
        if (const char* v = std::getenv(name); v != nullptr && *v != '\0') out = std::atof(v);
    };
    read_rate("SC_UDP_FAULT_LOSS", cfg.loss);
    read_rate("SC_UDP_FAULT_DUP", cfg.duplicate);
    read_rate("SC_UDP_FAULT_REORDER", cfg.reorder);
    if (const char* v = std::getenv("SC_UDP_FAULT_SEED"); v != nullptr && *v != '\0')
        cfg.seed = std::strtoull(v, nullptr, 10);
    return cfg;
}

void UdpSocket::set_fault_injection(const UdpFaultConfig& cfg) {
    if (!cfg.any()) {
        fault_.reset();
        return;
    }
    auto state = std::make_unique<FaultState>();
    state->cfg = cfg;
    state->rng.seed(cfg.seed);
    fault_ = std::move(state);
}

void UdpSocket::transmit(const Endpoint& to, std::span<const std::uint8_t> payload) {
    const sockaddr_in sa = to.to_sockaddr();
    const ssize_t n = ::sendto(fd_, payload.data(), payload.size(), 0,
                               reinterpret_cast<const sockaddr*>(&sa), sizeof sa);
    if (n < 0) {
        udp_metrics().send_errors.inc();
        throw_errno("sendto");
    }
    udp_metrics().datagrams_sent.inc();
    udp_metrics().bytes_sent.inc(payload.size());
}

void UdpSocket::send_to(const Endpoint& to, std::span<const std::uint8_t> payload) {
    if (fault_ == nullptr) {
        transmit(to, payload);
        return;
    }
    bool drop = false;
    bool dup = false;
    std::optional<HeldDatagram> flush;
    {
        MutexLock lock(fault_->mu);
        std::uniform_real_distribution<double> roll(0.0, 1.0);
        const UdpFaultConfig& cfg = fault_->cfg;
        drop = cfg.loss > 0.0 && roll(fault_->rng) < cfg.loss;
        dup = !drop && cfg.duplicate > 0.0 && roll(fault_->rng) < cfg.duplicate;
        const bool hold = !drop && cfg.reorder > 0.0 && roll(fault_->rng) < cfg.reorder;
        if (hold && !fault_->held) {
            fault_->held = HeldDatagram{to, {payload.begin(), payload.end()}};
            udp_metrics().faults_injected.inc();
            return;
        }
        if (fault_->held) {
            flush = std::move(fault_->held);
            fault_->held.reset();
        }
    }
    if (drop) {
        udp_metrics().faults_injected.inc();
    } else {
        transmit(to, payload);
        if (dup) {
            udp_metrics().faults_injected.inc();
            transmit(to, payload);
        }
    }
    // A previously held datagram goes out *after* the one that followed it:
    // that is the reordering.
    if (flush) transmit(flush->to, flush->payload);
}

std::optional<Datagram> UdpSocket::receive(int timeout_ms) {
    if (!net::wait_fd_readable(fd_, timeout_ms)) return std::nullopt;

    std::vector<std::uint8_t> buf(65536);
    sockaddr_in sa{};
    socklen_t len = sizeof sa;
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&sa), &len);
    if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
        throw_errno("recvfrom");
    }
    buf.resize(static_cast<std::size_t>(n));
    udp_metrics().datagrams_received.inc();
    udp_metrics().bytes_received.inc(buf.size());
    return Datagram{Endpoint::from_sockaddr(sa), std::move(buf)};
}

}  // namespace sc
