#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/sc_assert.hpp"

namespace sc {

void OnlineStats::add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

double OnlineStats::variance() const {
    if (n_ < 2) return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double delta = other.mean_ - mean_;
    const auto na = static_cast<double>(n_);
    const auto nb = static_cast<double>(other.n_);
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void Percentiles::add(double x) {
    samples_.push_back(x);
    sorted_ = false;
}

double Percentiles::quantile(double q) const {
    SC_ASSERT(q >= 0.0 && q <= 1.0);
    if (samples_.empty()) return 0.0;
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Percentiles::mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0.0;
    for (double x : samples_) s += x;
    return s / static_cast<double>(samples_.size());
}

void Log2Histogram::add(double x) {
    ++total_;
    if (x < 1.0) {
        ++underflow_;
        return;
    }
    const auto bucket = static_cast<std::size_t>(std::floor(std::log2(x)));
    if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
    ++buckets_[bucket];
}

std::string Log2Histogram::render() const {
    std::string out;
    char line[96];
    if (underflow_ > 0) {
        std::snprintf(line, sizeof line, "[0, 1) %llu\n",
                      static_cast<unsigned long long>(underflow_));
        out += line;
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) continue;
        std::snprintf(line, sizeof line, "[%.0f, %.0f) %llu\n", std::exp2(static_cast<double>(i)),
                      std::exp2(static_cast<double>(i + 1)),
                      static_cast<unsigned long long>(buckets_[i]));
        out += line;
    }
    return out;
}

std::string percent(double numerator, double denominator, int decimals) {
    char buf[48];
    const double v = denominator == 0.0 ? 0.0 : 100.0 * numerator / denominator;
    std::snprintf(buf, sizeof buf, "%.*f%%", decimals, v);
    return buf;
}

}  // namespace sc
