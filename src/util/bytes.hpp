// Byte-count helpers shared by reports and tables.
#pragma once

#include <cstdint>
#include <string>

namespace sc {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * 1024;
inline constexpr std::uint64_t kGiB = 1024ull * 1024 * 1024;

/// Human-readable size: "1.5 MB", "832 KB", "17 B".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Thousands-separated integer: "1,234,567".
[[nodiscard]] std::string format_count(std::uint64_t n);

}  // namespace sc
