// Deterministic, seedable PRNG used by every stochastic component
// (trace synthesis, workload generators, Monte-Carlo checks). All results
// in the repository are reproducible from the seed alone; no component
// reads the wall clock for randomness.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#include "util/sc_assert.hpp"

namespace sc {

/// splitmix64: used to expand a 64-bit seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// xoshiro256++ — fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit constexpr Rng(std::uint64_t seed = 0x5c5c5c5c5c5c5c5cull) {
        std::uint64_t sm = seed;
        for (auto& s : state_) s = splitmix64(sm);
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    constexpr result_type operator()() {
        const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = std::rotl(state_[3], 45);
        return result;
    }

    /// Uniform double in [0, 1).
    constexpr double next_double() {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    constexpr std::uint64_t next_below(std::uint64_t bound) {
        SC_ASSERT(bound > 0);
        // Lemire's unbiased multiply-shift rejection method.
        std::uint64_t x = (*this)();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = (*this)();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /// True with probability p (clamped to [0,1]).
    constexpr bool next_bool(double p) { return next_double() < p; }

    /// Derive an independent child stream (for per-client generators).
    constexpr Rng fork() {
        Rng child(0);
        for (auto& s : child.state_) s = (*this)();
        return child;
    }

private:
    std::array<std::uint64_t, 4> state_{};
};

}  // namespace sc
