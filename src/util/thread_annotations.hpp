// Compile-time concurrency enforcement (docs/STATIC_ANALYSIS.md).
//
// Two layers live here:
//
//   1. The SC_* macros expose Clang's Thread Safety Analysis attributes
//      (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html). Under
//      clang every locking rule written with them — "this field is only
//      touched under that mutex", "this method runs with the lock held" —
//      is checked at compile time; CI builds the tree with
//      -Werror=thread-safety so a wrong-lock access fails the build. Under
//      GCC (the default local toolchain) every macro expands to nothing,
//      so the annotations are zero-cost and the binaries are unchanged.
//
//   2. sc::Mutex / sc::MutexLock / sc::CondVar wrap std::mutex with the
//      capability annotations the analysis needs. std::mutex itself lives
//      in a system header, where clang suppresses diagnostics — locking
//      through the raw type silently disables the analysis, which is why
//      tools/sc_lint rejects any raw std::mutex / std::lock_guard /
//      std::unique_lock / std::condition_variable outside this header.
//
// Marker macros for invariants the TSA cannot express (enforced by
// tools/sc_lint instead):
//
//   SC_HOT_PATH        — the function must not allocate: no new /
//                        make_unique / container growth. The runtime twin
//                        is bench/node_hotpath_bench's zero-alloc gate.
//   SC_EVENT_LOOP_ONLY — the method runs exclusively on the MiniProxy
//                        event-loop thread and must never block: no
//                        connect / read_line / read_exact / write_all /
//                        wait_readable / sleep.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define SC_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SC_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op: GCC and others
#endif

#define SC_CAPABILITY(x) SC_THREAD_ANNOTATION_ATTRIBUTE(capability(x))
#define SC_SCOPED_CAPABILITY SC_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)
#define SC_GUARDED_BY(x) SC_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))
#define SC_PT_GUARDED_BY(x) SC_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))
#define SC_ACQUIRED_BEFORE(...) SC_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SC_ACQUIRED_AFTER(...) SC_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define SC_REQUIRES(...) SC_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SC_REQUIRES_SHARED(...) \
    SC_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define SC_ACQUIRE(...) SC_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SC_ACQUIRE_SHARED(...) \
    SC_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define SC_RELEASE(...) SC_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SC_RELEASE_SHARED(...) \
    SC_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define SC_TRY_ACQUIRE(...) SC_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define SC_EXCLUDES(...) SC_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define SC_ASSERT_CAPABILITY(x) SC_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))
#define SC_RETURN_CAPABILITY(x) SC_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))
#define SC_NO_THREAD_SAFETY_ANALYSIS SC_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// sc_lint markers — no compiler meaning, checked by tools/sc_lint.
#define SC_HOT_PATH
#define SC_EVENT_LOOP_ONLY

namespace sc {

/// std::mutex with the TSA capability annotations. Same size, same cost:
/// every method is an inline forward.
class SC_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SC_ACQUIRE() { mu_.lock(); }
    bool try_lock() SC_TRY_ACQUIRE(true) { return mu_.try_lock(); }
    void unlock() SC_RELEASE() { mu_.unlock(); }

private:
    friend class CondVar;
    friend class MutexLock;
    std::mutex mu_;
};

/// Scoped lock over sc::Mutex — the annotated twin of std::lock_guard.
/// Returnable by value (guaranteed copy elision) from factory functions
/// annotated SC_ACQUIRE(mu), which is how LruCache::lock_shard hands a
/// held shard lock to its caller under the analysis.
class SC_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) SC_ACQUIRE(mu) : lock_(mu.mu_) {}

    /// Try-first acquisition: when the uncontended fast path loses,
    /// `on_wait(seconds_blocked)` reports the measured wait (the
    /// sc_cache_shard_lock_wait histogram feeds off this).
    template <typename OnWait>
    MutexLock(Mutex& mu, OnWait&& on_wait) SC_ACQUIRE(mu)
        : lock_(mu.mu_, std::try_to_lock) {
        if (!lock_.owns_lock()) {
            const auto start = std::chrono::steady_clock::now();
            lock_.lock();
            on_wait(std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count());
        }
    }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    ~MutexLock() SC_RELEASE() {}

private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable companion to sc::Mutex. The TSA cannot see the
/// unlock/relock inside a wait — the capability reads as continuously
/// held, which is sound for callers: the lock IS held whenever their code
/// runs. The one rule the analysis cannot check (wait with the right
/// mutex) is unchanged from std::condition_variable.
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

    template <typename Pred>
    void wait(MutexLock& lock, Pred&& pred) {
        cv_.wait(lock.lock_, std::forward<Pred>(pred));
    }

    template <typename Clock, typename Duration>
    std::cv_status wait_until(MutexLock& lock,
                              const std::chrono::time_point<Clock, Duration>& deadline) {
        return cv_.wait_until(lock.lock_, deadline);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace sc
