// Lightweight precondition / invariant checking in the spirit of the
// Core Guidelines' Expects()/Ensures(). Violations are programming errors,
// so they terminate rather than throw.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sc::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
    std::fprintf(stderr, "SC_ASSERT failed: %s at %s:%d\n", expr, file, line);
    std::abort();
}

}  // namespace sc::detail

#define SC_ASSERT(expr)                                             \
    do {                                                            \
        if (!(expr)) ::sc::detail::assert_fail(#expr, __FILE__, __LINE__); \
    } while (false)
