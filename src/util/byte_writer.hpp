// ByteWriter — the encode-side twin of ByteReader (byte_reader.hpp).
//
// Encoders are not attack surface the way decoders are, but keeping both
// directions of every wire/disk format in one audited vocabulary means a
// format change touches matching be/le calls on both sides, and no codec
// TU needs memcpy or reinterpret_cast at all (sc_lint raw-decode covers
// whole TUs, encode paths included).
//
// Two shapes, because the codebase has two encode idioms:
//   * ByteWriter — bounded cursor over a caller-sized span, with the same
//     saturating ok() latch as ByteReader. For fixed-layout records where
//     the size is known up front (segment log frames).
//   * append_* free functions — grow-on-write into std::vector<uint8_t> /
//     std::string. For streamed formats built field by field (ICP
//     datagrams via BufWriter).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sc::util {

class ByteWriter {
public:
    constexpr explicit ByteWriter(std::span<std::uint8_t> out) : out_(out) {}

    /// Write into a pre-sized std::string (the disk tier builds records in
    /// strings); the single cast lives here, matching ByteReader::over().
    static ByteWriter over(std::string& buf) {
        return ByteWriter(
            std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(buf.data()), buf.size()));
    }

    void u8(std::uint8_t v) {
        if (!take(1)) return;
        out_[pos_ - 1] = v;
    }

    void u16be(std::uint16_t v) {
        if (!take(2)) return;
        out_[pos_ - 2] = static_cast<std::uint8_t>(v >> 8);
        out_[pos_ - 1] = static_cast<std::uint8_t>(v);
    }

    void u32be(std::uint32_t v) {
        if (!take(4)) return;
        out_[pos_ - 4] = static_cast<std::uint8_t>(v >> 24);
        out_[pos_ - 3] = static_cast<std::uint8_t>(v >> 16);
        out_[pos_ - 2] = static_cast<std::uint8_t>(v >> 8);
        out_[pos_ - 1] = static_cast<std::uint8_t>(v);
    }

    void u16le(std::uint16_t v) {
        if (!take(2)) return;
        out_[pos_ - 2] = static_cast<std::uint8_t>(v);
        out_[pos_ - 1] = static_cast<std::uint8_t>(v >> 8);
    }

    void u32le(std::uint32_t v) {
        if (!take(4)) return;
        out_[pos_ - 4] = static_cast<std::uint8_t>(v);
        out_[pos_ - 3] = static_cast<std::uint8_t>(v >> 8);
        out_[pos_ - 2] = static_cast<std::uint8_t>(v >> 16);
        out_[pos_ - 1] = static_cast<std::uint8_t>(v >> 24);
    }

    void u64le(std::uint64_t v) {
        u32le(static_cast<std::uint32_t>(v));
        u32le(static_cast<std::uint32_t>(v >> 32));
    }

    void bytes(std::string_view v) {
        if (!take(v.size())) return;
        for (std::size_t i = 0; i < v.size(); ++i)
            out_[pos_ - v.size() + i] = static_cast<std::uint8_t>(v[i]);
    }

    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] std::size_t pos() const { return pos_; }
    [[nodiscard]] std::size_t remaining() const { return out_.size() - pos_; }

private:
    bool take(std::size_t n) {
        if (!ok_ || n > remaining()) {
            ok_ = false;
            pos_ = out_.size();
            return false;
        }
        pos_ += n;
        return true;
    }

    std::span<std::uint8_t> out_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

// --- grow-on-write helpers (network byte order, vector-backed) -------------

inline void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

inline void append_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

inline void append_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v >> 24));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v));
}

/// Re-write a 16-bit field at a known offset (ICP's post-hoc length seal).
inline void patch_u16be(std::span<std::uint8_t> buf, std::size_t offset, std::uint16_t v) {
    if (offset + 2 > buf.size()) return;
    buf[offset] = static_cast<std::uint8_t>(v >> 8);
    buf[offset + 1] = static_cast<std::uint8_t>(v);
}

// --- grow-on-write helpers (little-endian, string-backed disk tier) --------

inline void append_u8(std::string& out, std::uint8_t v) {
    out.push_back(static_cast<char>(v));
}

inline void append_u16le(std::string& out, std::uint16_t v) {
    out.push_back(static_cast<char>(v));
    out.push_back(static_cast<char>(v >> 8));
}

inline void append_u32le(std::string& out, std::uint32_t v) {
    out.push_back(static_cast<char>(v));
    out.push_back(static_cast<char>(v >> 8));
    out.push_back(static_cast<char>(v >> 16));
    out.push_back(static_cast<char>(v >> 24));
}

inline void append_u64le(std::string& out, std::uint64_t v) {
    append_u32le(out, static_cast<std::uint32_t>(v));
    append_u32le(out, static_cast<std::uint32_t>(v >> 32));
}

}  // namespace sc::util
