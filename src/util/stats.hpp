// Small statistics toolkit used by the simulator and the reproduction
// harnesses: online mean/variance (Welford), exact percentiles over stored
// samples, and fixed-bucket histograms for size/latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace sc {

/// Online mean / variance / min / max accumulator (Welford's algorithm).
class OnlineStats {
public:
    void add(double x);

    [[nodiscard]] std::uint64_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    /// Sample variance (n-1 denominator); 0 with fewer than two samples.
    [[nodiscard]] double variance() const;
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
    [[nodiscard]] double sum() const { return sum_; }

    /// Merge another accumulator into this one (parallel Welford).
    void merge(const OnlineStats& other);

private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/// Stores samples and answers exact quantile queries.
class Percentiles {
public:
    void add(double x);
    void reserve(std::size_t n) { samples_.reserve(n); }

    /// q in [0, 1]; linear interpolation between order statistics.
    /// Returns 0 when empty.
    [[nodiscard]] double quantile(double q) const;

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] double mean() const;

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/// Histogram over geometric (power-of-two) buckets, suitable for byte
/// sizes and latencies spanning several orders of magnitude.
class Log2Histogram {
public:
    void add(double x);

    [[nodiscard]] std::uint64_t total() const { return total_; }
    /// Render one line per non-empty bucket: "[lo, hi) count".
    [[nodiscard]] std::string render() const;

private:
    std::vector<std::uint64_t> buckets_;  // bucket i covers [2^i, 2^(i+1))
    std::uint64_t underflow_ = 0;         // x < 1
    std::uint64_t total_ = 0;
};

/// Ratio helper: percentage string with fixed precision, "12.34%".
[[nodiscard]] std::string percent(double numerator, double denominator, int decimals = 2);

}  // namespace sc
