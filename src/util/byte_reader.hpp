// ByteReader — THE checked-decode layer for untrusted input.
//
// Every parser that ingests bytes an attacker could have written (ICP/SC-ICP
// datagrams, HTTP request lines, disk segment logs) must read them through
// this cursor instead of raw `memcpy` / `reinterpret_cast` / pointer
// arithmetic; sc_lint's `raw-decode` rule makes that uncompilable to violate
// in any TU marked SC_UNTRUSTED_DECODE_TU (docs/STATIC_ANALYSIS.md).
//
// Design constraints, in order:
//   * zero allocation and no exceptions — safe inside SC_HOT_PATH bodies
//     and usable from codecs that translate failures into their own error
//     type (WireError) as well as ones that report via return values.
//   * saturating error latch — the first out-of-bounds read sets ok() to
//     false, returns a zero value, and pins the cursor at the end; every
//     subsequent read also fails. A decoder can therefore run its whole
//     field list straight through and test ok() once at the end, with no
//     per-field branching, and no read ever touches memory out of bounds.
//   * position tracking — pos()/remaining() stay exact for framing scans
//     (the segment log's torn-tail offset arithmetic depends on it).
//
// The byte-order suffix is explicit at every call site (u16be vs u16le):
// ICP is big-endian network order, the disk store is little-endian, and a
// reviewer should never have to look up which one a TU meant.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

/// Marks a translation unit whose inputs include untrusted bytes. sc_lint's
/// `raw-decode` rule denies memcpy / reinterpret_cast / raw pointer-offset
/// reads in marked TUs, so every decode path is forced through ByteReader.
/// Place once near the top of the TU: `SC_UNTRUSTED_DECODE_TU;`
#define SC_UNTRUSTED_DECODE_TU \
    static_assert(true, "this TU parses untrusted bytes: sc_lint raw-decode applies")

namespace sc::util {

class ByteReader {
public:
    constexpr explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

    /// View text buffers (HTTP lines, disk reads into std::string) without
    /// the caller spelling a cast: the one reinterpret_cast of the decode
    /// layer lives here, in the audited header.
    static ByteReader over(std::string_view text) {
        return ByteReader(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
    }

    [[nodiscard]] std::uint8_t u8() {
        if (!take(1)) return 0;
        return data_[pos_ - 1];
    }

    [[nodiscard]] std::uint16_t u16be() {
        if (!take(2)) return 0;
        return static_cast<std::uint16_t>(
            (static_cast<std::uint16_t>(data_[pos_ - 2]) << 8) | data_[pos_ - 1]);
    }

    [[nodiscard]] std::uint32_t u32be() {
        if (!take(4)) return 0;
        return (static_cast<std::uint32_t>(data_[pos_ - 4]) << 24) |
               (static_cast<std::uint32_t>(data_[pos_ - 3]) << 16) |
               (static_cast<std::uint32_t>(data_[pos_ - 2]) << 8) |
               static_cast<std::uint32_t>(data_[pos_ - 1]);
    }

    [[nodiscard]] std::uint64_t u64be() {
        const std::uint64_t hi = u32be();
        const std::uint64_t lo = u32be();
        return ok_ ? (hi << 32) | lo : 0;
    }

    [[nodiscard]] std::uint16_t u16le() {
        if (!take(2)) return 0;
        return static_cast<std::uint16_t>(
            data_[pos_ - 2] | (static_cast<std::uint16_t>(data_[pos_ - 1]) << 8));
    }

    [[nodiscard]] std::uint32_t u32le() {
        if (!take(4)) return 0;
        return static_cast<std::uint32_t>(data_[pos_ - 4]) |
               (static_cast<std::uint32_t>(data_[pos_ - 3]) << 8) |
               (static_cast<std::uint32_t>(data_[pos_ - 2]) << 16) |
               (static_cast<std::uint32_t>(data_[pos_ - 1]) << 24);
    }

    [[nodiscard]] std::uint64_t u64le() {
        const std::uint64_t lo = u32le();
        const std::uint64_t hi = u32le();
        return ok_ ? lo | (hi << 32) : 0;
    }

    /// Exactly n raw bytes; empty span (and latched error) if short.
    [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) {
        if (!take(n)) return {};
        return data_.subspan(pos_ - n, n);
    }

    /// Same bytes viewed as text (no copy, no cast at the call site).
    [[nodiscard]] std::string_view text(std::size_t n) {
        const auto raw = bytes(n);
        return {reinterpret_cast<const char*>(raw.data()), raw.size()};
    }

    /// NUL-terminated string; consumes the terminator. Latches the error
    /// (and returns empty) when no NUL exists in the remaining bytes.
    [[nodiscard]] std::string_view cstring_view() {
        const auto tail = data_.subspan(pos_);
        const auto nul = std::find(tail.begin(), tail.end(), std::uint8_t{0});
        if (nul == tail.end()) {
            fail();
            return {};
        }
        const auto len = static_cast<std::size_t>(nul - tail.begin());
        pos_ += len + 1;
        return {reinterpret_cast<const char*>(tail.data()), len};
    }

    void skip(std::size_t n) { (void)take(n); }

    /// Latch a semantic error found by the caller (bad magic, field out of
    /// range, ...) so one ok() check at the end covers everything.
    void fail() {
        ok_ = false;
        pos_ = data_.size();
    }

    [[nodiscard]] bool ok() const { return ok_; }
    [[nodiscard]] std::size_t pos() const { return pos_; }
    [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
    [[nodiscard]] bool empty() const { return remaining() == 0; }

private:
    /// Advance past n bytes if available; otherwise latch and saturate.
    bool take(std::size_t n) {
        if (!ok_ || n > remaining()) {
            fail();
            return false;
        }
        pos_ += n;
        return true;
    }

    std::span<const std::uint8_t> data_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace sc::util
