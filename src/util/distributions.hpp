// Samplers for the distributions the paper's workloads rely on:
//   * Zipf-like document popularity (drives temporal locality and the
//     logarithmic hit-ratio growth of Section III),
//   * bounded Pareto document sizes (the Wisconsin Proxy Benchmark uses
//     Pareto sizes, Section IV),
//   * exponential inter-arrival helpers for the event-driven simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace sc {

/// Zipf(s) over ranks {0, 1, ..., n-1}: P(rank k) proportional to 1/(k+1)^s.
/// Uses rejection-inversion sampling (Hörmann & Derflinger), O(1) per draw
/// with no O(n) table, so populations of hundreds of millions are fine.
class ZipfSampler {
public:
    ZipfSampler(std::uint64_t n, double s);

    [[nodiscard]] std::uint64_t sample(Rng& rng) const;

    [[nodiscard]] std::uint64_t population() const { return n_; }
    [[nodiscard]] double exponent() const { return s_; }

private:
    [[nodiscard]] double h(double x) const;          // integral of 1/x^s
    [[nodiscard]] double h_inverse(double x) const;  // inverse of h

    std::uint64_t n_;
    double s_;
    double h_x1_;
    double h_n_;
    double threshold_;  // rejection shortcut for rank 1
};

/// Bounded Pareto over [lo, hi] with shape alpha. The paper's benchmark
/// uses Pareto document sizes (heavy-tailed; alpha near 1.1).
class BoundedParetoSampler {
public:
    BoundedParetoSampler(double alpha, double lo, double hi);

    [[nodiscard]] double sample(Rng& rng) const;

    /// Analytic mean of the bounded Pareto distribution.
    [[nodiscard]] double mean() const;

    [[nodiscard]] double alpha() const { return alpha_; }
    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }

private:
    double alpha_;
    double lo_;
    double hi_;
    double lo_pow_;  // lo^alpha
    double hi_pow_;  // hi^alpha
};

/// Exponential with the given mean (mean = 1/lambda).
[[nodiscard]] double sample_exponential(Rng& rng, double mean);

/// Draw from a discrete distribution given cumulative weights
/// (cum.back() is the total mass). Returns an index into cum.
[[nodiscard]] std::size_t sample_discrete_cdf(Rng& rng, const std::vector<double>& cum);

}  // namespace sc
