#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/sc_assert.hpp"

namespace sc {

// ---------------------------------------------------------------- Zipf ----

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
    SC_ASSERT(n >= 1);
    SC_ASSERT(s > 0.0);
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n) + 0.5);
    threshold_ = 2.0 - h_inverse(h(2.5) - std::pow(2.0, -s));
}

double ZipfSampler::h(double x) const {
    // Integral of x^-s: log(x) when s == 1, else x^(1-s)/(1-s).
    if (s_ == 1.0) return std::log(x);
    return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double ZipfSampler::h_inverse(double x) const {
    if (s_ == 1.0) return std::exp(x);
    return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
    if (n_ == 1) return 0;
    // Rejection-inversion over the hazard envelope.
    for (;;) {
        const double u = h_x1_ + rng.next_double() * (h_n_ - h_x1_);
        const double x = h_inverse(u);
        auto k = static_cast<std::uint64_t>(x + 0.5);
        k = std::clamp<std::uint64_t>(k, 1, n_);
        if (static_cast<double>(k) - x <= threshold_ ||
            u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -s_)) {
            return k - 1;  // ranks are 0-based externally
        }
    }
}

// -------------------------------------------------------------- Pareto ----

BoundedParetoSampler::BoundedParetoSampler(double alpha, double lo, double hi)
    : alpha_(alpha), lo_(lo), hi_(hi) {
    SC_ASSERT(alpha > 0.0);
    SC_ASSERT(lo > 0.0 && hi > lo);
    lo_pow_ = std::pow(lo, alpha);
    hi_pow_ = std::pow(hi, alpha);
}

double BoundedParetoSampler::sample(Rng& rng) const {
    const double u = rng.next_double();
    // Inverse-CDF of the bounded Pareto.
    const double num = u * hi_pow_ - u * lo_pow_ - hi_pow_;
    return std::pow(-num / (hi_pow_ * lo_pow_), -1.0 / alpha_);
}

double BoundedParetoSampler::mean() const {
    if (alpha_ == 1.0) {
        return (lo_ * hi_) / (hi_ - lo_) * std::log(hi_ / lo_);
    }
    const double l = lo_pow_;
    return l / (1.0 - l / hi_pow_) * (alpha_ / (alpha_ - 1.0)) *
           (1.0 / std::pow(lo_, alpha_ - 1.0) - 1.0 / std::pow(hi_, alpha_ - 1.0));
}

// --------------------------------------------------------------- misc -----

double sample_exponential(Rng& rng, double mean) {
    SC_ASSERT(mean > 0.0);
    double u = rng.next_double();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::size_t sample_discrete_cdf(Rng& rng, const std::vector<double>& cum) {
    SC_ASSERT(!cum.empty());
    const double x = rng.next_double() * cum.back();
    const auto it = std::upper_bound(cum.begin(), cum.end(), x);
    return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
        it - cum.begin(), static_cast<std::ptrdiff_t>(cum.size()) - 1));
}

}  // namespace sc
