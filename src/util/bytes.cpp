#include "util/bytes.hpp"

#include <cstdio>

namespace sc {

std::string format_bytes(std::uint64_t bytes) {
    char buf[48];
    if (bytes >= kGiB) {
        std::snprintf(buf, sizeof buf, "%.2f GB", static_cast<double>(bytes) / static_cast<double>(kGiB));
    } else if (bytes >= kMiB) {
        std::snprintf(buf, sizeof buf, "%.2f MB", static_cast<double>(bytes) / static_cast<double>(kMiB));
    } else if (bytes >= kKiB) {
        std::snprintf(buf, sizeof buf, "%.1f KB", static_cast<double>(bytes) / static_cast<double>(kKiB));
    } else {
        std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string format_count(std::uint64_t n) {
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int seen = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (seen != 0 && seen % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++seen;
    }
    return {out.rbegin(), out.rend()};
}

}  // namespace sc
