// Clean-room MD5 (RFC 1321). The paper uses MD5 signatures of URLs both as
// exact-directory entries (16 bytes per URL) and as the source of the Bloom
// filter hash functions (disjoint 32-bit groups of the 128-bit digest).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace sc {

/// A 128-bit MD5 digest.
struct Md5Digest {
    std::array<std::uint8_t, 16> bytes{};

    friend bool operator==(const Md5Digest&, const Md5Digest&) = default;

    /// The i-th little-endian 32-bit word of the digest, i in [0, 4).
    [[nodiscard]] std::uint32_t word32(int i) const;

    /// The i-th little-endian 64-bit word of the digest, i in [0, 2).
    [[nodiscard]] std::uint64_t word64(int i) const;

    /// Lowercase hex rendering, e.g. "d41d8cd98f00b204e9800998ecf8427e".
    [[nodiscard]] std::string hex() const;
};

/// Incremental MD5 context. Feed any number of update() calls, then finish().
class Md5 {
public:
    Md5();

    /// Absorb more input. May be called repeatedly.
    void update(std::span<const std::uint8_t> data);
    void update(std::string_view data);

    /// Finalize and return the digest. The context must not be reused
    /// afterwards except by calling reset().
    Md5Digest finish();

    /// Restore the context to its initial (empty-message) state.
    void reset();

private:
    void compress(const std::uint8_t* block);

    std::array<std::uint32_t, 4> state_{};
    std::uint64_t total_len_ = 0;        // bytes absorbed so far
    std::array<std::uint8_t, 64> buf_{}; // partial block
    std::size_t buf_len_ = 0;
};

/// One-shot digest of a string.
[[nodiscard]] Md5Digest md5(std::string_view data);

/// One-shot digest of raw bytes.
[[nodiscard]] Md5Digest md5(std::span<const std::uint8_t> data);

}  // namespace sc
