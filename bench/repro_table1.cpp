// Table I — statistics about the traces: duration proxy, request count,
// number of clients, infinite cache size, and the maximum (infinite-cache)
// hit and byte-hit ratios. Our traces are calibrated synthetic stand-ins;
// EXPERIMENTS.md places these numbers next to the paper's.
#include <cstdio>

#include "repro_common.hpp"
#include "util/bytes.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);

    print_header("Table I: statistics about the (synthetic) traces",
                 "Table I");
    std::printf("scale = %.3g (1.0 ~ paper-sized traces)\n\n", scale);
    std::printf("%-10s %12s %9s %8s %16s %12s %14s\n", "Trace", "Requests", "Clients",
                "Proxies", "InfiniteCache", "MaxHitRatio", "MaxByteHitRatio");

    for (TraceKind kind : kAllTraceKinds) {
        const LoadedTrace t = load_trace(kind, scale);
        std::printf("%-10s %12s %9zu %8u %16s %11.2f%% %13.2f%%\n", t.profile.name.c_str(),
                    format_count(t.requests.size()).c_str(), t.clients,
                    t.profile.proxy_groups, format_bytes(t.infinite_cache_bytes).c_str(),
                    100.0 * t.max_hit_ratio, 100.0 * t.max_byte_hit_ratio);
    }
    std::printf("\nInfinite cache = total bytes of unique documents (no replacement).\n");
    return 0;
}
