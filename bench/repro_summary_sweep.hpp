// The Section V-D evaluation sweep shared by Table III and Figures 5-8:
// for each trace, run the summary-cache simulation with each of the five
// summary representations the paper compares (exact-directory,
// server-name, Bloom filters at load factors 8/16/32) plus the ICP
// baseline, at update threshold 1% and caches 10% of the infinite size.
#pragma once

#include <string>
#include <vector>

#include "repro_common.hpp"
#include "sim/share_sim.hpp"

namespace sc::bench {

struct SweepEntry {
    std::string label;
    ShareSimResult result;
    std::uint64_t cache_bytes_per_proxy = 0;
    std::uint32_t num_proxies = 0;
};

struct SweepRow {
    std::string trace;
    std::vector<SweepEntry> entries;  // 5 representations + "ICP" last
};

inline std::vector<SweepRow> run_summary_sweep(double scale,
                                               double update_threshold = 0.01) {
    std::vector<SweepRow> rows;
    for (TraceKind kind : kAllTraceKinds) {
        const LoadedTrace trace = load_trace(kind, scale);
        SweepRow row;
        row.trace = trace.profile.name;

        ShareSimConfig base;
        base.num_proxies = trace.profile.proxy_groups;
        base.cache_bytes_per_proxy = cache_bytes_per_proxy(trace, 0.10);
        base.scheme = SharingScheme::simple;
        base.protocol = QueryProtocol::summary;
        base.update_threshold = update_threshold;

        const auto run_as = [&](std::string label, SummaryKind kind_,
                                std::uint32_t load_factor) {
            ShareSimConfig cfg = base;
            cfg.summary_kind = kind_;
            cfg.bloom.load_factor = load_factor;
            // Like the prototype, batch updates until they fill one IP
            // packet (~1400 B): 4 B per Bloom bit-flip, 16 B per directory
            // change. At paper-sized caches the 1% threshold dominates and
            // this floor is moot; at small scales it keeps the update
            // economics realistic.
            cfg.min_update_changes = kind_ == SummaryKind::bloom ? 350 : 87;
            row.entries.push_back(SweepEntry{std::move(label),
                                             run_share_sim(cfg, trace.requests),
                                             cfg.cache_bytes_per_proxy, cfg.num_proxies});
        };
        run_as("exact-dir", SummaryKind::exact_directory, 16);
        run_as("server-name", SummaryKind::server_name, 16);
        run_as("bloom-8", SummaryKind::bloom, 8);
        run_as("bloom-16", SummaryKind::bloom, 16);
        run_as("bloom-32", SummaryKind::bloom, 32);

        ShareSimConfig icp = base;
        icp.protocol = QueryProtocol::icp;
        row.entries.push_back(SweepEntry{"ICP", run_share_sim(icp, trace.requests),
                                         base.cache_bytes_per_proxy, icp.num_proxies});
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace sc::bench
