// Shared plumbing for the reproduction binaries (one per paper table or
// figure). Each binary accepts an optional scale argument:
//
//     repro_fig1 [scale]
//
// where `scale` multiplies the synthetic trace volume (default 0.1 keeps
// every binary in the seconds range; 1.0 approaches the paper's full trace
// sizes). Results move only mildly with scale because the profiles shrink
// document populations alongside request counts.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "cache/infinite_cache.hpp"
#include "trace/generator.hpp"

namespace sc::bench {

inline double parse_scale(int argc, char** argv, double fallback = 0.1) {
    if (argc > 1) {
        const double s = std::atof(argv[1]);
        if (s > 0.0) return s;
        std::fprintf(stderr, "usage: %s [scale>0]\n", argv[0]);
        std::exit(2);
    }
    return fallback;
}

struct LoadedTrace {
    TraceProfile profile;
    std::vector<Request> requests;
    std::uint64_t infinite_cache_bytes = 0;
    double max_hit_ratio = 0.0;
    double max_byte_hit_ratio = 0.0;
    std::size_t clients = 0;
};

/// Generate one trace and its Table I statistics.
inline LoadedTrace load_trace(TraceKind kind, double scale) {
    LoadedTrace out;
    out.profile = standard_profile(kind, scale);
    out.requests = TraceGenerator(out.profile).generate_all();
    InfiniteCacheStats stats;
    for (const Request& r : out.requests) {
        stats.add_request(r.url, r.size, r.version);
        stats.add_client(r.client_id);
    }
    out.infinite_cache_bytes = stats.infinite_cache_bytes();
    out.max_hit_ratio = stats.max_hit_ratio();
    out.max_byte_hit_ratio = stats.max_byte_hit_ratio();
    out.clients = stats.client_count();
    return out;
}

/// Per-proxy cache size for a fraction of the trace's infinite cache.
inline std::uint64_t cache_bytes_per_proxy(const LoadedTrace& trace, double fraction) {
    const double total = static_cast<double>(trace.infinite_cache_bytes) * fraction;
    const double per = total / trace.profile.proxy_groups;
    return per < 1024.0 ? 1024 : static_cast<std::uint64_t>(per);
}

inline void print_rule(int width = 110) {
    for (int i = 0; i < width; ++i) std::putchar('-');
    std::putchar('\n');
}

inline void print_header(const char* title, const char* paper_ref) {
    print_rule();
    std::printf("%s\n(reproduces %s of Fan, Cao, Almeida, Broder: \"Summary Cache\", "
                "SIGCOMM'98 / ToN 8(3))\n",
                title, paper_ref);
    print_rule();
}

}  // namespace sc::bench
