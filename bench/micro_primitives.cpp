// Microbenchmarks for the protocol's primitive operations: MD5 hashing,
// Bloom index derivation, filter insert/probe/erase, LRU cache ops, and
// ICP message codecs. These quantify the paper's claim that "the
// computational overhead of MD5 is negligible compared with the user and
// system CPU overhead incurred by caching documents".
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "cache/lru_cache.hpp"
#include "core/peer_directory.hpp"
#include "core/protocol_engine.hpp"
#include "icp/icp_message.hpp"
#include "obs/metrics.hpp"
#include "summary/bloom_summary.hpp"
#include "util/md5.hpp"

namespace {

using namespace sc;

std::vector<std::string> make_urls(std::size_t n) {
    std::vector<std::string> urls;
    urls.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        urls.push_back("http://server" + std::to_string(i % 97) + ".example.com/path/doc" +
                       std::to_string(i));
    return urls;
}

void BM_Md5ShortUrl(benchmark::State& state) {
    const auto urls = make_urls(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(md5(urls[i++ & 1023]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Md5ShortUrl);

void BM_Md5Throughput(benchmark::State& state) {
    const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        benchmark::DoNotOptimize(md5(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_BloomIndexes(benchmark::State& state) {
    const HashSpec spec{static_cast<std::uint16_t>(state.range(0)), 32, 1u << 20};
    const auto urls = make_urls(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom_indexes(urls[i++ & 1023], spec));
    }
}
BENCHMARK(BM_BloomIndexes)->Arg(4)->Arg(8)->Arg(16);

void BM_BloomInsert(benchmark::State& state) {
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        f.insert(urls[i++ & 4095]);
    }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    for (std::size_t i = 0; i < 2048; ++i) f.insert(urls[i]);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.may_contain(urls[i++ & 4095]));
    }
}
BENCHMARK(BM_BloomProbe);

void BM_BloomProbePrehashed(benchmark::State& state) {
    // The simulator's fast path: hash once, probe many sibling filters.
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto idx = bloom_indexes("http://hot.example.com/doc", f.spec());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.may_contain(std::span<const std::uint32_t>(idx)));
    }
}
BENCHMARK(BM_BloomProbePrehashed);

void BM_CountingBloomInsertErase(benchmark::State& state) {
    CountingBloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& url = urls[i++ & 4095];
        f.insert(url);
        f.erase(url);
    }
}
BENCHMARK(BM_CountingBloomInsertErase);

void BM_LruInsertLookup(benchmark::State& state) {
    LruCache cache(LruCacheConfig{64ull * 1024 * 1024});
    const auto urls = make_urls(8192);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& url = urls[i++ & 8191];
        if (cache.lookup(url, 0) != LruCache::Lookup::hit) cache.insert(url, 8192, 0);
    }
}
BENCHMARK(BM_LruInsertLookup);

// The cache is internally locked for the proxy worker pool; the Threads(1)
// row prices the uncontended mutex (compare against BM_LruInsertLookup
// history) and the higher rows the contended worst case — every worker
// hammering the shared cache with no proxy work in between.
void BM_LruInsertLookupContended(benchmark::State& state) {
    static LruCache* cache = nullptr;
    if (state.thread_index() == 0)
        cache = new LruCache(LruCacheConfig{64ull * 1024 * 1024});
    const auto urls = make_urls(8192);
    std::size_t i = static_cast<std::size_t>(state.thread_index()) * 977;
    for (auto _ : state) {
        const auto& url = urls[i++ & 8191];
        if (cache->lookup(url, 0) != LruCache::Lookup::hit) cache->insert(url, 8192, 0);
    }
    if (state.thread_index() == 0) {
        delete cache;
        cache = nullptr;
    }
}
BENCHMARK(BM_LruInsertLookupContended)->Threads(1)->Threads(4)->Threads(8);

void BM_IcpQueryEncodeDecode(benchmark::State& state) {
    IcpQuery q{7, 1, 2, "http://server.example.com/some/longish/path/doc12345"};
    for (auto _ : state) {
        const auto wire = encode_query(q);
        benchmark::DoNotOptimize(decode_query(wire));
    }
}
BENCHMARK(BM_IcpQueryEncodeDecode);

void BM_DirUpdateEncodeDecode(benchmark::State& state) {
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, 1u << 24};
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i)
        u.records.push_back(encode_bit_flip({i * 13 % (1u << 24), i % 2 == 0}));
    for (auto _ : state) {
        const auto wire = encode_dirupdate(u);
        benchmark::DoNotOptimize(decode_dirupdate(wire));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DirUpdateEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

// --- obs_overhead ----------------------------------------------------------
// The instrumentation contract (docs/OBSERVABILITY.md): a hot-path counter
// increment is a single relaxed atomic add, and instrumenting the summary
// request path must cost < 5% over the uninstrumented path.

void BM_ObsCounterInc(benchmark::State& state) {
    auto c = obs::metrics().counter("bench_obs_counter_total", "bench");
    for (auto _ : state) c.inc();
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
    auto h = obs::metrics().histogram("bench_obs_histogram_seconds", "bench",
                                      obs::default_latency_bounds());
    double x = 0.0;
    for (auto _ : state) {
        h.observe(x);
        x += 0.0001;
        if (x > 2.0) x = 0.0;
    }
}
BENCHMARK(BM_ObsHistogramObserve);

// The summary request path of the mini-proxy/simulator, reduced to its
// compute kernel: LRU lookup, then on a miss a Bloom probe of each sibling
// replica plus the insert bookkeeping. `instrumented` adds exactly the
// counters the real path carries.
template <bool instrumented>
std::uint64_t summary_request_path(LruCache& cache, const std::vector<BloomFilter>& siblings,
                                   const std::vector<std::string>& urls, std::size_t rounds,
                                   obs::Counter hits, obs::Counter misses,
                                   obs::Counter probes) {
    std::uint64_t served = 0;
    for (std::size_t i = 0; i < rounds; ++i) {
        const auto& url = urls[i & (urls.size() - 1)];
        if (cache.lookup(url, 0) == LruCache::Lookup::hit) {
            if constexpr (instrumented) hits.inc();
            ++served;
            continue;
        }
        if constexpr (instrumented) misses.inc();
        for (const BloomFilter& f : siblings) {
            if constexpr (instrumented) probes.inc();
            if (f.may_contain(url)) ++served;
        }
        cache.insert(url, 8192, 0);
    }
    return served;
}

void BM_SummaryPathBare(benchmark::State& state) {
    LruCache cache(LruCacheConfig{8ull * 1024 * 1024});
    std::vector<BloomFilter> siblings(4, BloomFilter(HashSpec{4, 32, 1u << 20}));
    const auto urls = make_urls(4096);
    for (auto _ : state)
        benchmark::DoNotOptimize(summary_request_path<false>(cache, siblings, urls, 1024,
                                                             {}, {}, {}));
}
BENCHMARK(BM_SummaryPathBare);

void BM_SummaryPathInstrumented(benchmark::State& state) {
    LruCache cache(LruCacheConfig{8ull * 1024 * 1024});
    std::vector<BloomFilter> siblings(4, BloomFilter(HashSpec{4, 32, 1u << 20}));
    const auto urls = make_urls(4096);
    auto& reg = obs::metrics();
    auto hits = reg.counter("bench_path_hits_total", "bench");
    auto misses = reg.counter("bench_path_misses_total", "bench");
    auto probes = reg.counter("bench_path_probes_total", "bench");
    for (auto _ : state)
        benchmark::DoNotOptimize(summary_request_path<true>(cache, siblings, urls, 1024,
                                                            hits, misses, probes));
}
BENCHMARK(BM_SummaryPathInstrumented);

/// Best-of-N wall-clock for one benchmark closure (N trials dampen noise on
/// a shared machine; best-of is the standard estimator for a lower bound).
template <typename F>
double best_seconds(F&& f, int trials) {
    double best = 1e300;
    for (int t = 0; t < trials; ++t) {
        const auto start = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(f());
        const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start;
        best = std::min(best, dt.count());
    }
    return best;
}

// --- engine decision path ---------------------------------------------------
// One full ProtocolEngine decision per iteration — local lookup, peer-digest
// probe, sequential query round, admission, publish check. This is the
// per-request compute both the simulators and the live proxy pay now that
// they share the engine; CI runs it alongside the BM_Obs guards.

void BM_EngineDecision(benchmark::State& state) {
    LruCache cache(LruCacheConfig{8ull * 1024 * 1024});
    BloomSummary own(1024, {});
    cache.set_insert_hook([&own](const LruCache::Entry& e) { own.on_insert(e.url); });
    cache.set_removal_hook([&own](const LruCache::Entry& e) { own.on_erase(e.url); });

    std::vector<BloomSummary> peers;
    peers.reserve(3);
    for (int i = 0; i < 3; ++i) peers.emplace_back(1024, BloomSummaryConfig{});
    const auto urls = make_urls(4096);
    // The middle peer advertises half the universe: rounds mix winners,
    // wasted queries (Bloom noise), and empty probe sets.
    for (std::size_t i = 0; i < urls.size(); i += 2) peers[1].on_insert(urls[i]);
    peers[1].publish();
    core::SummaryPeerView view;
    view.set_prober(&own);
    for (std::uint32_t i = 0; i < peers.size(); ++i) view.add_peer(i + 1, &peers[i]);

    core::ProtocolEngine engine(
        core::ProtocolEngineConfig{0, core::DeltaBatcherConfig{0.01, 0.0, 0}}, cache, &own,
        &view);
    std::size_t i = 0;
    std::uint64_t served = 0;
    for (auto _ : state) {
        const auto& url = urls[i++ & (urls.size() - 1)];
        if (engine.lookup_local(url, 0) == LruCache::Lookup::hit) {
            ++served;
            continue;
        }
        const auto targets = engine.probe(url);
        const auto round =
            engine.run_sequential_round(targets, [&](std::uint32_t id) {
                return peers[id - 1].current_may_contain(url) ? core::PeerAnswer::fresh
                                                              : core::PeerAnswer::absent;
            });
        if (round.winner) ++served;
        (void)engine.admit(url, 8192, 0);
        if (const auto pub = engine.maybe_publish(0.0))
            benchmark::DoNotOptimize(pub->wire_bytes);
    }
    benchmark::DoNotOptimize(served);
}
BENCHMARK(BM_EngineDecision);

/// The ISSUE's acceptance guard: instrumenting the summary request path
/// must cost < 5% (SC_OBS_OVERHEAD_BUDGET_PCT overrides; returns nonzero
/// on violation so CI can gate on it).
int check_obs_overhead() {
    const char* budget_env = std::getenv("SC_OBS_OVERHEAD_BUDGET_PCT");
    const double budget_pct = budget_env ? std::atof(budget_env) : 5.0;

    LruCache bare_cache(LruCacheConfig{8ull * 1024 * 1024});
    LruCache inst_cache(LruCacheConfig{8ull * 1024 * 1024});
    std::vector<BloomFilter> siblings(4, BloomFilter(HashSpec{4, 32, 1u << 20}));
    const auto urls = make_urls(4096);
    auto& reg = obs::metrics();
    auto hits = reg.counter("bench_guard_hits_total", "bench");
    auto misses = reg.counter("bench_guard_misses_total", "bench");
    auto probes = reg.counter("bench_guard_probes_total", "bench");

    constexpr std::size_t kRounds = 1 << 16;
    constexpr int kTrials = 7;
    // Warm both caches so the trials measure steady state, not cold misses.
    (void)summary_request_path<false>(bare_cache, siblings, urls, kRounds, {}, {}, {});
    (void)summary_request_path<true>(inst_cache, siblings, urls, kRounds, hits, misses,
                                     probes);

    const double bare = best_seconds(
        [&] {
            return summary_request_path<false>(bare_cache, siblings, urls, kRounds, {}, {},
                                               {});
        },
        kTrials);
    const double inst = best_seconds(
        [&] {
            return summary_request_path<true>(inst_cache, siblings, urls, kRounds, hits,
                                              misses, probes);
        },
        kTrials);

    const double overhead_pct = 100.0 * (inst - bare) / bare;
    std::printf("obs_overhead: bare=%.3fms instrumented=%.3fms overhead=%.2f%% budget=%.1f%%\n",
                bare * 1e3, inst * 1e3, overhead_pct, budget_pct);
    sc::bench::append_record(
        {"micro_summary_path_bare", 1, bare * 1e9 / kRounds, -1.0});
    sc::bench::append_record(
        {"micro_summary_path_instrumented", 1, inst * 1e9 / kRounds, -1.0});
    if (overhead_pct >= budget_pct) {
        std::fprintf(stderr, "obs_overhead: instrumentation overhead %.2f%% exceeds %.1f%%\n",
                     overhead_pct, budget_pct);
        return 1;
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return check_obs_overhead();
}
