// Microbenchmarks for the protocol's primitive operations: MD5 hashing,
// Bloom index derivation, filter insert/probe/erase, LRU cache ops, and
// ICP message codecs. These quantify the paper's claim that "the
// computational overhead of MD5 is negligible compared with the user and
// system CPU overhead incurred by caching documents".
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "cache/lru_cache.hpp"
#include "icp/icp_message.hpp"
#include "util/md5.hpp"

namespace {

using namespace sc;

std::vector<std::string> make_urls(std::size_t n) {
    std::vector<std::string> urls;
    urls.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        urls.push_back("http://server" + std::to_string(i % 97) + ".example.com/path/doc" +
                       std::to_string(i));
    return urls;
}

void BM_Md5ShortUrl(benchmark::State& state) {
    const auto urls = make_urls(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(md5(urls[i++ & 1023]));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Md5ShortUrl);

void BM_Md5Throughput(benchmark::State& state) {
    const std::string data(static_cast<std::size_t>(state.range(0)), 'x');
    for (auto _ : state) {
        benchmark::DoNotOptimize(md5(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Md5Throughput)->Arg(64)->Arg(1024)->Arg(64 * 1024);

void BM_BloomIndexes(benchmark::State& state) {
    const HashSpec spec{static_cast<std::uint16_t>(state.range(0)), 32, 1u << 20};
    const auto urls = make_urls(1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(bloom_indexes(urls[i++ & 1023], spec));
    }
}
BENCHMARK(BM_BloomIndexes)->Arg(4)->Arg(8)->Arg(16);

void BM_BloomInsert(benchmark::State& state) {
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        f.insert(urls[i++ & 4095]);
    }
}
BENCHMARK(BM_BloomInsert);

void BM_BloomProbe(benchmark::State& state) {
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    for (std::size_t i = 0; i < 2048; ++i) f.insert(urls[i]);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.may_contain(urls[i++ & 4095]));
    }
}
BENCHMARK(BM_BloomProbe);

void BM_BloomProbePrehashed(benchmark::State& state) {
    // The simulator's fast path: hash once, probe many sibling filters.
    BloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto idx = bloom_indexes("http://hot.example.com/doc", f.spec());
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.may_contain(std::span<const std::uint32_t>(idx)));
    }
}
BENCHMARK(BM_BloomProbePrehashed);

void BM_CountingBloomInsertErase(benchmark::State& state) {
    CountingBloomFilter f(HashSpec{4, 32, 1u << 22});
    const auto urls = make_urls(4096);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& url = urls[i++ & 4095];
        f.insert(url);
        f.erase(url);
    }
}
BENCHMARK(BM_CountingBloomInsertErase);

void BM_LruInsertLookup(benchmark::State& state) {
    LruCache cache(LruCacheConfig{64ull * 1024 * 1024});
    const auto urls = make_urls(8192);
    std::size_t i = 0;
    for (auto _ : state) {
        const auto& url = urls[i++ & 8191];
        if (cache.lookup(url, 0) != LruCache::Lookup::hit) cache.insert(url, 8192, 0);
    }
}
BENCHMARK(BM_LruInsertLookup);

void BM_IcpQueryEncodeDecode(benchmark::State& state) {
    IcpQuery q{7, 1, 2, "http://server.example.com/some/longish/path/doc12345"};
    for (auto _ : state) {
        const auto wire = encode_query(q);
        benchmark::DoNotOptimize(decode_query(wire));
    }
}
BENCHMARK(BM_IcpQueryEncodeDecode);

void BM_DirUpdateEncodeDecode(benchmark::State& state) {
    IcpDirUpdate u;
    u.spec = HashSpec{4, 32, 1u << 24};
    for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(state.range(0)); ++i)
        u.records.push_back(encode_bit_flip({i * 13 % (1u << 24), i % 2 == 0}));
    for (auto _ : state) {
        const auto wire = encode_dirupdate(u);
        benchmark::DoNotOptimize(decode_dirupdate(wire));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_DirUpdateEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
