// Machine-readable bench results: append records to a JSON array file so
// CI can archive the perf trajectory run over run (BENCH_hotpath.json,
// uploaded as an artifact). Each record is self-contained:
//
//   {"git_sha": "...", "name": "...", "threads": N,
//    "ns_per_op": X, "allocs_per_op": Y}
//
// allocs_per_op is -1 when the benchmark did not count allocations.
// The target file is SC_BENCH_JSON (default ./BENCH_hotpath.json); the
// SHA comes from SC_GIT_SHA, then GITHUB_SHA, else "unknown" — the bench
// binaries never shell out.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace sc::bench {

struct Record {
    std::string name;
    int threads = 1;
    double ns_per_op = 0.0;
    double allocs_per_op = -1.0;  ///< -1 = not measured
};

inline std::string bench_json_path() {
    const char* p = std::getenv("SC_BENCH_JSON");
    return p != nullptr && *p != '\0' ? p : "BENCH_hotpath.json";
}

inline std::string bench_git_sha() {
    for (const char* var : {"SC_GIT_SHA", "GITHUB_SHA"}) {
        const char* v = std::getenv(var);
        if (v != nullptr && *v != '\0') return v;
    }
    return "unknown";
}

/// Append one record, keeping the file a valid JSON array throughout
/// (creates `[record]`, later rewrites the trailing `]` to `,record]`).
inline void append_record(const Record& r) {
    std::ostringstream rec;
    rec << "{\"git_sha\": \"" << bench_git_sha() << "\", \"name\": \"" << r.name
        << "\", \"threads\": " << r.threads << ", \"ns_per_op\": " << r.ns_per_op
        << ", \"allocs_per_op\": " << r.allocs_per_op << "}";

    const std::string path = bench_json_path();
    std::string existing;
    {
        std::ifstream in(path);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            existing = buf.str();
        }
    }
    const std::size_t close = existing.rfind(']');
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
        return;
    }
    if (close == std::string::npos) {
        out << "[\n  " << rec.str() << "\n]\n";
    } else {
        // Keep everything before the closing bracket; detect an empty
        // array ("[" with only whitespace after it) to skip the comma.
        std::string head = existing.substr(0, close);
        const std::size_t open = head.rfind('[');
        const bool empty_array =
            open != std::string::npos &&
            head.find_first_not_of(" \t\r\n", open + 1) == std::string::npos;
        while (!head.empty() && (head.back() == '\n' || head.back() == ' ')) head.pop_back();
        out << head << (empty_array ? "\n  " : ",\n  ") << rec.str() << "\n]\n";
    }
}

}  // namespace sc::bench
