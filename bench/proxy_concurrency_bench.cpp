// Concurrency acceptance benchmark for the event-loop + worker-pool proxy
// (run by CI as a plain step, not a ctest — see .github/workflows/ci.yml).
//
// Scenario: a 4-proxy ICP mesh where every proxy also lists one
// artificially stalled sibling — a UDP endpoint that never answers
// queries (its keepalive window is configured long enough that liveness
// never rescues us). Every miss round therefore rides out the full ICP
// query timeout, the paper's worst case for ICP overhead (Section V).
//
// Checks, each fatal on violation (exit 1):
//   1. Latency isolation: with 8 miss generators wedged on the stalled
//      sibling, the p99 of local hits served to 16 concurrent replay
//      clients stays flat relative to the idle-mesh baseline.
//   2. Throughput scaling: 48 misses issued by 16 clients complete at
//      least 2x faster with --workers 4 than with --workers 1.
//   3. Keep-alive closed loop: 32 persistent clients replaying a Zipf
//      workload must reuse their connections for every follow-up request
//      and beat the same workload run reconnect-per-request. Emits
//      ns-per-op records via bench_json (SC_BENCH_JSON, BENCH_proxy.json
//      in CI) so the perf trajectory is archived run over run.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "icp/udp_socket.hpp"
#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"
#include "util/distributions.hpp"
#include "util/rng.hpp"

namespace {

using namespace std::chrono_literals;
using sc::Endpoint;
using sc::HttpLiteStatus;
using sc::MiniProxy;
using sc::MiniProxyConfig;
using sc::OriginServer;
using sc::ShareMode;
using sc::TcpConnection;
using sc::UdpSocket;

constexpr auto kQueryTimeout = 30ms;  // what a stalled sibling costs a miss

struct Mesh {
    std::unique_ptr<OriginServer> origin;
    UdpSocket stalled;  // a sibling that never replies (and never dies)
    std::vector<std::unique_ptr<MiniProxy>> proxies;

    Mesh(int workers, std::chrono::milliseconds origin_delay) {
        origin = std::make_unique<OriginServer>(
            OriginServer::Config{.port = 0, .reply_delay = origin_delay});
        for (int i = 0; i < 4; ++i) {
            MiniProxyConfig cfg;
            cfg.id = static_cast<sc::NodeId>(i + 1);
            cfg.origin = origin->endpoint();
            cfg.mode = ShareMode::icp;
            cfg.workers = workers;
            cfg.query_timeout = kQueryTimeout;
            // Long keepalive window: the stalled sibling must stay "alive"
            // for the whole run so every miss pays for it.
            cfg.keepalive_interval = 60s;
            proxies.push_back(std::make_unique<MiniProxy>(cfg));
        }
        for (auto& p : proxies) {
            for (auto& q : proxies)
                if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
            p->add_sibling(99, stalled.local_endpoint(), Endpoint::loopback(1));
        }
        for (auto& p : proxies) p->start();
    }

    ~Mesh() {
        for (auto& p : proxies) p->stop();
        origin->stop();
    }
};

HttpLiteStatus get(TcpConnection& c, const std::string& url) {
    c.write_all(sc::format_request({false, false, url, 0, 100}));
    const auto line = c.read_line();
    if (!line) throw std::runtime_error("proxy closed connection");
    const auto header = sc::parse_response_header(*line);
    if (!header) throw std::runtime_error("bad response header");
    c.discard_exact(header->size);
    return header->status;
}

double p99_ms(std::vector<double>& samples) {
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() * 99 / 100];
}

/// 16 replay clients on persistent connections, each fetching warmed URLs
/// round-robin; returns per-request latencies in milliseconds.
std::vector<double> replay_local_hits(Mesh& mesh, int requests_per_client) {
    constexpr int kClients = 16;
    std::vector<std::vector<double>> lat(kClients);
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&mesh, &lat, t, requests_per_client] {
            TcpConnection c = TcpConnection::connect(mesh.proxies[0]->http_endpoint());
            for (int i = 0; i < requests_per_client; ++i) {
                const std::string url = "http://warm/" + std::to_string((t + i) % 32);
                const auto start = std::chrono::steady_clock::now();
                if (get(c, url) != HttpLiteStatus::local_hit)
                    throw std::runtime_error("expected a local hit on " + url);
                lat[static_cast<std::size_t>(t)].push_back(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count());
            }
        });
    }
    for (auto& th : threads) th.join();
    std::vector<double> all;
    for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
    return all;
}

void warm(Mesh& mesh) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&mesh, t] {
            TcpConnection c = TcpConnection::connect(mesh.proxies[0]->http_endpoint());
            for (int i = t; i < 32; i += 8)
                (void)get(c, "http://warm/" + std::to_string(i));
        });
    }
    for (auto& th : threads) th.join();
}

bool check_latency_isolation() {
    // Plenty of workers: the point here is that wedged miss rounds do not
    // head-of-line-block hits, not worker-count scaling (that is check 2).
    Mesh mesh(/*workers=*/16, /*origin_delay=*/5ms);
    warm(mesh);

    auto idle = replay_local_hits(mesh, 100);
    const double idle_p99 = p99_ms(idle);

    // 8 generators, each miss stuck kQueryTimeout on the stalled sibling.
    std::atomic<bool> stop{false};
    std::vector<std::thread> generators;
    for (int g = 0; g < 8; ++g) {
        generators.emplace_back([&mesh, &stop, g] {
            TcpConnection c = TcpConnection::connect(mesh.proxies[0]->http_endpoint());
            for (int i = 0; !stop.load(); ++i)
                (void)get(c, "http://miss/" + std::to_string(g) + "/" + std::to_string(i));
        });
    }
    auto loaded = replay_local_hits(mesh, 100);
    stop.store(true);
    for (auto& th : generators) th.join();
    const double loaded_p99 = p99_ms(loaded);

    // "Flat" with headroom for scheduler noise on loaded CI machines: an
    // un-isolated proxy regresses by the 30 ms query timeout, an order of
    // magnitude beyond this bound.
    const double bound_ms = std::max(10.0 * idle_p99, 25.0);
    std::printf("latency-isolation: local-hit p99 idle=%.3fms loaded=%.3fms bound=%.3fms\n",
                idle_p99, loaded_p99, bound_ms);
    if (loaded_p99 > bound_ms) {
        std::printf("FAIL: stalled-sibling miss traffic inflated local-hit p99\n");
        return false;
    }
    return true;
}

double timed_miss_storm(int workers) {
    Mesh mesh(workers, /*origin_delay=*/20ms);
    constexpr int kClients = 16;
    constexpr int kMissesPerClient = 3;  // 48 total
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
        threads.emplace_back([&mesh, t] {
            TcpConnection c = TcpConnection::connect(mesh.proxies[0]->http_endpoint());
            for (int i = 0; i < kMissesPerClient; ++i)
                (void)get(c, "http://storm/" + std::to_string(t) + "/" + std::to_string(i));
        });
    }
    for (auto& th : threads) th.join();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool check_throughput_scaling() {
    const double serial_s = timed_miss_storm(1);
    const double pooled_s = timed_miss_storm(4);
    const double speedup = serial_s / pooled_s;
    std::printf("throughput-scaling: workers=1 %.2fs, workers=4 %.2fs, speedup=%.2fx\n",
                serial_s, pooled_s, speedup);
    if (speedup < 2.0) {
        std::printf("FAIL: worker pool did not deliver >= 2x aggregate throughput\n");
        return false;
    }
    return true;
}

// --- keep-alive closed loop ------------------------------------------------

double percentile_ms(std::vector<double>& samples, int p) {
    if (samples.empty()) return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() * static_cast<std::size_t>(p) / 100];
}

/// Closed-loop Zipf replay: `clients` threads, each issuing
/// `requests_per_client` GETs drawn from a shared Zipf(512, 0.8) URL
/// population. With `reconnect` every request opens a fresh connection —
/// the pre-keep-alive behavior this bench exists to compare against.
/// Returns wall seconds; latencies land in hit_ms/miss_ms by outcome.
double zipf_closed_loop(MiniProxy& proxy, int clients, int requests_per_client,
                        bool reconnect, std::vector<double>& hit_ms,
                        std::vector<double>& miss_ms) {
    const sc::ZipfSampler zipf(512, 0.8);
    std::vector<std::vector<double>> hits(static_cast<std::size_t>(clients));
    std::vector<std::vector<double>> misses(static_cast<std::size_t>(clients));
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < clients; ++t) {
        threads.emplace_back([&, t] {
            sc::Rng rng(0x9e3779b9u + static_cast<std::uint64_t>(t));
            std::unique_ptr<TcpConnection> conn;
            for (int i = 0; i < requests_per_client; ++i) {
                if (!conn || reconnect)
                    conn = std::make_unique<TcpConnection>(
                        TcpConnection::connect(proxy.http_endpoint()));
                const std::string url =
                    "http://zipf/" + std::to_string(zipf.sample(rng));
                const auto t0 = std::chrono::steady_clock::now();
                const auto status = get(*conn, url);
                const double ms = std::chrono::duration<double, std::milli>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count();
                auto& bucket = status == HttpLiteStatus::local_hit
                                   ? hits[static_cast<std::size_t>(t)]
                                   : misses[static_cast<std::size_t>(t)];
                bucket.push_back(ms);
            }
        });
    }
    for (auto& th : threads) th.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (auto& v : hits) hit_ms.insert(hit_ms.end(), v.begin(), v.end());
    for (auto& v : misses) miss_ms.insert(miss_ms.end(), v.begin(), v.end());
    return secs;
}

bool check_keepalive_closed_loop() {
    constexpr int kClients = 32;
    constexpr int kPerClient = 200;
    constexpr auto kTotal = static_cast<double>(kClients) * kPerClient;

    OriginServer origin(OriginServer::Config{.port = 0});
    MiniProxyConfig cfg;
    cfg.id = 1;
    cfg.origin = origin.endpoint();
    cfg.workers = 4;
    MiniProxy proxy(cfg);
    proxy.start();

    std::vector<double> ka_hit, ka_miss, rc_hit, rc_miss;
    const double keepalive_s =
        zipf_closed_loop(proxy, kClients, kPerClient, /*reconnect=*/false,
                         ka_hit, ka_miss);
    const std::uint64_t reuses = proxy.stats().keepalive_reuses;
    const double reconnect_s =
        zipf_closed_loop(proxy, kClients, kPerClient, /*reconnect=*/true,
                         rc_hit, rc_miss);
    proxy.stop();
    origin.stop();

    const double ka_ns = keepalive_s * 1e9 / kTotal;
    const double rc_ns = reconnect_s * 1e9 / kTotal;
    std::printf(
        "keepalive-closed-loop: %d clients x %d reqs, zipf(512, 0.8)\n"
        "  keep-alive: %.0f ns/op  hit p50=%.3fms p99=%.3fms  miss p50=%.3fms p99=%.3fms\n"
        "  reconnect:  %.0f ns/op  hit p50=%.3fms p99=%.3fms  miss p50=%.3fms p99=%.3fms\n"
        "  reuse ratio %.2fx\n",
        kClients, kPerClient, ka_ns, percentile_ms(ka_hit, 50),
        percentile_ms(ka_hit, 99), percentile_ms(ka_miss, 50),
        percentile_ms(ka_miss, 99), rc_ns, percentile_ms(rc_hit, 50),
        percentile_ms(rc_hit, 99), percentile_ms(rc_miss, 50),
        percentile_ms(rc_miss, 99), rc_ns / ka_ns);
    sc::bench::append_record(
        {"proxy_keepalive_closed_loop", kClients, ka_ns, -1.0});
    sc::bench::append_record(
        {"proxy_reconnect_per_request", kClients, rc_ns, -1.0});

    // Every request after a client's first must have ridden its existing
    // connection; a shortfall means sessions were dropped mid-stream.
    const auto expected_reuses =
        static_cast<std::uint64_t>(kClients) * (kPerClient - 1);
    if (reuses != expected_reuses) {
        std::printf("FAIL: expected %llu keep-alive reuses, proxy counted %llu\n",
                    static_cast<unsigned long long>(expected_reuses),
                    static_cast<unsigned long long>(reuses));
        return false;
    }
    // Reconnect-per-request pays a TCP handshake plus session setup per op;
    // persistent connections must not lose to that on aggregate.
    if (ka_ns > rc_ns) {
        std::printf("FAIL: keep-alive slower than reconnect-per-request\n");
        return false;
    }
    return true;
}

}  // namespace

int main() {
    bool ok = check_latency_isolation();
    ok = check_throughput_scaling() && ok;
    ok = check_keepalive_closed_loop() && ok;
    std::printf(ok ? "proxy_concurrency_bench: OK\n"
                   : "proxy_concurrency_bench: FAILED\n");
    return ok ? 0 : 1;
}
