// Table III — storage requirement of the summary representations, as a
// percentage of the proxy cache size (one peer's summary replica relative
// to one proxy's cache, as the paper tabulates it). Expected shape:
// exact-directory ~0.2% of cache size (16 B per 8 KB document),
// server-name ~0.02%, Bloom filters between ~0.012% (load 8) and ~0.05%
// (load 32) — cheap enough to replicate for many peers.
#include <cstdio>

#include "repro_summary_sweep.hpp"

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Table III: summary storage as % of proxy cache size", "Table III");
    const auto rows = run_summary_sweep(scale);
    std::printf("%-10s", "Trace");
    for (const auto& e : rows.front().entries)
        if (e.label != "ICP") std::printf(" %12s", e.label.c_str());
    std::printf("\n");
    for (const auto& row : rows) {
        std::printf("%-10s", row.trace.c_str());
        for (const auto& e : row.entries) {
            if (e.label == "ICP") continue;
            // summary_replica_bytes sums the N-1 peer replicas one proxy
            // holds; divide back out for the per-summary figure.
            const double per_peer = static_cast<double>(e.result.summary_replica_bytes) /
                                    std::max(1u, e.num_proxies - 1);
            const double pct =
                100.0 * per_peer / static_cast<double>(e.cache_bytes_per_proxy);
            std::printf(" %11.4f%%", pct);
        }
        std::printf("\n");
    }
    std::printf("\nMultiply by (proxies - 1) for the total summary DRAM per proxy.\n");
    return 0;
}
