// Hot-path acceptance benchmark for the sharded request path (plain
// binary, exit 1 on violation; CI runs it as its own step, like
// proxy_concurrency_bench).
//
// Scenario: the MiniProxy worker-pool request path with the transport
// stripped away — a shared ProtocolEngine over a sharded LruCache whose
// hooks journal into the DeltaBatcher, probing four sibling replicas held
// by a SummaryCacheNode as lock-free snapshots. Every op is one request:
// local lookup, on a miss a replica probe plus admit, with the hook
// journal drained periodically the way the elected flusher does.
//
// Checks, each fatal on violation (exit 1):
//   1. Contended scaling: at 8 threads the 8-shard cache must beat the
//      1-shard cache by >= SC_HOTPATH_SPEEDUP_MIN (default 2.0). Skipped
//      with a note when hardware_concurrency() < 4 — a single-core box
//      serializes both configs; the multi-core CI runner is the evidence.
//   2. Zero-allocation probe: deriving the Bloom indexes (inline buffer),
//      loading the replica snapshot, and probing every filter performs 0
//      heap allocations per probe, counted by replaced operator new.
//
// Also prints a 1/2/4/8/16-thread scaling table for the full path and
// appends every measurement to BENCH_hotpath.json (see bench_json.hpp).
#include <atomic>
#include <barrier>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "cache/lru_cache.hpp"
#include "core/protocol_engine.hpp"
#include "core/summary_cache_node.hpp"
#include "icp/icp_message.hpp"
#include "summary/bloom_summary.hpp"

#if __has_include(<execinfo.h>)
#include <execinfo.h>
#include <unistd.h>
#define SC_BENCH_HAVE_BACKTRACE 1
#endif

// --- allocation counter ------------------------------------------------------
// Replace the global allocator so the zero-alloc gate can count heap
// traffic. The counter is relaxed: the gate section runs single-threaded.
// While the gate runs, g_capture_stacks additionally records the call stack
// of the first few offending allocations into fixed storage (capturing must
// not itself allocate), so a regression names the culprit instead of just
// a count.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};

constexpr int kMaxCapturedStacks = 8;
constexpr int kMaxStackFrames = 32;
std::atomic<bool> g_capture_stacks{false};
std::atomic<int> g_captured{0};
void* g_stack_frames[kMaxCapturedStacks][kMaxStackFrames];
int g_stack_depths[kMaxCapturedStacks];

void maybe_capture_stack() {
#if SC_BENCH_HAVE_BACKTRACE
    if (!g_capture_stacks.load(std::memory_order_relaxed)) return;
    // backtrace() can allocate internally (libgcc lazy init); the guard
    // keeps that from recursing into another capture.
    static thread_local bool capturing = false;
    if (capturing) return;
    capturing = true;
    const int slot = g_captured.fetch_add(1, std::memory_order_relaxed);
    if (slot < kMaxCapturedStacks)
        g_stack_depths[slot] = backtrace(g_stack_frames[slot], kMaxStackFrames);
    capturing = false;
#endif
}

void dump_captured_stacks() {
#if SC_BENCH_HAVE_BACKTRACE
    const int n = std::min(g_captured.load(std::memory_order_relaxed),
                           kMaxCapturedStacks);
    for (int i = 0; i < n; ++i) {
        std::fprintf(stderr, "--- offending allocation #%d of %d captured ---\n",
                     i + 1, n);
        // _fd variant: symbolizing must not allocate while we report on
        // allocations. Frames 0-1 are the capture machinery itself.
        backtrace_symbols_fd(g_stack_frames[i], g_stack_depths[i], STDERR_FILENO);
    }
#else
    std::fprintf(stderr, "(no <execinfo.h>: offending call stacks unavailable)\n");
#endif
}
}  // namespace

void* operator new(std::size_t n) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
    maybe_capture_stack();
    if (void* p = std::malloc(n != 0 ? n : 1)) return p;
    throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sc;

std::vector<std::string> make_urls(std::size_t n) {
    std::vector<std::string> urls;
    urls.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        urls.push_back("http://server" + std::to_string(i % 97) + ".example.com/path/doc" +
                       std::to_string(i));
    return urls;
}

constexpr std::size_t kUrls = 8192;  // power of two: index masking below
constexpr std::uint64_t kDocBytes = 8192;

/// The proxy's request path with the sockets removed: engine + sharded
/// cache + node-held sibling replicas, wired exactly like MiniProxy
/// (cache hooks -> DeltaBatcher journal; probes -> replica snapshots).
struct HotPath {
    /// PeerDirectory adapter over the node's lock-free replica probe —
    /// the same shape as MiniProxy::NodeProbe.
    struct NodeProbe final : core::PeerDirectory {
        const SummaryCacheNode* node = nullptr;
        [[nodiscard]] std::vector<std::uint32_t> promising_peers(
            std::string_view url) const override {
            return node->promising_siblings(url);
        }
    };

    LruCache cache;
    SummaryCacheNode node;
    NodeProbe probe;
    core::ProtocolEngine engine;

    HotPath(std::size_t shards, const std::vector<std::string>& urls)
        : cache(LruCacheConfig{32ull * 1024 * 1024, kDefaultMaxObjectBytes, shards}),
          node([] {
              SummaryCacheNodeConfig c;
              c.node_id = 0;
              c.expected_docs = kUrls;
              return c;
          }()),
          engine(core::ProtocolEngineConfig{0, core::DeltaBatcherConfig{0.01, 0.0, 0}},
                 cache, nullptr, &probe) {
        probe.node = &node;
        // Four siblings, each advertising an interleaved half of the URL
        // universe: probes mix promising peers and empty candidate sets.
        for (NodeId id = 1; id <= 4; ++id) {
            SummaryCacheNodeConfig c;
            c.node_id = id;
            c.expected_docs = kUrls;
            SummaryCacheNode sibling(c);
            for (std::size_t i = id - 1; i < urls.size(); i += 8)
                sibling.on_cache_insert(urls[i]);
            node.apply_sibling_update(decode_dirupdate(sibling.encode_full_update()));
        }
        // Production hook wiring: cache hooks journal into the batcher
        // (leaf lock), never into summary state (docs/PROTOCOL.md).
        core::DeltaBatcher& batcher = engine.batcher();
        cache.set_insert_hook(
            [&batcher](const LruCache::Entry& e) { batcher.record_insert(e.url); });
        cache.set_removal_hook(
            [&batcher](const LruCache::Entry& e) { batcher.record_erase(e.url); });
    }
};

/// Run `threads` workers for `ops_per_thread` requests each against one
/// shared HotPath; returns ns per op (wall clock across all threads).
double timed_hotpath_ns(HotPath& hp, int threads, std::size_t ops_per_thread) {
    std::barrier sync(threads + 1);
    std::atomic<std::uint64_t> served{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(threads));
    const auto urls = make_urls(kUrls);
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&hp, &sync, &served, &urls, t, ops_per_thread] {
            std::size_t i = static_cast<std::size_t>(t) * 977;  // decorrelate threads
            std::uint64_t local = 0;
            sync.arrive_and_wait();
            for (std::size_t n = 0; n < ops_per_thread; ++n) {
                const std::string& url = urls[i++ & (kUrls - 1)];
                if (hp.engine.lookup_local(url, 0) == LruCache::Lookup::hit) {
                    ++local;
                    continue;
                }
                local += hp.engine.probe(url).size();
                (void)hp.engine.admit(url, kDocBytes, 0);
                // Stand in for the elected flusher: keep the hook journal
                // bounded the way sync_node does in the live proxy.
                if ((n & 8191) == 8191) (void)hp.engine.batcher().drain_journal();
            }
            served.fetch_add(local, std::memory_order_relaxed);
            sync.arrive_and_wait();
        });
    }
    sync.arrive_and_wait();
    const auto start = std::chrono::steady_clock::now();
    sync.arrive_and_wait();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    for (auto& w : workers) w.join();
    if (served.load() == 0) std::fprintf(stderr, "hotpath served nothing?\n");
    return secs * 1e9 / (static_cast<double>(ops_per_thread) * threads);
}

/// Best of `trials` fresh runs (fresh HotPath each: cold cache, same mix).
double best_hotpath_ns(std::size_t shards, int threads, std::size_t ops_per_thread,
                       int trials) {
    const auto urls = make_urls(kUrls);
    double best = 1e300;
    for (int t = 0; t < trials; ++t) {
        HotPath hp(shards, urls);
        const double ns = timed_hotpath_ns(hp, threads, ops_per_thread);
        if (ns < best) best = ns;
    }
    return best;
}

bool check_contended_speedup(double ns_shards8_t8) {
    const char* min_env = std::getenv("SC_HOTPATH_SPEEDUP_MIN");
    const double min_speedup = min_env ? std::atof(min_env) : 2.0;
    const double ns_shards1 = best_hotpath_ns(/*shards=*/1, /*threads=*/8,
                                              /*ops_per_thread=*/1 << 16, /*trials=*/3);
    sc::bench::append_record({"node_hotpath_shards1", 8, ns_shards1, -1.0});
    const double speedup = ns_shards1 / ns_shards8_t8;
    std::printf("contended-speedup: 8 threads shards=1 %.1fns/op shards=8 %.1fns/op "
                "speedup=%.2fx min=%.2fx\n",
                ns_shards1, ns_shards8_t8, speedup, min_speedup);
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores < 4) {
        std::printf("SKIP: contended-speedup gate needs >= 4 cores (have %u); "
                    "the multi-core CI runner enforces it\n", cores);
        return true;
    }
    if (speedup < min_speedup) {
        std::printf("FAIL: sharded cache speedup %.2fx below %.2fx at 8 threads\n", speedup,
                    min_speedup);
        return false;
    }
    return true;
}

bool check_zero_alloc_probe() {
    const auto urls = make_urls(kUrls);
    HotPath hp(/*shards=*/8, urls);
    // The simulator-side probe objects too: an own summary hashing once
    // into the inline index buffer, reused against four peer summaries.
    BloomSummary own(kUrls, {});
    std::vector<BloomSummary> peers;
    for (int p = 0; p < 4; ++p) {
        peers.emplace_back(kUrls, BloomSummaryConfig{});
        for (std::size_t i = static_cast<std::size_t>(p); i < urls.size(); i += 8)
            peers.back().on_insert(urls[i]);
        peers.back().publish();
    }
    // Pre-screen URLs whose probe comes back all-empty: a true positive
    // legitimately allocates the candidate vector, so the zero-alloc claim
    // is about the probe machinery, measured on all-miss probes (the
    // common case — most URLs are nowhere).
    std::vector<const std::string*> screened;
    for (const std::string& url : urls)
        if (hp.node.promising_siblings(url).empty()) screened.push_back(&url);
    if (screened.size() < 256) {
        std::printf("FAIL: only %zu all-miss URLs to measure (expected thousands)\n",
                    screened.size());
        return false;
    }

    constexpr int kRounds = 64;  // revisit each URL: steady state, big sample
    std::uint64_t sink = 0;
#if SC_BENCH_HAVE_BACKTRACE
    {  // warm backtrace()'s lazy libgcc init outside the measured window
        void* warm[2];
        (void)backtrace(warm, 2);
    }
#endif
    const auto start = std::chrono::steady_clock::now();
    const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
    g_capture_stacks.store(true, std::memory_order_relaxed);
    for (int r = 0; r < kRounds; ++r) {
        for (const std::string* url : screened) {
            sink += hp.node.promising_siblings(*url).size();
            const SummaryProbe probe = own.make_probe(*url);
            for (const BloomSummary& peer : peers) sink += peer.predicts(probe) ? 1 : 0;
        }
    }
    g_capture_stacks.store(false, std::memory_order_relaxed);
    const std::uint64_t allocs = g_alloc_count.load(std::memory_order_relaxed) - before;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const double ops = static_cast<double>(screened.size()) * kRounds;
    const double allocs_per_op = static_cast<double>(allocs) / ops;
    const double ns_per_op = secs * 1e9 / ops;
    std::printf("zero-alloc-probe: %.0f probes, %llu allocs (%.6f/op), %.1fns/op "
                "(fp sink=%llu)\n",
                ops, static_cast<unsigned long long>(allocs), allocs_per_op, ns_per_op,
                static_cast<unsigned long long>(sink));
    sc::bench::append_record({"probe_zero_alloc", 1, ns_per_op, allocs_per_op});
    if (allocs != 0) {
        std::printf("FAIL: probe path allocated (%llu allocations over %.0f probes)\n",
                    static_cast<unsigned long long>(allocs), ops);
        dump_captured_stacks();
        return false;
    }
    return true;
}

}  // namespace

int main() {
    // Thread-scaling table for the full request path on the 8-shard cache
    // (the 8-thread row doubles as the speedup gate's numerator).
    double ns_shards8_t8 = 0.0;
    for (const int threads : {1, 2, 4, 8, 16}) {
        const double ns = best_hotpath_ns(/*shards=*/8, threads,
                                          /*ops_per_thread=*/1 << 16,
                                          /*trials=*/threads == 8 ? 3 : 1);
        std::printf("hotpath: shards=8 threads=%-2d %.1fns/op\n", threads, ns);
        sc::bench::append_record({"node_hotpath_shards8", threads, ns, -1.0});
        if (threads == 8) ns_shards8_t8 = ns;
    }

    bool ok = check_contended_speedup(ns_shards8_t8);
    ok = check_zero_alloc_probe() && ok;
    std::printf(ok ? "node_hotpath_bench: OK\n" : "node_hotpath_bench: FAILED\n");
    return ok ? 0 : 1;
}
