// Table IV — UPisa trace replay, experiment 3: each trace client keeps its
// proxy (requests folded onto 80 client processes, 20 per proxy), order
// preserved within the trace. no-ICP vs ICP vs SC-ICP.
//
// Expected shape: ICP and SC-ICP reach nearly the same total hit ratio;
// SC-ICP cuts UDP messages by a factor of tens and most of the protocol
// CPU, and its client latency dips slightly below no-ICP thanks to remote
// hits replacing origin fetches.
#include <cstdio>

#include "repro_common.hpp"
#include "sim/wisconsin.hpp"

namespace {

using namespace sc;

void print_rows(const std::vector<Request>& trace, ReplayAssignment assignment) {
    std::printf("%-8s %10s %10s %11s %10s %10s %12s %11s %11s\n", "Proto", "HitRatio",
                "RemoteHit", "Latency(s)", "UserCPU(s)", "SysCPU(s)", "UDPmsgs", "TCPpkts",
                "TotalPkts");
    BenchRow base;
    for (const BenchProtocol proto :
         {BenchProtocol::no_icp, BenchProtocol::icp, BenchProtocol::sc_icp}) {
        ReplayConfig cfg;
        cfg.protocol = proto;
        cfg.assignment = assignment;
        const BenchRow row = run_replay(cfg, trace);
        std::printf("%-8s %9.1f%% %9.1f%% %11.3f %10.1f %10.1f %12.0f %11.0f %11.0f",
                    row.label.c_str(), 100.0 * row.hit_ratio, 100.0 * row.remote_hit_ratio,
                    row.avg_latency_s, row.user_cpu_s, row.sys_cpu_s, row.udp_msgs,
                    row.tcp_pkts, row.total_pkts);
        if (proto == BenchProtocol::no_icp) {
            base = row;
        } else {
            std::printf("   [UDP x%.0f vs no-ICP, latency %+.1f%%]",
                        row.udp_msgs / base.udp_msgs,
                        100.0 * (row.avg_latency_s / base.avg_latency_s - 1.0));
        }
        std::printf("\n");
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv, 0.25);
    print_header("Table IV: UPisa trace replay, experiment 3 (client-bound assignment)",
                 "Table IV");
    const LoadedTrace trace = load_trace(TraceKind::upisa, scale);
    std::printf("%zu requests, 4 proxies, 80 client processes\n\n", trace.requests.size());
    print_rows(trace.requests, ReplayAssignment::by_client);
    return 0;
}
