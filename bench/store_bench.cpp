// Disk-tier benchmark (plain binary): ns/op for the three operations the
// log-structured store puts on the request path — logged insert, RAM-index
// lookup hit, and the warm-restart recovery scan — printed as a table and
// appended to BENCH_store.json (bench_json.hpp; CI uploads the file as an
// artifact). The one fatal check is correctness, not speed: the store
// reopened after the insert phase must recover exactly the entries the
// first incarnation held, otherwise exit 1 — a perf run that silently
// loses directory entries is not a perf run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "store/log_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ns_since(Clock::time_point start, std::uint64_t ops) {
    const auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - start);
    return ops == 0 ? 0.0 : static_cast<double>(dt.count()) / static_cast<double>(ops);
}

}  // namespace

int main() {
    // Default this binary's records into its own artifact file; an explicit
    // SC_BENCH_JSON (CI) still wins.
    ::setenv("SC_BENCH_JSON", "BENCH_store.json", /*overwrite=*/0);

    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / ("sc_store_bench_" + std::to_string(::getpid()));
    fs::remove_all(dir);

    constexpr std::uint64_t kDocs = 50'000;
    constexpr std::uint64_t kDocBytes = 8'000;
    sc::store::LogStoreConfig cfg;
    cfg.dir = dir.string();
    cfg.capacity_bytes = kDocs * kDocBytes * 2;  // no eviction during the run
    cfg.background_compaction = false;           // measure the foreground path only

    std::vector<std::string> urls;
    urls.reserve(kDocs);
    for (std::uint64_t i = 0; i < kDocs; ++i)
        urls.push_back("http://bench.store/doc" + std::to_string(i));

    double insert_ns = 0.0, lookup_ns = 0.0, recovery_ns = 0.0;
    std::size_t recovered = 0;
    {
        auto store = std::make_unique<sc::store::LogStructuredStore>(cfg);
        const auto t0 = Clock::now();
        for (std::uint64_t i = 0; i < kDocs; ++i) {
            if (!store->insert(urls[i], kDocBytes, /*version=*/1)) {
                std::fprintf(stderr, "store_bench: insert %llu refused\n",
                             static_cast<unsigned long long>(i));
                return 1;
            }
        }
        insert_ns = ns_since(t0, kDocs);

        const auto t1 = Clock::now();
        std::uint64_t hits = 0;
        for (int pass = 0; pass < 4; ++pass)
            for (std::uint64_t i = 0; i < kDocs; ++i)
                hits += store->contains(urls[i]) ? 1 : 0;
        lookup_ns = ns_since(t1, 4 * kDocs);
        if (hits != 4 * kDocs) {
            std::fprintf(stderr, "store_bench: lost entries before restart\n");
            return 1;
        }
    }  // destructor flushes and closes the log

    {
        const auto t2 = Clock::now();
        auto store = std::make_unique<sc::store::LogStructuredStore>(cfg);
        recovery_ns = ns_since(t2, kDocs);
        recovered = store->recovered_entries();
    }
    fs::remove_all(dir);

    if (recovered != kDocs) {
        std::fprintf(stderr, "store_bench: FAIL recovery: %zu of %llu entries\n", recovered,
                     static_cast<unsigned long long>(kDocs));
        return 1;
    }

    std::printf("store_bench: %llu docs, %llu B each\n",
                static_cast<unsigned long long>(kDocs),
                static_cast<unsigned long long>(kDocBytes));
    std::printf("  %-22s %10.1f ns/op\n", "logged insert", insert_ns);
    std::printf("  %-22s %10.1f ns/op\n", "lookup (RAM index)", lookup_ns);
    std::printf("  %-22s %10.1f ns/entry (%.2f Mentries/s)\n", "recovery scan", recovery_ns,
                recovery_ns > 0 ? 1e3 / recovery_ns : 0.0);

    sc::bench::append_record({"store_insert", 1, insert_ns, -1.0});
    sc::bench::append_record({"store_lookup_hit", 1, lookup_ns, -1.0});
    sc::bench::append_record({"store_recovery_scan", 1, recovery_ns, -1.0});
    return 0;
}
