// Design ablation (Section V-D): hash-function family for Bloom summaries.
// The paper recommends MD5 and notes faster alternatives (simple hash +
// random linear transformations; Rabin fingerprints) whose drawback is
// efficient invertibility. This binary measures, per family:
//   * throughput (hash derivations per second on typical URLs),
//   * measured false-positive rate at load factor 8 with k=4,
// confirming the paper's claim that the choice barely moves filter quality
// while MD5's cost is acceptable.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"
#include "bloom/hash_family.hpp"

namespace {

using namespace sc;

std::vector<std::string> make_urls(std::size_t n) {
    std::vector<std::string> urls;
    urls.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        urls.push_back("http://server" + std::to_string(i % 997) +
                       ".example.com/dir/page" + std::to_string(i) + ".html");
    return urls;
}

}  // namespace

int main() {
    std::printf("Hash-family ablation for Bloom summaries (Section V-D)\n");
    std::printf("%-8s %18s %18s %16s %12s\n", "family", "ns/derivation", "derivations/s",
                "measured FP", "invertible?");

    constexpr int n = 8192;
    const HashSpec spec{4, 32, 8 * n};
    const auto urls = make_urls(65'536);
    const double theory = bloom_fp_exact(8.0 * n, n, 4);

    for (const HashFamily family : {HashFamily::md5, HashFamily::linear, HashFamily::rabin}) {
        const auto hasher = make_hasher(family);

        // Throughput: hash every URL once (one derivation = all k indexes).
        std::vector<std::uint32_t> sink;
        const auto start = std::chrono::steady_clock::now();
        for (const auto& url : urls) {
            sink.clear();
            hasher->indexes(url, spec, sink);
        }
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
        const double per = secs / static_cast<double>(urls.size());

        // Quality: measured FP at load factor 8, k=4.
        BloomFilter filter(spec);
        for (int i = 0; i < n; ++i) {
            sink.clear();
            hasher->indexes("member/" + std::to_string(i), spec, sink);
            for (std::uint32_t idx : sink) filter.set_bit(idx, true);
        }
        int fp = 0;
        constexpr int probes = 100'000;
        for (int i = 0; i < probes; ++i) {
            sink.clear();
            hasher->indexes("probe/" + std::to_string(i), spec, sink);
            if (filter.may_contain(std::span<const std::uint32_t>(sink))) ++fp;
        }

        std::printf("%-8s %18.0f %18.0f %15.4f%% %12s\n", hash_family_name(family), per * 1e9,
                    1.0 / per, 100.0 * fp / probes,
                    family == HashFamily::md5 ? "no" : "yes");
    }
    std::printf("\nanalytic FP at this load: %.4f%%. All families should sit near it; only\n"
                "MD5 resists adversarial URL construction (the wire protocol's default).\n",
                100.0 * theory);
    return 0;
}
