// Figure 2 — impact of summary update delays on the total cache hit ratio,
// remote stale hits, and false hits. Summaries are exact directory copies
// (representation-free), caches are 10% of the infinite cache, and the
// update threshold sweeps 0% (no delay) to 10%.
//
// Expected shape: the hit ratio degrades roughly linearly with the
// threshold (at 1% the paper saw 0.02%-1.7% relative degradation; the
// NLANR trace is the outlier because of its duplicate-request anomaly);
// stale hits are flat; false hits are tiny but grow with the threshold.
#include <cstdio>

#include "repro_common.hpp"
#include "sim/share_sim.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Figure 2: impact of summary update delays (exact summaries, cache = 10%)",
                 "Figure 2");

    constexpr double kThresholds[] = {0.0, 0.001, 0.01, 0.02, 0.05, 0.10};

    for (TraceKind kind : kAllTraceKinds) {
        const LoadedTrace trace = load_trace(kind, scale);
        std::printf("\n%s (%u proxies)\n", trace.profile.name.c_str(),
                    trace.profile.proxy_groups);
        std::printf("%-10s %12s %12s %12s %12s\n", "Threshold", "TotalHit", "FalseMiss",
                    "StaleHit", "FalseHit");
        for (const double threshold : kThresholds) {
            ShareSimConfig cfg;
            cfg.num_proxies = trace.profile.proxy_groups;
            cfg.cache_bytes_per_proxy = cache_bytes_per_proxy(trace, 0.10);
            cfg.scheme = SharingScheme::simple;
            cfg.protocol = QueryProtocol::summary;
            cfg.summary_kind = SummaryKind::exact_directory;
            cfg.update_threshold = threshold;
            const auto r = run_share_sim(cfg, trace.requests);
            std::printf("%9.1f%% %11.2f%% %11.3f%% %11.3f%% %11.4f%%\n", 100.0 * threshold,
                        100.0 * r.total_hit_ratio(), 100.0 * r.false_miss_ratio(),
                        100.0 * r.remote_stale_hit_ratio(), 100.0 * r.false_hit_ratio());
        }
    }
    return 0;
}
