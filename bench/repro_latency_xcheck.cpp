// Cross-validation of Table II's latency/CPU story: the same benchmark
// scenario through (a) the closed-form queueing model (wisconsin.cpp) and
// (b) the discrete-event simulator (latency_sim.cpp). The absolute numbers
// differ — the methods make different approximations — but the protocol
// ordering and the rough magnitude of ICP's penalty must agree, which is
// what makes the reproduction trustworthy.
#include <cstdio>

#include "sim/latency_sim.hpp"
#include "sim/wisconsin.hpp"

int main() {
    using namespace sc;
    std::printf("Table II latency cross-check: queueing model vs discrete-event simulation\n");
    std::printf("(120 clients, 4 proxies, 200 requests/client, hit ratio 25%%)\n\n");
    std::printf("%-8s %18s %18s %20s %16s\n", "Proto", "model latency(s)", "event latency(s)",
                "event p-utilization", "event queries");

    for (const BenchProtocol proto :
         {BenchProtocol::no_icp, BenchProtocol::icp, BenchProtocol::sc_icp}) {
        WisconsinConfig cfg;
        cfg.protocol = proto;
        const BenchRow model = run_wisconsin(cfg);
        const LatencySimResult event = run_latency_sim(cfg);
        std::printf("%-8s %18.3f %18.3f %19.1f%% %16llu\n", bench_protocol_name(proto),
                    model.avg_latency_s, event.client_latency_s.mean(),
                    100.0 * event.max_cpu_utilization,
                    static_cast<unsigned long long>(event.queries_sent));
    }
    std::printf("\nBoth methods must rank no-ICP < SC-ICP << ICP on overhead; the paper's\n"
                "measured penalty for ICP was +8-12%% latency with zero remote hits.\n");
    return 0;
}
