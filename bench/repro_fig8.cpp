// Figure 8 — estimated bytes of inter-proxy messages per user request,
// using the Section V-D byte model (70-byte queries; 20 B + 16 B/change
// directory updates; 32 B + 4 B/flip Bloom updates, or the full array when
// smaller). Expected shape: Bloom summaries improve on ICP by 55-64%;
// summary cache trades a continuous stream of small messages for
// occasional bursts of large ones.
#include <cstdio>

#include "repro_summary_sweep.hpp"

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Figure 8: bytes of network messages per request under different summary forms",
                 "Figure 8");
    const auto rows = run_summary_sweep(scale);
    std::printf("%-10s", "Trace");
    for (const auto& e : rows.front().entries) std::printf(" %12s", e.label.c_str());
    std::printf(" %16s\n", "bloom16 vs ICP");
    for (const auto& row : rows) {
        std::printf("%-10s", row.trace.c_str());
        double bloom16 = 0, icp = 0;
        for (const auto& e : row.entries) {
            std::printf(" %12.1f", e.result.message_bytes_per_request());
            if (e.label == "bloom-16") bloom16 = e.result.message_bytes_per_request();
            if (e.label == "ICP") icp = e.result.message_bytes_per_request();
        }
        std::printf(" %14.0f%%\n", icp > 0 ? 100.0 * (1.0 - bloom16 / icp) : 0.0);
    }
    return 0;
}
