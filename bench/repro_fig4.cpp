// Figure 4 — probability of a Bloom filter false positive as a function of
// bits allocated per entry (log scale in the paper): one curve for four
// hash functions, one for the optimal (integral) number of hash functions.
// A Monte-Carlo column cross-checks the analysis with a real filter.
#include <cstdio>

#include "bloom/bloom_filter.hpp"
#include "bloom/bloom_math.hpp"

namespace {

using namespace sc;

double monte_carlo_fp(double bits_per_entry, unsigned k) {
    constexpr int n = 2000;
    const auto table_bits = static_cast<std::uint32_t>(bits_per_entry * n);
    BloomFilter f(HashSpec{static_cast<std::uint16_t>(k), 32, table_bits});
    for (int i = 0; i < n; ++i) f.insert("member" + std::to_string(i));
    int fp = 0;
    constexpr int probes = 100'000;
    for (int i = 0; i < probes; ++i)
        if (f.may_contain("probe" + std::to_string(i))) ++fp;
    return static_cast<double>(fp) / probes;
}

}  // namespace

int main() {
    std::printf("Figure 4: probability of Bloom-filter false positives vs bits/entry\n");
    std::printf("%-12s %14s %14s %10s %16s %16s\n", "Bits/entry", "P(fp) k=4", "MC k=4",
                "optimal k", "P(fp) k=opt", "MC k=opt");
    for (const double r : {2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0, 24.0, 32.0}) {
        const unsigned kopt = bloom_optimal_k(r, 1.0);
        std::printf("%-12.0f %14.6f %14.6f %10u %16.8f %16.8f\n", r, bloom_fp_approx(r, 1, 4),
                    monte_carlo_fp(r, 4), kopt, bloom_fp_approx(r, 1, kopt),
                    monte_carlo_fp(r, kopt));
    }
    std::printf("\nPaper checkpoints: 10 bits/entry -> 1.2%% at k=4, 0.9%% at optimal k=5.\n");
    return 0;
}
