// Figure 6 — ratio of false hits under the different summary
// representations (the paper plots this on a log axis). Expected shape:
// server-name is one-to-two orders of magnitude worse than everything
// else; Bloom false hits fall as the load factor grows; exact-directory's
// false hits come only from update delay. ICP by construction has none.
#include <cstdio>

#include "repro_summary_sweep.hpp"

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Figure 6: ratio of false hits under different summary representations",
                 "Figure 6");
    const auto rows = run_summary_sweep(scale);
    std::printf("%-10s", "Trace");
    for (const auto& e : rows.front().entries) std::printf(" %12s", e.label.c_str());
    std::printf("\n");
    for (const auto& row : rows) {
        std::printf("%-10s", row.trace.c_str());
        for (const auto& e : row.entries)
            std::printf(" %11.4f%%", 100.0 * e.result.false_hit_ratio());
        std::printf("\n");
    }
    return 0;
}
