// Section VIII extension — summary cache between parent and child proxies.
// Classic hierarchies query (or relay through) the parent on every child
// miss; with the parent's summary replicated at the children, only
// promising misses go up. This bench reports the query economy and the
// hit-ratio cost on the Questnet-profile trace (the one trace that is
// actually a parent's view of child proxies), plus the multicast-update
// variant the paper suggests for distribution.
#include <cstdio>

#include "repro_common.hpp"
#include "sim/hierarchy_sim.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Section VIII: parent-child hierarchies with summary cache",
                 "Section VIII discussion");

    const LoadedTrace trace = load_trace(TraceKind::questnet, scale);
    HierarchySimConfig cfg;
    cfg.num_children = 12;
    cfg.child_cache_bytes =
        std::max<std::uint64_t>(1 << 20, trace.infinite_cache_bytes / 20 / cfg.num_children);
    cfg.parent_cache_bytes = cfg.child_cache_bytes * 6;
    cfg.min_update_changes = 350;

    std::printf("%zu requests, %u children, child cache %.1f MB, parent cache %.1f MB\n\n",
                trace.requests.size(), cfg.num_children,
                static_cast<double>(cfg.child_cache_bytes) / (1 << 20),
                static_cast<double>(cfg.parent_cache_bytes) / (1 << 20));
    std::printf("%-22s %10s %10s %10s %12s %12s %12s %12s\n", "protocol", "totalHit",
                "parentHit", "staleHit", "queries/req", "updates/req", "falseHit/req",
                "falseMiss/req");

    const auto print_row = [](const char* label, const HierarchySimResult& r) {
        std::printf("%-22s %9.2f%% %9.2f%% %9.3f%% %12.4f %12.4f %12.4f %12.4f\n", label,
                    100.0 * r.total_hit_ratio(), 100.0 * r.parent_hit_ratio(),
                    100.0 * r.parent_stale_hits / static_cast<double>(r.requests),
                    r.queries_per_request(),
                    static_cast<double>(r.update_messages) / static_cast<double>(r.requests),
                    static_cast<double>(r.false_hits) / static_cast<double>(r.requests),
                    static_cast<double>(r.false_misses) / static_cast<double>(r.requests));
    };

    cfg.protocol = HierarchyProtocol::always_query;
    print_row("always-query (ICP)", run_hierarchy_sim(cfg, trace.requests));

    cfg.protocol = HierarchyProtocol::summary;
    print_row("summary (unicast)", run_hierarchy_sim(cfg, trace.requests));

    cfg.multicast_updates = true;
    print_row("summary (multicast)", run_hierarchy_sim(cfg, trace.requests));

    std::printf("\nChildren bypass the parent when its summary is silent, trading a few\n"
                "false misses for the removal of the per-miss parent round trip.\n");
    return 0;
}
