// Figure 1 — cache hit ratios under the cooperative caching schemes
// (no sharing / simple aka ICP-style / single-copy / global / global 10%
// smaller) at cache sizes 0.5%, 5%, 10%, and 20% of the infinite cache.
//
// The paper's headline observations to look for in the output:
//   * every sharing scheme beats no-sharing by a wide margin,
//   * simple and single-copy sharing match (or beat) the global cache,
//   * a 10%-smaller global cache barely moves the needle.
#include <cstdio>

#include "repro_common.hpp"
#include "sim/share_sim.hpp"

namespace {

using namespace sc;
using namespace sc::bench;

double run_scheme(const LoadedTrace& trace, double fraction, SharingScheme scheme,
                  QueryProtocol protocol, double global_scale = 1.0) {
    ShareSimConfig cfg;
    cfg.num_proxies = trace.profile.proxy_groups;
    cfg.cache_bytes_per_proxy = cache_bytes_per_proxy(trace, fraction);
    cfg.scheme = scheme;
    cfg.protocol = protocol;
    cfg.global_capacity_scale = global_scale;
    return run_share_sim(cfg, trace.requests).total_hit_ratio();
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = parse_scale(argc, argv);
    print_header("Figure 1: hit ratios under different cooperative caching schemes",
                 "Figure 1");

    constexpr double kFractions[] = {0.005, 0.05, 0.10, 0.20};

    for (TraceKind kind : kAllTraceKinds) {
        const LoadedTrace trace = load_trace(kind, scale);
        std::printf("\n%s (%u proxies)\n", trace.profile.name.c_str(),
                    trace.profile.proxy_groups);
        std::printf("%-12s %12s %12s %12s %12s %12s\n", "CacheSize", "NoShare", "Simple",
                    "SingleCopy", "Global", "Global-10%");
        for (const double frac : kFractions) {
            const double none =
                run_scheme(trace, frac, SharingScheme::none, QueryProtocol::none);
            const double simple =
                run_scheme(trace, frac, SharingScheme::simple, QueryProtocol::oracle);
            const double single =
                run_scheme(trace, frac, SharingScheme::single_copy, QueryProtocol::oracle);
            const double global_full =
                run_scheme(trace, frac, SharingScheme::global, QueryProtocol::none);
            const double global_small =
                run_scheme(trace, frac, SharingScheme::global, QueryProtocol::none, 0.9);
            std::printf("%10.1f%% %11.2f%% %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                        100.0 * frac, 100.0 * none, 100.0 * simple, 100.0 * single,
                        100.0 * global_full, 100.0 * global_small);
        }
    }
    std::printf("\nSimple/single-copy use a free oracle for discovery here — Figure 1 "
                "is about hit ratios, not traffic.\n");
    return 0;
}
