// Table V — UPisa trace replay, experiment 4: requests are dealt to the 80
// client processes round-robin regardless of their original client, which
// preserves global timing order and balances proxy load but severs
// client-proxy affinity. Compared with Table IV, remote hits take over a
// bigger share of the total hit ratio — the protocols' economy holds.
#include <cstdio>

#include "repro_common.hpp"
#include "sim/wisconsin.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv, 0.25);
    print_header("Table V: UPisa trace replay, experiment 4 (round-robin assignment)",
                 "Table V");
    const LoadedTrace trace = load_trace(TraceKind::upisa, scale);
    std::printf("%zu requests, 4 proxies, 80 client processes, round-robin\n\n",
                trace.requests.size());

    std::printf("%-8s %10s %10s %11s %10s %10s %12s %11s %11s\n", "Proto", "HitRatio",
                "RemoteHit", "Latency(s)", "UserCPU(s)", "SysCPU(s)", "UDPmsgs", "TCPpkts",
                "TotalPkts");
    BenchRow base;
    for (const BenchProtocol proto :
         {BenchProtocol::no_icp, BenchProtocol::icp, BenchProtocol::sc_icp}) {
        ReplayConfig cfg;
        cfg.protocol = proto;
        cfg.assignment = ReplayAssignment::round_robin;
        const BenchRow row = run_replay(cfg, trace.requests);
        std::printf("%-8s %9.1f%% %9.1f%% %11.3f %10.1f %10.1f %12.0f %11.0f %11.0f",
                    row.label.c_str(), 100.0 * row.hit_ratio, 100.0 * row.remote_hit_ratio,
                    row.avg_latency_s, row.user_cpu_s, row.sys_cpu_s, row.udp_msgs,
                    row.tcp_pkts, row.total_pkts);
        if (proto == BenchProtocol::no_icp) {
            base = row;
        } else {
            std::printf("   [UDP x%.0f vs no-ICP, latency %+.1f%%]",
                        row.udp_msgs / base.udp_msgs,
                        100.0 * (row.avg_latency_s / base.avg_latency_s - 1.0));
        }
        std::printf("\n");
    }
    return 0;
}
