// Section V-F — scalability of summary cache, plus the two design
// ablations DESIGN.md calls out:
//
//  1. The paper's back-of-the-envelope 100-proxy extrapolation, computed
//     from our analytic Bloom formulas (memory per proxy, messages per
//     request).
//  2. A measured sweep of proxy counts on one trace: messages/request for
//     ICP grows with N while summary cache stays nearly flat.
//  3. Counting-filter width ablation: empirical counter saturation for
//     2/3/4-bit counters at the paper's load, justifying "4 bits suffice".
#include <cmath>
#include <cstdio>

#include "bloom/bloom_math.hpp"
#include "bloom/counting_bloom_filter.hpp"
#include "repro_common.hpp"
#include "sim/share_sim.hpp"
#include "util/bytes.hpp"

namespace {

using namespace sc;
using namespace sc::bench;

void analytic_100_proxies() {
    std::printf("\n[1] Analytic extrapolation to 100 proxies of 8 GB each (Section V-F)\n");
    const double docs = 8.0 * 1024 * 1024 * 1024 / (8 * 1024);  // ~1M pages
    const double filter_bits = 16.0 * docs;                     // load factor 16
    const double filter_bytes = filter_bits / 8.0;
    std::printf("  pages per proxy:            %.0fM\n", docs / 1e6);
    std::printf("  filter per proxy (lf 16):   %s\n",
                format_bytes(static_cast<std::uint64_t>(filter_bytes)).c_str());
    std::printf("  99 peer summaries:          %s\n",
                format_bytes(static_cast<std::uint64_t>(99 * filter_bytes)).c_str());
    std::printf("  own 4-bit counters:         %s\n",
                format_bytes(static_cast<std::uint64_t>(filter_bits * 4 / 8)).c_str());
    const double p_fp = bloom_fp_approx(16.0, 1.0, 10);
    const double p_any = 1.0 - std::pow(1.0 - p_fp, 99);
    std::printf("  P(false positive), k=10:    %.5f per summary, %.4f across 99\n", p_fp,
                p_any);
    const double updates_per_request = 99.0 / 10'000.0;  // 1%% of 1M docs = 10k reqs
    std::printf("  update messages/request:    %.4f (1%% threshold)\n", updates_per_request);
    std::printf("  false-hit queries/request:  %.4f\n", p_any);
    std::printf("  => protocol overhead below ~%.2f messages/request for 100 proxies\n",
                updates_per_request + p_any);
}

void measured_proxy_sweep(double scale) {
    std::printf("\n[2] Measured sweep of the proxy count (DEC-profile trace)\n");
    std::printf("%8s %16s %16s %12s %12s\n", "Proxies", "ICP msgs/req", "SC msgs/req",
                "ICP hit", "SC hit");
    TraceProfile profile = standard_profile(TraceKind::dec, scale);
    for (const std::uint32_t n : {4u, 8u, 16u, 32u}) {
        profile.proxy_groups = n;
        const auto trace = TraceGenerator(profile).generate_all();
        InfiniteCacheStats stats;
        for (const Request& r : trace) stats.add_request(r.url, r.size, r.version);
        ShareSimConfig cfg;
        cfg.num_proxies = n;
        cfg.cache_bytes_per_proxy = std::max<std::uint64_t>(
            1024, static_cast<std::uint64_t>(stats.infinite_cache_bytes() * 0.10 / n));
        cfg.scheme = SharingScheme::simple;

        cfg.protocol = QueryProtocol::icp;
        const auto icp = run_share_sim(cfg, trace);
        cfg.protocol = QueryProtocol::summary;
        cfg.summary_kind = SummaryKind::bloom;
        cfg.min_update_changes = 350;  // prototype-style IP-packet batching
        const auto sum = run_share_sim(cfg, trace);
        std::printf("%8u %16.3f %16.3f %11.2f%% %11.2f%%\n", n, icp.messages_per_request(),
                    sum.messages_per_request(), 100.0 * icp.total_hit_ratio(),
                    100.0 * sum.total_hit_ratio());
    }
}

void counter_width_ablation() {
    std::printf("\n[3] Counting-filter width ablation (load factor 16, k=4, 64k docs)\n");
    std::printf("%8s %12s %14s %12s\n", "Bits", "CounterMax", "Saturations", "MaxCounter");
    constexpr std::uint32_t docs = 65'536;
    for (const unsigned bits : {2u, 3u, 4u}) {
        CountingBloomFilter f(HashSpec{4, 32, 16 * docs}, bits);
        for (std::uint32_t i = 0; i < docs; ++i) f.insert("doc" + std::to_string(i));
        std::printf("%8u %12u %14llu %12u\n", bits, f.counter_max(),
                    static_cast<unsigned long long>(f.overflow_events()),
                    static_cast<unsigned>(f.max_counter()));
    }
    std::printf("  Analytic bound Pr[any counter >= 16] = %.3e (paper: minuscule)\n",
                counter_overflow_bound(16.0 * docs, docs, 4, 16));
}

}  // namespace

int main(int argc, char** argv) {
    const double scale = parse_scale(argc, argv, 0.05);
    print_header("Section V-F: scalability of summary cache + design ablations",
                 "Section V-F");
    analytic_100_proxies();
    measured_proxy_sweep(scale);
    counter_width_ablation();
    return 0;
}
