// Figure 5 — total cache hit ratio under the different summary
// representations. Expected shape: Bloom summaries match exact-directory
// almost exactly; server-name can look slightly higher only because its
// flood of false hits masks false misses.
#include <cstdio>

#include "repro_summary_sweep.hpp"

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Figure 5: total hit ratio under different summary representations",
                 "Figure 5");
    const auto rows = run_summary_sweep(scale);
    std::printf("%-10s", "Trace");
    for (const auto& e : rows.front().entries) std::printf(" %12s", e.label.c_str());
    std::printf("\n");
    for (const auto& row : rows) {
        std::printf("%-10s", row.trace.c_str());
        for (const auto& e : row.entries)
            std::printf(" %11.2f%%", 100.0 * e.result.total_hit_ratio());
        std::printf("\n");
    }
    return 0;
}
