// Section III's closing remark, reproduced: "in case of severe load
// imbalance, the global cache will have a better cache hit ratio, and
// therefore it is important to allocate cache size of each proxy to be
// proportional to its user population size and anticipated use."
//
// We build a deliberately imbalanced federation (one proxy serves most of
// the clients) and compare:
//   * equal split        — every proxy gets total/N,
//   * proportional split — capacity follows the observed request share,
//   * global cache       — the upper bound under imbalance.
#include <cstdio>
#include <vector>

#include "repro_common.hpp"
#include "sim/share_sim.hpp"

int main(int argc, char** argv) {
    using namespace sc;
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Section III: load imbalance and cache allocation", "Section III");

    // Skew the client->proxy mapping hard: DEC profile, but clients are
    // Zipf-active, and client_id % N puts the heaviest clients where they
    // fall. To force imbalance we use few proxies and a steep activity
    // skew, then measure the actual per-proxy request shares.
    TraceProfile profile = standard_profile(TraceKind::dec, scale);
    profile.proxy_groups = 4;
    profile.client_zipf_exponent = 1.4;  // a handful of clients dominate
    const auto trace = TraceGenerator(profile).generate_all();

    InfiniteCacheStats inf;
    std::vector<std::uint64_t> requests_per_proxy(profile.proxy_groups, 0);
    for (const Request& r : trace) {
        inf.add_request(r.url, r.size, r.version);
        ++requests_per_proxy[r.client_id % profile.proxy_groups];
    }
    const std::uint64_t total_cache =
        std::max<std::uint64_t>(4 << 20, inf.infinite_cache_bytes() / 10);

    std::printf("request shares per proxy:");
    for (const std::uint64_t n : requests_per_proxy)
        std::printf(" %.1f%%", 100.0 * static_cast<double>(n) / trace.size());
    std::printf("   (total cache budget %.1f MB)\n\n", total_cache / 1048576.0);

    ShareSimConfig cfg;
    cfg.num_proxies = profile.proxy_groups;
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::oracle;

    // Equal split.
    cfg.cache_bytes_per_proxy = total_cache / profile.proxy_groups;
    const auto equal = run_share_sim(cfg, trace);

    // Proportional split.
    cfg.per_proxy_cache_bytes.clear();
    for (const std::uint64_t n : requests_per_proxy)
        cfg.per_proxy_cache_bytes.push_back(std::max<std::uint64_t>(
            1 << 20, total_cache * n / trace.size()));
    const auto proportional = run_share_sim(cfg, trace);

    // Global upper bound.
    ShareSimConfig global_cfg;
    global_cfg.num_proxies = profile.proxy_groups;
    global_cfg.cache_bytes_per_proxy = total_cache / profile.proxy_groups;
    global_cfg.scheme = SharingScheme::global;
    global_cfg.protocol = QueryProtocol::none;
    const auto global = run_share_sim(global_cfg, trace);

    std::printf("%-22s %12s %12s\n", "allocation", "hit ratio", "byte hit");
    std::printf("%-22s %11.2f%% %11.2f%%\n", "equal split", 100 * equal.total_hit_ratio(),
                100 * equal.byte_hit_ratio());
    std::printf("%-22s %11.2f%% %11.2f%%\n", "proportional split",
                100 * proportional.total_hit_ratio(), 100 * proportional.byte_hit_ratio());
    std::printf("%-22s %11.2f%% %11.2f%%\n", "global cache", 100 * global.total_hit_ratio(),
                100 * global.byte_hit_ratio());
    std::printf("\nProportional allocation should close (most of) the gap between the\n"
                "equal split and the global cache, as Section III recommends.\n");
    return 0;
}
