// Table II — overhead of ICP in the four-proxy Wisconsin Proxy Benchmark:
// no-ICP vs ICP vs SC-ICP at inherent hit ratios 25% and 45%, with no
// inter-proxy hits by construction (the worst case for ICP).
//
// Paper bands to compare against (relative to no-ICP):
//   ICP:    UDP msgs x73-90, network pkts +8-13%, user CPU +20-24%,
//           system CPU +7-10%, latency +8-12%.
//   SC-ICP: UDP a factor ~50 below ICP; traffic/CPU/latency near no-ICP.
#include <cstdio>

#include "sim/wisconsin.hpp"

namespace {

using namespace sc;

void print_row(const BenchRow& row, const BenchRow* base) {
    std::printf("%-8s %9.1f%% %11.3f %10.1f %10.1f %12.0f %11.0f %11.0f", row.label.c_str(),
                100.0 * row.hit_ratio, row.avg_latency_s, row.user_cpu_s, row.sys_cpu_s,
                row.udp_msgs, row.tcp_pkts, row.total_pkts);
    if (base != nullptr && base != &row) {
        std::printf("   [UDP x%.0f, userCPU %+.0f%%, sysCPU %+.0f%%, latency %+.1f%%]",
                    row.udp_msgs / base->udp_msgs,
                    100.0 * (row.user_cpu_s / base->user_cpu_s - 1.0),
                    100.0 * (row.sys_cpu_s / base->sys_cpu_s - 1.0),
                    100.0 * (row.avg_latency_s / base->avg_latency_s - 1.0));
    }
    std::printf("\n");
}

}  // namespace

int main() {
    std::printf("Table II: overhead of ICP in the four-proxy case "
                "(Wisconsin Proxy Benchmark replica)\n");
    std::printf("120 clients x 200 requests, Pareto(1.1) sizes, 1 s server delay, "
                "no inter-proxy hits. All figures per proxy.\n\n");

    for (const double hit : {0.25, 0.45}) {
        std::printf("inherent hit ratio %.0f%%\n", 100.0 * hit);
        std::printf("%-8s %10s %11s %10s %10s %12s %11s %11s\n", "Proto", "HitRatio",
                    "Latency(s)", "UserCPU(s)", "SysCPU(s)", "UDPmsgs", "TCPpkts", "TotalPkts");
        WisconsinConfig cfg;
        cfg.inherent_hit_ratio = hit;
        cfg.protocol = BenchProtocol::no_icp;
        const BenchRow base = run_wisconsin(cfg);
        print_row(base, nullptr);
        cfg.protocol = BenchProtocol::icp;
        print_row(run_wisconsin(cfg), &base);
        cfg.protocol = BenchProtocol::sc_icp;
        print_row(run_wisconsin(cfg), &base);
        std::printf("\n");
    }
    return 0;
}
