// Figure 7 — inter-proxy network messages per user request (queries +
// summary updates; the paper plots this on a log axis, with ICP as the
// reference). Expected shape: ICP sits a factor of 25-60 above the Bloom
// and exact-directory summaries; server-name sits in between because its
// false hits generate extra queries; bloom-16 and bloom-32 nearly tie
// (once false hits stop dominating, remote and stale hits set the floor).
#include <cstdio>

#include "repro_summary_sweep.hpp"

int main(int argc, char** argv) {
    using namespace sc::bench;
    const double scale = parse_scale(argc, argv);
    print_header("Figure 7: network messages per request under different summary forms",
                 "Figure 7");
    const auto rows = run_summary_sweep(scale);
    std::printf("%-10s", "Trace");
    for (const auto& e : rows.front().entries) std::printf(" %12s", e.label.c_str());
    std::printf(" %14s\n", "ICP/bloom-16");
    for (const auto& row : rows) {
        std::printf("%-10s", row.trace.c_str());
        double bloom16 = 0, icp = 0;
        for (const auto& e : row.entries) {
            std::printf(" %12.4f", e.result.messages_per_request());
            if (e.label == "bloom-16") bloom16 = e.result.messages_per_request();
            if (e.label == "ICP") icp = e.result.messages_per_request();
        }
        std::printf(" %13.1fx\n", bloom16 > 0 ? icp / bloom16 : 0.0);
    }
    std::printf("\nMessages = queries + summary-update messages (unicast), per the paper's "
                "accounting;\nreplies are tracked separately in the packet-level model.\n");
    return 0;
}
