// Shared scaffolding for the decode-layer fuzz targets (see README.md).
//
// Each target defines the libFuzzer entry point LLVMFuzzerTestOneInput.
// Built two ways:
//
//   * instrumented (-DSC_FUZZ=ON, clang): libFuzzer supplies main() and
//     mutates inputs under ASan+UBSan — the CI fuzz-smoke job runs this
//     for a time-boxed budget per target.
//   * standalone replay (always built, any compiler): SC_FUZZ_STANDALONE
//     selects the main() below, which deterministically replays every file
//     in the argv corpus directories exactly once. The checked-in seed
//     corpus — including every minimized crash reproducer ever found —
//     thus runs as an ordinary ctest case on every build forever.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

#if defined(SC_FUZZ_STANDALONE)

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
    namespace fs = std::filesystem;
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const fs::path p = argv[i];
        std::error_code ec;
        if (fs::is_directory(p, ec)) {
            for (const auto& entry : fs::directory_iterator(p, ec))
                if (entry.is_regular_file(ec)) inputs.push_back(entry.path());
        } else {
            inputs.push_back(p);
        }
    }
    // Sorted so a replay failure names a reproducible position in the run.
    std::sort(inputs.begin(), inputs.end());
    if (inputs.empty()) {
        std::cerr << argv[0] << ": no corpus inputs given\n";
        return 2;
    }
    for (const auto& p : inputs) {
        std::ifstream in(p, std::ios::binary);
        if (!in) {
            std::cerr << argv[0] << ": cannot read " << p << '\n';
            return 2;
        }
        std::string bytes{std::istreambuf_iterator<char>(in),
                          std::istreambuf_iterator<char>()};
        LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                               bytes.size());
    }
    std::cout << argv[0] << ": replayed " << inputs.size() << " input(s)\n";
    return 0;
}

#endif  // SC_FUZZ_STANDALONE
