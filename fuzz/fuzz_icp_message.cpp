// Fuzz target: every ICP decoder over one raw datagram. The proxy feeds
// network bytes straight into these functions; any input must either decode
// or throw WireError — never crash, hang, or allocate absurdly.
#include "fuzz_common.hpp"

#include <span>

#include "icp/icp_message.hpp"

namespace {

template <typename Fn>
void must_only_throw_wire_error(Fn&& fn) {
    try {
        fn();
    } catch (const sc::WireError&) {
    }
    // Any other exception type (or a signal) escapes and fails the run.
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::span<const std::uint8_t> datagram(data, size);
    must_only_throw_wire_error([&] { (void)sc::decode_header(datagram); });
    must_only_throw_wire_error([&] { (void)sc::decode_query(datagram); });
    must_only_throw_wire_error([&] { (void)sc::decode_reply(datagram); });
    must_only_throw_wire_error([&] { (void)sc::decode_hit_obj(datagram); });
    must_only_throw_wire_error([&] { (void)sc::decode_dirupdate(datagram); });
    must_only_throw_wire_error([&] { (void)sc::decode_dirreq(datagram); });
    return 0;
}
