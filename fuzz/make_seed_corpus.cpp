// Regenerates the checked-in seed corpora under fuzz/corpus/<target>/.
//
//   sc_make_fuzz_corpus <corpus-root>
//
// Seeds are built with the real encoders so they start deep inside the
// decoders' happy path, plus targeted malformations mirroring the
// hardening suites (tests/icp/icp_decode_hardening_test.cpp and friends)
// so the fuzzers begin at the trust boundary instead of rediscovering it.
// Deterministic by construction: re-running must reproduce identical files
// (the corpora are committed; drift would churn the tree).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "icp/icp_message.hpp"
#include "store/segment_log.hpp"
#include "util/byte_writer.hpp"

namespace fs = std::filesystem;
using namespace sc;

namespace {

void write_seed(const fs::path& dir, const std::string& name,
                std::string_view bytes) {
    fs::create_directories(dir);
    std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!out) {
        std::cerr << "cannot write " << (dir / name) << '\n';
        std::exit(2);
    }
}

std::string as_string(const std::vector<std::uint8_t>& v) {
    return {reinterpret_cast<const char*>(v.data()), v.size()};
}

/// [len:u16be][datagram] framing for the reassembly target's input grammar.
std::string framed(const std::vector<std::vector<std::uint8_t>>& datagrams) {
    std::string out;
    for (const auto& d : datagrams) {
        out.push_back(static_cast<char>(d.size() >> 8));
        out.push_back(static_cast<char>(d.size() & 0xFF));
        out.append(reinterpret_cast<const char*>(d.data()), d.size());
    }
    return out;
}

IcpDirUpdate delta_update(std::uint32_t seq, std::uint32_t boot = 0xB007) {
    IcpDirUpdate u;
    u.request_number = seq;
    u.sender_host = 7;
    u.boot_id = boot;
    u.spec = HashSpec{4, 10, 1024};
    u.records = {5, 9, (1u << 31) | 700};
    return u;
}

IcpDirUpdate full_update(std::uint32_t table_bits, std::uint32_t word_offset,
                         std::vector<std::uint32_t> words) {
    IcpDirUpdate u;
    u.request_number = 1;
    u.sender_host = 7;
    u.boot_id = 0xB007;
    u.full = true;
    u.word_offset = word_offset;
    u.spec = HashSpec{4, 10, table_bits};
    u.bitmap_words = std::move(words);
    return u;
}

void icp_message_seeds(const fs::path& dir) {
    write_seed(dir, "query", as_string(encode_query(
        {7, 0x0A000001, 0x0A000002, "http://example.com/a"})));
    IcpReply hit;
    hit.opcode = IcpOpcode::hit;
    hit.request_number = 7;
    hit.url = "http://example.com/a";
    write_seed(dir, "reply_hit", as_string(encode_reply(hit)));
    IcpReply probe;
    probe.opcode = IcpOpcode::secho;
    probe.options = 8081;  // advertised HTTP port
    write_seed(dir, "secho_probe", as_string(encode_reply(probe)));
    IcpHitObj obj;
    obj.request_number = 9;
    obj.url = "http://example.com/small";
    obj.version = 3;
    obj.object = {'d', 'o', 'c'};
    write_seed(dir, "hit_obj", as_string(encode_hit_obj(obj)));
    write_seed(dir, "dirupdate_delta", as_string(encode_dirupdate(delta_update(1))));
    write_seed(dir, "dirfull", as_string(encode_dirupdate(
        full_update(64, 0, {0x1, 0x80000000u}))));
    IcpDirReq req;
    req.request_number = 2;
    req.http_port = 8080;
    write_seed(dir, "dirreq_plain", as_string(encode_dirreq(req)));
    req.subject_id = 42;
    req.subject_icp_host = 0x0A000003;
    req.subject_icp_port = 3130;
    req.subject_http_port = 8080;
    write_seed(dir, "dirreq_introduction", as_string(encode_dirreq(req)));

    // Malformations mirroring the hardening suite (regression anchors).
    auto bad = encode_query({7, 1, 2, "http://example.com/a"});
    bad[0] = 0;  // ICP_OP_INVALID
    write_seed(dir, "crash_op_invalid", as_string(bad));
    bad = encode_query({7, 1, 2, "http://example.com/a"});
    bad[3] ^= 0x01;  // length-field lie
    write_seed(dir, "crash_length_lie", as_string(bad));
    bad = encode_dirupdate(delta_update(1));
    bad[8] = bad[9] = bad[10] = bad[11] = 0;  // boot_id 0
    write_seed(dir, "crash_zero_boot", as_string(bad));
    auto slack = full_update(40, 0, {0x1, 0x100});  // bit 40 of a 40-bit table
    write_seed(dir, "crash_tail_slack", as_string(encode_dirupdate(slack)));
    const auto query = encode_query({7, 1, 2, "http://example.com/a"});
    write_seed(dir, "crash_truncated",
               as_string(query).substr(0, kIcpHeaderBytes - 1));
}

void dirfull_reassembly_seeds(const fs::path& dir) {
    write_seed(dir, "single_full", framed({encode_dirupdate(
        full_update(64, 0, {0x1, 0x2}))}));
    write_seed(dir, "two_chunks", framed({
        encode_dirupdate(full_update(64, 0, {0x1})),
        encode_dirupdate(full_update(64, 1, {0x2}))}));
    write_seed(dir, "full_then_delta", framed({
        encode_dirupdate(full_update(1024, 0,
            std::vector<std::uint32_t>(32, 0u))),
        encode_dirupdate(delta_update(1))}));
    write_seed(dir, "delta_gap", framed({
        encode_dirupdate(full_update(1024, 0,
            std::vector<std::uint32_t>(32, 0u))),
        encode_dirupdate(delta_update(5))}));  // sequence jump: quarantine
    write_seed(dir, "boot_flip", framed({
        encode_dirupdate(delta_update(1, 0xB007)),
        encode_dirupdate(delta_update(2, 0xB008))}));  // restart mid-stream
    auto torn = framed({encode_dirupdate(delta_update(1))});
    torn.resize(torn.size() - 3);
    write_seed(dir, "torn_frame", torn);
}

void http_session_seeds(const fs::path& dir) {
    write_seed(dir, "lite_line", "GET http://host/x 3 256\n");
    write_seed(dir, "http_get",
               "GET /doc?size=128&version=7 HTTP/1.1\r\nHost: example\r\n\r\n");
    write_seed(dir, "http10_close", "GET /x HTTP/1.0\r\n\r\n");
    write_seed(dir, "connection_negotiation",
               "GET /x HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n");
    write_seed(dir, "admin_metrics", "GET /__metrics HTTP/1.1\r\n\r\n");
    write_seed(dir, "crash_bad_version", "GET / HTTP/2.0\r\n");
    write_seed(dir, "crash_space_target", "GET /a b HTTP/1.1\r\n\r\n");
    write_seed(dir, "crash_huge_size",
               "GET /doc?size=18446744073709551617 HTTP/1.1\r\n\r\n");
    write_seed(dir, "pipelined",
               "GET http://host/a 0 8\nGET http://host/b 0 8\n");
}

void segment_scan_seeds(const fs::path& dir) {
    using namespace sc::store;
    std::string header;
    util::append_u32le(header, kSegmentMagic);
    util::append_u32le(header, kSegmentFormatVersion);
    util::append_u64le(header, 9);

    Record rec;
    rec.type = RecordType::insert;
    rec.seq = 1;
    rec.size = 1200;
    rec.version = 1;
    rec.url = "http://e/x";

    std::string clean = header;
    encode_record(clean, rec);
    rec.seq = 2;
    rec.type = RecordType::touch;
    encode_record(clean, rec);
    write_seed(dir, "clean_two_records", clean);

    std::string torn = clean;
    torn.resize(torn.size() - 5);
    write_seed(dir, "torn_tail", torn);

    std::string zero_seq = header;
    rec.seq = 0;
    encode_record(zero_seq, rec);
    write_seed(dir, "crash_zero_seq", zero_seq);

    std::string bad_url = header;
    rec.seq = 3;
    rec.url = "http://e/\na";
    encode_record(bad_url, rec);
    write_seed(dir, "crash_control_url", bad_url);

    std::string bad_magic = clean;
    bad_magic[0] = 'X';
    write_seed(dir, "bad_magic", bad_magic);

    write_seed(dir, "empty", "");
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::cerr << "usage: sc_make_fuzz_corpus <corpus-root>\n";
        return 2;
    }
    const fs::path root = argv[1];
    icp_message_seeds(root / "fuzz_icp_message");
    dirfull_reassembly_seeds(root / "fuzz_dirfull_reassembly");
    http_session_seeds(root / "fuzz_http_session");
    segment_scan_seeds(root / "fuzz_segment_scan");
    std::cout << "seed corpora written under " << root << '\n';
    return 0;
}
