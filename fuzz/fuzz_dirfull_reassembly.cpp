// Fuzz target: the DIRUPDATE/DIRFULL ingest path end to end — decode, then
// apply to a SummaryCacheNode, exercising sequence tracking, quarantine,
// and chunked full-bitmap reassembly against adversarial chunk sequences
// (overlaps, restarts, spec switches mid-reassembly, hostile specs).
//
// Input grammar: a stream of [len:u16be][datagram bytes] frames, each fed
// through decode_dirupdate (WireError drops the frame, as the proxy's
// receive path would) and applied to one fresh node per run.
#include "fuzz_common.hpp"

#include <cstdlib>
#include <span>

#include "core/summary_cache_node.hpp"
#include "icp/icp_message.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    sc::SummaryCacheNodeConfig config;
    config.node_id = 1;
    config.boot_id = 0x5EED;  // pinned: replay must be deterministic
    sc::SummaryCacheNode node(config);

    std::span<const std::uint8_t> stream(data, size);
    while (stream.size() >= 2) {
        const std::size_t len = (static_cast<std::size_t>(stream[0]) << 8) | stream[1];
        stream = stream.subspan(2);
        if (len > stream.size()) break;
        const auto datagram = stream.first(len);
        stream = stream.subspan(len);
        try {
            const sc::IcpDirUpdate update = sc::decode_dirupdate(datagram);
            const auto result = node.apply_sibling_update(update);
            // A committed replica must be probeable; a withheld one must
            // report needs-resync. Either way the node stays consistent.
            if (result == sc::SummaryApplyResult::applied &&
                node.sibling_needs_resync(update.sender_host))
                std::abort();
        } catch (const sc::WireError&) {
            // Malformed frame: dropped, the stream continues.
        }
    }
    return 0;
}
