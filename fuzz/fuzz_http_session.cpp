// Fuzz target: the HTTP/lite session parser over an arbitrary byte stream,
// split into lines exactly the way TcpConnection::buffered_line would
// deliver them. The parser is pure state and must never throw or crash;
// every completed request must satisfy the front-door hygiene bounds.
#include "fuzz_common.hpp"

#include <cstdlib>
#include <string_view>

#include "proto/http_session.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    std::string_view stream(reinterpret_cast<const char*>(data), size);
    sc::HttpSessionParser parser;
    while (!stream.empty()) {
        const auto nl = stream.find('\n');
        std::string_view line = stream.substr(0, nl);
        stream = nl == std::string_view::npos ? std::string_view{}
                                              : stream.substr(nl + 1);
        if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
        const auto request = parser.on_line(line);
        if (!request) continue;
        // A non-error HTTP-grammar request passed target hygiene, so its
        // URL can never exceed the wire cap the ICP layer enforces.
        if (request->http_style && !request->parse_error && !request->admin &&
            request->req.url.size() > sc::kMaxTargetBytes)
            std::abort();
    }
    return 0;
}
