// Fuzz target: the segment-log recovery scanner over an arbitrary file
// image. scan_segment_bytes must never throw or crash, and its framing
// invariants must hold for any input — they are asserted here so a logic
// bug aborts the fuzz run instead of slipping through as a weird result.
#include "fuzz_common.hpp"

#include <cstdlib>
#include <string_view>

#include "store/segment_log.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
    const std::string_view image(reinterpret_cast<const char*>(data), size);
    const sc::store::ScanResult scan = sc::store::scan_segment_bytes(image);

    // Framing invariants (recovery truncates at valid_bytes; a wrong offset
    // would eat good records or resurrect torn ones on the next boot).
    if (scan.valid_bytes > image.size()) std::abort();
    if (!scan.header_ok && !scan.records.empty()) std::abort();
    if (scan.header_ok) {
        if (scan.valid_bytes < sc::store::kSegmentHeaderBytes) std::abort();
        if (scan.torn != (scan.valid_bytes < image.size())) std::abort();
    }
    for (const sc::store::Record& rec : scan.records) {
        // Every surviving record must satisfy the checked-decode bounds.
        if (rec.seq == 0) std::abort();
        if (rec.size > sc::store::kMaxRecordSizeBytes) std::abort();
        if (rec.url.empty() || rec.url.size() > sc::store::kMaxUrlBytes) std::abort();
    }
    return 0;
}
