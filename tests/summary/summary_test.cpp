#include "summary/summary.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "summary/bloom_summary.hpp"
#include "summary/exact_directory.hpp"
#include "summary/message_costs.hpp"
#include "summary/server_name.hpp"

namespace sc {
namespace {

// ---- behaviour common to all representations (parameterized) -------------

class SummaryKindTest : public ::testing::TestWithParam<SummaryKind> {
protected:
    std::unique_ptr<DirectorySummary> make(std::uint64_t expected_docs = 1024) const {
        return make_summary(GetParam(), expected_docs);
    }
};

TEST_P(SummaryKindTest, PublishedViewLagsUntilPublish) {
    auto s = make();
    s->on_insert("http://host1/a");
    EXPECT_TRUE(s->current_may_contain("http://host1/a"));
    EXPECT_FALSE(s->published_may_contain("http://host1/a"));
    EXPECT_GT(s->publish(), 0u);
    EXPECT_TRUE(s->published_may_contain("http://host1/a"));
}

TEST_P(SummaryKindTest, NoFalseNegativesOnPublishedMembers) {
    auto s = make();
    for (int i = 0; i < 300; ++i) s->on_insert("http://h" + std::to_string(i / 10) + "/d" + std::to_string(i));
    (void)s->publish();
    for (int i = 0; i < 300; ++i)
        ASSERT_TRUE(s->published_may_contain("http://h" + std::to_string(i / 10) + "/d" +
                                             std::to_string(i)));
}

TEST_P(SummaryKindTest, PublishWithNothingPendingCostsNothing) {
    auto s = make();
    EXPECT_EQ(s->publish(), 0u);
    s->on_insert("x");
    (void)s->publish();
    EXPECT_EQ(s->publish(), 0u);  // nothing new since last publish
}

TEST_P(SummaryKindTest, DeletedDocsEventuallyLeaveThePublishedView) {
    auto s = make();
    s->on_insert("http://gone/a");
    (void)s->publish();
    s->on_erase("http://gone/a");
    (void)s->publish();
    // Exact and server-name views must drop it; Bloom may keep spurious
    // bits from collisions, but with a single key there are none.
    EXPECT_FALSE(s->published_may_contain("http://gone/a"));
}

TEST_P(SummaryKindTest, MemoryAccountingIsPositive) {
    auto s = make();
    for (int i = 0; i < 50; ++i) s->on_insert("http://h/d" + std::to_string(i));
    EXPECT_GT(s->replica_memory_bytes(), 0u);
    EXPECT_GT(s->owner_memory_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SummaryKindTest,
                         ::testing::Values(SummaryKind::exact_directory,
                                           SummaryKind::server_name, SummaryKind::bloom),
                         [](const auto& info) {
                             return std::string(summary_kind_name(info.param)) == "exact-directory"
                                        ? "exact"
                                        : std::string(summary_kind_name(info.param)) ==
                                                  "server-name"
                                              ? "server"
                                              : "bloom";
                         });

// ---- exact directory ------------------------------------------------------

TEST(ExactDirectory, SixteenBytesPerDocument) {
    ExactDirectorySummary s;
    for (int i = 0; i < 100; ++i) s.on_insert("u" + std::to_string(i));
    EXPECT_EQ(s.replica_memory_bytes(), 1600u);
}

TEST(ExactDirectory, UpdateMessageByteModel) {
    ExactDirectorySummary s;
    s.on_insert("a");
    s.on_insert("b");
    s.on_erase("a");
    // 3 changes at 16 bytes plus the 20-byte header.
    EXPECT_EQ(s.pending_changes(), 3u);
    EXPECT_EQ(s.publish(), kDirectoryUpdateHeaderBytes + 3 * kDirectoryUpdatePerChangeBytes);
}

TEST(ExactDirectory, NoRepresentationFalsePositives) {
    ExactDirectorySummary s;
    for (int i = 0; i < 1000; ++i) s.on_insert("in/" + std::to_string(i));
    (void)s.publish();
    for (int i = 0; i < 1000; ++i)
        ASSERT_FALSE(s.published_may_contain("out/" + std::to_string(i)));
}

TEST(ExactDirectory, DuplicateInsertIsSingleChange) {
    ExactDirectorySummary s;
    s.on_insert("a");
    s.on_insert("a");
    EXPECT_EQ(s.pending_changes(), 1u);
}

// ---- server name -----------------------------------------------------------

TEST(ServerName, AllUrlsOnListedServerProbeAsHits) {
    ServerNameSummary s;
    s.on_insert("http://popular.com/page1");
    (void)s.publish();
    // The paper's failure mode: any URL on the host looks cached.
    EXPECT_TRUE(s.published_may_contain("http://popular.com/other-page"));
    EXPECT_FALSE(s.published_may_contain("http://elsewhere.com/page1"));
}

TEST(ServerName, RefcountKeepsHostWhileAnyDocRemains) {
    ServerNameSummary s;
    s.on_insert("http://h.com/a");
    s.on_insert("http://h.com/b");
    s.on_erase("http://h.com/a");
    (void)s.publish();
    EXPECT_TRUE(s.published_may_contain("http://h.com/anything"));
    s.on_erase("http://h.com/b");
    (void)s.publish();
    EXPECT_FALSE(s.published_may_contain("http://h.com/anything"));
}

TEST(ServerName, DistinctServersCounted) {
    ServerNameSummary s;
    for (int i = 0; i < 30; ++i)
        s.on_insert("http://host" + std::to_string(i % 3) + "/d" + std::to_string(i));
    EXPECT_EQ(s.distinct_servers(), 3u);
    EXPECT_EQ(s.replica_memory_bytes(), 3u * 16u);
}

TEST(ServerName, EraseUntrackedIsNoop) {
    ServerNameSummary s;
    s.on_erase("http://never/a");
    EXPECT_EQ(s.pending_changes(), 0u);
}

// ---- bloom -----------------------------------------------------------------

TEST(BloomSummaryTest, TableSizedByLoadFactor) {
    EXPECT_EQ(bloom_table_bits(1000, 8), 8000u);  // already a multiple of 64
    EXPECT_EQ(bloom_table_bits(1000, 16), 16000u % 64 == 0 ? 16000u : (16000u + 63) / 64 * 64);
    EXPECT_EQ(bloom_table_bits(1, 1), 64u);  // floor
    EXPECT_EQ(bloom_table_bits(100, 10) % 64, 0u);
}

TEST(BloomSummaryTest, ReplicaMemoryIsLoadFactorOverEight) {
    BloomSummaryConfig cfg;
    cfg.load_factor = 8;
    const BloomSummary s(1024, cfg);
    // 8 bits/doc over 1024 docs = an 8192-bit array = 1024 bytes.
    EXPECT_EQ(s.replica_memory_bytes(), 1024u);
    // Owner additionally holds 4-bit counters: 8192 * 4/8 + the bit array.
    EXPECT_EQ(s.owner_memory_bytes(), 8192u * 4u / 8u + 1024u);
}

TEST(BloomSummaryTest, PublishCostIsPerFlip) {
    BloomSummary s(1024, BloomSummaryConfig{});
    s.on_insert("http://x/1");  // <= 4 bit flips
    const std::uint64_t bytes = s.publish();
    EXPECT_GE(bytes, kBloomUpdateHeaderBytes + kBloomUpdatePerFlipBytes);
    EXPECT_LE(bytes, kBloomUpdateHeaderBytes + 4 * kBloomUpdatePerFlipBytes);
}

TEST(BloomSummaryTest, PublishPrefersFullArrayWhenDeltaHuge) {
    BloomSummaryConfig cfg;
    cfg.load_factor = 8;
    BloomSummary s(64, cfg);  // 512-bit table = 64 bytes full
    for (int i = 0; i < 200; ++i) s.on_insert("k" + std::to_string(i));
    const std::uint64_t bytes = s.publish();
    EXPECT_LE(bytes, kBloomUpdateHeaderBytes + 64);  // capped at the full array
}

TEST(BloomSummaryTest, FalsePositiveRateTracksLoadFactor) {
    const auto measure = [](std::uint32_t lf) {
        BloomSummaryConfig cfg;
        cfg.load_factor = lf;
        BloomSummary s(2000, cfg);
        for (int i = 0; i < 2000; ++i) s.on_insert("in/" + std::to_string(i));
        (void)s.publish();
        int fp = 0;
        constexpr int probes = 30'000;
        for (int i = 0; i < probes; ++i)
            if (s.published_may_contain("out/" + std::to_string(i))) ++fp;
        return static_cast<double>(fp) / probes;
    };
    const double fp8 = measure(8);
    const double fp16 = measure(16);
    const double fp32 = measure(32);
    EXPECT_GT(fp8, fp16);
    EXPECT_GT(fp16, fp32);
    EXPECT_NEAR(fp8, 0.024, 0.015);  // theory ~2.4% at k=4, lf=8
    EXPECT_LT(fp32, 0.005);
}

TEST(BloomSummaryTest, EraseCleansPublishedBitsAfterPublish) {
    BloomSummary s(512, BloomSummaryConfig{});
    s.on_insert("a");
    s.on_insert("b");
    (void)s.publish();
    s.on_erase("a");
    (void)s.publish();
    EXPECT_FALSE(s.published_may_contain("a"));
    EXPECT_TRUE(s.published_may_contain("b"));
}

TEST(SummaryFactory, KindNamesAndDispatch) {
    EXPECT_STREQ(summary_kind_name(SummaryKind::bloom), "bloom");
    EXPECT_STREQ(summary_kind_name(SummaryKind::exact_directory), "exact-directory");
    EXPECT_STREQ(summary_kind_name(SummaryKind::server_name), "server-name");
    EXPECT_EQ(make_summary(SummaryKind::bloom, 100)->kind(), SummaryKind::bloom);
    EXPECT_EQ(make_summary(SummaryKind::exact_directory, 100)->kind(),
              SummaryKind::exact_directory);
    EXPECT_EQ(make_summary(SummaryKind::server_name, 100)->kind(), SummaryKind::server_name);
}

}  // namespace
}  // namespace sc
