#include "summary/update_policy.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

// The publish-decision behavior itself (threshold / interval / packet
// floor) is covered by tests/core/delta_batcher_test.cpp; these tests pin
// the closed-form conversions between the two §V-A parameterizations.

TEST(UpdatePolicy, IntervalThresholdConversionRoundTrip) {
    // 300 seconds at 50 req/s with 60% misses over 90,000 cached docs.
    const double f = interval_to_threshold(300.0, 50.0, 0.6, 90'000.0);
    EXPECT_NEAR(f, 0.1, 1e-12);
    EXPECT_NEAR(threshold_to_interval(f, 50.0, 0.6, 90'000.0), 300.0, 1e-9);
}

TEST(UpdatePolicy, PaperScaleSanity) {
    // Section V-A: thresholds of 1%-10% correspond to roughly 300-3000
    // requests between updates for the paper's traces. With a 10%-of-
    // infinite cache holding ~30k docs and a ~60% miss ratio, a 1%
    // threshold is ~300 new docs => ~500 requests. Same order of magnitude.
    const double interval_reqs =
        0.01 * 30'000 / 0.6;  // new docs needed / new docs per request
    EXPECT_GT(interval_reqs, 300.0);
    EXPECT_LT(interval_reqs, 3000.0);
}

TEST(UpdatePolicy, DegenerateConversions) {
    EXPECT_EQ(interval_to_threshold(10, 50, 0.5, 0.0), 1.0);  // empty cache
    EXPECT_EQ(threshold_to_interval(0.01, 0.0, 0.5, 1000), 0.0);
}

}  // namespace
}  // namespace sc
