#include "summary/update_policy.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(UpdatePolicy, NoChangesNoPublish) {
    UpdateThresholdPolicy p(0.01);
    EXPECT_FALSE(p.should_publish(1000));
}

TEST(UpdatePolicy, PublishesAtThreshold) {
    UpdateThresholdPolicy p(0.01);  // 1% of 1000 docs = 10 new docs
    for (int i = 0; i < 9; ++i) p.on_new_document();
    EXPECT_FALSE(p.should_publish(1000));
    p.on_new_document();
    EXPECT_TRUE(p.should_publish(1000));
}

TEST(UpdatePolicy, ZeroFractionPublishesEveryChange) {
    UpdateThresholdPolicy p(0.0);
    EXPECT_FALSE(p.should_publish(100));  // nothing changed yet
    p.on_new_document();
    EXPECT_TRUE(p.should_publish(100));
}

TEST(UpdatePolicy, ResetAfterPublish) {
    UpdateThresholdPolicy p(0.1);
    for (int i = 0; i < 20; ++i) p.on_new_document();
    EXPECT_TRUE(p.should_publish(100));
    p.on_published();
    EXPECT_EQ(p.unreflected(), 0u);
    EXPECT_FALSE(p.should_publish(100));
}

TEST(UpdatePolicy, SmallerDirectoryTriggersSooner) {
    UpdateThresholdPolicy p(0.05);
    p.on_new_document();
    EXPECT_TRUE(p.should_publish(10));    // 1 >= 0.5
    EXPECT_FALSE(p.should_publish(100));  // 1 < 5
}

TEST(UpdatePolicy, IntervalThresholdConversionRoundTrip) {
    // 300 seconds at 50 req/s with 60% misses over 90,000 cached docs.
    const double f = interval_to_threshold(300.0, 50.0, 0.6, 90'000.0);
    EXPECT_NEAR(f, 0.1, 1e-12);
    EXPECT_NEAR(threshold_to_interval(f, 50.0, 0.6, 90'000.0), 300.0, 1e-9);
}

TEST(UpdatePolicy, PaperScaleSanity) {
    // Section V-A: thresholds of 1%-10% correspond to roughly 300-3000
    // requests between updates for the paper's traces. With a 10%-of-
    // infinite cache holding ~30k docs and a ~60% miss ratio, a 1%
    // threshold is ~300 new docs => ~500 requests. Same order of magnitude.
    const double interval_reqs =
        0.01 * 30'000 / 0.6;  // new docs needed / new docs per request
    EXPECT_GT(interval_reqs, 300.0);
    EXPECT_LT(interval_reqs, 3000.0);
}

TEST(UpdatePolicy, DegenerateConversions) {
    EXPECT_EQ(interval_to_threshold(10, 50, 0.5, 0.0), 1.0);  // empty cache
    EXPECT_EQ(threshold_to_interval(0.01, 0.0, 0.5, 1000), 0.0);
}

}  // namespace
}  // namespace sc
