// sc::obs trace ring: overwrite-oldest semantics, drain-marks-consumed,
// multi-thread merge ordering, and the JSON rendering.
#include "obs/trace_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sc::obs {
namespace {

TEST(TraceRing, RecordsAndDrainsInOrder) {
    TraceRing ring(16);
    ring.record(TraceEventType::remote_hit, 1, 10);
    ring.record(TraceEventType::icp_timeout, 1, 20);
    ring.record(TraceEventType::sibling_dead, 2, 30);
    const auto events = ring.drain();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].type, TraceEventType::remote_hit);
    EXPECT_EQ(events[0].a, 10u);
    EXPECT_EQ(events[1].type, TraceEventType::icp_timeout);
    EXPECT_EQ(events[2].type, TraceEventType::sibling_dead);
    EXPECT_EQ(events[2].node, 2u);
    // Monotonic timestamps.
    EXPECT_LE(events[0].ns, events[1].ns);
    EXPECT_LE(events[1].ns, events[2].ns);
}

TEST(TraceRing, DrainMarksEventsConsumed) {
    TraceRing ring(16);
    ring.record(TraceEventType::remote_hit, 1);
    EXPECT_EQ(ring.drain().size(), 1u);
    EXPECT_TRUE(ring.drain().empty());
    ring.record(TraceEventType::remote_hit, 1);
    EXPECT_EQ(ring.drain().size(), 1u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
    constexpr std::size_t kCap = 8;
    TraceRing ring(kCap);
    // Write capacity + k events; the drain must return exactly the last
    // kCap, in recording order.
    constexpr std::uint64_t kTotal = kCap + 5;
    for (std::uint64_t i = 0; i < kTotal; ++i)
        ring.record(TraceEventType::false_positive_probe, 1, i);
    const auto events = ring.drain();
    ASSERT_EQ(events.size(), kCap);
    for (std::size_t i = 0; i < kCap; ++i)
        EXPECT_EQ(events[i].a, kTotal - kCap + i) << "slot " << i;
}

TEST(TraceRing, OverwriteAfterPartialDrainStillClipsToCapacity) {
    constexpr std::size_t kCap = 4;
    TraceRing ring(kCap);
    ring.record(TraceEventType::remote_hit, 1, 0);
    EXPECT_EQ(ring.drain().size(), 1u);
    // Lap the ring twice past the drained watermark.
    for (std::uint64_t i = 1; i <= 2 * kCap + 1; ++i)
        ring.record(TraceEventType::remote_hit, 1, i);
    const auto events = ring.drain();
    ASSERT_EQ(events.size(), kCap);
    EXPECT_EQ(events.front().a, 2 * kCap + 1 - (kCap - 1));
    EXPECT_EQ(events.back().a, 2 * kCap + 1);
}

TEST(TraceRing, ClearDropsUndrained) {
    TraceRing ring(16);
    ring.record(TraceEventType::remote_hit, 1);
    ring.clear();
    EXPECT_TRUE(ring.drain().empty());
}

TEST(TraceRing, DisabledRingRecordsNothing) {
    TraceRing ring(16);
    ring.set_enabled(false);
    ring.record(TraceEventType::remote_hit, 1);
    EXPECT_TRUE(ring.drain().empty());
    ring.set_enabled(true);
    ring.record(TraceEventType::remote_hit, 1);
    EXPECT_EQ(ring.drain().size(), 1u);
}

TEST(TraceRing, MergesPerThreadBuffersByTimestamp) {
    TraceRing ring(1024);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 200;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&ring, t] {
            for (int i = 0; i < kPerThread; ++i)
                ring.record(TraceEventType::summary_update_applied,
                            static_cast<std::uint16_t>(t), static_cast<std::uint64_t>(i));
        });
    }
    for (auto& t : threads) t.join();
    const auto events = ring.drain();
    ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
    // Global order is by timestamp; each thread's own events must still
    // appear in their recording order.
    std::vector<std::uint64_t> next_a(kThreads, 0);
    for (std::size_t i = 1; i < events.size(); ++i) EXPECT_LE(events[i - 1].ns, events[i].ns);
    for (const TraceEvent& e : events) {
        EXPECT_EQ(e.a, next_a[e.node]) << "thread " << e.node;
        ++next_a[e.node];
    }
}

TEST(TraceRing, JsonRendering) {
    std::vector<TraceEvent> events(1);
    events[0].ns = 12345;
    events[0].type = TraceEventType::icp_timeout;
    events[0].node = 3;
    events[0].a = 2;
    events[0].b = 0;
    EXPECT_EQ(trace_to_json(events),
              "[{\"ns\":12345,\"type\":\"icp_timeout\",\"node\":3,\"a\":2,\"b\":0}]");
    EXPECT_EQ(trace_to_json({}), "[]");
}

TEST(TraceRing, GlobalShorthandRecords) {
    TraceRing::global().clear();
    trace(TraceEventType::sibling_recovered, 7, 8, 9);
    const auto events = TraceRing::global().drain();
    ASSERT_GE(events.size(), 1u);
    bool found = false;
    for (const TraceEvent& e : events)
        found = found || (e.type == TraceEventType::sibling_recovered && e.node == 7 &&
                          e.a == 8 && e.b == 9);
    EXPECT_TRUE(found);
}

}  // namespace
}  // namespace sc::obs
