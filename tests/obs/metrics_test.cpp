// sc::obs metrics registry: concurrency exactness, histogram quantiles,
// exporter golden outputs, and the disabled-registry no-op contract.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace sc::obs {
namespace {

TEST(MetricsRegistry, CounterRoundTrip) {
    MetricsRegistry reg;
    auto c = reg.counter("requests_total", "requests");
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.series.size(), 1u);
    EXPECT_EQ(snap.series[0].counter, 42u);
    EXPECT_EQ(snap.series[0].kind, MetricKind::counter);
}

TEST(MetricsRegistry, ReRegistrationReturnsSameCell) {
    MetricsRegistry reg;
    auto a = reg.counter("x_total", "x", {{"node", "1"}});
    auto b = reg.counter("x_total", "x", {{"node", "1"}});
    a.inc(3);
    b.inc(4);
    EXPECT_EQ(a.value(), 7u);
    EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
    MetricsRegistry reg;
    auto a = reg.counter("x_total", "x", {{"a", "1"}, {"b", "2"}});
    auto b = reg.counter("x_total", "x", {{"b", "2"}, {"a", "1"}});
    a.inc();
    b.inc();
    EXPECT_EQ(a.value(), 2u);
    EXPECT_EQ(reg.series_count(), 1u);
}

TEST(MetricsRegistry, KindConflictThrows) {
    MetricsRegistry reg;
    (void)reg.counter("x", "x");
    EXPECT_THROW((void)reg.gauge("x", "x"), std::logic_error);
}

TEST(MetricsRegistry, ConcurrentIncrementsSumExactly) {
    MetricsRegistry reg;
    auto c = reg.counter("concurrent_total", "hammered by N threads");
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 100000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(MetricsRegistry, ConcurrentHistogramObservationsSumExactly) {
    MetricsRegistry reg;
    auto h = reg.histogram("lat_seconds", "latency", {0.01, 0.1, 1.0});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(0.001 * static_cast<double>(t + 1));
        });
    }
    for (auto& t : threads) t.join();
    const auto snap = reg.snapshot();
    const auto* s = snap.find("lat_seconds");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->observations, static_cast<std::uint64_t>(kThreads * kPerThread));
    // All observations land below the first bound.
    EXPECT_EQ(s->bucket_counts[0], static_cast<std::uint64_t>(kThreads * kPerThread));
    // Sum accumulates losslessly under the CAS loop (only fp rounding):
    // 50000 * (1+2+3+4) * 0.001.
    EXPECT_NEAR(s->sum, 500.0, 1e-4);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
    MetricsRegistry reg;
    auto g = reg.gauge("temperature", "g");
    g.set(20.0);
    g.add(2.5);
    g.add(-0.5);
    EXPECT_DOUBLE_EQ(g.value(), 22.0);
}

TEST(MetricsRegistry, DisabledRegistryHandsOutNoOpHandles) {
    MetricsRegistry reg(false);
    auto c = reg.counter("x_total", "x");
    auto g = reg.gauge("y", "y");
    auto h = reg.histogram("z_seconds", "z", {1.0});
    c.inc(5);
    g.set(3.0);
    h.observe(0.5);
    EXPECT_EQ(reg.series_count(), 0u);
    EXPECT_TRUE(reg.snapshot().series.empty());
    EXPECT_EQ(h.count(), 0u);
}

TEST(MetricsRegistry, ResetZeroesEverySeries) {
    MetricsRegistry reg;
    auto c = reg.counter("x_total", "x");
    auto h = reg.histogram("h_seconds", "h", {1.0});
    c.inc(9);
    h.observe(0.5);
    reg.reset();
    EXPECT_EQ(c.value(), 0u);
    const auto snap = reg.snapshot();
    const auto* s = snap.find("h_seconds");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->observations, 0u);
    EXPECT_DOUBLE_EQ(s->sum, 0.0);
}

TEST(MetricsRegistry, HistogramBoundsMustAscend) {
    MetricsRegistry reg;
    EXPECT_THROW((void)reg.histogram("bad_seconds", "b", {1.0, 0.5}), std::logic_error);
}

// --- quantile edges ---------------------------------------------------------

TEST(HistogramQuantile, EmptyIsZero) {
    MetricsRegistry reg;
    (void)reg.histogram("h", "h", {1.0, 2.0});
    const auto snap = reg.snapshot();
    const auto* s = snap.find("h");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->quantile(0.5), 0.0);
}

TEST(HistogramQuantile, InterpolatesWithinBucket) {
    MetricsRegistry reg;
    auto h = reg.histogram("h", "h", {10.0, 20.0});
    // 100 observations uniformly inside (0, 10]: the median interpolates to
    // the middle of the first bucket (lower edge 0).
    for (int i = 0; i < 100; ++i) h.observe(5.0);
    const auto snap = reg.snapshot();
    const auto* s = snap.find("h");
    ASSERT_NE(s, nullptr);
    EXPECT_NEAR(s->quantile(0.5), 5.0, 0.2);
    EXPECT_NEAR(s->quantile(0.0), 0.0, 1e-9);
    EXPECT_NEAR(s->quantile(1.0), 10.0, 1e-9);
}

TEST(HistogramQuantile, SpansBuckets) {
    MetricsRegistry reg;
    auto h = reg.histogram("h", "h", {1.0, 2.0, 4.0});
    for (int i = 0; i < 50; ++i) h.observe(0.5);  // bucket (0, 1]
    for (int i = 0; i < 50; ++i) h.observe(3.0);  // bucket (2, 4]
    const auto snap = reg.snapshot();
    const auto* s = snap.find("h");
    ASSERT_NE(s, nullptr);
    // p25 inside the first bucket, p75 inside the third.
    EXPECT_GT(s->quantile(0.25), 0.0);
    EXPECT_LE(s->quantile(0.25), 1.0);
    EXPECT_GT(s->quantile(0.75), 2.0);
    EXPECT_LE(s->quantile(0.75), 4.0);
}

TEST(HistogramQuantile, OverflowBucketReportsLastFiniteBound) {
    MetricsRegistry reg;
    auto h = reg.histogram("h", "h", {1.0, 2.0});
    for (int i = 0; i < 10; ++i) h.observe(100.0);  // all +Inf bucket
    const auto snap = reg.snapshot();
    const auto* s = snap.find("h");
    ASSERT_NE(s, nullptr);
    EXPECT_DOUBLE_EQ(s->quantile(0.99), 2.0);
}

// --- exporter golden outputs ------------------------------------------------

TEST(Exporters, PrometheusGolden) {
    MetricsRegistry reg;
    reg.counter("sc_requests_total", "Requests handled", {{"node", "1"}}).inc(7);
    reg.gauge("sc_cached_bytes", "Bytes cached").set(1024);
    auto h = reg.histogram("sc_latency_seconds", "Latency", {0.5, 1.0});
    h.observe(0.25);
    h.observe(0.75);
    h.observe(9.0);

    const std::string expected =
        "# HELP sc_cached_bytes Bytes cached\n"
        "# TYPE sc_cached_bytes gauge\n"
        "sc_cached_bytes 1024\n"
        "# HELP sc_latency_seconds Latency\n"
        "# TYPE sc_latency_seconds histogram\n"
        "sc_latency_seconds_bucket{le=\"0.5\"} 1\n"
        "sc_latency_seconds_bucket{le=\"1\"} 2\n"
        "sc_latency_seconds_bucket{le=\"+Inf\"} 3\n"
        "sc_latency_seconds_sum 10\n"
        "sc_latency_seconds_count 3\n"
        "# HELP sc_requests_total Requests handled\n"
        "# TYPE sc_requests_total counter\n"
        "sc_requests_total{node=\"1\"} 7\n";
    EXPECT_EQ(to_prometheus(reg.snapshot()), expected);
}

TEST(Exporters, PrometheusEscapesLabelValues) {
    MetricsRegistry reg;
    reg.counter("x_total", "x", {{"path", "a\"b\\c\nd"}}).inc();
    const std::string text = to_prometheus(reg.snapshot());
    EXPECT_NE(text.find("x_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(Exporters, JsonGolden) {
    MetricsRegistry reg;
    reg.counter("sc_requests_total", "Requests handled", {{"node", "1"}}).inc(7);
    auto h = reg.histogram("sc_latency_seconds", "Latency", {0.5});
    h.observe(0.25);

    const std::string expected =
        "{\"metrics\":["
        "{\"name\":\"sc_latency_seconds\",\"kind\":\"histogram\",\"labels\":{},"
        "\"buckets\":[{\"le\":0.5,\"count\":1},{\"le\":\"+Inf\",\"count\":0}],"
        "\"sum\":0.25,\"count\":1},"
        "{\"name\":\"sc_requests_total\",\"kind\":\"counter\","
        "\"labels\":{\"node\":\"1\"},\"value\":7}"
        "]}";
    EXPECT_EQ(to_json(reg.snapshot()), expected);
}

TEST(Exporters, SnapshotIsSortedDeterministically) {
    MetricsRegistry reg;
    (void)reg.counter("b_total", "b");
    (void)reg.counter("a_total", "a");
    (void)reg.counter("a_total", "a", {{"node", "2"}});
    const auto snap = reg.snapshot();
    ASSERT_EQ(snap.series.size(), 3u);
    EXPECT_EQ(snap.series[0].name, "a_total");
    EXPECT_TRUE(snap.series[0].labels.empty());
    EXPECT_EQ(snap.series[1].name, "a_total");
    ASSERT_EQ(snap.series[1].labels.size(), 1u);
    EXPECT_EQ(snap.series[2].name, "b_total");
}

TEST(Exporters, FindMatchesLabelSubset) {
    MetricsRegistry reg;
    reg.counter("x_total", "x", {{"mode", "summary"}, {"node", "3"}}).inc(5);
    const auto snap = reg.snapshot();
    const auto* s = snap.find("x_total", {{"node", "3"}});
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->counter, 5u);
    EXPECT_EQ(snap.find("x_total", {{"node", "9"}}), nullptr);
}

}  // namespace
}  // namespace sc::obs
