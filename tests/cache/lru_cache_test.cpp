#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sc {
namespace {

LruCache make_cache(std::uint64_t capacity = 1000, std::uint64_t max_obj = kDefaultMaxObjectBytes) {
    return LruCache(LruCacheConfig{capacity, max_obj});
}

TEST(LruCache, MissOnEmpty) {
    auto c = make_cache();
    EXPECT_EQ(c.lookup("u", 0), LruCache::Lookup::miss_absent);
    EXPECT_EQ(c.document_count(), 0u);
    EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LruCache, InsertThenHit) {
    auto c = make_cache();
    EXPECT_TRUE(c.insert("u", 100, 7));
    EXPECT_EQ(c.lookup("u", 7), LruCache::Lookup::hit);
    EXPECT_EQ(c.used_bytes(), 100u);
    EXPECT_EQ(c.document_count(), 1u);
}

TEST(LruCache, VersionChangeIsMissAndEvictsStaleCopy) {
    auto c = make_cache();
    c.insert("u", 100, 1);
    EXPECT_EQ(c.lookup("u", 2), LruCache::Lookup::miss_changed);
    // The stale entry is gone: a further lookup is a plain absence.
    EXPECT_EQ(c.lookup("u", 2), LruCache::Lookup::miss_absent);
    EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
    auto c = make_cache(300);
    c.insert("a", 100, 0);
    c.insert("b", 100, 0);
    c.insert("c", 100, 0);
    // Touch "a" so "b" becomes LRU.
    EXPECT_EQ(c.lookup("a", 0), LruCache::Lookup::hit);
    c.insert("d", 100, 0);  // must evict "b"
    EXPECT_FALSE(c.contains("b"));
    EXPECT_TRUE(c.contains("a"));
    EXPECT_TRUE(c.contains("c"));
    EXPECT_TRUE(c.contains("d"));
    EXPECT_EQ(c.eviction_count(), 1u);
}

TEST(LruCache, EvictsMultipleToFitLargeObject) {
    auto c = make_cache(400);
    c.insert("a", 100, 0);
    c.insert("b", 100, 0);
    c.insert("c", 100, 0);
    c.insert("big", 250, 0);  // 300 + 250 > 400: evicts a, then b
    EXPECT_FALSE(c.contains("a"));
    EXPECT_FALSE(c.contains("b"));
    EXPECT_TRUE(c.contains("c"));
    EXPECT_TRUE(c.contains("big"));
    EXPECT_EQ(c.used_bytes(), 350u);
    EXPECT_LE(c.used_bytes(), c.capacity_bytes());
    EXPECT_EQ(c.eviction_count(), 2u);
}

TEST(LruCache, RejectsObjectsOverMaxSize) {
    auto c = make_cache(10'000'000);
    EXPECT_FALSE(c.insert("huge", kDefaultMaxObjectBytes + 1, 0));
    EXPECT_TRUE(c.insert("edge", kDefaultMaxObjectBytes, 0));
    EXPECT_EQ(c.document_count(), 1u);
}

TEST(LruCache, RejectsObjectsOverCapacity) {
    auto c = make_cache(100, /*max_obj=*/1000);
    EXPECT_FALSE(c.insert("too-big-for-cache", 101, 0));
    EXPECT_EQ(c.document_count(), 0u);
}

TEST(LruCache, TouchPromotes) {
    auto c = make_cache(200);
    c.insert("a", 100, 0);
    c.insert("b", 100, 0);
    c.touch("a");           // a becomes MRU, b LRU
    c.insert("c", 100, 0);  // evicts b
    EXPECT_TRUE(c.contains("a"));
    EXPECT_FALSE(c.contains("b"));
}

TEST(LruCache, TouchOfAbsentKeyIsNoop) {
    auto c = make_cache();
    c.touch("ghost");
    EXPECT_EQ(c.document_count(), 0u);
}

TEST(LruCache, EraseRemoves) {
    auto c = make_cache();
    c.insert("a", 50, 0);
    EXPECT_TRUE(c.erase("a"));
    EXPECT_FALSE(c.erase("a"));
    EXPECT_EQ(c.used_bytes(), 0u);
}

TEST(LruCache, RefreshUpdatesSizeAndVersion) {
    auto c = make_cache(1000);
    c.insert("a", 100, 1);
    c.insert("a", 300, 2);  // refresh in place
    EXPECT_EQ(c.document_count(), 1u);
    EXPECT_EQ(c.used_bytes(), 300u);
    EXPECT_EQ(c.lookup("a", 2), LruCache::Lookup::hit);
    EXPECT_EQ(c.cached_version("a"), std::make_optional<std::uint64_t>(2));
}

TEST(LruCache, RefreshOfOnlyEntryWithLargerSize) {
    auto c = make_cache(500);
    c.insert("a", 100, 0);
    EXPECT_TRUE(c.insert("a", 500, 1));  // grows to full capacity
    EXPECT_EQ(c.used_bytes(), 500u);
    EXPECT_EQ(c.document_count(), 1u);
}

TEST(LruCache, HooksFireOnInsertEvictErase) {
    auto c = make_cache(200);
    std::vector<std::string> inserted, removed;
    c.set_insert_hook([&](const LruCache::Entry& e) { inserted.push_back(e.url); });
    c.set_removal_hook([&](const LruCache::Entry& e) { removed.push_back(e.url); });
    c.insert("a", 100, 0);
    c.insert("b", 100, 0);
    c.insert("c", 100, 0);  // evicts a
    c.erase("b");
    EXPECT_EQ(inserted, (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(removed, (std::vector<std::string>{"a", "b"}));
}

TEST(LruCache, RemovalHookFiresOnStaleReplacement) {
    auto c = make_cache();
    std::vector<std::string> removed;
    c.set_removal_hook([&](const LruCache::Entry& e) { removed.push_back(e.url); });
    c.insert("a", 10, 1);
    (void)c.lookup("a", 2);  // stale: removed
    EXPECT_EQ(removed, std::vector<std::string>{"a"});
}

TEST(LruCache, LruEntryReflectsOrder) {
    auto c = make_cache(1000);
    EXPECT_EQ(c.lru_entry(), std::nullopt);
    c.insert("a", 10, 0);
    c.insert("b", 10, 0);
    ASSERT_TRUE(c.lru_entry().has_value());
    EXPECT_EQ(c.lru_entry()->url, "a");
    (void)c.lookup("a", 0);
    EXPECT_EQ(c.lru_entry()->url, "b");
}

TEST(LruCache, ForEachIteratesMruToLru) {
    auto c = make_cache(1000);
    c.insert("a", 10, 0);
    c.insert("b", 10, 0);
    c.insert("c", 10, 0);
    std::vector<std::string> order;
    c.for_each([&](const LruCache::Entry& e) { order.push_back(e.url); });
    EXPECT_EQ(order, (std::vector<std::string>{"c", "b", "a"}));
}

TEST(LruCache, CapacityInvariantUnderChurn) {
    auto c = make_cache(5000);
    for (int i = 0; i < 2000; ++i) {
        c.insert("u" + std::to_string(i % 300), 17 + i % 91, static_cast<std::uint64_t>(i % 3));
        ASSERT_LE(c.used_bytes(), c.capacity_bytes());
    }
    // Byte accounting stays consistent with the directory contents.
    std::uint64_t sum = 0;
    c.for_each([&](const LruCache::Entry& e) { sum += e.size; });
    EXPECT_EQ(sum, c.used_bytes());
}

TEST(LruCache, ContainsDoesNotPromote) {
    auto c = make_cache(200);
    c.insert("a", 100, 0);
    c.insert("b", 100, 0);
    (void)c.contains("a");  // must NOT promote
    c.insert("c", 100, 0);  // evicts a (still LRU)
    EXPECT_FALSE(c.contains("a"));
}

}  // namespace
}  // namespace sc
