// Sharded-LruCache semantics: a multi-shard cache must behave exactly
// like N independent single-shard caches with the byte budget split
// between them (base + remainder spread), with URLs routed by the 32-bit
// FNV-1a the header documents. The reference model here re-implements
// that contract naively; any divergence in results, accounting, eviction
// choice, or for_each order is a bug in one of the two.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "util/rng.hpp"

namespace sc {
namespace {

// Must match the routing hash in lru_cache.cpp (the comment there pins it).
std::uint32_t fnv1a32(const std::string& url) {
    std::uint32_t h = 0x811c9dc5u;
    for (const char c : url) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x01000193u;
    }
    return h;
}

/// One shard of the reference: the same naive vector LRU the property
/// test trusts (tests/cache/lru_property_test.cpp), with its own budget.
class ReferenceShard {
public:
    ReferenceShard(std::uint64_t capacity, std::uint64_t max_obj)
        : capacity_(capacity), max_obj_(max_obj) {}

    struct Doc {
        std::string url;
        std::uint64_t size;
        std::uint64_t version;
    };

    bool lookup(const std::string& url, std::uint64_t version) {
        const auto it = find(url);
        if (it == docs_.end()) return false;
        if (it->version != version) {
            docs_.erase(it);
            return false;
        }
        promote(it);
        return true;
    }

    bool insert(const std::string& url, std::uint64_t size, std::uint64_t version) {
        if (size > max_obj_ || size > capacity_) return false;
        if (const auto it = find(url); it != docs_.end()) docs_.erase(it);
        while (used() + size > capacity_) docs_.pop_back();  // back = LRU
        docs_.insert(docs_.begin(), Doc{url, size, version});
        return true;
    }

    void touch(const std::string& url) {
        if (const auto it = find(url); it != docs_.end()) promote(it);
    }

    bool erase(const std::string& url) {
        const auto it = find(url);
        if (it == docs_.end()) return false;
        docs_.erase(it);
        return true;
    }

    [[nodiscard]] std::uint64_t used() const {
        std::uint64_t sum = 0;
        for (const Doc& d : docs_) sum += d.size;
        return sum;
    }
    [[nodiscard]] std::size_t count() const { return docs_.size(); }
    [[nodiscard]] const std::vector<Doc>& docs() const { return docs_; }

private:
    std::vector<Doc>::iterator find(const std::string& url) {
        return std::find_if(docs_.begin(), docs_.end(),
                            [&](const Doc& d) { return d.url == url; });
    }
    void promote(std::vector<Doc>::iterator it) {
        const Doc d = *it;
        docs_.erase(it);
        docs_.insert(docs_.begin(), d);
    }

    std::uint64_t capacity_;
    std::uint64_t max_obj_;
    std::vector<Doc> docs_;
};

/// N reference shards with the budget split the way the header documents.
class ReferenceShardedLru {
public:
    ReferenceShardedLru(std::uint64_t capacity, std::uint64_t max_obj, std::size_t shards)
        : mask_(shards - 1) {
        const std::uint64_t base = capacity / shards;
        const std::uint64_t extra = capacity % shards;
        for (std::size_t i = 0; i < shards; ++i)
            shards_.emplace_back(base + (i < extra ? 1 : 0), max_obj);
    }

    ReferenceShard& shard_for(const std::string& url) {
        return shards_[fnv1a32(url) & mask_];
    }

    [[nodiscard]] std::uint64_t used() const {
        std::uint64_t sum = 0;
        for (const auto& s : shards_) sum += s.used();
        return sum;
    }
    [[nodiscard]] std::size_t count() const {
        std::size_t sum = 0;
        for (const auto& s : shards_) sum += s.count();
        return sum;
    }
    /// Shard-by-shard MRU->LRU concatenation: the for_each order.
    [[nodiscard]] std::vector<std::string> walk_order() const {
        std::vector<std::string> out;
        for (const auto& s : shards_)
            for (const auto& d : s.docs()) out.push_back(d.url);
        return out;
    }

private:
    std::size_t mask_;
    std::vector<ReferenceShard> shards_;
};

struct ShardCase {
    std::size_t shards;
    std::uint64_t capacity;
    std::uint64_t seed;
};

class LruShardTest : public ::testing::TestWithParam<ShardCase> {};

TEST_P(LruShardTest, MatchesPerShardReferenceModelsUnderRandomOps) {
    const auto [shards, capacity, seed] = GetParam();
    constexpr std::uint64_t kMaxObj = 400;
    LruCache real(LruCacheConfig{capacity, kMaxObj, shards});
    ReferenceShardedLru ref(capacity, kMaxObj, shards);
    Rng rng(seed);

    for (int step = 0; step < 6000; ++step) {
        const std::string url = "u" + std::to_string(rng.next_below(60));
        const std::uint64_t version = rng.next_below(3);
        const std::uint64_t size = 1 + rng.next_below(kMaxObj + kMaxObj / 4);
        ReferenceShard& model = ref.shard_for(url);
        switch (rng.next_below(10)) {
            case 0:
            case 1:
            case 2:
            case 3: {
                const bool real_hit = real.lookup(url, version) == LruCache::Lookup::hit;
                ASSERT_EQ(real_hit, model.lookup(url, version)) << "step " << step;
                break;
            }
            case 4:
            case 5:
            case 6:
            case 7:
                ASSERT_EQ(real.insert(url, size, version), model.insert(url, size, version))
                    << "step " << step;
                break;
            case 8:
                real.touch(url);
                model.touch(url);
                break;
            case 9:
                ASSERT_EQ(real.erase(url), model.erase(url)) << "step " << step;
                break;
        }
        ASSERT_EQ(real.used_bytes(), ref.used()) << "step " << step;
        ASSERT_EQ(real.document_count(), ref.count()) << "step " << step;
    }

    std::vector<std::string> real_order;
    real.for_each([&](const LruCache::Entry& e) { real_order.push_back(e.url); });
    EXPECT_EQ(real_order, ref.walk_order());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LruShardTest,
    ::testing::Values(ShardCase{2, 5000, 11}, ShardCase{4, 5000, 12},
                      ShardCase{8, 5000, 13}, ShardCase{4, 1003, 14},  // uneven split
                      ShardCase{1, 5000, 15}),  // the historical single-list cache
    [](const auto& info) {
        return "shards" + std::to_string(info.param.shards) + "_seed" +
               std::to_string(info.param.seed);
    });

TEST(LruShard, PerShardBudgetRejectsObjectLargerThanItsShard) {
    // capacity/shards = 1000: a 1500-byte object fits the cache but not
    // any one shard, so it must be rejected (documented insert contract).
    LruCache cache(LruCacheConfig{4000, kDefaultMaxObjectBytes, 4});
    EXPECT_FALSE(cache.insert("http://big", 1500, 0));
    EXPECT_EQ(cache.used_bytes(), 0u);
    EXPECT_TRUE(cache.insert("http://fits", 900, 0));
}

TEST(LruShard, RemainderSpreadSumsToFullCapacity) {
    // 1003 bytes over 4 shards: budgets 251, 251, 251, 250. Saturating
    // every shard with 1-byte documents must land exactly on capacity.
    LruCache cache(LruCacheConfig{1003, kDefaultMaxObjectBytes, 4});
    for (int i = 0; i < 8000; ++i)
        ASSERT_TRUE(cache.insert("u" + std::to_string(i), 1, 0));
    EXPECT_EQ(cache.used_bytes(), 1003u);
    EXPECT_EQ(cache.document_count(), 1003u);
    EXPECT_GT(cache.eviction_count(), 0u);
}

TEST(LruShard, ShardCountAndLruEntryAcrossShards) {
    LruCache cache(LruCacheConfig{4000, kDefaultMaxObjectBytes, 4});
    EXPECT_EQ(cache.shard_count(), 4u);
    EXPECT_EQ(cache.lru_entry(), std::nullopt);
    ASSERT_TRUE(cache.insert("http://only", 100, 7));
    const auto lru = cache.lru_entry();
    ASSERT_TRUE(lru.has_value());
    EXPECT_EQ(lru->url, "http://only");
    EXPECT_EQ(lru->version, 7u);
    ASSERT_TRUE(cache.erase("http://only"));
    EXPECT_EQ(cache.lru_entry(), std::nullopt);
}

TEST(LruShard, HooksSeeEveryInsertAndRemovalAcrossShards) {
    LruCache cache(LruCacheConfig{1000, kDefaultMaxObjectBytes, 4});
    std::uint64_t inserts = 0, removes = 0;
    cache.set_insert_hook([&](const LruCache::Entry&) { ++inserts; });
    cache.set_removal_hook([&](const LruCache::Entry&) { ++removes; });
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(cache.insert("u" + std::to_string(i % 97), 50, 0));
    EXPECT_EQ(inserts, 500u);
    EXPECT_EQ(inserts - removes, cache.document_count());
}

}  // namespace
}  // namespace sc
