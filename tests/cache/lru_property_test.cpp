// Property test: LruCache against a straightforward reference model
// (vector-based LRU) under long random operation sequences. Any divergence
// in contents, byte accounting, or eviction choice is a bug in one of the
// two — and the reference is simple enough to trust.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "util/rng.hpp"

namespace sc {
namespace {

// Deliberately naive reference implementation.
class ReferenceLru {
public:
    ReferenceLru(std::uint64_t capacity, std::uint64_t max_obj)
        : capacity_(capacity), max_obj_(max_obj) {}

    struct Doc {
        std::string url;
        std::uint64_t size;
        std::uint64_t version;
    };

    bool lookup(const std::string& url, std::uint64_t version) {
        const auto it = find(url);
        if (it == docs_.end()) return false;
        if (it->version != version) {
            docs_.erase(it);
            return false;
        }
        promote(it);
        return true;
    }

    bool insert(const std::string& url, std::uint64_t size, std::uint64_t version) {
        if (size > max_obj_ || size > capacity_) return false;
        if (const auto it = find(url); it != docs_.end()) docs_.erase(it);
        while (used() + size > capacity_) docs_.pop_back();  // back = LRU
        docs_.insert(docs_.begin(), Doc{url, size, version});
        return true;
    }

    void touch(const std::string& url) {
        if (const auto it = find(url); it != docs_.end()) promote(it);
    }

    bool erase(const std::string& url) {
        const auto it = find(url);
        if (it == docs_.end()) return false;
        docs_.erase(it);
        return true;
    }

    [[nodiscard]] std::uint64_t used() const {
        std::uint64_t sum = 0;
        for (const Doc& d : docs_) sum += d.size;
        return sum;
    }
    [[nodiscard]] std::size_t count() const { return docs_.size(); }
    [[nodiscard]] const std::vector<Doc>& docs() const { return docs_; }

private:
    std::vector<Doc>::iterator find(const std::string& url) {
        return std::find_if(docs_.begin(), docs_.end(),
                            [&](const Doc& d) { return d.url == url; });
    }
    void promote(std::vector<Doc>::iterator it) {
        const Doc d = *it;
        docs_.erase(it);
        docs_.insert(docs_.begin(), d);
    }

    std::uint64_t capacity_;
    std::uint64_t max_obj_;
    std::vector<Doc> docs_;
};

struct PropertyCase {
    std::uint64_t capacity;
    std::uint64_t max_obj;
    std::uint64_t universe;  // distinct URLs touched
    std::uint64_t seed;
};

class LruPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(LruPropertyTest, MatchesReferenceModelUnderRandomOps) {
    const auto [capacity, max_obj, universe, seed] = GetParam();
    LruCache real(LruCacheConfig{capacity, max_obj});
    ReferenceLru ref(capacity, max_obj);
    Rng rng(seed);

    for (int step = 0; step < 6000; ++step) {
        const std::string url = "u" + std::to_string(rng.next_below(universe));
        const std::uint64_t version = rng.next_below(3);
        const std::uint64_t size = 1 + rng.next_below(max_obj + max_obj / 4);  // some too big
        switch (rng.next_below(10)) {
            case 0:
            case 1:
            case 2:
            case 3: {  // lookup
                const bool real_hit = real.lookup(url, version) == LruCache::Lookup::hit;
                ASSERT_EQ(real_hit, ref.lookup(url, version)) << "step " << step;
                break;
            }
            case 4:
            case 5:
            case 6:
            case 7:  // insert
                ASSERT_EQ(real.insert(url, size, version), ref.insert(url, size, version))
                    << "step " << step;
                break;
            case 8:  // touch
                real.touch(url);
                ref.touch(url);
                break;
            case 9:  // erase
                ASSERT_EQ(real.erase(url), ref.erase(url)) << "step " << step;
                break;
        }
        ASSERT_EQ(real.used_bytes(), ref.used()) << "step " << step;
        ASSERT_EQ(real.document_count(), ref.count()) << "step " << step;
    }

    // Final structural comparison: same documents in the same LRU order.
    std::vector<std::string> real_order;
    real.for_each([&](const LruCache::Entry& e) { real_order.push_back(e.url); });
    std::vector<std::string> ref_order;
    for (const auto& d : ref.docs()) ref_order.push_back(d.url);
    EXPECT_EQ(real_order, ref_order);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LruPropertyTest,
    ::testing::Values(PropertyCase{1000, 400, 20, 1}, PropertyCase{5000, 900, 60, 2},
                      PropertyCase{500, 500, 10, 3}, PropertyCase{100'000, 9'000, 300, 4},
                      PropertyCase{777, 333, 15, 5}),
    [](const auto& info) { return "case" + std::to_string(info.param.seed); });

}  // namespace
}  // namespace sc
