// Multi-threaded hammer for the internally-locked LruCache: the proxy's
// worker pool shares one cache, so every public method must be callable
// concurrently without corrupting the LRU list, the index, or the byte
// accounting. Run under TSan/ASan in CI; the end-of-run invariant checks
// catch lost updates even in a plain build.
#include "cache/lru_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/delta_batcher.hpp"

namespace sc {
namespace {

std::string url_for(std::uint64_t i) { return "http://host/" + std::to_string(i); }

TEST(LruConcurrency, ParallelMixedOpsPreserveInvariants) {
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    constexpr std::uint64_t kUrls = 256;
    constexpr std::uint64_t kObjBytes = 1000;
    // Capacity for ~64 of the 256 urls: constant eviction pressure.
    LruCache cache(LruCacheConfig{64 * kObjBytes, kObjBytes});

    std::atomic<std::uint64_t> hook_inserts{0};
    std::atomic<std::uint64_t> hook_removes{0};
    cache.set_insert_hook([&](const LruCache::Entry&) { hook_inserts.fetch_add(1); });
    cache.set_removal_hook([&](const LruCache::Entry&) { hook_removes.fetch_add(1); });

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            // Deterministic per-thread op mix (no shared RNG).
            std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
            for (int i = 0; i < kOpsPerThread; ++i) {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift
                const std::uint64_t u = x % kUrls;
                const std::string url = url_for(u);
                switch (x % 7) {
                    case 0: (void)cache.insert(url, kObjBytes, u % 3); break;
                    case 1: (void)cache.lookup(url, u % 3); break;
                    case 2: (void)cache.contains(url); break;
                    case 3: cache.touch(url); break;
                    case 4: (void)cache.erase(url); break;
                    case 5: (void)cache.entry_copy(url); break;
                    default: (void)cache.used_bytes(); break;
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    // Accounting invariants must hold exactly once the dust settles.
    std::uint64_t walked_bytes = 0;
    std::size_t walked_count = 0;
    cache.for_each([&](const LruCache::Entry& e) {
        walked_bytes += e.size;
        ++walked_count;
    });
    EXPECT_EQ(walked_count, cache.document_count());
    EXPECT_EQ(walked_bytes, cache.used_bytes());
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
    // Every resident entry was inserted; everything else was removed.
    EXPECT_EQ(hook_inserts.load() - hook_removes.load(), cache.document_count());
    EXPECT_GE(cache.eviction_count(), 1u);  // pressure actually happened
}

// The production hook wiring under maximum contention: a sharded cache
// hammered by the worker pool while its hooks journal every directory
// event into the DeltaBatcher (the leaf lock of docs/PROTOCOL.md), with a
// drainer thread playing the elected flusher. TSan validates the shard
// locks and the journal handoff; the final accounting check holds in any
// build: journaled inserts minus erases must equal the resident count.
TEST(LruConcurrency, ShardedOpsJournalThroughBatcherHooks) {
    constexpr int kThreads = 8;
    constexpr int kOpsPerThread = 4000;
    constexpr std::uint64_t kUrls = 256;
    constexpr std::uint64_t kObjBytes = 1000;
    LruCache cache(LruCacheConfig{64 * kObjBytes, kObjBytes, /*shards=*/8});
    core::DeltaBatcher batcher(core::DeltaBatcherConfig{0.01, 0.0, 0});
    cache.set_insert_hook(
        [&batcher](const LruCache::Entry& e) { batcher.record_insert(e.url); });
    cache.set_removal_hook(
        [&batcher](const LruCache::Entry& e) { batcher.record_erase(e.url); });

    std::atomic<bool> stop{false};
    std::int64_t drained_balance = 0;  // inserts - erases seen by the drainer
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            const auto ops = batcher.drain_journal();
            if (ops.empty()) std::this_thread::yield();
            for (const auto& op : ops) drained_balance += op.insert ? 1 : -1;
        }
    });

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, t] {
            std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(t + 1);
            for (int i = 0; i < kOpsPerThread; ++i) {
                x ^= x << 13; x ^= x >> 7; x ^= x << 17;  // xorshift
                const std::uint64_t u = x % kUrls;
                const std::string url = url_for(u);
                switch (x % 6) {
                    case 0: (void)cache.insert(url, kObjBytes, u % 3); break;
                    case 1: (void)cache.lookup(url, u % 3); break;
                    case 2: cache.touch(url); break;
                    case 3: (void)cache.erase(url); break;
                    case 4: (void)cache.entry_copy(url); break;
                    default: (void)cache.lru_entry(); break;
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    stop.store(true, std::memory_order_release);
    drainer.join();
    for (const auto& op : batcher.drain_journal())  // anything after the last sweep
        drained_balance += op.insert ? 1 : -1;

    std::uint64_t walked_bytes = 0;
    std::size_t walked_count = 0;
    cache.for_each([&](const LruCache::Entry& e) {
        walked_bytes += e.size;
        ++walked_count;
    });
    EXPECT_EQ(walked_count, cache.document_count());
    EXPECT_EQ(walked_bytes, cache.used_bytes());
    EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
    EXPECT_EQ(drained_balance, static_cast<std::int64_t>(cache.document_count()));
    EXPECT_GE(cache.eviction_count(), 1u);
}

TEST(LruConcurrency, ConcurrentInsertsOfSameUrlKeepSingleEntry) {
    LruCache cache(LruCacheConfig{1 << 20, 1 << 16});
    constexpr int kThreads = 8;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&cache] {
            for (int i = 0; i < 2000; ++i) (void)cache.insert("http://same/url", 100, 1);
        });
    for (auto& th : threads) th.join();
    EXPECT_EQ(cache.document_count(), 1u);
    EXPECT_EQ(cache.used_bytes(), 100u);
    const auto entry = cache.entry_copy("http://same/url");
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->version, 1u);
}

}  // namespace
}  // namespace sc
