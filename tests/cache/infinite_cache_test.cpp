#include "cache/infinite_cache.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(InfiniteCache, FirstRequestIsColdMiss) {
    InfiniteCacheStats s;
    s.add_request("u", 100, 0);
    EXPECT_EQ(s.requests(), 1u);
    EXPECT_EQ(s.hits(), 0u);
    EXPECT_EQ(s.infinite_cache_bytes(), 100u);
    EXPECT_EQ(s.unique_documents(), 1u);
}

TEST(InfiniteCache, RepeatIsHit) {
    InfiniteCacheStats s;
    s.add_request("u", 100, 0);
    s.add_request("u", 100, 0);
    EXPECT_EQ(s.hits(), 1u);
    EXPECT_EQ(s.hit_bytes(), 100u);
    EXPECT_DOUBLE_EQ(s.max_hit_ratio(), 0.5);
    EXPECT_EQ(s.infinite_cache_bytes(), 100u);  // no duplicate storage
}

TEST(InfiniteCache, ModifiedDocumentIsMiss) {
    InfiniteCacheStats s;
    s.add_request("u", 100, 0);
    s.add_request("u", 100, 1);  // new version
    EXPECT_EQ(s.hits(), 0u);
    s.add_request("u", 100, 1);  // now a hit on the new version
    EXPECT_EQ(s.hits(), 1u);
}

TEST(InfiniteCache, ModificationGrowsUniqueBytesWhenLarger) {
    InfiniteCacheStats s;
    s.add_request("u", 100, 0);
    s.add_request("u", 150, 1);
    EXPECT_EQ(s.infinite_cache_bytes(), 150u);
}

TEST(InfiniteCache, ByteHitRatio) {
    InfiniteCacheStats s;
    s.add_request("a", 100, 0);
    s.add_request("b", 300, 0);
    s.add_request("a", 100, 0);  // hit: 100 of 500 bytes served from cache
    EXPECT_DOUBLE_EQ(s.max_byte_hit_ratio(), 100.0 / 500.0);
}

TEST(InfiniteCache, ClientTracking) {
    InfiniteCacheStats s;
    s.add_client(1);
    s.add_client(2);
    s.add_client(1);
    EXPECT_EQ(s.client_count(), 2u);
}

TEST(InfiniteCache, EmptyRatiosAreZero) {
    InfiniteCacheStats s;
    EXPECT_EQ(s.max_hit_ratio(), 0.0);
    EXPECT_EQ(s.max_byte_hit_ratio(), 0.0);
}

TEST(InfiniteCache, ManyDocumentsAccumulate) {
    InfiniteCacheStats s;
    for (int i = 0; i < 1000; ++i) s.add_request("u" + std::to_string(i), 10, 0);
    for (int i = 0; i < 1000; ++i) s.add_request("u" + std::to_string(i), 10, 0);
    EXPECT_EQ(s.unique_documents(), 1000u);
    EXPECT_EQ(s.infinite_cache_bytes(), 10'000u);
    EXPECT_DOUBLE_EQ(s.max_hit_ratio(), 0.5);
}

}  // namespace
}  // namespace sc
