#include "cli.hpp"

#include <gtest/gtest.h>

#include <array>

namespace sc::cli {
namespace {

Flags make(std::vector<std::string> args, std::set<std::string> known) {
    std::vector<char*> argv;
    static std::vector<std::string> storage;  // keep c_str()s alive
    storage = std::move(args);
    storage.insert(storage.begin(), "prog");
    argv.reserve(storage.size());
    for (auto& s : storage) argv.push_back(s.data());
    return Flags(static_cast<int>(argv.size()), argv.data(), std::move(known));
}

TEST(CliFlags, EqualsAndSpaceForms) {
    const auto f = make({"--alpha=1.5", "--name", "bob", "--verbose"},
                        {"alpha", "name", "verbose"});
    EXPECT_DOUBLE_EQ(f.get_double("alpha", 0), 1.5);
    EXPECT_EQ(f.get("name", ""), "bob");
    EXPECT_TRUE(f.get_bool("verbose"));
}

TEST(CliFlags, DefaultsWhenAbsent) {
    const auto f = make({}, {"x", "y"});
    EXPECT_EQ(f.get("x", "dflt"), "dflt");
    EXPECT_EQ(f.get_int("y", 42), 42);
    EXPECT_FALSE(f.get_bool("x"));
    EXPECT_FALSE(f.has("x"));
}

TEST(CliFlags, BooleanFollowedByFlag) {
    // "--flag --other v": flag is boolean, other gets the value.
    const auto f = make({"--flag", "--other", "v"}, {"flag", "other"});
    EXPECT_TRUE(f.get_bool("flag"));
    EXPECT_EQ(f.get("other", ""), "v");
}

TEST(CliFlags, UnknownFlagIsFatal) {
    EXPECT_EXIT((void)make({"--nope"}, {"yes"}), ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliFlags, PositionalIsFatal) {
    EXPECT_EXIT((void)make({"stray"}, {"x"}), ::testing::ExitedWithCode(2),
                "positional arguments");
}

TEST(CliFlags, RequireMissingIsFatal) {
    EXPECT_EXIT((void)make({}, {"x"}).require("x"), ::testing::ExitedWithCode(2),
                "missing required flag");
}

TEST(CliFlags, ParsePort) {
    EXPECT_EQ(parse_port("8080"), 8080);
    EXPECT_EQ(parse_port("host:443"), 443);
    EXPECT_EXIT((void)parse_port("0"), ::testing::ExitedWithCode(2), "bad port");
    EXPECT_EXIT((void)parse_port("99999"), ::testing::ExitedWithCode(2), "bad port");
}

}  // namespace
}  // namespace sc::cli
