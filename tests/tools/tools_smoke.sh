#!/usr/bin/env bash
# End-to-end smoke test of the CLI tools:
#   sc_tracegen -> sc_simulate (offline path)
#   sc_origin + 2x sc_proxy + sc_replay (live path, summary mode)
# Invoked by ctest with the five binary paths as arguments.
set -euo pipefail

TRACEGEN=$1 SIMULATE=$2 ORIGIN=$3 PROXY=$4 REPLAY=$5
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Pick a port block unlikely to collide (derived from our PID).
BASE=$(( 20000 + ($$ % 20000) ))
P_ORIGIN=$((BASE)) P1_HTTP=$((BASE+1)) P1_ICP=$((BASE+2)) P2_HTTP=$((BASE+3)) P2_ICP=$((BASE+4))

# --- offline path -----------------------------------------------------------
"$TRACEGEN" --trace upisa --scale 0.01 --out "$WORK/trace.csv" --quiet
[ -s "$WORK/trace.csv" ] || fail "tracegen produced no output"
head -1 "$WORK/trace.csv" | grep -q "timestamp,client,url,size,version" \
    || fail "tracegen csv header wrong"

"$SIMULATE" --in "$WORK/trace.csv" --proxies 8 --cache-mb 4 \
    --protocol summary --batch 350 > "$WORK/sim.txt"
grep -q "total hit ratio" "$WORK/sim.txt" || fail "simulate printed no report"
grep -q "messages/request" "$WORK/sim.txt" || fail "simulate printed no message stats"

# --- live path ---------------------------------------------------------------
"$ORIGIN" --port "$P_ORIGIN" --delay-ms 1 > "$WORK/origin.log" 2>&1 &
PIDS+=($!)
"$PROXY" --id 1 --http-port "$P1_HTTP" --icp-port "$P1_ICP" --origin "$P_ORIGIN" \
    --sibling "2:$P2_HTTP:$P2_ICP" --mode summary --threshold 0 \
    > "$WORK/p1.log" 2>&1 &
PIDS+=($!)
"$PROXY" --id 2 --http-port "$P2_HTTP" --icp-port "$P2_ICP" --origin "$P_ORIGIN" \
    --sibling "1:$P1_HTTP:$P1_ICP" --mode summary --threshold 0 \
    > "$WORK/p2.log" 2>&1 &
PIDS+=($!)

# Wait for all three to come up.
for log in origin.log p1.log p2.log; do
    for _ in $(seq 1 50); do
        grep -qE "listening|HTTP" "$WORK/$log" && break
        sleep 0.1
    done
    grep -qE "listening|HTTP" "$WORK/$log" || fail "$log never came up"
done

"$TRACEGEN" --trace nlanr --requests 400 --scale 0.01 --out "$WORK/live.csv" --quiet
"$REPLAY" --in "$WORK/live.csv" --proxies "$P1_HTTP,$P2_HTTP" > "$WORK/replay.txt"
grep -q "errors *0" "$WORK/replay.txt" || fail "replay reported errors"
grep -q "requests *400" "$WORK/replay.txt" || fail "replay lost requests"
# With a shared NLANR-style workload some sharing must occur.
hits=$(grep -oE "remote hits +[0-9]+" "$WORK/replay.txt" | grep -oE "[0-9]+")
[ "${hits:-0}" -gt 0 ] || fail "no remote hits through the live federation"

echo "tools smoke OK (remote hits: $hits)"
