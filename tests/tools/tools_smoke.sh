#!/usr/bin/env bash
# End-to-end smoke test of the CLI tools:
#   sc_tracegen -> sc_simulate (offline path, --metrics-out JSON)
#   sc_origin + 2x sc_proxy + sc_replay (live path, summary mode), then
#   GET /__metrics is checked against the access log and the SIGTERM
#   --metrics-out dump is validated.
# Invoked by ctest with the five binary paths as arguments.
set -euo pipefail

TRACEGEN=$1 SIMULATE=$2 ORIGIN=$3 PROXY=$4 REPLAY=$5
WORK=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# Pick a port block unlikely to collide (derived from our PID).
BASE=$(( 20000 + ($$ % 20000) ))
P_ORIGIN=$((BASE)) P1_HTTP=$((BASE+1)) P1_ICP=$((BASE+2)) P2_HTTP=$((BASE+3)) P2_ICP=$((BASE+4))

# --- offline path -----------------------------------------------------------
"$TRACEGEN" --trace upisa --scale 0.01 --out "$WORK/trace.csv" --quiet
[ -s "$WORK/trace.csv" ] || fail "tracegen produced no output"
head -1 "$WORK/trace.csv" | grep -q "timestamp,client,url,size,version" \
    || fail "tracegen csv header wrong"

"$SIMULATE" --in "$WORK/trace.csv" --proxies 8 --cache-mb 4 \
    --protocol summary --batch 350 --metrics-out "$WORK/sim_metrics.json" > "$WORK/sim.txt"
grep -q "total hit ratio" "$WORK/sim.txt" || fail "simulate printed no report"
grep -q "messages/request" "$WORK/sim.txt" || fail "simulate printed no message stats"
[ -s "$WORK/sim_metrics.json" ] || fail "simulate wrote no --metrics-out file"
grep -q '"sc_sim_requests_total"' "$WORK/sim_metrics.json" \
    || fail "simulate metrics JSON lacks sc_sim_requests_total"
# The JSON counter must equal the request count the report is based on.
sim_requests=$(grep -cve '^\s*$' "$WORK/trace.csv")
sim_requests=$((sim_requests - 1))  # header line
json_requests=$(sed -n \
    's/.*"sc_sim_requests_total"[^{]*{[^}]*},"value":\([0-9]*\).*/\1/p' \
    "$WORK/sim_metrics.json")
[ "${json_requests:-x}" = "$sim_requests" ] \
    || fail "sc_sim_requests_total=$json_requests != trace requests=$sim_requests"

# --- live path ---------------------------------------------------------------
"$ORIGIN" --port "$P_ORIGIN" --delay-ms 1 > "$WORK/origin.log" 2>&1 &
PIDS+=($!)
# Proxy 1 runs the serial default (--workers 1: replay counters must be
# byte-identical to the pre-pool behavior) on the portable poll backend;
# proxy 2 runs a 4-worker pool on the platform-default backend (epoll on
# Linux), so one federation exercises both readiness implementations.
"$PROXY" --id 1 --http-port "$P1_HTTP" --icp-port "$P1_ICP" --origin "$P_ORIGIN" \
    --sibling "2:$P2_HTTP:$P2_ICP" --mode summary --threshold 0 --workers 1 \
    --event-backend poll \
    --access-log "$WORK/p1_access.log" \
    > "$WORK/p1.log" 2>&1 &
PIDS+=($!)
"$PROXY" --id 2 --http-port "$P2_HTTP" --icp-port "$P2_ICP" --origin "$P_ORIGIN" \
    --sibling "1:$P1_HTTP:$P1_ICP" --mode summary --threshold 0 --workers 4 \
    --metrics-out "$WORK/p2_metrics.json" \
    > "$WORK/p2.log" 2>&1 &
P2_PID=$!
PIDS+=($P2_PID)

# Wait for all three to come up.
for log in origin.log p1.log p2.log; do
    for _ in $(seq 1 50); do
        grep -qE "listening|HTTP" "$WORK/$log" && break
        sleep 0.1
    done
    grep -qE "listening|HTTP" "$WORK/$log" || fail "$log never came up"
done
grep -q "backend=poll" "$WORK/p1.log" || fail "proxy 1 did not honor --event-backend poll"
# Proxy 2 resolves SC_EVENT_BACKEND (CI's poll rerun sets it), else the
# platform default; only Linux has a known default worth asserting.
P2_BACKEND=${SC_EVENT_BACKEND:-epoll}
if [ "$(uname -s)" = "Linux" ]; then
    grep -q "backend=$P2_BACKEND" "$WORK/p2.log" \
        || fail "proxy 2 did not resolve to the $P2_BACKEND backend"
fi

"$TRACEGEN" --trace nlanr --requests 400 --scale 0.01 --out "$WORK/live.csv" --quiet
"$REPLAY" --in "$WORK/live.csv" --proxies "$P1_HTTP,$P2_HTTP" > "$WORK/replay.txt"
grep -q "errors *0" "$WORK/replay.txt" || fail "replay reported errors"
grep -q "requests *400" "$WORK/replay.txt" || fail "replay lost requests"
# With a shared NLANR-style workload some sharing must occur.
hits=$(grep -oE "remote hits +[0-9]+" "$WORK/replay.txt" | grep -oE "[0-9]+")
[ "${hits:-0}" -gt 0 ] || fail "no remote hits through the live federation"

# --- observability ------------------------------------------------------------
# GET /__metrics must return valid Prometheus text whose hit/miss counters
# match proxy 1's access log for the same run.
curl -sf --max-time 5 "http://127.0.0.1:$P1_HTTP/__metrics" > "$WORK/p1_metrics.prom" \
    || fail "GET /__metrics failed"
grep -q '^# TYPE sc_cache_hits_total counter$' "$WORK/p1_metrics.prom" \
    || fail "/__metrics is not Prometheus exposition text"
log_hits=$(grep -c " LOCAL_HIT " "$WORK/p1_access.log" || true)
log_total=$(grep -cve '^\s*$' "$WORK/p1_access.log")
log_misses=$((log_total - log_hits))
prom_hits=$(sed -n 's/^sc_cache_hits_total{[^}]*} \([0-9]*\)$/\1/p' "$WORK/p1_metrics.prom")
prom_misses=$(sed -n 's/^sc_cache_misses_total{[^}]*} \([0-9]*\)$/\1/p' "$WORK/p1_metrics.prom")
[ "${prom_hits:-x}" = "$log_hits" ] \
    || fail "sc_cache_hits_total=$prom_hits != access-log LOCAL_HIT lines=$log_hits"
[ "${prom_misses:-x}" = "$log_misses" ] \
    || fail "sc_cache_misses_total=$prom_misses != access-log misses=$log_misses"
# Worker-pool gauges exist and are quiescent (nothing in flight post-replay).
queue_depth=$(sed -n 's/^sc_proxy_worker_queue_depth{[^}]*} \([0-9.]*\)$/\1/p' \
    "$WORK/p1_metrics.prom")
[ "${queue_depth:-x}" = "0" ] \
    || fail "sc_proxy_worker_queue_depth=$queue_depth (want 0 when idle)"

# GET /__trace returns a JSON array of protocol events.
curl -sf --max-time 5 "http://127.0.0.1:$P1_HTTP/__trace" > "$WORK/p1_trace.json" \
    || fail "GET /__trace failed"
head -c1 "$WORK/p1_trace.json" | grep -q '\[' || fail "/__trace is not a JSON array"

# SIGTERM proxy 2: it must exit cleanly and dump --metrics-out JSON.
kill -TERM "$P2_PID"
for _ in $(seq 1 50); do
    kill -0 "$P2_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$P2_PID" 2>/dev/null && fail "proxy 2 ignored SIGTERM"
wait "$P2_PID" 2>/dev/null || true
[ -s "$WORK/p2_metrics.json" ] || fail "proxy 2 wrote no --metrics-out file"
grep -q '"sc_proxy_requests_total"' "$WORK/p2_metrics.json" \
    || fail "proxy metrics JSON lacks sc_proxy_requests_total"

# --- warm restart (disk tier) -------------------------------------------------
# A proxy with --disk-dir populated over HTTP, SIGTERMed, and restarted on
# the same directory must recover its document directory from the segment
# log and serve the same workload as local hits.
P3_HTTP=$((BASE+5)) P3_ICP=$((BASE+6))
"$PROXY" --id 3 --http-port "$P3_HTTP" --icp-port "$P3_ICP" --origin "$P_ORIGIN" \
    --mode summary --threshold 0 \
    --disk-dir "$WORK/p3_disk" --disk-capacity-mb 64 \
    > "$WORK/p3.log" 2>&1 &
P3_PID=$!
PIDS+=($P3_PID)
for _ in $(seq 1 50); do
    grep -qE "listening|HTTP" "$WORK/p3.log" && break
    sleep 0.1
done
grep -qE "listening|HTTP" "$WORK/p3.log" || fail "disk-tier proxy never came up"

"$REPLAY" --in "$WORK/live.csv" --proxies "$P3_HTTP" > "$WORK/replay_p3.txt"
grep -q "errors *0" "$WORK/replay_p3.txt" || fail "disk-tier replay reported errors"
ls "$WORK/p3_disk"/seg-*.log >/dev/null 2>&1 || fail "disk tier wrote no segment files"

kill -TERM "$P3_PID"
for _ in $(seq 1 50); do
    kill -0 "$P3_PID" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$P3_PID" 2>/dev/null && fail "disk-tier proxy ignored SIGTERM"
wait "$P3_PID" 2>/dev/null || true

"$PROXY" --id 3 --http-port "$P3_HTTP" --icp-port "$P3_ICP" --origin "$P_ORIGIN" \
    --mode summary --threshold 0 \
    --disk-dir "$WORK/p3_disk" --disk-capacity-mb 64 \
    > "$WORK/p3b.log" 2>&1 &
PIDS+=($!)
for _ in $(seq 1 50); do
    grep -qE "listening|HTTP" "$WORK/p3b.log" && break
    sleep 0.1
done
grep -qE "listening|HTTP" "$WORK/p3b.log" || fail "restarted disk-tier proxy never came up"

"$REPLAY" --in "$WORK/live.csv" --proxies "$P3_HTTP" > "$WORK/replay_p3b.txt"
grep -q "errors *0" "$WORK/replay_p3b.txt" || fail "post-restart replay reported errors"
warm_hits=$(grep -oE "local hits +[0-9]+" "$WORK/replay_p3b.txt" | grep -oE "[0-9]+")
[ "${warm_hits:-0}" -gt 0 ] || fail "no local hits after warm restart"

curl -sf --max-time 5 "http://127.0.0.1:$P3_HTTP/__metrics" > "$WORK/p3_metrics.prom" \
    || fail "GET /__metrics on restarted proxy failed"
recovered=$(sed -n 's/^sc_store_recovered_entries_total{[^}]*} \([0-9]*\)$/\1/p' \
    "$WORK/p3_metrics.prom")
[ "${recovered:-0}" -gt 0 ] \
    || fail "sc_store_recovered_entries_total=$recovered (want > 0 after warm restart)"

echo "tools smoke OK (remote hits: $hits, p1 hits/misses: $log_hits/$log_misses, warm-restart recovered: $recovered, warm hits: $warm_hits)"
