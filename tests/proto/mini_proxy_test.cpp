#include "proto/mini_proxy.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

struct Federation {
    std::unique_ptr<OriginServer> origin;
    std::vector<std::unique_ptr<MiniProxy>> proxies;

    explicit Federation(std::size_t n, ShareMode mode,
                        std::chrono::milliseconds origin_delay = 0ms) {
        origin = std::make_unique<OriginServer>(
            OriginServer::Config{.port = 0, .reply_delay = origin_delay});
        for (std::size_t i = 0; i < n; ++i) {
            MiniProxyConfig cfg;
            cfg.id = static_cast<NodeId>(i + 1);
            cfg.origin = origin->endpoint();
            cfg.mode = mode;
            cfg.cache_bytes = 4ull * 1024 * 1024;
            cfg.update_threshold = 0.0;  // publish every change (tests want immediacy)
            proxies.push_back(std::make_unique<MiniProxy>(cfg));
        }
        for (auto& p : proxies)
            for (auto& q : proxies)
                if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
        for (auto& p : proxies) p->start();
    }

    ~Federation() {
        for (auto& p : proxies) p->stop();
        origin->stop();
    }

    HttpLiteResponseHeader get(std::size_t proxy, const std::string& url,
                               std::uint64_t version = 0, std::uint64_t size = 100) {
        TcpConnection c = TcpConnection::connect(proxies[proxy]->http_endpoint());
        c.write_all(format_request({false, false, url, version, size}));
        const auto line = c.read_line();
        if (!line) throw std::runtime_error("proxy closed connection");
        const auto header = parse_response_header(*line);
        if (!header) throw std::runtime_error("bad header");
        c.discard_exact(header->size);
        return *header;
    }

    /// Give UDP updates time to land.
    static void settle() { std::this_thread::sleep_for(120ms); }
};

TEST(MiniProxy, MissThenLocalHit) {
    Federation fed(1, ShareMode::none);
    EXPECT_EQ(fed.get(0, "http://a/1").status, HttpLiteStatus::miss);
    EXPECT_EQ(fed.get(0, "http://a/1").status, HttpLiteStatus::local_hit);
    const auto stats = fed.proxies[0]->stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.local_hits, 1u);
    EXPECT_EQ(stats.origin_fetches, 1u);
    EXPECT_EQ(fed.origin->requests_served(), 1u);
}

TEST(MiniProxy, NoSharingModeNeverQueries) {
    Federation fed(2, ShareMode::none);
    (void)fed.get(0, "http://a/1");
    (void)fed.get(1, "http://a/1");  // both go to origin
    EXPECT_EQ(fed.origin->requests_served(), 2u);
    EXPECT_EQ(fed.proxies[0]->stats().icp_queries_sent, 0u);
    EXPECT_EQ(fed.proxies[1]->stats().remote_hits, 0u);
}

TEST(MiniProxy, IcpRemoteHit) {
    Federation fed(2, ShareMode::icp);
    EXPECT_EQ(fed.get(0, "http://shared/doc").status, HttpLiteStatus::miss);
    EXPECT_EQ(fed.get(1, "http://shared/doc").status, HttpLiteStatus::remote_hit);
    EXPECT_EQ(fed.origin->requests_served(), 1u);  // served sibling-to-sibling
    const auto s0 = fed.proxies[0]->stats();
    const auto s1 = fed.proxies[1]->stats();
    EXPECT_EQ(s1.remote_hits, 1u);
    EXPECT_GE(s1.icp_queries_sent, 1u);
    EXPECT_GE(s0.icp_queries_received, 1u);
    EXPECT_GE(s0.icp_replies_sent, 1u);
    // Simple sharing: proxy 1 cached the copy, a repeat is a local hit.
    EXPECT_EQ(fed.get(1, "http://shared/doc").status, HttpLiteStatus::local_hit);
}

TEST(MiniProxy, IcpQueriesAllSiblingsOnEveryMiss) {
    Federation fed(4, ShareMode::icp);
    (void)fed.get(0, "http://only-mine/1");
    const auto stats = fed.proxies[0]->stats();
    EXPECT_EQ(stats.icp_queries_sent, 3u);
    EXPECT_EQ(stats.icp_replies_received, 3u);  // three MISS replies
}

TEST(MiniProxy, SummaryModeSkipsQueriesWhenSummariesSilent) {
    Federation fed(3, ShareMode::summary);
    (void)fed.get(0, "http://nowhere/else");
    const auto stats = fed.proxies[0]->stats();
    // No sibling summary advertises the URL: zero queries on the wire.
    EXPECT_EQ(stats.icp_queries_sent, 0u);
}

TEST(MiniProxy, SummaryModeRemoteHitAfterUpdatePropagates) {
    Federation fed(2, ShareMode::summary);
    EXPECT_EQ(fed.get(0, "http://popular/doc").status, HttpLiteStatus::miss);
    Federation::settle();  // let the directory update reach proxy 1
    EXPECT_GE(fed.proxies[1]->stats().updates_received, 1u);
    EXPECT_EQ(fed.get(1, "http://popular/doc").status, HttpLiteStatus::remote_hit);
    const auto s1 = fed.proxies[1]->stats();
    EXPECT_EQ(s1.remote_hits, 1u);
    EXPECT_EQ(s1.icp_queries_sent, 1u);  // only the promising sibling
    EXPECT_EQ(fed.origin->requests_served(), 1u);
}

TEST(MiniProxy, SummaryFalseMissBeforeUpdateArrives) {
    // With a 100% update threshold the summary never propagates, so the
    // second proxy goes straight to the origin: a false miss, never a
    // wrong answer.
    auto origin = std::make_unique<OriginServer>(OriginServer::Config{});
    std::vector<std::unique_ptr<MiniProxy>> proxies;
    for (int i = 0; i < 2; ++i) {
        MiniProxyConfig cfg;
        cfg.id = static_cast<NodeId>(i + 1);
        cfg.origin = origin->endpoint();
        cfg.mode = ShareMode::summary;
        cfg.update_threshold = 1.0;
        proxies.push_back(std::make_unique<MiniProxy>(cfg));
    }
    for (auto& p : proxies)
        for (auto& q : proxies)
            if (p != q) p->add_sibling(q->id(), q->icp_endpoint(), q->http_endpoint());
    for (auto& p : proxies) p->start();

    const auto get = [&](int proxy, const std::string& url) {
        TcpConnection c = TcpConnection::connect(proxies[static_cast<std::size_t>(proxy)]->http_endpoint());
        c.write_all(format_request({false, false, url, 0, 50}));
        const auto header = parse_response_header(*c.read_line());
        c.discard_exact(header->size);
        return header->status;
    };
    // First insert always crosses the threshold (1 new doc >= 100% of a
    // 1-doc directory); burn it, then the interesting document stays
    // unpublished (1 new < 100% of 2 docs).
    EXPECT_EQ(get(0, "http://warmup/doc"), HttpLiteStatus::miss);
    EXPECT_EQ(get(0, "http://doc/x"), HttpLiteStatus::miss);
    EXPECT_EQ(get(1, "http://doc/x"), HttpLiteStatus::miss);  // false miss
    EXPECT_EQ(origin->requests_served(), 3u);
    for (auto& p : proxies) p->stop();
    origin->stop();
}

TEST(MiniProxy, StaleSiblingCopyFallsBackToOrigin) {
    Federation fed(2, ShareMode::icp);
    (void)fed.get(0, "http://doc/v", /*version=*/1);
    // Proxy 1 wants version 2; proxy 0's ICP says HIT (URL match) but the
    // SGET returns NOT_CACHED on the version check: remote stale hit.
    EXPECT_EQ(fed.get(1, "http://doc/v", /*version=*/2).status, HttpLiteStatus::miss);
    EXPECT_EQ(fed.origin->requests_served(), 2u);
    EXPECT_EQ(fed.proxies[1]->stats().remote_hits, 0u);
}

TEST(MiniProxy, FullSummaryBroadcastBootstrapsSiblings) {
    // Load proxy 0 before anyone is listening, then broadcast the full
    // bitmap — the Squid-style recovery path.
    auto origin = std::make_unique<OriginServer>(OriginServer::Config{});
    MiniProxyConfig cfg0;
    cfg0.id = 1;
    cfg0.origin = origin->endpoint();
    cfg0.mode = ShareMode::summary;
    cfg0.update_threshold = 1.0;  // suppress incremental updates
    auto p0 = std::make_unique<MiniProxy>(cfg0);

    MiniProxyConfig cfg1 = cfg0;
    cfg1.id = 2;
    auto p1 = std::make_unique<MiniProxy>(cfg1);

    p0->add_sibling(2, p1->icp_endpoint(), p1->http_endpoint());
    p1->add_sibling(1, p0->icp_endpoint(), p0->http_endpoint());
    p0->start();
    p1->start();

    const auto get = [&](MiniProxy& p, const std::string& url) {
        TcpConnection c = TcpConnection::connect(p.http_endpoint());
        c.write_all(format_request({false, false, url, 0, 64}));
        const auto header = parse_response_header(*c.read_line());
        c.discard_exact(header->size);
        return header->status;
    };

    EXPECT_EQ(get(*p0, "http://warm/doc"), HttpLiteStatus::miss);
    p0->stop();  // quiesce so broadcast_full_summary may touch node state
    p0->broadcast_full_summary();
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_GE(p1->stats().updates_received, 1u);
    p1->stop();
    origin->stop();
}

TEST(MiniProxy, ManyDocumentsAcrossFederation) {
    Federation fed(3, ShareMode::summary);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(fed.get(static_cast<std::size_t>(i % 3), "http://d/" + std::to_string(i)).status,
                  HttpLiteStatus::miss);
    Federation::settle();
    // Every document is now locally cached where it was requested, and the
    // sibling summaries advertise it.
    std::uint64_t remote = 0;
    for (int i = 0; i < 30; ++i) {
        const auto st = fed.get(static_cast<std::size_t>((i + 1) % 3), "http://d/" + std::to_string(i)).status;
        if (st == HttpLiteStatus::remote_hit) ++remote;
    }
    EXPECT_GE(remote, 25u);  // a few may race with late updates
    EXPECT_EQ(fed.origin->requests_served(), 30u + (30u - remote));
}

TEST(MiniProxy, StopIsIdempotentAndDestructorSafe) {
    Federation fed(1, ShareMode::none);
    fed.proxies[0]->stop();
    fed.proxies[0]->stop();
}

}  // namespace
}  // namespace sc
