// Dynamic mesh membership and the DIRREQ resync flow, exercised at the
// datagram level: a raw UDP socket plays a sibling the proxy has never
// heard of, so every learn/bootstrap/repair step is observable on the
// wire instead of inferred from stats.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/summary_cache_node.hpp"
#include "icp/icp_message.hpp"
#include "icp/udp_socket.hpp"
#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

MiniProxyConfig summary_cfg(NodeId id, Endpoint origin) {
    MiniProxyConfig cfg;
    cfg.id = id;
    cfg.origin = origin;
    cfg.mode = ShareMode::summary;
    cfg.update_threshold = 0.0;     // publish every change
    cfg.keepalive_interval = 100ms;
    cfg.liveness_strikes = 50;      // don't declare test peers dead
    cfg.resync_interval = 50ms;
    return cfg;
}

HttpLiteStatus get(MiniProxy& p, const std::string& url) {
    TcpConnection c = TcpConnection::connect(p.http_endpoint());
    c.write_all(format_request({false, false, url, 0, 100}));
    const auto header = parse_response_header(*c.read_line());
    EXPECT_TRUE(header.has_value());
    c.discard_exact(header->size);
    return header->status;
}

bool eventually(const std::function<bool()>& pred,
                std::chrono::milliseconds deadline = 3000ms) {
    const auto until = std::chrono::steady_clock::now() + deadline;
    while (std::chrono::steady_clock::now() < until) {
        if (pred()) return true;
        std::this_thread::sleep_for(20ms);
    }
    return pred();
}

TEST(MeshMembership, RuntimeJoinConvergesWithoutRestart) {
    OriginServer origin({});
    auto a = std::make_unique<MiniProxy>(summary_cfg(1, origin.endpoint()));
    auto b = std::make_unique<MiniProxy>(summary_cfg(2, origin.endpoint()));
    a->start();
    b->start();
    EXPECT_EQ(get(*a, "http://joined/doc"), HttpLiteStatus::miss);

    // Only a is told about b, at runtime. a pushes its full bitmap and
    // DIRREQs b's; the DIRREQ carries a's HTTP port, so b learns a as a
    // sibling without any restart or config change.
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    EXPECT_TRUE(eventually([&] {
        return b->sibling_replica_predicts(1, "http://joined/doc") &&
               a->synced_replicas() >= 1 && b->stats().siblings_joined >= 1;
    }));
    // And the learned sibling is fully usable: b serves a remote hit
    // through a, which requires b to know a's HTTP endpoint.
    EXPECT_EQ(get(*b, "http://joined/doc"), HttpLiteStatus::remote_hit);
    b->stop();
    a->stop();
    origin.stop();
}

TEST(MeshMembership, DirreqFromUnknownPeerIsLearnedAndServed) {
    OriginServer origin({});
    auto p = std::make_unique<MiniProxy>(summary_cfg(1, origin.endpoint()));
    p->start();
    EXPECT_EQ(get(*p, "http://served/doc"), HttpLiteStatus::miss);

    // A raw socket introduces itself with a DIRREQ, as a cold-booting
    // sibling would: "I am node 77, my HTTP port is X, send me your map."
    UdpSocket fake;
    IcpDirReq hello;
    hello.sender_host = 77;
    hello.http_port = 12345;  // nothing listens there; learning is enough
    fake.send_to(p->icp_endpoint(), encode_dirreq(hello));

    // The proxy answers with its full bitmap — which must decode and
    // predict the cached document when applied to a fresh node.
    SummaryCacheNode probe(
        SummaryCacheNodeConfig{.node_id = 99, .expected_docs = 1024, .bloom = {}});
    bool synced = false;
    const auto deadline = std::chrono::steady_clock::now() + 3s;
    while (!synced && std::chrono::steady_clock::now() < deadline) {
        const auto d = fake.receive(100);
        if (!d) continue;
        const auto header = decode_header(d->payload);
        if (header.opcode != IcpOpcode::dirfull) continue;
        synced = probe.apply_sibling_update(decode_dirupdate(d->payload)) ==
                 SummaryApplyResult::applied;
    }
    ASSERT_TRUE(synced);
    EXPECT_TRUE(probe.sibling_may_contain(1, "http://served/doc"));
    EXPECT_GE(p->stats().siblings_joined, 1u);
    EXPECT_GE(p->stats().resync_requests_received, 1u);
    EXPECT_GE(p->stats().resync_fulls_sent, 1u);
    p->stop();
    origin.stop();
}

TEST(MeshMembership, ProxyDirreqsPeersItCannotPredict) {
    // The flip side: once the fake is a known sibling, the proxy's repair
    // sweep keeps DIRREQing it until a full bitmap arrives, then stops
    // asking — lost DIRREQs and lost answers both heal by repetition.
    OriginServer origin({});
    auto p = std::make_unique<MiniProxy>(summary_cfg(1, origin.endpoint()));
    UdpSocket fake;
    p->add_sibling(77, fake.local_endpoint(), Endpoint::loopback(1));
    p->start();

    // The sweep asks for the summary we cannot predict yet.
    bool asked = false;
    auto deadline = std::chrono::steady_clock::now() + 3s;
    while (!asked && std::chrono::steady_clock::now() < deadline) {
        const auto d = fake.receive(100);
        if (d && decode_header(d->payload).opcode == IcpOpcode::dirreq) asked = true;
    }
    ASSERT_TRUE(asked);
    EXPECT_EQ(p->synced_replicas(), 0u);

    // Answer it: the fake's directory becomes a synced replica.
    SummaryCacheNodeConfig fake_cfg;
    fake_cfg.node_id = 77;
    fake_cfg.expected_docs = 1024;
    SummaryCacheNode fake_node(fake_cfg);
    fake_node.on_cache_insert("http://fake/doc");
    for (const auto& chunk : fake_node.encode_full_update_chunks())
        fake.send_to(p->icp_endpoint(), chunk);
    EXPECT_TRUE(eventually([&] {
        return p->synced_replicas() == 1 &&
               p->sibling_replica_predicts(77, "http://fake/doc");
    }));
    p->stop();
    origin.stop();
}

TEST(MeshMembership, DeadSiblingReplicaDroppedAndRebuiltOnRejoin) {
    OriginServer origin({});
    auto cfg = summary_cfg(1, origin.endpoint());
    cfg.keepalive_interval = 50ms;
    cfg.liveness_strikes = 3;
    auto p = std::make_unique<MiniProxy>(cfg);
    UdpSocket fake;
    p->add_sibling(77, fake.local_endpoint(), Endpoint::loopback(1));
    p->start();

    SummaryCacheNodeConfig fake_cfg;
    fake_cfg.node_id = 77;
    fake_cfg.expected_docs = 1024;
    SummaryCacheNode fake_node(fake_cfg);
    fake_node.on_cache_insert("http://fake/doc");
    const auto send_full = [&] {
        for (const auto& chunk : fake_node.encode_full_update_chunks())
            fake.send_to(p->icp_endpoint(), chunk);
    };
    send_full();
    ASSERT_TRUE(eventually([&] { return p->synced_replicas() == 1; }));

    // The fake goes silent: after liveness_strikes quiet intervals its
    // replica is forgotten — a dead peer's summary must not keep
    // attracting queries.
    ASSERT_TRUE(eventually([&] {
        while (fake.receive(0)) {  // drain probes; never answer
        }
        return p->synced_replicas() == 0 && p->stats().sibling_death_events >= 1;
    }));
    EXPECT_FALSE(p->sibling_replica_predicts(77, "http://fake/doc"));

    // Rejoin: the first datagram heard revives it, and the recovery
    // machinery (push + DIRREQ + the fake's answer) rebuilds the replica.
    send_full();
    EXPECT_TRUE(eventually([&] {
        return p->synced_replicas() == 1 &&
               p->sibling_replica_predicts(77, "http://fake/doc") &&
               p->stats().sibling_recovery_events >= 1;
    }));
    p->stop();
    origin.stop();
}

}  // namespace
}  // namespace sc
