// HTTP/1.1 keep-alive conformance for the proxy front end, run against BOTH
// readiness backends: persistent connections, pipelined ordering, Connection
// negotiation, idle reaping, max-requests rotation, and half-close handling
// must be identical whether the loop waits in poll(2) or epoll.
//
// The HttpSessionParser is pure state (no I/O), so its grammar corner cases
// are unit-tested here too, next to the end-to-end behavior they produce.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/socket.h>

#include <cctype>
#include <chrono>
#include <cstdlib>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/event_backend.hpp"
#include "proto/http_session.hpp"
#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

std::vector<net::EventBackendKind> kinds_under_test() {
    std::vector<net::EventBackendKind> kinds = {net::EventBackendKind::poll};
#ifdef __linux__
    kinds.push_back(net::EventBackendKind::epoll);
#endif
    return kinds;
}

std::string lite_get(const std::string& url, std::uint64_t size) {
    return format_request({false, false, url, 0, size});
}

/// Read one lite response (header line + exact body).
std::pair<HttpLiteStatus, std::string> read_lite(TcpConnection& conn) {
    const auto line = conn.read_line();
    if (!line) throw std::runtime_error("EOF instead of a lite response");
    const auto header = parse_response_header(*line);
    if (!header) throw std::runtime_error("malformed lite response: " + *line);
    std::string body;
    conn.read_exact(header->size, body);
    return {header->status, std::move(body)};
}

struct HttpResponse {
    std::string status_line;
    std::map<std::string, std::string> headers;  ///< keys lowercased
    std::string body;
};

/// Read one HTTP/1.1 response; nullopt on EOF before the status line.
std::optional<HttpResponse> read_http(TcpConnection& conn) {
    HttpResponse r;
    auto line = conn.read_line();
    if (!line) return std::nullopt;
    r.status_line = *line;
    while (true) {
        auto h = conn.read_line();
        if (!h) throw std::runtime_error("EOF inside a header block");
        if (h->empty()) break;
        const auto colon = h->find(':');
        if (colon == std::string::npos) continue;
        std::string key = h->substr(0, colon);
        for (char& c : key) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        std::string value = h->substr(colon + 1);
        value.erase(0, value.find_first_not_of(" \t"));
        r.headers[key] = std::move(value);
    }
    const auto it = r.headers.find("content-length");
    if (it != r.headers.end())
        conn.read_exact(std::stoull(it->second), r.body);
    return r;
}

class KeepAliveTest : public ::testing::TestWithParam<net::EventBackendKind> {
protected:
    MiniProxyConfig base_config() {
        MiniProxyConfig cfg;
        cfg.id = 1;
        cfg.origin = origin_.endpoint();
        cfg.workers = 2;
        cfg.event_backend = GetParam();
        return cfg;
    }

    OriginServer origin_{OriginServer::Config{.port = 0}};
};

TEST_P(KeepAliveTest, PipelinedLiteRequestsAnswerInArrivalOrder) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    // One write, three requests: responses must come back in arrival order
    // even with two workers (a session is owned by one worker at a time).
    conn.write_all(lite_get("http://host/pipe-a", 11) +
                   lite_get("http://host/pipe-b", 22) +
                   lite_get("http://host/pipe-c", 33));
    for (const std::size_t expected : {11u, 22u, 33u}) {
        const auto [status, body] = read_lite(conn);
        EXPECT_EQ(status, HttpLiteStatus::miss);
        EXPECT_EQ(body.size(), expected);
    }
    EXPECT_EQ(proxy.stats().keepalive_reuses, 2u);
    proxy.stop();
}

TEST_P(KeepAliveTest, RepeatLiteRequestHitsTheCacheOnTheSameConnection) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/doc", 64));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    conn.write_all(lite_get("http://host/doc", 64));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::local_hit);
    proxy.stop();
}

TEST_P(KeepAliveTest, LiteGarbageGetsErrorAndTheConnectionSurvives) {
    // Historic behavior, pinned: a malformed lite line answers ERROR and
    // keeps the connection usable.
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all("NONSENSE not a request\r\n");
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::error);
    conn.write_all(lite_get("http://host/after-error", 16));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    proxy.stop();
}

TEST_P(KeepAliveTest, HttpRequestsPersistAndNegotiateConnection) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());

    conn.write_all("GET /doc?size=64 HTTP/1.1\r\nHost: test\r\n\r\n");
    auto first = read_http(conn);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->status_line, "HTTP/1.1 200 OK");
    EXPECT_EQ(first->headers["x-sc-status"], "MISS");
    EXPECT_EQ(first->headers["connection"], "keep-alive");
    EXPECT_EQ(first->body.size(), 64u);

    // Same document again on the SAME connection: a local hit this time.
    conn.write_all("GET /doc?size=64 HTTP/1.1\r\nHost: test\r\n\r\n");
    auto second = read_http(conn);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->headers["x-sc-status"], "LOCAL_HIT");
    EXPECT_EQ(proxy.stats().keepalive_reuses, 1u);
    proxy.stop();
}

TEST_P(KeepAliveTest, ConnectionCloseMidStreamEndsAfterThatResponse) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    // Pipelined: the first keeps the connection, the second asks to close.
    conn.write_all(
        "GET /a?size=8 HTTP/1.1\r\n\r\n"
        "GET /b?size=8 HTTP/1.1\r\nConnection: close\r\n\r\n");
    auto first = read_http(conn);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->headers["connection"], "keep-alive");
    auto second = read_http(conn);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->headers["connection"], "close");
    EXPECT_FALSE(conn.read_line().has_value()) << "connection must close after the reply";
    proxy.stop();
}

TEST_P(KeepAliveTest, Http10DefaultsToClose) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all("GET /legacy?size=8 HTTP/1.0\r\n\r\n");
    auto resp = read_http(conn);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->headers["connection"], "close");
    EXPECT_FALSE(conn.read_line().has_value());
    proxy.stop();
}

TEST_P(KeepAliveTest, LiteAndHttpGrammarsShareOneConnection) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/mixed", 32));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    conn.write_all("GET /mixed-http?size=16 HTTP/1.1\r\n\r\n");
    auto resp = read_http(conn);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->body.size(), 16u);
    conn.write_all(lite_get("http://host/mixed", 32));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::local_hit);
    proxy.stop();
}

TEST_P(KeepAliveTest, IdleSessionsAreReapedQuietly) {
    auto cfg = base_config();
    cfg.idle_timeout = 50ms;
    MiniProxy proxy(cfg);
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/then-idle", 8));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    // Park the connection past the timeout: the proxy must close it with
    // no response bytes (read_line sees clean EOF, not junk).
    EXPECT_FALSE(conn.read_line().has_value());
    EXPECT_GE(proxy.stats().idle_closes, 1u);
    proxy.stop();
}

TEST_P(KeepAliveTest, IdleTimeoutZeroNeverReaps) {
    auto cfg = base_config();
    cfg.idle_timeout = 0ms;
    MiniProxy proxy(cfg);
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/immortal", 8));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    std::this_thread::sleep_for(120ms);
    conn.write_all(lite_get("http://host/immortal", 8));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::local_hit);
    EXPECT_EQ(proxy.stats().idle_closes, 0u);
    proxy.stop();
}

TEST_P(KeepAliveTest, MaxRequestsRotatesTheConnection) {
    auto cfg = base_config();
    cfg.max_requests_per_connection = 2;
    MiniProxy proxy(cfg);
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    // Three pipelined requests: two served, then the rotation closes the
    // connection (the third is the client's to retry on a fresh one).
    conn.write_all(lite_get("http://host/rot-a", 8) + lite_get("http://host/rot-b", 8) +
                   lite_get("http://host/rot-c", 8));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    EXPECT_FALSE(conn.read_line().has_value()) << "rotation must close at the cap";

    // The HTTP framing advertises the rotation on the final response.
    TcpConnection conn2 = TcpConnection::connect(proxy.http_endpoint());
    conn2.write_all("GET /rot-d?size=8 HTTP/1.1\r\n\r\nGET /rot-e?size=8 HTTP/1.1\r\n\r\n");
    auto first = read_http(conn2);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->headers["connection"], "keep-alive");
    auto second = read_http(conn2);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->headers["connection"], "close");
    EXPECT_FALSE(conn2.read_line().has_value());
    proxy.stop();
}

TEST_P(KeepAliveTest, HalfCloseStillGetsTheBufferedResponse) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/half-close", 128));
    // Shut the write side: the proxy sees EOF while the request is in
    // flight. It must still deliver the response, then close — and the
    // proxy itself must stay healthy for other clients.
    ASSERT_EQ(::shutdown(conn.fd(), SHUT_WR), 0);
    const auto [status, body] = read_lite(conn);
    EXPECT_EQ(status, HttpLiteStatus::miss);
    EXPECT_EQ(body.size(), 128u);
    EXPECT_FALSE(conn.read_line().has_value());

    TcpConnection conn2 = TcpConnection::connect(proxy.http_endpoint());
    conn2.write_all(lite_get("http://host/after-half-close", 8));
    EXPECT_EQ(read_lite(conn2).first, HttpLiteStatus::miss);
    proxy.stop();
}

TEST_P(KeepAliveTest, BurstOfAbruptDisconnectsNeverCrashesTheLoop) {
    MiniProxy proxy(base_config());
    proxy.start();
    for (int round = 0; round < 30; ++round) {
        TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
        switch (round % 3) {
            case 0:  // connect-and-slam
                break;
            case 1:  // half a request line, then gone
                conn.write_all("GET http://host/partial");
                break;
            case 2:  // mid-header-block abort
                conn.write_all("GET /aborted?size=8 HTTP/1.1\r\nHost: x\r\n");
                break;
        }
        conn.close();
    }
    // The loop survived the burst and still serves.
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all(lite_get("http://host/survivor", 8));
    EXPECT_EQ(read_lite(conn).first, HttpLiteStatus::miss);
    proxy.stop();
}

TEST_P(KeepAliveTest, AdminEndpointHonorsKeepAlive) {
    MiniProxy proxy(base_config());
    proxy.start();
    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
    conn.write_all("GET /__metrics HTTP/1.1\r\n\r\n");
    auto resp = read_http(conn);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->status_line, "HTTP/1.1 200 OK");
    EXPECT_EQ(resp->headers["connection"], "keep-alive");
    EXPECT_NE(resp->body.find("sc_proxy_open_sessions"), std::string::npos);
    EXPECT_NE(resp->body.find("sc_event_backend_wait_seconds"), std::string::npos);
    // Keep-alive honored: the admin endpoint serves again on the same
    // connection (scrapers poll it).
    conn.write_all("GET /__metrics HTTP/1.1\r\n\r\n");
    ASSERT_TRUE(read_http(conn).has_value());
    proxy.stop();
}

INSTANTIATE_TEST_SUITE_P(
    Backends, KeepAliveTest, ::testing::ValuesIn(kinds_under_test()),
    [](const ::testing::TestParamInfo<net::EventBackendKind>& info) {
        return net::event_backend_kind_name(info.param);
    });

// --- scale: park thousands of idle keep-alive sessions ---------------------

TEST(KeepAliveScale, ActiveTrafficIsServedWithThousandsOfIdleSessions) {
    // The epoll backend's reason to exist: wait cost is O(ready), so parked
    // keep-alive sessions are free. Default 10k idle connections; CI's
    // sanitizer jobs scale down via SC_KEEPALIVE_SESSIONS.
    int target = 10'000;
    if (const char* env = std::getenv("SC_KEEPALIVE_SESSIONS")) target = std::atoi(env);
    ASSERT_GT(target, 0);

    // Each parked session costs two fds in this process (client + proxy
    // end). Raise RLIMIT_NOFILE if the soft limit is short, and scale the
    // test to whatever the hard limit allows rather than failing.
    rlimit lim{};
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
    const rlim_t need = 2 * static_cast<rlim_t>(target) + 512;
    if (lim.rlim_cur < need) {
        rlimit raised = lim;
        raised.rlim_cur = lim.rlim_max == RLIM_INFINITY
                              ? need
                              : std::min<rlim_t>(need, lim.rlim_max);
        (void)::setrlimit(RLIMIT_NOFILE, &raised);
        ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
    }
    if (lim.rlim_cur < need) {
        target = static_cast<int>((lim.rlim_cur - 512) / 2);
        if (target < 128)
            GTEST_SKIP() << "RLIMIT_NOFILE too low for a meaningful session count";
    }

    OriginServer origin(OriginServer::Config{.port = 0});
    MiniProxyConfig cfg;
    cfg.id = 1;
    cfg.origin = origin.endpoint();
    cfg.workers = 2;
    cfg.idle_timeout = std::chrono::milliseconds(0);  // park forever
#ifdef __linux__
    cfg.event_backend = net::EventBackendKind::epoll;
#endif
    MiniProxy proxy(cfg);
    proxy.start();

    std::vector<TcpConnection> parked;
    parked.reserve(static_cast<std::size_t>(target));
    for (int i = 0; i < target; ++i) {
        for (int attempt = 0;; ++attempt) {
            try {
                parked.push_back(TcpConnection::connect(proxy.http_endpoint()));
                break;
            } catch (const std::exception&) {
                // Transient accept-queue pressure; give the loop a breath.
                if (attempt >= 100) throw;
                std::this_thread::sleep_for(2ms);
            }
        }
    }

    // With every parked session idle, active traffic on the first and last
    // connections must still round-trip promptly.
    const auto start = std::chrono::steady_clock::now();
    parked.front().write_all(lite_get("http://host/scale-first", 64));
    EXPECT_EQ(read_lite(parked.front()).first, HttpLiteStatus::miss);
    parked.back().write_all(lite_get("http://host/scale-last", 64));
    EXPECT_EQ(read_lite(parked.back()).first, HttpLiteStatus::miss);
    EXPECT_LT(std::chrono::steady_clock::now() - start, 5s)
        << "active requests stalled behind " << target << " idle sessions";

    parked.clear();  // mass disconnect: the loop absorbs 10k hangups
    TcpConnection probe = TcpConnection::connect(proxy.http_endpoint());
    probe.write_all(lite_get("http://host/scale-after", 8));
    EXPECT_EQ(read_lite(probe).first, HttpLiteStatus::miss);
    proxy.stop();
    origin.stop();
}

// --- HttpSessionParser grammar ---------------------------------------------

TEST(HttpSessionParserTest, BareLiteLineCompletesImmediately) {
    HttpSessionParser p;
    const auto r = p.on_line("GET http://host/x 3 256");
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->http_style);
    EXPECT_TRUE(r->keep_alive);
    EXPECT_FALSE(r->parse_error);
    EXPECT_EQ(r->req.url, "http://host/x");
    EXPECT_EQ(r->req.version, 3u);
    EXPECT_EQ(r->req.size, 256u);
}

TEST(HttpSessionParserTest, LiteGarbageIsAnErrorButKeepsAlive) {
    HttpSessionParser p;
    const auto r = p.on_line("GARBAGE");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->parse_error);
    EXPECT_TRUE(r->keep_alive);
}

TEST(HttpSessionParserTest, HttpRequestSpansItsHeaderBlock) {
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("GET /doc?size=128&version=7 HTTP/1.1").has_value());
    EXPECT_TRUE(p.mid_request());
    EXPECT_FALSE(p.on_line("Host: example").has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(p.mid_request());
    EXPECT_TRUE(r->http_style);
    EXPECT_TRUE(r->keep_alive);
    EXPECT_EQ(r->req.url, "/doc");
    EXPECT_EQ(r->req.size, 128u);
    EXPECT_EQ(r->req.version, 7u);
}

TEST(HttpSessionParserTest, ConnectionNegotiationFollowsTheRfcDefaults) {
    const auto final_keep_alive = [](std::string_view start,
                                     std::string_view connection_header) {
        HttpSessionParser p;
        EXPECT_FALSE(p.on_line(start).has_value());
        if (!connection_header.empty())
            EXPECT_FALSE(p.on_line(connection_header).has_value());
        const auto r = p.on_line("");
        EXPECT_TRUE(r.has_value());
        return r->keep_alive;
    };
    EXPECT_TRUE(final_keep_alive("GET /x HTTP/1.1", ""));
    EXPECT_FALSE(final_keep_alive("GET /x HTTP/1.1", "Connection: close"));
    EXPECT_FALSE(final_keep_alive("GET /x HTTP/1.1", "Connection: Keep-Alive, Close"));
    EXPECT_FALSE(final_keep_alive("GET /x HTTP/1.0", ""));
    EXPECT_TRUE(final_keep_alive("GET /x HTTP/1.0", "Connection: keep-alive"));
    EXPECT_TRUE(final_keep_alive("GET /x HTTP/1.0", "CONNECTION:   Keep-Alive"));
}

TEST(HttpSessionParserTest, NonGetMethodsAre400AndClose) {
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("POST /upload HTTP/1.1").has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->parse_error);
    EXPECT_FALSE(r->keep_alive);
}

TEST(HttpSessionParserTest, OversizedHeaderBlockAborts) {
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("GET /x HTTP/1.1").has_value());
    const std::string filler = "X-Pad: " + std::string(1000, 'a');
    std::optional<SessionRequest> r;
    for (std::size_t fed = 0; fed < kMaxHeaderBytes + 4096 && !r; fed += filler.size())
        r = p.on_line(filler);
    ASSERT_TRUE(r.has_value()) << "the header cap never fired";
    EXPECT_TRUE(r->parse_error);
    EXPECT_FALSE(r->keep_alive);
    EXPECT_FALSE(p.mid_request());
}

TEST(HttpSessionParserTest, AdminTargetsAreRecognizedInBothGrammars) {
    {
        HttpSessionParser p;
        EXPECT_FALSE(p.on_line("GET /__metrics HTTP/1.1").has_value());
        const auto r = p.on_line("");
        ASSERT_TRUE(r.has_value());
        EXPECT_TRUE(r->admin);
        EXPECT_FALSE(r->admin_trace);
        EXPECT_TRUE(r->keep_alive);
    }
    {
        HttpSessionParser p;
        EXPECT_FALSE(p.on_line("GET /__trace?limit=10 HTTP/1.1").has_value());
        const auto r = p.on_line("");
        ASSERT_TRUE(r.has_value());
        EXPECT_TRUE(r->admin);
        EXPECT_TRUE(r->admin_trace);
    }
    {
        // Bare-lite admin clients predate keep-alive and read to EOF, so
        // the parser pins close-after-response for them.
        HttpSessionParser p;
        const auto r = p.on_line("GET /__metrics 0 0");
        ASSERT_TRUE(r.has_value());
        EXPECT_TRUE(r->admin);
        EXPECT_FALSE(r->keep_alive);
        EXPECT_FALSE(r->http_style);
    }
}

TEST(HttpSessionParserTest, BlankLinesBetweenRequestsAreTolerated) {
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("").has_value());
    const auto r = p.on_line("GET http://host/x 0 8");
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->req.url, "http://host/x");
}

// --- checked-decode hardening (targets travel into ICP queries and logs) ----

TEST(HttpSessionParserTest, EmbeddedWhitespaceInTargetIs400) {
    // "GET /a b HTTP/1.1" previously parsed as target "/a b"; the extra
    // token now fails target hygiene instead of reaching the hash path.
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("GET /a b HTTP/1.1").has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->parse_error);
    EXPECT_FALSE(r->keep_alive);
}

TEST(HttpSessionParserTest, ControlByteInTargetIs400) {
    HttpSessionParser p;
    EXPECT_FALSE(p.on_line("GET /a\tb HTTP/1.1").has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->parse_error);
    EXPECT_FALSE(r->keep_alive);
}

TEST(HttpSessionParserTest, OversizedTargetIs400) {
    HttpSessionParser p;
    const std::string line =
        "GET /" + std::string(kMaxTargetBytes, 'a') + " HTTP/1.1";
    EXPECT_FALSE(p.on_line(line).has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->parse_error);
    EXPECT_FALSE(r->keep_alive);
}

TEST(HttpSessionParserTest, UnsupportedHttpVersionIsHttp400NotLiteGarbage) {
    // "GET / HTTP/2.0" used to fall through to the lite grammar, answer
    // ERROR, and leave the connection open with mismatched framing. It must
    // be an HTTP-style 400 that closes.
    for (const char* line : {"GET / HTTP/2.0", "GET / HTTP/0.9", "GET / HTTP/"}) {
        HttpSessionParser p;
        const auto r = p.on_line(line);
        ASSERT_TRUE(r.has_value()) << line;
        EXPECT_TRUE(r->http_style) << line;
        EXPECT_TRUE(r->parse_error) << line;
        EXPECT_FALSE(r->keep_alive) << line;
    }
}

TEST(HttpSessionParserTest, HugeSizeParameterSaturatesInsteadOfWrapping) {
    // 2^64 + 1 == "18446744073709551617"; wrapping would alias size=1.
    HttpSessionParser p;
    EXPECT_FALSE(
        p.on_line("GET /doc?size=18446744073709551617&version=1 HTTP/1.1")
            .has_value());
    const auto r = p.on_line("");
    ASSERT_TRUE(r.has_value());
    EXPECT_FALSE(r->parse_error);
    EXPECT_EQ(r->req.size, std::numeric_limits<std::uint64_t>::max());
}

}  // namespace
}  // namespace sc
