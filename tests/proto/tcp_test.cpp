#include "proto/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace sc {
namespace {

TEST(TcpListener, EphemeralPortAssigned) {
    TcpListener l;
    EXPECT_GT(l.local_endpoint().port, 0);
    EXPECT_EQ(l.local_endpoint().host, 0x7f000001u);
}

TEST(TcpListener, AcceptTimesOutWithoutClient) {
    TcpListener l;
    EXPECT_FALSE(l.accept(20).has_value());
}

TEST(Tcp, ConnectAndExchangeLines) {
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        const auto line = conn->read_line();
        ASSERT_TRUE(line.has_value());
        EXPECT_EQ(*line, "hello server");
        conn->write_all("hello client\r\n");
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    c.write_all("hello server\n");
    const auto reply = c.read_line();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(*reply, "hello client");  // CRLF stripped
    server.join();
}

TEST(Tcp, ReadExactAcrossChunks) {
    TcpListener l;
    const std::string payload(100'000, 'z');
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("SIZE\n");
        conn->write_all(payload);
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    ASSERT_TRUE(c.read_line().has_value());
    std::string body;
    c.read_exact(payload.size(), body);
    EXPECT_EQ(body, payload);
    server.join();
}

TEST(Tcp, ReadLineThenBodyFromSameBuffer) {
    // Header and body arriving in one TCP segment must both be readable.
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("HDR 4\r\nbody");  // single write
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    EXPECT_EQ(c.read_line(), "HDR 4");
    std::string body;
    c.read_exact(4, body);
    EXPECT_EQ(body, "body");
    server.join();
}

TEST(Tcp, EofReturnsNullopt) {
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("only line\n");
        // connection closes when conn goes out of scope
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    EXPECT_TRUE(c.read_line().has_value());
    EXPECT_FALSE(c.read_line().has_value());  // clean EOF
    server.join();
}

TEST(Tcp, EofMidBodyThrows) {
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("xx");  // promises nothing, closes early
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    std::string body;
    EXPECT_THROW(c.read_exact(10, body), std::runtime_error);
    server.join();
}

TEST(Tcp, DiscardExact) {
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("skipme!!rest\n");
    });
    TcpConnection c = TcpConnection::connect(l.local_endpoint());
    c.discard_exact(8);
    EXPECT_EQ(c.read_line(), "rest");
    server.join();
}

TEST(Tcp, ConnectToClosedPortThrows) {
    // Bind-then-close to find a port that is (almost certainly) not listening.
    Endpoint dead;
    {
        TcpListener l;
        dead = l.local_endpoint();
    }
    EXPECT_THROW((void)TcpConnection::connect(dead), std::system_error);
}

TEST(Tcp, MoveSemantics) {
    TcpListener l;
    std::thread server([&] {
        auto conn = l.accept(2000);
        ASSERT_TRUE(conn.has_value());
        conn->write_all("moved\n");
    });
    TcpConnection a = TcpConnection::connect(l.local_endpoint());
    TcpConnection b = std::move(a);
    EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing the contract
    EXPECT_EQ(b.read_line(), "moved");
    server.join();
}

}  // namespace
}  // namespace sc
