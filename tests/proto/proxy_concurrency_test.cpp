// Regression tests for the event-loop + worker-pool proxy front end:
// the pfds out-of-bounds accept bug, the partial-line (slow-loris) stall,
// stale ICP reply confusion, and the concurrency the worker pool buys.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "icp/icp_message.hpp"
#include "icp/udp_socket.hpp"
#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

struct ProxyRig {
    std::unique_ptr<OriginServer> origin;
    std::unique_ptr<MiniProxy> proxy;

    explicit ProxyRig(int workers, ShareMode mode = ShareMode::none,
                      std::chrono::milliseconds origin_delay = 0ms,
                      std::chrono::milliseconds query_timeout = 100ms) {
        origin = std::make_unique<OriginServer>(
            OriginServer::Config{.port = 0, .reply_delay = origin_delay});
        MiniProxyConfig cfg;
        cfg.id = 1;
        cfg.origin = origin->endpoint();
        cfg.mode = mode;
        cfg.workers = workers;
        cfg.query_timeout = query_timeout;
        proxy = std::make_unique<MiniProxy>(cfg);
    }

    void start() { proxy->start(); }

    ~ProxyRig() {
        proxy->stop();
        origin->stop();
    }

    [[nodiscard]] TcpConnection connect() const {
        return TcpConnection::connect(proxy->http_endpoint());
    }

    HttpLiteStatus get(TcpConnection& c, const std::string& url,
                       std::uint64_t size = 100) {
        c.write_all(format_request({false, false, url, 0, size}));
        return read_response(c);
    }

    static HttpLiteStatus read_response(TcpConnection& c) {
        const auto line = c.read_line();
        if (!line) throw std::runtime_error("proxy closed connection");
        const auto header = parse_response_header(*line);
        if (!header) throw std::runtime_error("bad header");
        c.discard_exact(header->size);
        return header->status;
    }
};

TEST(ProxyConcurrency, PartialRequestLineDoesNotStallOtherClients) {
    // The old loop called read_line() as soon as a client fd was readable
    // and blocked inside fill_buffer() until the newline arrived — one
    // slow-loris client wedged every other request. Even at workers=1 the
    // rewritten loop parks the partial bytes and serves everyone else.
    ProxyRig rig(/*workers=*/1);
    rig.start();

    TcpConnection slow = rig.connect();
    slow.write_all("GET http://slow/partial");  // no newline: half a line
    std::this_thread::sleep_for(50ms);          // let the loop see the bytes

    TcpConnection fast = rig.connect();
    const auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(rig.get(fast, "http://fast/doc"), HttpLiteStatus::miss);
    EXPECT_LT(std::chrono::steady_clock::now() - start, 2s);

    // The parked client finishes its line later and still gets served.
    slow.write_all(" 0 100\r\n");
    EXPECT_EQ(ProxyRig::read_response(slow), HttpLiteStatus::miss);
}

TEST(ProxyConcurrency, AcceptChurnWithIdlePersistentConnections) {
    // Regression for the pfds out-of-bounds read: accepting mid-iteration
    // grew `clients` while the loop still indexed pfds[2+i] from the old
    // snapshot. Keep a pool of idle persistent connections polled every
    // iteration while churning accepts; ASan flags the old indexing.
    ProxyRig rig(/*workers=*/2);
    rig.start();

    std::vector<TcpConnection> idle;
    for (int i = 0; i < 20; ++i) idle.push_back(rig.connect());
    for (int round = 0; round < 15; ++round) {
        TcpConnection churn = rig.connect();  // new accept every round
        EXPECT_EQ(rig.get(churn, "http://churn/" + std::to_string(round)),
                  HttpLiteStatus::miss);
        // An idle connection from the standing pool must still be live.
        EXPECT_EQ(rig.get(idle[static_cast<std::size_t>(round)], "http://churn/0"),
                  HttpLiteStatus::local_hit);
    }
}

TEST(ProxyConcurrency, PipelinedRequestsOnOneConnectionStayOrdered) {
    // A connection is owned by exactly one worker at a time, so responses
    // come back in request order even with a multi-worker pool.
    ProxyRig rig(/*workers=*/4);
    rig.start();
    TcpConnection c = rig.connect();
    std::string burst;
    burst += format_request({false, false, "http://pipe/a", 0, 100});
    burst += format_request({false, false, "http://pipe/a", 0, 100});
    burst += format_request({false, false, "http://pipe/b", 0, 100});
    c.write_all(burst);
    EXPECT_EQ(ProxyRig::read_response(c), HttpLiteStatus::miss);
    EXPECT_EQ(ProxyRig::read_response(c), HttpLiteStatus::local_hit);
    EXPECT_EQ(ProxyRig::read_response(c), HttpLiteStatus::miss);
}

TEST(ProxyConcurrency, HalfClosedClientStillGetsBufferedRequestsServed) {
    ProxyRig rig(/*workers=*/1);
    rig.start();
    TcpConnection c = rig.connect();
    c.write_all(format_request({false, false, "http://halfclose/a", 0, 64}));
    ::shutdown(c.fd(), SHUT_WR);  // EOF after a complete buffered line
    EXPECT_EQ(ProxyRig::read_response(c), HttpLiteStatus::miss);
    EXPECT_FALSE(c.read_line());  // proxy closes once the buffer drains
}

TEST(ProxyConcurrency, OversizedRequestLineGetsDropped) {
    ProxyRig rig(/*workers=*/1);
    rig.start();
    TcpConnection garbage = rig.connect();
    const std::string chunk(8 * 1024, 'a');
    try {
        // > kMaxRequestLineBytes with no newline: the proxy must hang up
        // rather than buffer forever. The write itself may fail with
        // EPIPE once the proxy closes — that is the expected outcome.
        for (int i = 0; i < 10; ++i) garbage.write_all(chunk);
    } catch (const std::exception&) {
    }
    EXPECT_FALSE(garbage.read_line());  // dropped, no ERROR reply

    // And the proxy is still healthy for well-behaved clients.
    TcpConnection ok = rig.connect();
    EXPECT_EQ(rig.get(ok, "http://after-garbage/doc"), HttpLiteStatus::miss);
}

TEST(ProxyConcurrency, WorkerPoolOverlapsSlowOriginFetches) {
    // Four distinct misses against an origin that takes 300 ms per reply:
    // serial service costs >= 1200 ms, a 4-worker pool finishes in ~300.
    ProxyRig rig(/*workers=*/4, ShareMode::none, /*origin_delay=*/300ms);
    rig.start();
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    for (int i = 0; i < 4; ++i) {
        clients.emplace_back([&rig, i] {
            TcpConnection c = rig.connect();
            EXPECT_EQ(rig.get(c, "http://parallel/" + std::to_string(i)),
                      HttpLiteStatus::miss);
        });
    }
    for (auto& t : clients) t.join();
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_LT(elapsed, 900ms) << "origin fetches did not overlap";
    EXPECT_EQ(rig.proxy->stats().origin_fetches, 4u);
}

TEST(ProxyConcurrency, StaleIcpRepliesAreCountedNotDelivered) {
    // A "sibling" that replies with a bogus request number (a restarted
    // peer, or a reply outliving its round). The reply must be dropped
    // and counted — never treated as this round's answer.
    ProxyRig rig(/*workers=*/1, ShareMode::icp, 0ms, /*query_timeout=*/60ms);
    UdpSocket fake;  // stands in for sibling 2's ICP socket
    rig.proxy->add_sibling(2, fake.local_endpoint(), Endpoint::loopback(1));
    rig.start();

    std::thread client([&rig] {
        TcpConnection c = rig.connect();
        // Round times out (only a stale reply arrives) and falls to origin.
        EXPECT_EQ(rig.get(c, "http://stale/doc"), HttpLiteStatus::miss);
    });

    std::optional<Datagram> query;
    for (int i = 0; i < 50 && !query; ++i) {
        auto d = fake.receive(100);
        if (!d) continue;
        if (decode_header(d->payload).opcode == IcpOpcode::query) query = std::move(d);
    }
    ASSERT_TRUE(query.has_value()) << "proxy never queried the sibling";
    const IcpQuery q = decode_query(query->payload);

    IcpReply stale;
    stale.opcode = IcpOpcode::miss;
    stale.request_number = q.request_number + 7777;  // some other round's number
    stale.sender_host = 2;
    stale.url = q.url;
    const auto payload = encode_reply(stale);
    fake.send_to(query->from, payload);
    client.join();

    // The drop is visible in stats once the datagram has been processed.
    MiniProxyStats s;
    for (int i = 0; i < 50; ++i) {
        s = rig.proxy->stats();
        if (s.icp_stale_replies >= 1) break;
        std::this_thread::sleep_for(20ms);
    }
    EXPECT_EQ(s.icp_stale_replies, 1u);
    EXPECT_EQ(s.icp_replies_received, 0u);  // never surfaced to the round
    EXPECT_GE(s.icp_queries_sent, 1u);
}

TEST(ProxyConcurrency, WorkerGaugesReturnToZeroWhenIdle) {
    ProxyRig rig(/*workers=*/2);
    rig.start();
    {
        TcpConnection c = rig.connect();
        EXPECT_EQ(rig.get(c, "http://gauge/doc"), HttpLiteStatus::miss);
    }
    // The worker decrements the inflight gauge after writing the response,
    // so the client can observe the reply first — poll briefly for idle.
    obs::MetricsSnapshot snap;
    for (int i = 0; i < 50; ++i) {
        snap = obs::metrics().snapshot();
        const auto* q = snap.find("sc_proxy_worker_queue_depth");
        const auto* f = snap.find("sc_proxy_inflight_requests");
        if (q != nullptr && f != nullptr && q->gauge == 0.0 && f->gauge == 0.0) break;
        std::this_thread::sleep_for(20ms);
    }
    const auto* queue = snap.find("sc_proxy_worker_queue_depth");
    const auto* inflight = snap.find("sc_proxy_inflight_requests");
    ASSERT_NE(queue, nullptr);
    ASSERT_NE(inflight, nullptr);
    EXPECT_EQ(queue->gauge, 0.0);
    EXPECT_EQ(inflight->gauge, 0.0);
}

}  // namespace
}  // namespace sc
