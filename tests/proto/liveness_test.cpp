// Failure detection and recovery (paper Section VI-B: the implementation
// "leverages Squid's built-in support to detect failure and recovery of
// neighbor proxies, and reinitializes a failed neighbor's bit array when
// it recovers") plus the ICP_OP_HIT_OBJ inline-object optimization.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

MiniProxyConfig fast_liveness_cfg(NodeId id, Endpoint origin) {
    MiniProxyConfig cfg;
    cfg.id = id;
    cfg.origin = origin;
    cfg.mode = ShareMode::summary;
    cfg.update_threshold = 0.0;
    cfg.keepalive_interval = 60ms;
    cfg.liveness_strikes = 3;
    return cfg;
}

HttpLiteStatus get(MiniProxy& p, const std::string& url, std::uint64_t version = 0,
                   std::uint64_t size = 100) {
    TcpConnection c = TcpConnection::connect(p.http_endpoint());
    c.write_all(format_request({false, false, url, version, size}));
    const auto line = c.read_line();
    EXPECT_TRUE(line.has_value());
    const auto header = parse_response_header(*line);
    EXPECT_TRUE(header.has_value());
    c.discard_exact(header->size);
    return header->status;
}

TEST(Liveness, KeepalivesFlowBetweenPeers) {
    OriginServer origin({});
    auto a = std::make_unique<MiniProxy>(fast_liveness_cfg(1, origin.endpoint()));
    auto b = std::make_unique<MiniProxy>(fast_liveness_cfg(2, origin.endpoint()));
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();
    std::this_thread::sleep_for(400ms);
    EXPECT_GT(a->stats().keepalives_sent, 2u);
    EXPECT_GT(a->stats().keepalives_received, 2u);
    EXPECT_EQ(a->stats().sibling_death_events, 0u);  // both healthy
    a->stop();
    b->stop();
    origin.stop();
}

TEST(Liveness, DeadSiblingIsDetectedAndSkipped) {
    OriginServer origin({});
    auto a = std::make_unique<MiniProxy>(fast_liveness_cfg(1, origin.endpoint()));
    auto b = std::make_unique<MiniProxy>(fast_liveness_cfg(2, origin.endpoint()));
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();

    // b caches a document and advertises it.
    EXPECT_EQ(get(*b, "http://dies/with-b"), HttpLiteStatus::miss);
    std::this_thread::sleep_for(150ms);

    // Kill b. After 3 missed keepalive intervals a declares it dead and
    // drops its summary replica.
    b->stop();
    b.reset();
    std::this_thread::sleep_for(500ms);
    EXPECT_GE(a->stats().sibling_death_events, 1u);

    // A request that b could have served now goes straight to the origin
    // without any query (the replica is gone) and without hanging.
    const auto before = a->stats().icp_queries_sent;
    EXPECT_EQ(get(*a, "http://dies/with-b"), HttpLiteStatus::miss);
    EXPECT_EQ(a->stats().icp_queries_sent, before);
    a->stop();
    origin.stop();
}

TEST(Liveness, RecoveredSiblingGetsFullSummary) {
    OriginServer origin({});
    auto a = std::make_unique<MiniProxy>(fast_liveness_cfg(1, origin.endpoint()));

    // Remember b's ports so the "restarted" instance can reuse them.
    std::uint16_t b_http = 0, b_icp = 0;
    {
        auto b = std::make_unique<MiniProxy>(fast_liveness_cfg(2, origin.endpoint()));
        b_http = b->http_endpoint().port;
        b_icp = b->icp_endpoint().port;
        a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
        b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
        a->start();
        b->start();
        EXPECT_EQ(get(*a, "http://survives/on-a"), HttpLiteStatus::miss);
        std::this_thread::sleep_for(150ms);
        b->stop();
    }  // b is gone

    std::this_thread::sleep_for(500ms);
    ASSERT_GE(a->stats().sibling_death_events, 1u);

    // Restart b on the same ports; its keepalives reach a, which must
    // mark it recovered and push a full summary refresh.
    MiniProxyConfig cfg_b2 = fast_liveness_cfg(2, origin.endpoint());
    cfg_b2.http_port = b_http;
    cfg_b2.icp_port = b_icp;
    auto b2 = std::make_unique<MiniProxy>(cfg_b2);
    b2->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    b2->start();
    std::this_thread::sleep_for(400ms);

    EXPECT_GE(a->stats().sibling_recovery_events, 1u);
    EXPECT_GE(b2->stats().updates_received, 1u);  // the recovery refresh
    // And b2 can immediately exploit it: a's document is a remote hit.
    EXPECT_EQ(get(*b2, "http://survives/on-a"), HttpLiteStatus::remote_hit);

    a->stop();
    b2->stop();
    origin.stop();
}

TEST(HitObj, SmallObjectsRideInline) {
    OriginServer origin({});
    MiniProxyConfig cfg1 = fast_liveness_cfg(1, origin.endpoint());
    MiniProxyConfig cfg2 = fast_liveness_cfg(2, origin.endpoint());
    cfg1.hit_obj_max_bytes = 4096;
    cfg2.hit_obj_max_bytes = 4096;
    auto a = std::make_unique<MiniProxy>(cfg1);
    auto b = std::make_unique<MiniProxy>(cfg2);
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();

    EXPECT_EQ(get(*a, "http://tiny/doc", 0, 500), HttpLiteStatus::miss);
    std::this_thread::sleep_for(150ms);
    EXPECT_EQ(get(*b, "http://tiny/doc", 0, 500), HttpLiteStatus::remote_hit);
    EXPECT_EQ(a->stats().hit_obj_served, 1u);
    EXPECT_EQ(b->stats().hit_obj_used, 1u);
    EXPECT_EQ(b->stats().sibling_fetches, 0u);  // no TCP fetch needed

    // Large objects still use the TCP path.
    EXPECT_EQ(get(*a, "http://big/doc", 0, 50'000), HttpLiteStatus::miss);
    std::this_thread::sleep_for(150ms);
    EXPECT_EQ(get(*b, "http://big/doc", 0, 50'000), HttpLiteStatus::remote_hit);
    EXPECT_EQ(b->stats().sibling_fetches, 1u);

    a->stop();
    b->stop();
    origin.stop();
}

TEST(HitObj, StaleInlineCopyIsRejected) {
    OriginServer origin({});
    MiniProxyConfig cfg1 = fast_liveness_cfg(1, origin.endpoint());
    MiniProxyConfig cfg2 = fast_liveness_cfg(2, origin.endpoint());
    cfg1.hit_obj_max_bytes = 4096;
    cfg2.hit_obj_max_bytes = 4096;
    auto a = std::make_unique<MiniProxy>(cfg1);
    auto b = std::make_unique<MiniProxy>(cfg2);
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();

    EXPECT_EQ(get(*a, "http://versioned/doc", 1, 300), HttpLiteStatus::miss);
    std::this_thread::sleep_for(150ms);
    // b wants version 2; a's inline copy is version 1 -> must not be used.
    EXPECT_EQ(get(*b, "http://versioned/doc", 2, 300), HttpLiteStatus::miss);
    EXPECT_EQ(b->stats().hit_obj_used, 0u);
    EXPECT_EQ(origin.requests_served(), 2u);

    a->stop();
    b->stop();
    origin.stop();
}

}  // namespace
}  // namespace sc
