// The Squid Cache Digest variant (paper Section VI: "A variant of our
// approach called cache digest is also implemented in Squid 1.2b20"):
// instead of pushing deltas, each proxy periodically FETCHES every
// sibling's full digest over TCP.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

MiniProxyConfig digest_cfg(NodeId id, Endpoint origin) {
    MiniProxyConfig cfg;
    cfg.id = id;
    cfg.origin = origin;
    cfg.mode = ShareMode::digest_pull;
    cfg.digest_refresh = 120ms;
    return cfg;
}

HttpLiteStatus get(MiniProxy& p, const std::string& url, std::uint64_t size = 100) {
    TcpConnection c = TcpConnection::connect(p.http_endpoint());
    c.write_all(format_request({false, false, url, 0, size}));
    const auto header = parse_response_header(*c.read_line());
    EXPECT_TRUE(header.has_value());
    c.discard_exact(header->size);
    return header->status;
}

TEST(DigestPull, DigestIsServedOverTcp) {
    OriginServer origin({});
    auto p = std::make_unique<MiniProxy>(digest_cfg(1, origin.endpoint()));
    p->start();
    (void)get(*p, "http://warm/doc");

    // Fetch the digest by hand and decode it.
    TcpConnection c = TcpConnection::connect(p->http_endpoint());
    HttpLiteRequest dget;
    dget.digest = true;
    dget.url = "-";
    c.write_all(format_request(dget));
    const auto header = parse_response_header(*c.read_line());
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->status, HttpLiteStatus::ok);
    std::string body;
    c.read_exact(header->size, body);
    const auto update = decode_dirupdate(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(body.data()), body.size()));
    EXPECT_TRUE(update.full);
    EXPECT_EQ(update.sender_host, 1u);

    // The digest must advertise the cached document.
    SummaryCacheNode probe(
        SummaryCacheNodeConfig{.node_id = 99, .expected_docs = 1024, .bloom = {}});
    ASSERT_EQ(probe.apply_sibling_update(update), SummaryApplyResult::applied);
    EXPECT_TRUE(probe.sibling_may_contain(1, "http://warm/doc"));
    EXPECT_GE(p->stats().digests_served, 1u);
    p->stop();
    origin.stop();
}

TEST(DigestPull, PeriodicPullEnablesRemoteHits) {
    OriginServer origin({});
    auto a = std::make_unique<MiniProxy>(digest_cfg(1, origin.endpoint()));
    auto b = std::make_unique<MiniProxy>(digest_cfg(2, origin.endpoint()));
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();

    EXPECT_EQ(get(*a, "http://pulled/doc"), HttpLiteStatus::miss);
    std::this_thread::sleep_for(350ms);  // at least one refresh cycle
    EXPECT_GE(b->stats().digests_fetched, 1u);
    EXPECT_EQ(get(*b, "http://pulled/doc"), HttpLiteStatus::remote_hit);
    EXPECT_EQ(origin.requests_served(), 1u);

    // Pull mode pushes nothing.
    EXPECT_EQ(a->stats().updates_sent, 0u);
    EXPECT_EQ(b->stats().updates_received, 0u);

    a->stop();
    b->stop();
    origin.stop();
}

TEST(DigestPull, StaleDigestCausesFalseMissNotWrongAnswer) {
    OriginServer origin({});
    MiniProxyConfig cfg_a = digest_cfg(1, origin.endpoint());
    MiniProxyConfig cfg_b = digest_cfg(2, origin.endpoint());
    cfg_b.digest_refresh = std::chrono::milliseconds(60'000);  // b never refreshes again
    auto a = std::make_unique<MiniProxy>(cfg_a);
    auto b = std::make_unique<MiniProxy>(cfg_b);
    a->add_sibling(2, b->icp_endpoint(), b->http_endpoint());
    b->add_sibling(1, a->icp_endpoint(), a->http_endpoint());
    a->start();
    b->start();
    std::this_thread::sleep_for(150ms);  // b's single startup pull happens

    // a caches a doc AFTER b's only pull: b's digest of a is stale.
    EXPECT_EQ(get(*a, "http://late/doc"), HttpLiteStatus::miss);
    EXPECT_EQ(get(*b, "http://late/doc"), HttpLiteStatus::miss);  // false miss
    EXPECT_EQ(origin.requests_served(), 2u);

    a->stop();
    b->stop();
    origin.stop();
}

}  // namespace
}  // namespace sc
