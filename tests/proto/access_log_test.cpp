// The Squid-style access log every real proxy ships with: one line per
// client request with status, size, and latency.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty()) lines.push_back(line);
    return lines;
}

TEST(AccessLog, OneLinePerRequestWithStatusAndUrl) {
    const std::string path = ::testing::TempDir() + "/sc_access_log_test.log";
    std::remove(path.c_str());

    OriginServer origin({});
    MiniProxyConfig cfg;
    cfg.id = 7;
    cfg.origin = origin.endpoint();
    cfg.mode = ShareMode::none;
    cfg.access_log_path = path;
    auto p = std::make_unique<MiniProxy>(cfg);
    p->start();

    const auto get = [&](const std::string& url) {
        TcpConnection c = TcpConnection::connect(p->http_endpoint());
        c.write_all(format_request({false, false, url, 0, 123}));
        const auto header = parse_response_header(*c.read_line());
        c.discard_exact(header->size);
        return header->status;
    };

    EXPECT_EQ(get("http://logged/a"), HttpLiteStatus::miss);
    EXPECT_EQ(get("http://logged/a"), HttpLiteStatus::local_hit);
    p->stop();

    const auto lines = read_lines(path);
    ASSERT_EQ(lines.size(), 2u);

    // "<epoch-ms> <proxy-id> <status> <size> <latency-us> <url>"
    std::istringstream first(lines[0]);
    long long epoch = 0, size = 0, latency = -1;
    int id = 0;
    std::string status, url;
    first >> epoch >> id >> status >> size >> latency >> url;
    EXPECT_GT(epoch, 1'000'000'000'000LL);  // sane epoch-ms
    EXPECT_EQ(id, 7);
    EXPECT_EQ(status, "MISS");
    EXPECT_EQ(size, 123);
    EXPECT_GE(latency, 0);
    EXPECT_EQ(url, "http://logged/a");

    std::istringstream second(lines[1]);
    second >> epoch >> id >> status;
    EXPECT_EQ(status, "LOCAL_HIT");
    std::remove(path.c_str());
}

TEST(AccessLog, UnwritablePathFailsConstruction) {
    OriginServer origin({});
    MiniProxyConfig cfg;
    cfg.origin = origin.endpoint();
    cfg.access_log_path = "/nonexistent-dir/access.log";
    EXPECT_THROW(MiniProxy proxy(cfg), std::runtime_error);
}

TEST(AccessLog, DisabledByDefault) {
    OriginServer origin({});
    MiniProxyConfig cfg;
    cfg.origin = origin.endpoint();
    MiniProxy p(cfg);  // no throw, no file created
    SUCCEED();
}

}  // namespace
}  // namespace sc
