// Regression tests for two shutdown races fixed alongside the thread-safety
// annotation sweep:
//
//  * stop() used to set stopping_ and notify_all WITHOUT holding jobs_mu_.
//    A worker could evaluate the wait predicate (false), get descheduled,
//    miss the notify, and block forever — stop() then hung in join().
//  * run() used to destroy sessions_ on its way out, while workers that had
//    not yet observed stopping_ still held raw Session* via their Job —
//    a use-after-free the sanitizer job catches when timing cooperates.
//
// Neither race fires deterministically; these tests grind the window with
// repeated start/stop cycles (idle and mid-flight) so a reintroduction shows
// up as a hang (caught by the async deadline) or an ASan report.
#include <gtest/gtest.h>

#include <ctime>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "proto/mini_proxy.hpp"
#include "proto/origin_server.hpp"

namespace sc {
namespace {

using namespace std::chrono_literals;

/// stop() must finish promptly; a lost wakeup turns it into a forever-join.
void stop_with_deadline(MiniProxy& proxy) {
    auto done = std::async(std::launch::async, [&proxy] { proxy.stop(); });
    ASSERT_EQ(done.wait_for(10s), std::future_status::ready)
        << "MiniProxy::stop() hung: a worker missed the shutdown wakeup";
    done.get();
}

TEST(ProxyShutdown, RepeatedIdleStartStopNeverHangs) {
    // Idle workers sit in the condition-variable wait, which is exactly
    // where the lost-wakeup window lives. Many short cycles maximize the
    // chance of stopping while a worker is between predicate and wait.
    OriginServer origin(OriginServer::Config{.port = 0});
    for (int round = 0; round < 40; ++round) {
        MiniProxyConfig cfg;
        cfg.id = 1;
        cfg.origin = origin.endpoint();
        cfg.workers = 4;
        MiniProxy proxy(cfg);
        proxy.start();
        if (round % 2 == 0) std::this_thread::sleep_for(1ms);
        stop_with_deadline(proxy);
    }
    origin.stop();
}

TEST(ProxyShutdown, StopWithRequestsInFlightKeepsSessionsAliveForWorkers) {
    // Workers hold raw Session* while talking to a deliberately slow
    // origin; stop() must not tear the session table down until every
    // worker has joined. Clients may see their connection drop — that is
    // fine — but the proxy must neither crash nor trip ASan.
    OriginServer origin(OriginServer::Config{.port = 0, .reply_delay = 30ms});
    for (int round = 0; round < 8; ++round) {
        MiniProxyConfig cfg;
        cfg.id = 1;
        cfg.origin = origin.endpoint();
        cfg.workers = 4;
        MiniProxy proxy(cfg);
        proxy.start();

        std::vector<std::thread> clients;
        for (int c = 0; c < 6; ++c) {
            clients.emplace_back([&proxy, c, round] {
                try {
                    TcpConnection conn = TcpConnection::connect(proxy.http_endpoint());
                    const std::string url = "http://host/inflight-" +
                                            std::to_string(round) + "-" +
                                            std::to_string(c);
                    conn.write_all(format_request({false, false, url, 0, 256}));
                    (void)conn.read_line();  // may fail: shutdown races the reply
                } catch (const std::exception&) {
                    // Connection reset mid-shutdown is expected, not a failure.
                }
            });
        }
        // Let the requests reach the workers, then yank the proxy down
        // while they are mid-origin-fetch and still holding Session*.
        std::this_thread::sleep_for(10ms);
        stop_with_deadline(proxy);
        for (std::thread& t : clients) t.join();
    }
    origin.stop();
}

TEST(ProxyShutdown, IdleLoopDoesNotBusyWake) {
    // The event loop has no fixed tick: with no sessions, no timers due,
    // and a long keepalive interval, it must SLEEP in the backend wait —
    // not spin. Both the wakeup counter and process CPU time bound it.
    OriginServer origin(OriginServer::Config{.port = 0});
    MiniProxyConfig cfg;
    cfg.id = 1;
    cfg.origin = origin.endpoint();
    cfg.workers = 1;
    cfg.keepalive_interval = 60s;   // no liveness tick inside the window
    cfg.idle_timeout = 0ms;         // no idle-sweep timer either
    MiniProxy proxy(cfg);
    proxy.start();
    std::this_thread::sleep_for(50ms);  // let startup wakeups settle

    const std::uint64_t wakeups_before = proxy.stats().loop_wakeups;
    timespec cpu_before{};
    ASSERT_EQ(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &cpu_before), 0);
    std::this_thread::sleep_for(500ms);
    timespec cpu_after{};
    ASSERT_EQ(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &cpu_after), 0);
    const std::uint64_t wakeups = proxy.stats().loop_wakeups - wakeups_before;

    // A 50ms tick would show ~10 wakeups here; a spin, thousands. Allow a
    // generous margin for stray signals and scheduler noise.
    EXPECT_LE(wakeups, 5u) << "the idle event loop is ticking";
    const double cpu_s =
        static_cast<double>(cpu_after.tv_sec - cpu_before.tv_sec) +
        static_cast<double>(cpu_after.tv_nsec - cpu_before.tv_nsec) * 1e-9;
    // Whole-process CPU over a 500ms idle window (the origin's accept
    // thread polls at 50ms, workers sit in cv waits): a spinning loop
    // burns ~0.5s here, two orders of magnitude above this bound.
    EXPECT_LT(cpu_s, 0.25) << "idle proxy burned " << cpu_s << "s of CPU";

    stop_with_deadline(proxy);
    origin.stop();
}

}  // namespace
}  // namespace sc
