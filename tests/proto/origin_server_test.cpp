#include "proto/origin_server.hpp"

#include <gtest/gtest.h>

#include <chrono>

#include "proto/http_lite.hpp"
#include "proto/tcp.hpp"

namespace sc {
namespace {

TEST(OriginServer, ServesRequestedByteCount) {
    OriginServer server({.port = 0, .reply_delay = std::chrono::milliseconds(0)});
    TcpConnection c = TcpConnection::connect(server.endpoint());
    c.write_all(format_request({false, false, "http://any/url", 0, 5000}));
    const auto line = c.read_line();
    ASSERT_TRUE(line.has_value());
    const auto header = parse_response_header(*line);
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->status, HttpLiteStatus::ok);
    EXPECT_EQ(header->size, 5000u);
    std::string body;
    c.read_exact(5000, body);
    EXPECT_EQ(body.size(), 5000u);
    EXPECT_EQ(server.requests_served(), 1u);
}

TEST(OriginServer, PersistentConnectionServesMany) {
    OriginServer server({});
    TcpConnection c = TcpConnection::connect(server.endpoint());
    for (int i = 0; i < 20; ++i) {
        c.write_all(format_request({false, false, "http://u/" + std::to_string(i), 0,
                                    static_cast<std::uint64_t>(10 + i)}));
        const auto header = parse_response_header(*c.read_line());
        ASSERT_TRUE(header.has_value());
        ASSERT_EQ(header->size, static_cast<std::uint64_t>(10 + i));
        c.discard_exact(header->size);
    }
    EXPECT_EQ(server.requests_served(), 20u);
}

TEST(OriginServer, ConcurrentClients) {
    OriginServer server({});
    std::vector<std::thread> clients;
    std::atomic<int> ok{0};
    for (int t = 0; t < 8; ++t) {
        clients.emplace_back([&server, &ok] {
            TcpConnection c = TcpConnection::connect(server.endpoint());
            for (int i = 0; i < 10; ++i) {
                c.write_all(format_request({false, false, "http://c/u", 0, 100}));
                const auto header = parse_response_header(*c.read_line());
                ASSERT_TRUE(header.has_value());
                c.discard_exact(header->size);
                ++ok;
            }
        });
    }
    for (auto& t : clients) t.join();
    EXPECT_EQ(ok.load(), 80);
    EXPECT_EQ(server.requests_served(), 80u);
}

TEST(OriginServer, ReplyDelayIsApplied) {
    OriginServer server({.port = 0, .reply_delay = std::chrono::milliseconds(80)});
    TcpConnection c = TcpConnection::connect(server.endpoint());
    const auto start = std::chrono::steady_clock::now();
    c.write_all(format_request({false, false, "http://slow/u", 0, 10}));
    ASSERT_TRUE(c.read_line().has_value());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(), 75);
}

TEST(OriginServer, MalformedRequestGetsError) {
    OriginServer server({});
    TcpConnection c = TcpConnection::connect(server.endpoint());
    c.write_all("NONSENSE LINE\n");
    const auto header = parse_response_header(*c.read_line());
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->status, HttpLiteStatus::error);
}

TEST(OriginServer, StopIsIdempotent) {
    OriginServer server({});
    server.stop();
    server.stop();
}

}  // namespace
}  // namespace sc
