#include "proto/http_lite.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(HttpLite, RequestRoundTrip) {
    HttpLiteRequest r;
    r.url = "http://s1.dec/d42";
    r.version = 7;
    r.size = 8192;
    const std::string line = format_request(r);
    EXPECT_EQ(line, "GET http://s1.dec/d42 7 8192\r\n");
    const auto parsed = parse_request("GET http://s1.dec/d42 7 8192");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_FALSE(parsed->sibling_only);
    EXPECT_EQ(parsed->url, r.url);
    EXPECT_EQ(parsed->version, 7u);
    EXPECT_EQ(parsed->size, 8192u);
}

TEST(HttpLite, SgetRoundTrip) {
    HttpLiteRequest r;
    r.sibling_only = true;
    r.url = "http://x/y";
    const auto parsed = parse_request("SGET http://x/y 0 0");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->sibling_only);
    EXPECT_EQ(format_request(r), "SGET http://x/y 0 0\r\n");
}

TEST(HttpLite, MalformedRequestsRejected) {
    EXPECT_FALSE(parse_request("").has_value());
    EXPECT_FALSE(parse_request("GET").has_value());
    EXPECT_FALSE(parse_request("GET url 1").has_value());           // too few
    EXPECT_FALSE(parse_request("GET url 1 2 3").has_value());       // too many
    EXPECT_FALSE(parse_request("POST url 1 2").has_value());        // bad verb
    EXPECT_FALSE(parse_request("GET url one 2").has_value());       // bad version
    EXPECT_FALSE(parse_request("GET url 1 -5").has_value());        // bad size
}

TEST(HttpLite, ExtraWhitespaceTolerated) {
    const auto parsed = parse_request("GET  http://x/y   1  2");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->url, "http://x/y");
}

TEST(HttpLite, ResponseHeaderRoundTrip) {
    for (HttpLiteStatus s :
         {HttpLiteStatus::ok, HttpLiteStatus::local_hit, HttpLiteStatus::remote_hit,
          HttpLiteStatus::miss, HttpLiteStatus::not_cached, HttpLiteStatus::error}) {
        const HttpLiteResponseHeader h{s, 12345};
        const std::string line = format_response_header(h);
        // Strip the trailing CRLF the way read_line does.
        const auto parsed = parse_response_header(line.substr(0, line.size() - 2));
        ASSERT_TRUE(parsed.has_value()) << http_lite_status_name(s);
        EXPECT_EQ(parsed->status, s);
        EXPECT_EQ(parsed->size, 12345u);
    }
}

TEST(HttpLite, MalformedResponsesRejected) {
    EXPECT_FALSE(parse_response_header("").has_value());
    EXPECT_FALSE(parse_response_header("OK").has_value());
    EXPECT_FALSE(parse_response_header("WHAT 10").has_value());
    EXPECT_FALSE(parse_response_header("OK ten").has_value());
    EXPECT_FALSE(parse_response_header("OK 1 2").has_value());
}

TEST(HttpLite, StatusNames) {
    EXPECT_STREQ(http_lite_status_name(HttpLiteStatus::local_hit), "LOCAL_HIT");
    EXPECT_EQ(parse_http_lite_status("REMOTE_HIT"), HttpLiteStatus::remote_hit);
    EXPECT_FALSE(parse_http_lite_status("nope").has_value());
}

TEST(HttpLite, SynthBody) {
    EXPECT_EQ(synth_body(0), "");
    EXPECT_EQ(synth_body(3), "xxx");
    EXPECT_EQ(synth_body(1000).size(), 1000u);
}

}  // namespace
}  // namespace sc
