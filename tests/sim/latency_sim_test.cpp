#include "sim/latency_sim.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

WisconsinConfig small_cfg(BenchProtocol protocol) {
    WisconsinConfig cfg;
    cfg.protocol = protocol;
    cfg.clients_per_proxy = 6;
    cfg.requests_per_client = 40;
    cfg.inherent_hit_ratio = 0.25;
    cfg.cache_bytes = 16ull * 1024 * 1024;
    return cfg;
}

TEST(LatencySim, CompletesAllRequests) {
    const auto cfg = small_cfg(BenchProtocol::no_icp);
    const auto r = run_latency_sim(cfg);
    EXPECT_EQ(r.requests, static_cast<std::uint64_t>(cfg.num_proxies) *
                              cfg.clients_per_proxy * cfg.requests_per_client);
    EXPECT_GT(r.duration_s, 0.0);
    EXPECT_GT(r.client_latency_s.mean(), 0.5);  // dominated by the 1 s origin
    EXPECT_LT(r.client_latency_s.mean(), 3.0);
}

TEST(LatencySim, HitRatioMatchesWorkloadTarget) {
    const auto r = run_latency_sim(small_cfg(BenchProtocol::no_icp));
    EXPECT_NEAR(r.hit_ratio(), 0.25, 0.10);
    EXPECT_EQ(r.remote_hits, 0u);  // disjoint workloads
    EXPECT_EQ(r.queries_sent, 0u);
}

TEST(LatencySim, IcpQueriesEveryMissAndCostsLatency) {
    const auto base = run_latency_sim(small_cfg(BenchProtocol::no_icp));
    const auto icp = run_latency_sim(small_cfg(BenchProtocol::icp));
    const auto cfg = small_cfg(BenchProtocol::icp);
    // Every local miss multicasts to N-1 siblings.
    const std::uint64_t misses = icp.requests - icp.local_hits;
    EXPECT_EQ(icp.queries_sent, misses * (cfg.num_proxies - 1));
    // Measured, not modeled: ICP must cost latency with zero remote hits.
    EXPECT_GT(icp.client_latency_s.mean(), base.client_latency_s.mean());
    EXPECT_GT(icp.max_cpu_utilization, base.max_cpu_utilization);
}

TEST(LatencySim, ScIcpStaysNearBaseline) {
    const auto base = run_latency_sim(small_cfg(BenchProtocol::no_icp));
    const auto icp = run_latency_sim(small_cfg(BenchProtocol::icp));
    const auto sc = run_latency_sim(small_cfg(BenchProtocol::sc_icp));
    EXPECT_LT(sc.queries_sent, icp.queries_sent / 10);
    EXPECT_LT(sc.client_latency_s.mean(), icp.client_latency_s.mean());
    EXPECT_NEAR(sc.client_latency_s.mean(), base.client_latency_s.mean(),
                base.client_latency_s.mean() * 0.05);
}

TEST(LatencySim, DeterministicAcrossRuns) {
    const auto a = run_latency_sim(small_cfg(BenchProtocol::icp));
    const auto b = run_latency_sim(small_cfg(BenchProtocol::icp));
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.client_latency_s.mean(), b.client_latency_s.mean());
    EXPECT_DOUBLE_EQ(a.duration_s, b.duration_s);
    EXPECT_EQ(a.queries_sent, b.queries_sent);
}

TEST(LatencySim, AgreesWithClosedFormModelOnOrdering) {
    // The independent check promised in DESIGN.md: the measured latencies
    // must rank the protocols the same way the queueing model does.
    const auto m_base = run_wisconsin(small_cfg(BenchProtocol::no_icp));
    const auto m_icp = run_wisconsin(small_cfg(BenchProtocol::icp));
    const auto s_base = run_latency_sim(small_cfg(BenchProtocol::no_icp));
    const auto s_icp = run_latency_sim(small_cfg(BenchProtocol::icp));
    EXPECT_GT(m_icp.avg_latency_s, m_base.avg_latency_s);
    EXPECT_GT(s_icp.client_latency_s.mean(), s_base.client_latency_s.mean());
    // Absolute levels within a factor of two of each other.
    EXPECT_LT(std::abs(s_base.client_latency_s.mean() - m_base.avg_latency_s),
              m_base.avg_latency_s);
}

}  // namespace
}  // namespace sc
