#include "sim/wisconsin.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "trace/generator.hpp"

namespace sc {
namespace {

WisconsinConfig small_cfg(BenchProtocol protocol, double hit_ratio = 0.25) {
    WisconsinConfig cfg;
    cfg.protocol = protocol;
    cfg.inherent_hit_ratio = hit_ratio;
    cfg.clients_per_proxy = 10;
    cfg.requests_per_client = 120;
    cfg.cache_bytes = 32ull * 1024 * 1024;
    return cfg;
}

TEST(WisconsinWorkload, ClientsUseDisjointUrlSpaces) {
    const auto wl = generate_wisconsin_workload(small_cfg(BenchProtocol::no_icp));
    std::unordered_map<std::string, std::uint32_t> owner;
    for (const Request& r : wl) {
        const auto [it, inserted] = owner.try_emplace(r.url, r.client_id);
        ASSERT_EQ(it->second, r.client_id) << r.url;  // no cross-client overlap
    }
}

TEST(WisconsinWorkload, VolumeMatchesConfig) {
    const auto cfg = small_cfg(BenchProtocol::no_icp);
    const auto wl = generate_wisconsin_workload(cfg);
    EXPECT_EQ(wl.size(),
              static_cast<std::size_t>(cfg.num_proxies) * cfg.clients_per_proxy *
                  cfg.requests_per_client);
}

TEST(WisconsinWorkload, RepeatFractionNearTarget) {
    const auto cfg = small_cfg(BenchProtocol::no_icp, 0.45);
    const auto wl = generate_wisconsin_workload(cfg);
    std::unordered_set<std::string> seen;
    std::uint64_t repeats = 0;
    for (const Request& r : wl)
        if (!seen.insert(r.url).second) ++repeats;
    const double frac = static_cast<double>(repeats) / static_cast<double>(wl.size());
    EXPECT_NEAR(frac, 0.45, 0.05);
}

TEST(WisconsinWorkload, DeterministicInSeed) {
    const auto cfg = small_cfg(BenchProtocol::no_icp);
    EXPECT_EQ(generate_wisconsin_workload(cfg), generate_wisconsin_workload(cfg));
}

TEST(WisconsinBench, NoIcpBaselineSane) {
    const auto row = run_wisconsin(small_cfg(BenchProtocol::no_icp));
    EXPECT_NEAR(row.hit_ratio, 0.25, 0.08);
    EXPECT_EQ(row.remote_hit_ratio, 0.0);
    EXPECT_GT(row.avg_latency_s, 0.5);  // dominated by the 1 s server delay
    EXPECT_LT(row.avg_latency_s, 2.0);
    EXPECT_GT(row.user_cpu_s, 0.0);
    EXPECT_GT(row.udp_msgs, 0.0);  // keepalives only
    EXPECT_GT(row.tcp_pkts, row.udp_msgs);
}

TEST(WisconsinBench, IcpMultipliesUdpTraffic) {
    const auto base = run_wisconsin(small_cfg(BenchProtocol::no_icp));
    const auto icp = run_wisconsin(small_cfg(BenchProtocol::icp));
    // The paper's Table II: UDP messages up by a factor of 73-90. The
    // exact factor depends on the keepalive calibration; the reproduction
    // must at least blow up by an order of magnitude.
    EXPECT_GT(icp.udp_msgs, 20.0 * base.udp_msgs);
    // CPU overhead present but bounded (paper: user +20-24%, sys +7-10%).
    EXPECT_GT(icp.user_cpu_s, base.user_cpu_s * 1.05);
    EXPECT_LT(icp.user_cpu_s, base.user_cpu_s * 1.60);
    EXPECT_GT(icp.sys_cpu_s, base.sys_cpu_s * 1.02);
    // Latency penalty without any remote-hit benefit.
    EXPECT_GT(icp.avg_latency_s, base.avg_latency_s);
    // There are no remote hits by construction.
    EXPECT_EQ(icp.remote_hit_ratio, 0.0);
}

TEST(WisconsinBench, ScIcpEliminatesMostOverhead) {
    const auto base = run_wisconsin(small_cfg(BenchProtocol::no_icp));
    const auto icp = run_wisconsin(small_cfg(BenchProtocol::icp));
    const auto sc = run_wisconsin(small_cfg(BenchProtocol::sc_icp));
    // Table II: SC-ICP reduces UDP traffic by a factor of ~50 vs ICP and
    // looks nearly like no-ICP.
    EXPECT_LT(sc.udp_msgs, icp.udp_msgs / 10.0);
    EXPECT_LT(sc.user_cpu_s, icp.user_cpu_s);
    EXPECT_LT(sc.avg_latency_s, icp.avg_latency_s);
    EXPECT_NEAR(sc.avg_latency_s, base.avg_latency_s, base.avg_latency_s * 0.05);
    EXPECT_NEAR(sc.hit_ratio, base.hit_ratio, 0.02);
}

TEST(WisconsinBench, HigherHitRatioLowersLatency) {
    const auto low = run_wisconsin(small_cfg(BenchProtocol::no_icp, 0.25));
    const auto high = run_wisconsin(small_cfg(BenchProtocol::no_icp, 0.45));
    EXPECT_GT(high.hit_ratio, low.hit_ratio + 0.1);
    EXPECT_LT(high.avg_latency_s, low.avg_latency_s);
}

TEST(WisconsinBench, LabelsMatchProtocol) {
    EXPECT_EQ(run_wisconsin(small_cfg(BenchProtocol::no_icp)).label, "no-ICP");
    EXPECT_STREQ(bench_protocol_name(BenchProtocol::icp), "ICP");
    EXPECT_STREQ(bench_protocol_name(BenchProtocol::sc_icp), "SC-ICP");
}

// ---- trace replay (Tables IV/V shape) --------------------------------------

std::vector<Request> upisa_head() {
    auto profile = standard_profile(TraceKind::upisa, 0.06);
    auto trace = TraceGenerator(profile).generate_all();
    return trace;
}

ReplayConfig replay_cfg(BenchProtocol protocol, ReplayAssignment assignment) {
    ReplayConfig cfg;
    cfg.protocol = protocol;
    cfg.assignment = assignment;
    cfg.cache_bytes = 16ull * 1024 * 1024;
    return cfg;
}

TEST(ReplayBench, TraceReplayHasRemoteHits) {
    const auto trace = upisa_head();
    const auto icp = run_replay(replay_cfg(BenchProtocol::icp, ReplayAssignment::by_client), trace);
    EXPECT_GT(icp.remote_hit_ratio, 0.0);
    EXPECT_GT(icp.hit_ratio, 0.0);
}

TEST(ReplayBench, ScIcpKeepsHitRatioCutsUdp) {
    const auto trace = upisa_head();
    const auto icp = run_replay(replay_cfg(BenchProtocol::icp, ReplayAssignment::by_client), trace);
    const auto sc =
        run_replay(replay_cfg(BenchProtocol::sc_icp, ReplayAssignment::by_client), trace);
    EXPECT_NEAR(sc.hit_ratio, icp.hit_ratio, 0.02);       // "almost the same hit ratio"
    EXPECT_LT(sc.udp_msgs, icp.udp_msgs / 5.0);           // big UDP reduction
    EXPECT_LT(sc.user_cpu_s, icp.user_cpu_s);             // protocol CPU saved
}

TEST(ReplayBench, RemoteHitsLowerLatencyVsNoSharing) {
    const auto trace = upisa_head();
    const auto none =
        run_replay(replay_cfg(BenchProtocol::no_icp, ReplayAssignment::by_client), trace);
    const auto sc =
        run_replay(replay_cfg(BenchProtocol::sc_icp, ReplayAssignment::by_client), trace);
    // Section VII: SC-ICP lowers client latency slightly below no-ICP
    // because remote hits replace 1 s origin fetches.
    EXPECT_LT(sc.avg_latency_s, none.avg_latency_s);
}

TEST(ReplayBench, RoundRobinBalancesAndRaisesRemoteHits) {
    const auto trace = upisa_head();
    const auto by_client =
        run_replay(replay_cfg(BenchProtocol::icp, ReplayAssignment::by_client), trace);
    const auto round_robin =
        run_replay(replay_cfg(BenchProtocol::icp, ReplayAssignment::round_robin), trace);
    // Experiment 4 severs client-proxy affinity: repeats land on other
    // proxies, so remote hits grow at the expense of local ones.
    EXPECT_GT(round_robin.remote_hit_ratio, by_client.remote_hit_ratio);
}

}  // namespace
}  // namespace sc
