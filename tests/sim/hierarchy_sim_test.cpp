#include "sim/hierarchy_sim.hpp"

#include <gtest/gtest.h>

#include "trace/generator.hpp"

namespace sc {
namespace {

std::vector<Request> hierarchy_trace() {
    static const std::vector<Request> trace = [] {
        TraceProfile p = standard_profile(TraceKind::questnet, 0.05);
        return TraceGenerator(p).generate_all();
    }();
    return trace;
}

HierarchySimConfig base_cfg(HierarchyProtocol protocol) {
    HierarchySimConfig cfg;
    cfg.num_children = 4;
    cfg.child_cache_bytes = 4ull * 1024 * 1024;
    cfg.parent_cache_bytes = 32ull * 1024 * 1024;
    cfg.protocol = protocol;
    return cfg;
}

TEST(HierarchySim, HandConstructedParentHit) {
    HierarchySimConfig cfg = base_cfg(HierarchyProtocol::always_query);
    cfg.parent_client_fraction = 0.0;
    HierarchySimulator sim(cfg);
    // Child 0's client fetches; the parent relays and caches. A different
    // child then gets a parent hit.
    sim.process({0.0, 0, "http://h/doc", 100, 0});
    sim.process({1.0, 1, "http://h/doc", 100, 0});
    const auto& r = sim.result();
    EXPECT_EQ(r.parent_fetches, 1u);
    EXPECT_EQ(r.parent_hits, 1u);
    EXPECT_EQ(r.query_messages, 2u);  // one per child miss
    // And the child that relayed now hits locally.
    sim.process({2.0, 0, "http://h/doc", 100, 0});
    EXPECT_EQ(sim.result().child_hits, 1u);
}

TEST(HierarchySim, StaleParentCopyRefetched) {
    HierarchySimConfig cfg = base_cfg(HierarchyProtocol::always_query);
    cfg.parent_client_fraction = 0.0;
    HierarchySimulator sim(cfg);
    sim.process({0.0, 0, "http://h/doc", 100, 1});
    sim.process({1.0, 1, "http://h/doc", 100, 2});  // parent copy is stale
    const auto& r = sim.result();
    EXPECT_EQ(r.parent_stale_hits, 1u);
    EXPECT_EQ(r.parent_fetches, 2u);
    EXPECT_EQ(r.parent_hits, 0u);
}

TEST(HierarchySim, AlwaysQueryQueriesEveryChildMiss) {
    const auto trace = hierarchy_trace();
    const auto r = run_hierarchy_sim(base_cfg(HierarchyProtocol::always_query), trace);
    EXPECT_EQ(r.query_messages, r.requests - r.child_hits);
    EXPECT_EQ(r.false_hits, 0u);
    EXPECT_EQ(r.false_misses, 0u);
    EXPECT_EQ(r.update_messages, 0u);
}

TEST(HierarchySim, SummaryProtocolSlashesParentQueries) {
    const auto trace = hierarchy_trace();
    const auto classic = run_hierarchy_sim(base_cfg(HierarchyProtocol::always_query), trace);
    const auto summary = run_hierarchy_sim(base_cfg(HierarchyProtocol::summary), trace);
    // The whole point of Section VIII: the child only bothers the parent
    // when the replicated summary is promising.
    EXPECT_LT(summary.queries_per_request(), classic.queries_per_request() / 2);
    EXPECT_GT(summary.update_messages, 0u);
    // Hit ratio gives up something (the parent no longer absorbs every
    // child miss) but stays in the same league.
    EXPECT_GT(summary.total_hit_ratio(), classic.total_hit_ratio() * 0.5);
}

TEST(HierarchySim, SummaryErrorsAreTolerableKinds) {
    const auto trace = hierarchy_trace();
    auto cfg = base_cfg(HierarchyProtocol::summary);
    cfg.update_threshold = 0.05;
    const auto r = run_hierarchy_sim(cfg, trace);
    // Errors exist but stay small relative to traffic.
    EXPECT_LT(r.false_hits, r.requests / 10);
    EXPECT_LT(r.false_misses, r.requests / 10);
    // Every child request is accounted for exactly once: a local hit, a
    // fresh parent hit, a stale-relay refetch, or a direct origin fetch.
    EXPECT_EQ(r.child_hits + r.parent_hits + r.parent_stale_hits + r.direct_fetches,
              r.requests);
}

TEST(HierarchySim, ParentOwnPopulationPopulatesCache) {
    const auto trace = hierarchy_trace();
    auto cfg = base_cfg(HierarchyProtocol::summary);
    cfg.parent_client_fraction = 0.3;
    const auto r = run_hierarchy_sim(cfg, trace);
    EXPECT_GT(r.parent_own_requests, 0u);
    EXPECT_GT(r.parent_own_hits, 0u);
    EXPECT_GT(r.parent_hits, 0u);  // children benefit from that population
}

TEST(HierarchySim, MulticastCollapsesUpdateCount) {
    const auto trace = hierarchy_trace();
    auto cfg = base_cfg(HierarchyProtocol::summary);
    const auto unicast = run_hierarchy_sim(cfg, trace);
    cfg.multicast_updates = true;
    const auto multicast = run_hierarchy_sim(cfg, trace);
    EXPECT_EQ(unicast.update_messages, multicast.update_messages * cfg.num_children);
}

}  // namespace
}  // namespace sc
