// The update-propagation variants of ShareSimConfig: time-interval policy
// (Section V-A's alternative trigger), IP-packet batching (Section VI-B),
// and multicast distribution (Section V-F).
#include <gtest/gtest.h>

#include <algorithm>

#include "sim/share_sim.hpp"
#include "summary/update_policy.hpp"
#include "trace/generator.hpp"

namespace sc {
namespace {

std::vector<Request> trace() {
    static const std::vector<Request> t =
        TraceGenerator(standard_profile(TraceKind::ucb, 0.03)).generate_all();
    return t;
}

ShareSimConfig base() {
    ShareSimConfig cfg;
    cfg.num_proxies = 8;
    cfg.cache_bytes_per_proxy = 4ull * 1024 * 1024;
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::summary;
    cfg.summary_kind = SummaryKind::bloom;
    return cfg;
}

TEST(UpdateModes, TimeIntervalPolicyPublishes) {
    auto cfg = base();
    cfg.update_interval_seconds = 60.0;
    const auto r = run_share_sim(cfg, trace());
    EXPECT_GT(r.summary_publishes, 0u);
    EXPECT_GT(r.update_messages, 0u);
    // Trace covers requests/rate seconds; publishes are bounded by
    // duration/interval per proxy (plus one straggler each).
    const double duration = trace().back().timestamp;
    EXPECT_LE(r.summary_publishes, static_cast<std::uint64_t>(duration / 60.0 + 1) *
                                       cfg.num_proxies);
}

TEST(UpdateModes, LongerIntervalsMeanFewerUpdatesAndMoreFalseMisses) {
    auto cfg = base();
    cfg.update_interval_seconds = 30.0;
    const auto fast = run_share_sim(cfg, trace());
    cfg.update_interval_seconds = 1800.0;
    const auto slow = run_share_sim(cfg, trace());
    EXPECT_LT(slow.summary_publishes, fast.summary_publishes);
    EXPECT_GE(slow.false_misses, fast.false_misses);
    EXPECT_LE(slow.total_hit_ratio(), fast.total_hit_ratio() + 1e-9);
}

TEST(UpdateModes, IntervalMatchesEquivalentThreshold) {
    // Section V-A: an interval converts to a threshold through the request
    // rate and miss ratio; the resulting hit-ratio degradation must agree.
    // Pick an interval short enough that the equivalent fraction stays
    // well inside (0, 1) — the conversion only makes sense there.
    constexpr double kInterval = 20.0;
    auto cfg = base();
    cfg.update_interval_seconds = kInterval;
    const auto timed = run_share_sim(cfg, trace());

    // Derive the equivalent fraction from observed quantities.
    const double duration = trace().back().timestamp;
    const double rate = static_cast<double>(timed.requests) / duration;
    const double miss = 1.0 - timed.local_hit_ratio() - timed.remote_hit_ratio();
    const double docs =
        static_cast<double>(cfg.cache_bytes_per_proxy) / 8192.0;  // rough per-proxy docs
    const double fraction = std::clamp(
        interval_to_threshold(kInterval, rate / cfg.num_proxies, miss, docs), 0.0, 1.0);
    ASSERT_LT(fraction, 0.5);

    auto cfg2 = base();
    cfg2.update_threshold = fraction;
    const auto threshold = run_share_sim(cfg2, trace());
    EXPECT_NEAR(threshold.total_hit_ratio(), timed.total_hit_ratio(), 0.03);
}

TEST(UpdateModes, MulticastCutsUpdateMessagesByPeerCount) {
    auto cfg = base();
    const auto unicast = run_share_sim(cfg, trace());
    cfg.multicast_updates = true;
    const auto multicast = run_share_sim(cfg, trace());
    ASSERT_GT(unicast.update_messages, 0u);
    EXPECT_EQ(unicast.update_messages,
              multicast.update_messages * (cfg.num_proxies - 1));
    EXPECT_EQ(unicast.update_bytes, multicast.update_bytes * (cfg.num_proxies - 1));
    // Queries and hit ratios are untouched by the transport choice.
    EXPECT_EQ(unicast.query_messages, multicast.query_messages);
    EXPECT_EQ(unicast.local_hits, multicast.local_hits);
}

TEST(UpdateModes, BatchingFloorsReduceUpdateCount) {
    auto cfg = base();
    cfg.update_threshold = 0.001;  // aggressive threshold...
    const auto eager = run_share_sim(cfg, trace());
    cfg.min_update_changes = 350;  // ...tamed by the packet-fill floor
    const auto batched = run_share_sim(cfg, trace());
    EXPECT_LT(batched.summary_publishes, eager.summary_publishes);
    EXPECT_GE(batched.false_misses, eager.false_misses);
}

}  // namespace
}  // namespace sc
