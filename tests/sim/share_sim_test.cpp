#include "sim/share_sim.hpp"

#include <gtest/gtest.h>

#include "cache/infinite_cache.hpp"
#include "trace/generator.hpp"

namespace sc {
namespace {

std::vector<Request> small_trace() {
    static const std::vector<Request> trace =
        TraceGenerator(standard_profile(TraceKind::upisa, 0.05)).generate_all();
    return trace;
}

std::uint64_t cache_bytes_for(const std::vector<Request>& trace, double fraction,
                              std::uint32_t proxies) {
    InfiniteCacheStats stats;
    for (const Request& r : trace) stats.add_request(r.url, r.size, r.version);
    return std::max<std::uint64_t>(
        1'000'000, static_cast<std::uint64_t>(
                       static_cast<double>(stats.infinite_cache_bytes()) * fraction / proxies));
}

ShareSimConfig base_config(const std::vector<Request>& trace, SharingScheme scheme,
                           QueryProtocol protocol, std::uint32_t proxies = 8) {
    ShareSimConfig cfg;
    cfg.num_proxies = proxies;
    cfg.cache_bytes_per_proxy = cache_bytes_for(trace, 0.10, proxies);
    cfg.scheme = scheme;
    cfg.protocol = protocol;
    return cfg;
}

TEST(ShareSim, HandConstructedRemoteHit) {
    // Two proxies; client 0 -> proxy 0, client 1 -> proxy 1. Proxy 1 loads
    // the doc, then client 0 asks for it: a remote hit under ICP.
    ShareSimConfig cfg;
    cfg.num_proxies = 2;
    cfg.cache_bytes_per_proxy = 1'000'000;
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::icp;
    ShareSimulator sim(cfg);
    sim.process({0.0, 1, "http://x/doc", 100, 0});  // proxy 1 miss -> server
    sim.process({1.0, 0, "http://x/doc", 100, 0});  // proxy 0 miss -> remote hit
    const auto& r = sim.result();
    EXPECT_EQ(r.requests, 2u);
    EXPECT_EQ(r.remote_hits, 1u);
    EXPECT_EQ(r.server_fetches, 1u);
    EXPECT_EQ(r.query_messages, 2u);  // one (N-1)=1 query per miss
    // Simple sharing copies the doc locally: a third request hits locally.
    sim.process({2.0, 0, "http://x/doc", 100, 0});
    EXPECT_EQ(sim.result().local_hits, 1u);
}

TEST(ShareSim, SingleCopyDoesNotDuplicate) {
    ShareSimConfig cfg;
    cfg.num_proxies = 2;
    cfg.cache_bytes_per_proxy = 1'000'000;
    cfg.scheme = SharingScheme::single_copy;
    cfg.protocol = QueryProtocol::icp;
    ShareSimulator sim(cfg);
    sim.process({0.0, 1, "http://x/doc", 100, 0});
    sim.process({1.0, 0, "http://x/doc", 100, 0});  // remote hit, no local copy
    sim.process({2.0, 0, "http://x/doc", 100, 0});  // remote hit again
    const auto& r = sim.result();
    EXPECT_EQ(r.remote_hits, 2u);
    EXPECT_EQ(r.local_hits, 0u);
    const auto sizes = sim.directory_sizes();
    EXPECT_EQ(sizes[0], 0u);
    EXPECT_EQ(sizes[1], 1u);
}

TEST(ShareSim, StaleRemoteCopyIsRemoteStaleHit) {
    ShareSimConfig cfg;
    cfg.num_proxies = 2;
    cfg.cache_bytes_per_proxy = 1'000'000;
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::icp;
    ShareSimulator sim(cfg);
    sim.process({0.0, 1, "http://x/doc", 100, 0});  // proxy 1 caches v0
    sim.process({1.0, 0, "http://x/doc", 100, 1});  // proxy 0 wants v1: stale
    const auto& r = sim.result();
    EXPECT_EQ(r.remote_hits, 0u);
    EXPECT_EQ(r.remote_stale_hits, 1u);
    EXPECT_EQ(r.server_fetches, 2u);
}

TEST(ShareSim, GlobalCacheActsAsOne) {
    ShareSimConfig cfg;
    cfg.num_proxies = 4;
    cfg.cache_bytes_per_proxy = 1'000'000;
    cfg.scheme = SharingScheme::global;
    cfg.protocol = QueryProtocol::none;
    ShareSimulator sim(cfg);
    sim.process({0.0, 0, "u", 10, 0});
    sim.process({1.0, 3, "u", 10, 0});  // different client group, still a hit
    EXPECT_EQ(sim.result().local_hits, 1u);
    EXPECT_EQ(sim.result().total_messages(), 0u);
}

TEST(ShareSim, SharingBeatsNoSharing) {
    const auto trace = small_trace();
    const auto none =
        run_share_sim(base_config(trace, SharingScheme::none, QueryProtocol::none), trace);
    const auto simple =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::icp), trace);
    EXPECT_GT(simple.total_hit_ratio(), none.total_hit_ratio() + 0.02);
    EXPECT_GT(simple.byte_hit_ratio(), none.byte_hit_ratio());
}

TEST(ShareSim, OracleAndIcpFindTheSameHits) {
    const auto trace = small_trace();
    const auto icp =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::icp), trace);
    const auto oracle =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::oracle), trace);
    EXPECT_EQ(icp.local_hits, oracle.local_hits);
    EXPECT_EQ(icp.remote_hits, oracle.remote_hits);
    EXPECT_GT(icp.query_messages, 0u);
    EXPECT_EQ(oracle.query_messages, 0u);  // oracle is free
}

TEST(ShareSim, IcpQueriesEqualLocalMissesTimesSiblings) {
    const auto trace = small_trace();
    const auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::icp);
    const auto r = run_share_sim(cfg, trace);
    const std::uint64_t local_misses = r.requests - r.local_hits;
    EXPECT_EQ(r.query_messages, local_misses * (cfg.num_proxies - 1));
    EXPECT_EQ(r.reply_messages, r.query_messages);
    EXPECT_EQ(r.update_messages, 0u);
}

TEST(ShareSim, ExactSummaryNoDelayMatchesIcpHits) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::summary);
    cfg.summary_kind = SummaryKind::exact_directory;
    cfg.update_threshold = 0.0;  // publish every change: summaries are exact
    const auto sum = run_share_sim(cfg, trace);
    const auto icp =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::icp), trace);
    // Sequential probing may end a round on a stale copy that ICP's
    // multicast would have survived, so allow a hair of difference.
    EXPECT_NEAR(sum.total_hit_ratio(), icp.total_hit_ratio(), 0.005);
    EXPECT_EQ(sum.false_hits, 0u);
    EXPECT_EQ(sum.false_misses, 0u);
    // ...while sending far fewer queries.
    EXPECT_LT(sum.query_messages, icp.query_messages / 5);
}

TEST(ShareSim, UpdateDelayCausesFalseMissesProportionally) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::summary);
    cfg.summary_kind = SummaryKind::exact_directory;

    cfg.update_threshold = 0.01;
    const auto t1 = run_share_sim(cfg, trace);
    cfg.update_threshold = 0.10;
    const auto t10 = run_share_sim(cfg, trace);

    EXPECT_GT(t1.false_misses, 0u);
    EXPECT_GT(t10.false_misses, t1.false_misses);
    EXPECT_LT(t10.total_hit_ratio(), t1.total_hit_ratio());
    EXPECT_LT(t10.update_messages, t1.update_messages);  // fewer broadcasts
}

TEST(ShareSim, BloomSummaryCloseToExactHitRatio) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::summary);
    cfg.update_threshold = 0.01;

    cfg.summary_kind = SummaryKind::exact_directory;
    const auto exact = run_share_sim(cfg, trace);
    cfg.summary_kind = SummaryKind::bloom;
    cfg.bloom.load_factor = 16;
    const auto bloom = run_share_sim(cfg, trace);

    EXPECT_NEAR(bloom.total_hit_ratio(), exact.total_hit_ratio(), 0.01);
    // Bloom representation adds some false hits but stays far below
    // server-name levels.
    cfg.summary_kind = SummaryKind::server_name;
    const auto server = run_share_sim(cfg, trace);
    EXPECT_GT(server.false_hit_ratio(), bloom.false_hit_ratio() * 3);
}

TEST(ShareSim, BloomLoadFactorTradesMemoryForFalseHits) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::summary);
    cfg.summary_kind = SummaryKind::bloom;

    cfg.bloom.load_factor = 8;
    const auto lf8 = run_share_sim(cfg, trace);
    cfg.bloom.load_factor = 32;
    const auto lf32 = run_share_sim(cfg, trace);

    EXPECT_GE(lf8.false_hits, lf32.false_hits);
    EXPECT_LT(lf8.summary_replica_bytes, lf32.summary_replica_bytes);
}

TEST(ShareSim, SummaryUsesFarFewerMessagesThanIcp) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::simple, QueryProtocol::summary);
    cfg.summary_kind = SummaryKind::bloom;
    cfg.min_update_changes = 350;  // prototype-style IP-packet batching
    const auto sum = run_share_sim(cfg, trace);
    const auto icp =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::icp), trace);
    // The paper reports a factor of 25-60; at 8 proxies expect >10x.
    EXPECT_GT(icp.messages_per_request(), 10 * sum.messages_per_request());
    EXPECT_GT(icp.message_bytes_per_request(), 2 * sum.message_bytes_per_request());
}

TEST(ShareSim, ByteAccountingConsistent) {
    const auto trace = small_trace();
    const auto r =
        run_share_sim(base_config(trace, SharingScheme::simple, QueryProtocol::icp), trace);
    EXPECT_EQ(r.requests, trace.size());
    EXPECT_LE(r.hit_bytes, r.request_bytes);
    EXPECT_EQ(r.local_hits + r.remote_hits + r.server_fetches, r.requests);
}

TEST(ShareSim, NoSharingHasNoMessages) {
    const auto trace = small_trace();
    const auto r =
        run_share_sim(base_config(trace, SharingScheme::none, QueryProtocol::none), trace);
    EXPECT_EQ(r.total_messages(), 0u);
    EXPECT_EQ(r.remote_hits, 0u);
}

TEST(ShareSim, PerProxyCapacitiesOverrideUniformSize) {
    // Section III: allocate capacity proportional to load. A proxy with a
    // tiny cache must evict constantly while its well-provisioned sibling
    // keeps its working set.
    ShareSimConfig cfg;
    cfg.num_proxies = 2;
    cfg.per_proxy_cache_bytes = {500, 1'000'000};
    cfg.max_object_bytes = 400;
    cfg.scheme = SharingScheme::none;
    cfg.protocol = QueryProtocol::none;
    ShareSimulator sim(cfg);
    // Client 0 -> proxy 0 (500 B cache), client 1 -> proxy 1 (1 MB cache).
    for (int round = 0; round < 3; ++round)
        for (int d = 0; d < 5; ++d) {
            sim.process({0.0, 0, "http://a/" + std::to_string(d), 300, 0});
            sim.process({0.0, 1, "http://b/" + std::to_string(d), 300, 0});
        }
    const auto sizes = sim.directory_sizes();
    EXPECT_LE(sizes[0], 1u);   // 500 B holds at most one 300 B doc
    EXPECT_EQ(sizes[1], 5u);   // 1 MB holds the whole working set
    // Proxy 1's repeats all hit; proxy 0 keeps missing.
    EXPECT_GE(sim.result().local_hits, 10u);  // proxy 1's two repeat rounds
    EXPECT_LT(sim.result().local_hits, 15u);  // proxy 0 contributed few
}

TEST(ShareSim, ProportionalAllocationBeatsEqualUnderImbalance) {
    // One proxy receives 4x the traffic of the other three.
    TraceProfile p = standard_profile(TraceKind::dec, 0.02);
    p.proxy_groups = 4;
    p.client_zipf_exponent = 1.5;
    const auto trace = TraceGenerator(p).generate_all();

    std::vector<std::uint64_t> load(4, 0);
    std::uint64_t bytes = 0;
    for (const Request& r : trace) {
        ++load[r.client_id % 4];
        bytes += r.size;
    }
    const std::uint64_t total_cache = bytes / 30;

    ShareSimConfig cfg;
    cfg.num_proxies = 4;
    cfg.scheme = SharingScheme::simple;
    cfg.protocol = QueryProtocol::oracle;
    cfg.cache_bytes_per_proxy = total_cache / 4;
    const auto equal = run_share_sim(cfg, trace);

    cfg.per_proxy_cache_bytes.clear();
    for (const std::uint64_t l : load)
        cfg.per_proxy_cache_bytes.push_back(
            std::max<std::uint64_t>(1 << 18, total_cache * l / trace.size()));
    const auto proportional = run_share_sim(cfg, trace);

    EXPECT_GE(proportional.total_hit_ratio(), equal.total_hit_ratio() - 0.002);
}

TEST(ShareSim, GlobalCapacityScaleShrinksCache) {
    const auto trace = small_trace();
    auto cfg = base_config(trace, SharingScheme::global, QueryProtocol::none);
    const auto full = run_share_sim(cfg, trace);
    cfg.global_capacity_scale = 0.5;
    const auto half = run_share_sim(cfg, trace);
    EXPECT_LE(half.total_hit_ratio(), full.total_hit_ratio() + 1e-9);
}

}  // namespace
}  // namespace sc
