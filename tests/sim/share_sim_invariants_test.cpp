// Invariant sweep: every (trace, scheme, protocol) combination must
// satisfy the structural properties of the sharing simulation — exact
// accounting, no impossible error categories, sane ratios. Parameterized
// so a regression in any configuration is pinpointed by name.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/share_sim.hpp"
#include "trace/generator.hpp"

namespace sc {
namespace {

struct SweepCase {
    TraceKind trace;
    SharingScheme scheme;
    QueryProtocol protocol;
    SummaryKind summary;
};

std::string case_name(const SweepCase& c) {
    std::string name = trace_name(c.trace);
    name += "_";
    name += sharing_scheme_name(c.scheme);
    name += "_";
    name += query_protocol_name(c.protocol);
    if (c.protocol == QueryProtocol::summary) {
        name += "_";
        name += summary_kind_name(c.summary);
    }
    for (auto& ch : name)
        if (ch == '-') ch = '_';
    return name;
}

const std::vector<Request>& trace_for(TraceKind kind) {
    static std::map<TraceKind, std::vector<Request>> cache;
    auto it = cache.find(kind);
    if (it == cache.end())
        it = cache.emplace(kind, TraceGenerator(standard_profile(kind, 0.02)).generate_all())
                 .first;
    return it->second;
}

class ShareSimInvariants : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ShareSimInvariants, StructuralPropertiesHold) {
    const SweepCase c = GetParam();
    const auto& trace = trace_for(c.trace);
    ShareSimConfig cfg;
    cfg.num_proxies = standard_profile(c.trace).proxy_groups;
    cfg.cache_bytes_per_proxy = 2ull * 1024 * 1024;
    cfg.scheme = c.scheme;
    cfg.protocol = c.protocol;
    cfg.summary_kind = c.summary;
    const ShareSimResult r = run_share_sim(cfg, trace);

    // Conservation: every request is a local hit, a remote hit, or a fetch.
    EXPECT_EQ(r.requests, trace.size());
    EXPECT_EQ(r.local_hits + r.remote_hits + r.server_fetches, r.requests);

    // Byte accounting never exceeds what was requested.
    EXPECT_LE(r.hit_bytes, r.request_bytes);
    EXPECT_GE(r.byte_hit_ratio(), 0.0);
    EXPECT_LE(r.byte_hit_ratio(), 1.0);

    // Error categories are possible only under the summary protocol.
    if (c.protocol != QueryProtocol::summary) {
        EXPECT_EQ(r.false_hits, 0u);
        EXPECT_EQ(r.false_misses, 0u);
        EXPECT_EQ(r.update_messages, 0u);
    }
    // Message accounting matches the protocol.
    switch (c.protocol) {
        case QueryProtocol::none:
        case QueryProtocol::oracle:
            EXPECT_EQ(r.query_messages, 0u);
            break;
        case QueryProtocol::icp:
            EXPECT_EQ(r.query_messages,
                      (r.requests - r.local_hits) * (cfg.num_proxies - 1));
            break;
        case QueryProtocol::summary:
            EXPECT_LE(r.query_messages, (r.requests - r.local_hits) * (cfg.num_proxies - 1));
            break;
    }
    EXPECT_EQ(r.reply_messages, r.query_messages);

    // Remote hits require cooperation.
    if (c.scheme == SharingScheme::none || c.protocol == QueryProtocol::none) {
        EXPECT_EQ(r.remote_hits, 0u);
    }
}

std::vector<SweepCase> all_cases() {
    std::vector<SweepCase> out;
    for (const TraceKind t : {TraceKind::dec, TraceKind::upisa, TraceKind::nlanr}) {
        out.push_back({t, SharingScheme::none, QueryProtocol::none, SummaryKind::bloom});
        out.push_back({t, SharingScheme::simple, QueryProtocol::icp, SummaryKind::bloom});
        out.push_back({t, SharingScheme::simple, QueryProtocol::oracle, SummaryKind::bloom});
        out.push_back({t, SharingScheme::single_copy, QueryProtocol::icp, SummaryKind::bloom});
        out.push_back({t, SharingScheme::global, QueryProtocol::none, SummaryKind::bloom});
        for (const SummaryKind k :
             {SummaryKind::exact_directory, SummaryKind::server_name, SummaryKind::bloom})
            out.push_back({t, SharingScheme::simple, QueryProtocol::summary, k});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShareSimInvariants, ::testing::ValuesIn(all_cases()),
                         [](const auto& info) { return case_name(info.param); });

}  // namespace
}  // namespace sc
