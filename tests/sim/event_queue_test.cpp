#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sc {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) q.schedule(1.0, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, HandlersMayScheduleMoreEvents) {
    EventQueue q;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 5) q.schedule_in(1.0, chain);
    };
    q.schedule(0.0, chain);
    q.run();
    EXPECT_EQ(fired, 5);
    EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, ScheduleInUsesCurrentTime) {
    EventQueue q;
    double when = -1;
    q.schedule(2.0, [&] { q.schedule_in(0.5, [&] { when = q.now(); }); });
    q.run();
    EXPECT_DOUBLE_EQ(when, 2.5);
}

TEST(EventQueue, RunGuardStopsRunaway) {
    EventQueue q;
    std::function<void()> forever = [&] { q.schedule_in(0.1, forever); };
    q.schedule(0.0, forever);
    const std::uint64_t executed = q.run(1000);
    EXPECT_EQ(executed, 1000u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueue, EmptyQueueBehaviour) {
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.step());
    EXPECT_EQ(q.run(), 0u);
    EXPECT_DOUBLE_EQ(q.now(), 0.0);
}

}  // namespace
}  // namespace sc
