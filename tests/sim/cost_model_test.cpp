#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

namespace sc {
namespace {

TEST(CostModel, TcpPacketsPerLegScalesWithBody) {
    const CostModelConfig cfg;
    const double empty = tcp_packets_per_leg(cfg, 0.0);
    EXPECT_DOUBLE_EQ(empty, cfg.tcp_leg_overhead_pkts);  // just the handshake
    // One MSS of data: one segment plus its share of acks.
    EXPECT_DOUBLE_EQ(tcp_packets_per_leg(cfg, cfg.tcp_mss),
                     cfg.tcp_leg_overhead_pkts + 1.0 * (1.0 + cfg.acks_per_segment));
    // Just over one MSS rounds up to two segments.
    EXPECT_DOUBLE_EQ(tcp_packets_per_leg(cfg, cfg.tcp_mss + 1),
                     cfg.tcp_leg_overhead_pkts + 2.0 * (1.0 + cfg.acks_per_segment));
    // Monotone in body size.
    EXPECT_GT(tcp_packets_per_leg(cfg, 1e6), tcp_packets_per_leg(cfg, 1e4));
}

TEST(CostModel, UdpDatagramsForUpdate) {
    const CostModelConfig cfg;
    EXPECT_EQ(udp_datagrams_for_update(cfg, 0), 0u);
    EXPECT_EQ(udp_datagrams_for_update(cfg, 1), 1u);
    EXPECT_EQ(udp_datagrams_for_update(cfg, static_cast<std::uint64_t>(cfg.udp_mtu_payload)),
              1u);
    EXPECT_EQ(
        udp_datagrams_for_update(cfg, static_cast<std::uint64_t>(cfg.udp_mtu_payload) + 1),
        2u);
    EXPECT_EQ(udp_datagrams_for_update(cfg, 10 * 1400), 10u);
}

TEST(CostModel, QueueingDelayBehaviour) {
    // At zero utilization the wait equals the service time.
    EXPECT_DOUBLE_EQ(queueing_delay(0.01, 0.0), 0.01);
    // Grows with utilization.
    EXPECT_GT(queueing_delay(0.01, 0.8), queueing_delay(0.01, 0.5));
    // Clamped: never diverges even at rho >= 1.
    const double clamped = queueing_delay(0.01, 0.95);
    EXPECT_DOUBLE_EQ(queueing_delay(0.01, 1.5), clamped);
    EXPECT_DOUBLE_EQ(queueing_delay(0.01, 0.999), clamped);
    EXPECT_LT(clamped, 1.0);  // 0.01 / 0.05 = 0.2 s
}

TEST(CostModel, DefaultsAreInternallyConsistent) {
    const CostModelConfig cfg;
    // The calibration assumptions behind Table II (see EXPERIMENTS.md):
    // ICP event processing is a small fraction of full HTTP handling...
    EXPECT_LT(cfg.user_cpu_per_icp_event, cfg.user_cpu_per_http / 10);
    // ...MD5 is negligible next to either (the paper's Section V-E claim)...
    EXPECT_LT(cfg.user_cpu_per_md5, cfg.user_cpu_per_icp_event);
    // ...and a remote hit is far cheaper than an origin round trip.
    EXPECT_LT(cfg.remote_hit_fetch, cfg.server_delay / 2);
    EXPECT_GT(cfg.tcp_mss, 500.0);
}

}  // namespace
}  // namespace sc
