// Record framing and segment scanning: the format is the crash-safety
// contract (docs/STORAGE.md), so the torn-tail and corruption behaviour is
// pinned here byte by byte.
#include "store/segment_log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace sc::store {
namespace {

namespace fs = std::filesystem;

class SegmentLogTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("sc_seg_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::create_directories(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    [[nodiscard]] std::string path(std::uint64_t id) const {
        return (dir_ / segment_file_name(id)).string();
    }

    fs::path dir_;
};

TEST_F(SegmentLogTest, Crc32MatchesKnownVector) {
    // The classic check value for CRC-32/IEEE ("123456789" -> 0xCBF43926).
    EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32_ieee("", 0), 0u);
}

TEST_F(SegmentLogTest, FileNameRoundTrips) {
    EXPECT_EQ(segment_file_name(0), "seg-0000000000000000.log");
    EXPECT_EQ(parse_segment_file_name("seg-0000000000000000.log"), 0u);
    EXPECT_EQ(parse_segment_file_name(segment_file_name(0xdeadbeefULL)), 0xdeadbeefULL);
    EXPECT_FALSE(parse_segment_file_name("seg-xyz.log").has_value());
    EXPECT_FALSE(parse_segment_file_name("other.log").has_value());
    EXPECT_FALSE(parse_segment_file_name("seg-0000000000000000.tmp").has_value());
}

TEST_F(SegmentLogTest, EncodedRecordBytesMatchesEncoder) {
    std::string buf;
    const Record rec{RecordType::insert, 7, 1234, 9, "http://example.com/a"};
    encode_record(buf, rec);
    EXPECT_EQ(buf.size(), encoded_record_bytes(rec.url.size()));
}

TEST_F(SegmentLogTest, WriteScanRoundTrip) {
    SegmentWriter w;
    ASSERT_TRUE(w.create(path(3), 3));
    std::string buf;
    encode_record(buf, Record{RecordType::insert, 1, 100, 5, "http://a/x"});
    encode_record(buf, Record{RecordType::touch, 2, 100, 5, "http://a/x"});
    encode_record(buf, Record{RecordType::erase, 3, 100, 5, "http://a/x"});
    ASSERT_TRUE(w.append(buf.data(), buf.size()));
    ASSERT_TRUE(w.sync());
    w.close();

    const ScanResult scan = scan_segment(path(3));
    ASSERT_TRUE(scan.header_ok);
    EXPECT_EQ(scan.segment_id, 3u);
    EXPECT_FALSE(scan.torn);
    ASSERT_EQ(scan.records.size(), 3u);
    EXPECT_EQ(scan.records[0].type, RecordType::insert);
    EXPECT_EQ(scan.records[1].type, RecordType::touch);
    EXPECT_EQ(scan.records[2].type, RecordType::erase);
    EXPECT_EQ(scan.records[0].seq, 1u);
    EXPECT_EQ(scan.records[2].seq, 3u);
    EXPECT_EQ(scan.records[0].size, 100u);
    EXPECT_EQ(scan.records[0].version, 5u);
    EXPECT_EQ(scan.records[0].url, "http://a/x");
    EXPECT_EQ(scan.valid_bytes, kSegmentHeaderBytes + buf.size());
}

TEST_F(SegmentLogTest, TornTailTruncatesAtLastGoodRecord) {
    SegmentWriter w;
    ASSERT_TRUE(w.create(path(0), 0));
    std::string good;
    encode_record(good, Record{RecordType::insert, 1, 10, 1, "http://a/1"});
    encode_record(good, Record{RecordType::insert, 2, 20, 1, "http://a/2"});
    std::string torn;
    encode_record(torn, Record{RecordType::insert, 3, 30, 1, "http://a/3"});
    torn.resize(torn.size() / 2);  // crash mid-write
    ASSERT_TRUE(w.append(good.data(), good.size()));
    ASSERT_TRUE(w.append(torn.data(), torn.size()));
    w.close();

    const ScanResult scan = scan_segment(path(0));
    ASSERT_TRUE(scan.header_ok);
    EXPECT_TRUE(scan.torn);
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.valid_bytes, kSegmentHeaderBytes + good.size());
}

TEST_F(SegmentLogTest, CorruptChecksumStopsTheScan) {
    SegmentWriter w;
    ASSERT_TRUE(w.create(path(0), 0));
    std::string buf;
    encode_record(buf, Record{RecordType::insert, 1, 10, 1, "http://a/1"});
    const std::size_t first_end = buf.size();
    encode_record(buf, Record{RecordType::insert, 2, 20, 1, "http://a/2"});
    buf[first_end + 10] ^= 0x40;  // flip a payload bit in record 2
    ASSERT_TRUE(w.append(buf.data(), buf.size()));
    w.close();

    const ScanResult scan = scan_segment(path(0));
    ASSERT_TRUE(scan.header_ok);
    EXPECT_TRUE(scan.torn);
    ASSERT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.records[0].url, "http://a/1");
    EXPECT_EQ(scan.valid_bytes, kSegmentHeaderBytes + first_end);
}

TEST_F(SegmentLogTest, TruncatedHeaderRejectsTheSegment) {
    {
        std::ofstream out(path(0), std::ios::binary);
        out << "SCL";  // shorter than the 16-byte header
    }
    const ScanResult scan = scan_segment(path(0));
    EXPECT_FALSE(scan.header_ok);
    EXPECT_TRUE(scan.records.empty());
}

TEST_F(SegmentLogTest, ForeignMagicRejectsTheSegment) {
    {
        std::ofstream out(path(0), std::ios::binary);
        out << std::string(64, 'x');
    }
    const ScanResult scan = scan_segment(path(0));
    EXPECT_FALSE(scan.header_ok);
    EXPECT_TRUE(scan.records.empty());
}

TEST_F(SegmentLogTest, MissingFileIsNotAnError) {
    const ScanResult scan = scan_segment(path(42));
    EXPECT_FALSE(scan.header_ok);
    EXPECT_TRUE(scan.records.empty());
}

TEST_F(SegmentLogTest, GarbageAfterValidRecordsIsATornTail) {
    SegmentWriter w;
    ASSERT_TRUE(w.create(path(0), 0));
    std::string buf;
    encode_record(buf, Record{RecordType::insert, 1, 10, 1, "http://a/1"});
    buf.append("\xff\xff\xff\xff garbage frame", 18);
    ASSERT_TRUE(w.append(buf.data(), buf.size()));
    w.close();

    const ScanResult scan = scan_segment(path(0));
    ASSERT_TRUE(scan.header_ok);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(scan.records.size(), 1u);
}

}  // namespace
}  // namespace sc::store
