// TieredCacheStore: with a null L2 it must be an EXACT pass-through of the
// underlying LruCache (pinned by an op-by-op reference-model parity run),
// and with a disk tier the L1-subset-of-L2 invariant, promotion, and hook
// composition are each pinned directly.
#include "store/tiered_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cache/lru_cache.hpp"
#include "store/log_store.hpp"
#include "util/rng.hpp"

namespace sc::store {
namespace {

namespace fs = std::filesystem;
using Lookup = CacheStore::Lookup;
using Entry = CacheStore::Entry;

std::unique_ptr<LruCache> make_l1(std::uint64_t capacity,
                                  std::uint64_t max_object = kDefaultMaxObjectBytes) {
    LruCacheConfig cfg;
    cfg.capacity_bytes = capacity;
    cfg.max_object_bytes = max_object;
    return std::make_unique<LruCache>(cfg);
}

class TieredStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("sc_tiered_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    [[nodiscard]] std::unique_ptr<LogStructuredStore> make_l2(std::uint64_t capacity) const {
        LogStoreConfig cfg;
        cfg.dir = dir_.string();
        cfg.capacity_bytes = capacity;
        cfg.background_compaction = false;
        return std::make_unique<LogStructuredStore>(cfg);
    }

    fs::path dir_;
};

// --- null L2: reference-model parity with a plain LruCache ----------------

TEST_F(TieredStoreTest, NullDiskTierMatchesPlainLruOpByOp) {
    constexpr std::uint64_t kCapacity = 5'000;
    TieredCacheStore tiered(make_l1(kCapacity), nullptr);
    LruCache reference({.capacity_bytes = kCapacity});
    EXPECT_FALSE(tiered.has_disk_tier());

    // Deterministic op soup over a small url universe: inserts (some
    // refreshes), version-matched and version-skewed lookups, erases, and
    // touches, checked result-by-result and by full accounting after every op.
    Rng rng(42);
    for (int op = 0; op < 4000; ++op) {
        const std::string url = "http://u/" + std::to_string(rng.next_below(50));
        const std::uint64_t version = 1 + rng.next_below(3);
        switch (rng.next_below(5)) {
            case 0:
            case 1: {
                const std::uint64_t size = 50 + rng.next_below(400);
                EXPECT_EQ(tiered.insert(url, size, version),
                          reference.insert(url, size, version)) << op;
                break;
            }
            case 2:
                EXPECT_EQ(tiered.lookup(url, version), reference.lookup(url, version)) << op;
                break;
            case 3:
                EXPECT_EQ(tiered.erase(url), reference.erase(url)) << op;
                break;
            default:
                tiered.touch(url);
                reference.touch(url);
                break;
        }
        ASSERT_EQ(tiered.document_count(), reference.document_count()) << op;
        ASSERT_EQ(tiered.used_bytes(), reference.used_bytes()) << op;
    }
    EXPECT_EQ(tiered.capacity_bytes(), reference.capacity_bytes());
}

TEST_F(TieredStoreTest, NullDiskTierForwardsHooksAndIteration) {
    TieredCacheStore tiered(make_l1(200), nullptr);
    std::vector<std::string> inserted, removed;
    tiered.set_insert_hook([&](const Entry& e) { inserted.push_back(e.url); });
    tiered.set_removal_hook([&](const Entry& e) { removed.push_back(e.url); });
    ASSERT_TRUE(tiered.insert("http://a/1", 100, 1));
    ASSERT_TRUE(tiered.insert("http://a/2", 100, 1));
    ASSERT_TRUE(tiered.insert("http://a/3", 100, 1));  // evicts 1
    EXPECT_EQ(inserted, (std::vector<std::string>{"http://a/1", "http://a/2", "http://a/3"}));
    EXPECT_EQ(removed, (std::vector<std::string>{"http://a/1"}));
    std::size_t visited = 0;
    tiered.for_each_entry([&](const Entry&) { ++visited; });
    EXPECT_EQ(visited, 2u);
}

// --- disk tier ------------------------------------------------------------

TEST_F(TieredStoreTest, L2IsAuthoritativeForCountsAndCapacity) {
    TieredCacheStore tiered(make_l1(200), make_l2(10'000));
    ASSERT_TRUE(tiered.has_disk_tier());
    // Insert more than L1 can hold: the directory keeps everything.
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(tiered.insert("http://a/" + std::to_string(i), 100, 1));
    }
    EXPECT_EQ(tiered.document_count(), 10u);
    EXPECT_EQ(tiered.used_bytes(), 1000u);
    EXPECT_EQ(tiered.capacity_bytes(), 10'000u);
    EXPECT_LE(tiered.l1().document_count(), 2u);  // 200 bytes of RAM
    // Every url still hits through the tier (L2 serves what L1 dropped).
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(tiered.lookup("http://a/" + std::to_string(i), 1), Lookup::hit) << i;
    }
}

TEST_F(TieredStoreTest, L1IsAlwaysASubsetOfL2) {
    TieredCacheStore tiered(make_l1(500), make_l2(1'000));
    for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(tiered.insert("http://a/" + std::to_string(i), 100, 1));
        // Check the invariant after every op, including L2-pressure evictions.
        std::vector<std::string> l1_urls;
        tiered.l1().for_each([&](const Entry& e) { l1_urls.push_back(e.url); });
        for (const auto& url : l1_urls) {
            EXPECT_TRUE(tiered.l2()->contains(url)) << url << " orphaned in L1";
        }
    }
}

TEST_F(TieredStoreTest, L2HitPromotesIntoL1) {
    TieredCacheStore tiered(make_l1(1'000), make_l2(10'000));
    ASSERT_TRUE(tiered.insert("http://a/1", 100, 1));
    tiered.l1().erase("http://a/1");  // simulate L1 pressure-drop
    EXPECT_FALSE(tiered.l1().contains("http://a/1"));
    EXPECT_EQ(tiered.lookup("http://a/1", 1), Lookup::hit);  // served by L2
    EXPECT_TRUE(tiered.l1().contains("http://a/1"));          // ...and promoted
}

TEST_F(TieredStoreTest, EraseCleansBothTiers) {
    TieredCacheStore tiered(make_l1(1'000), make_l2(10'000));
    ASSERT_TRUE(tiered.insert("http://a/1", 100, 1));
    EXPECT_TRUE(tiered.erase("http://a/1"));
    EXPECT_FALSE(tiered.l1().contains("http://a/1"));
    EXPECT_FALSE(tiered.l2()->contains("http://a/1"));
    EXPECT_FALSE(tiered.erase("http://a/1"));
}

TEST_F(TieredStoreTest, StaleLookupEvictsBothTiers) {
    TieredCacheStore tiered(make_l1(1'000), make_l2(10'000));
    ASSERT_TRUE(tiered.insert("http://a/1", 100, 1));
    EXPECT_EQ(tiered.lookup("http://a/1", 2), Lookup::miss_changed);
    EXPECT_FALSE(tiered.l1().contains("http://a/1"));
    EXPECT_FALSE(tiered.l2()->contains("http://a/1"));
}

TEST_F(TieredStoreTest, UserRemovalHookComposesWithL1Cleanup) {
    TieredCacheStore tiered(make_l1(1'000), make_l2(10'000));
    std::vector<std::string> removed;
    tiered.set_removal_hook([&](const Entry& e) { removed.push_back(e.url); });
    ASSERT_TRUE(tiered.insert("http://a/1", 100, 1));
    EXPECT_TRUE(tiered.erase("http://a/1"));
    EXPECT_EQ(removed, (std::vector<std::string>{"http://a/1"}));
    EXPECT_FALSE(tiered.l1().contains("http://a/1"));  // cleanup still happened
}

TEST_F(TieredStoreTest, InsertHookFiresFromTheAuthoritativeTier) {
    TieredCacheStore tiered(make_l1(100), make_l2(10'000));
    std::vector<std::string> inserted;
    tiered.set_insert_hook([&](const Entry& e) { inserted.push_back(e.url); });
    // Larger than L1 but fine for L2: the directory (and so the summary)
    // still learns about it.
    ASSERT_TRUE(tiered.insert("http://a/big", 5'000, 1));
    EXPECT_EQ(inserted, (std::vector<std::string>{"http://a/big"}));
    EXPECT_FALSE(tiered.l1().contains("http://a/big"));
    EXPECT_EQ(tiered.lookup("http://a/big", 1), Lookup::hit);
}

TEST_F(TieredStoreTest, L2RefusalCachesNothing) {
    auto l2 = make_l2(1'000);
    TieredCacheStore tiered(make_l1(10'000), std::move(l2));
    EXPECT_FALSE(tiered.insert("http://a/huge", 2'000, 1));  // over L2 capacity
    EXPECT_FALSE(tiered.l1().contains("http://a/huge"));
    EXPECT_EQ(tiered.document_count(), 0u);
}

TEST_F(TieredStoreTest, WarmRestartPreloadsL1FromRecoveredDirectory) {
    {
        TieredCacheStore tiered(make_l1(10'000), make_l2(10'000));
        for (int i = 0; i < 5; ++i) {
            ASSERT_TRUE(tiered.insert("http://a/" + std::to_string(i), 100, 1));
        }
    }
    TieredCacheStore tiered(make_l1(250), make_l2(10'000));
    EXPECT_EQ(tiered.document_count(), 5u);        // full directory recovered
    EXPECT_EQ(tiered.l1().document_count(), 2u);   // MRU-first warm-up, 250B budget
    EXPECT_TRUE(tiered.l1().contains("http://a/4"));
    EXPECT_TRUE(tiered.l1().contains("http://a/3"));
}

}  // namespace
}  // namespace sc::store
