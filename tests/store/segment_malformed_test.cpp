// Malformed segment records: frames that checksum perfectly but carry
// fields this store could never have written (zero seq, empty or
// control-byte URL, absurd size claim). The scanner must stop at the bad
// frame exactly like a torn tail — preserving every record before it —
// and count the rejection in sc_store_malformed_records_total. Cases
// seeded from the fuzz corpus (see fuzz/README.md).
#include "store/segment_log.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace {

using namespace sc::store;

std::string segment_header(std::uint64_t segment_id = 9) {
    std::string out;
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((kSegmentMagic >> (8 * i)) & 0xFF));
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((kSegmentFormatVersion >> (8 * i)) & 0xFF));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((segment_id >> (8 * i)) & 0xFF));
    return out;
}

Record good_record(std::uint64_t seq, const std::string& url = "http://e/x") {
    Record r;
    r.type = RecordType::insert;
    r.seq = seq;
    r.size = 1200;
    r.version = 1;
    r.url = url;
    return r;
}

sc::obs::Counter malformed_counter() {
    return sc::obs::metrics().counter(
        "sc_store_malformed_records_total",
        "segment records that passed the checksum but carried impossible fields");
}

/// Append a record and verify the scanner rejects it as malformed (counted),
/// while keeping every record appended before it.
void expect_rejected(const Record& bad) {
    std::string image = segment_header();
    encode_record(image, good_record(1));
    const std::size_t clean_bytes = image.size();
    encode_record(image, bad);

    const sc::obs::Counter c = malformed_counter();
    const std::uint64_t before = c.value();
    const ScanResult scan = scan_segment_bytes(image);
    EXPECT_TRUE(scan.header_ok);
    ASSERT_EQ(scan.records.size(), 1u);  // the good record survives
    EXPECT_EQ(scan.records[0].seq, 1u);
    EXPECT_EQ(scan.valid_bytes, clean_bytes);  // truncation point excludes the bad frame
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(c.value(), before + 1);
}

TEST(SegmentMalformed, ZeroSeqIsRejected) {
    // LogStore's first seq is 1; a zero seq can only be corruption that
    // happened to keep its checksum, or a hand-crafted file.
    expect_rejected(good_record(0));
}

TEST(SegmentMalformed, EmptyUrlIsRejected) {
    expect_rejected(good_record(2, ""));
}

TEST(SegmentMalformed, ControlByteUrlIsRejected) {
    expect_rejected(good_record(2, "http://e/\na"));
    expect_rejected(good_record(2, std::string("http://e/\0b", 11)));
}

TEST(SegmentMalformed, AbsurdSizeClaimIsRejected) {
    Record r = good_record(2);
    r.size = kMaxRecordSizeBytes + 1;  // a petabyte-class lie vs capacity math
    expect_rejected(r);
}

TEST(SegmentMalformed, UnknownRecordTypeIsRejected) {
    Record r = good_record(2);
    r.type = static_cast<RecordType>(9);
    expect_rejected(r);
}

TEST(SegmentMalformed, CleanImageCountsNothing) {
    std::string image = segment_header();
    encode_record(image, good_record(1));
    encode_record(image, good_record(2, "http://e/y"));

    const sc::obs::Counter c = malformed_counter();
    const std::uint64_t before = c.value();
    const ScanResult scan = scan_segment_bytes(image);
    EXPECT_TRUE(scan.header_ok);
    EXPECT_EQ(scan.records.size(), 2u);
    EXPECT_FALSE(scan.torn);
    EXPECT_EQ(scan.valid_bytes, image.size());
    EXPECT_EQ(c.value(), before);
}

TEST(SegmentMalformed, TornFrameIsNotCountedAsMalformed) {
    // A torn tail is a normal crash artifact, not corruption-past-checksum;
    // it must not inflate the malformed counter.
    std::string image = segment_header();
    encode_record(image, good_record(1));
    const std::size_t clean_bytes = image.size();
    encode_record(image, good_record(2));
    image.resize(image.size() - 3);

    const sc::obs::Counter c = malformed_counter();
    const std::uint64_t before = c.value();
    const ScanResult scan = scan_segment_bytes(image);
    EXPECT_EQ(scan.records.size(), 1u);
    EXPECT_EQ(scan.valid_bytes, clean_bytes);
    EXPECT_TRUE(scan.torn);
    EXPECT_EQ(c.value(), before);
}

TEST(SegmentMalformed, MaxUrlBoundIsExact) {
    // kMaxUrlBytes exactly is legal; the scanner's frame bound rejects one past.
    std::string image = segment_header();
    encode_record(image, good_record(1, std::string(kMaxUrlBytes, 'u')));
    const ScanResult ok = scan_segment_bytes(image);
    ASSERT_EQ(ok.records.size(), 1u);
    EXPECT_EQ(ok.records[0].url.size(), kMaxUrlBytes);

    std::string over = segment_header();
    encode_record(over, good_record(1, std::string(kMaxUrlBytes + 1, 'u')));
    const ScanResult bad = scan_segment_bytes(over);
    EXPECT_TRUE(bad.records.empty());
    EXPECT_TRUE(bad.torn);
}

}  // namespace
