// LogStructuredStore: in-RAM semantics must mirror LruCache exactly, and
// recovery must survive every crash shape the format promises to handle
// (torn tail, truncated header, duplicate insert/erase replay, zero
// segments). Each test opens a fresh temp directory; "crash" is simulated
// by destroying the store (appends hit the fd immediately, so the file
// state equals what a SIGKILL would leave behind, minus the page cache —
// which recovery never depends on).
#include "store/log_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "store/segment_log.hpp"

namespace sc::store {
namespace {

namespace fs = std::filesystem;
using Lookup = CacheStore::Lookup;
using Entry = CacheStore::Entry;

class LogStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = fs::temp_directory_path() /
               ("sc_log_store_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()->current_test_info()->name());
        fs::remove_all(dir_);
    }
    void TearDown() override { fs::remove_all(dir_); }

    [[nodiscard]] LogStoreConfig config(std::uint64_t capacity = 10'000) const {
        LogStoreConfig cfg;
        cfg.dir = dir_.string();
        cfg.capacity_bytes = capacity;
        cfg.background_compaction = false;  // tests drive compact_once()
        return cfg;
    }

    [[nodiscard]] static std::unique_ptr<LogStructuredStore> open(LogStoreConfig cfg) {
        return std::make_unique<LogStructuredStore>(std::move(cfg));
    }

    /// URLs in recency order, front = MRU (for_each_entry visits MRU first).
    [[nodiscard]] static std::vector<std::string> recency_order(const LogStructuredStore& s) {
        std::vector<std::string> urls;
        s.for_each_entry([&](const Entry& e) { urls.push_back(e.url); });
        return urls;
    }

    fs::path dir_;
};

// --- LruCache-mirrored semantics -----------------------------------------

TEST_F(LogStoreTest, InsertLookupEraseRoundTrip) {
    auto store = open(config());
    EXPECT_TRUE(store->insert("http://a/1", 100, 7));
    EXPECT_EQ(store->lookup("http://a/1", 7), Lookup::hit);
    EXPECT_EQ(store->lookup("http://a/2", 7), Lookup::miss_absent);
    EXPECT_TRUE(store->contains("http://a/1"));
    EXPECT_EQ(store->cached_version("http://a/1"), 7u);
    const auto copy = store->entry_copy("http://a/1");
    ASSERT_TRUE(copy.has_value());
    EXPECT_EQ(copy->size, 100u);
    EXPECT_TRUE(store->erase("http://a/1"));
    EXPECT_FALSE(store->erase("http://a/1"));
    EXPECT_EQ(store->document_count(), 0u);
    EXPECT_EQ(store->used_bytes(), 0u);
}

TEST_F(LogStoreTest, VersionMismatchEvictsAndReportsChanged) {
    auto store = open(config());
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    EXPECT_EQ(store->lookup("http://a/1", 2), Lookup::miss_changed);
    EXPECT_FALSE(store->contains("http://a/1"));  // stale entry removed
}

TEST_F(LogStoreTest, OversizeObjectsAreRefused) {
    auto cfg = config(10'000);
    cfg.max_object_bytes = 500;
    auto store = open(cfg);
    EXPECT_FALSE(store->insert("http://a/big", 501, 1));
    EXPECT_FALSE(store->insert("http://a/huge", 20'000, 1));
    EXPECT_TRUE(store->insert("http://a/ok", 500, 1));
    EXPECT_EQ(store->document_count(), 1u);
}

TEST_F(LogStoreTest, EvictsFromLruTailUnderPressure) {
    auto store = open(config(300));
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    ASSERT_TRUE(store->insert("http://a/2", 100, 1));
    ASSERT_TRUE(store->insert("http://a/3", 100, 1));
    EXPECT_EQ(store->lookup("http://a/1", 1), Lookup::hit);  // promote 1
    ASSERT_TRUE(store->insert("http://a/4", 100, 1));        // evicts 2 (LRU)
    EXPECT_FALSE(store->contains("http://a/2"));
    EXPECT_TRUE(store->contains("http://a/1"));
    EXPECT_TRUE(store->contains("http://a/3"));
    EXPECT_TRUE(store->contains("http://a/4"));
    EXPECT_EQ(store->used_bytes(), 300u);
}

TEST_F(LogStoreTest, RefreshUpdatesBytesWithoutInsertHook) {
    auto store = open(config());
    int inserts = 0, removals = 0;
    store->set_insert_hook([&](const Entry&) { ++inserts; });
    store->set_removal_hook([&](const Entry&) { ++removals; });
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    EXPECT_EQ(inserts, 1);
    ASSERT_TRUE(store->insert("http://a/1", 250, 2));  // refresh, not new
    EXPECT_EQ(inserts, 1);
    EXPECT_EQ(removals, 0);
    EXPECT_EQ(store->used_bytes(), 250u);
    EXPECT_EQ(store->cached_version("http://a/1"), 2u);
}

TEST_F(LogStoreTest, RemovalHookFiresForEvictionEraseAndStale) {
    auto store = open(config(200));
    std::vector<std::string> removed;
    store->set_removal_hook([&](const Entry& e) { removed.push_back(e.url); });
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    ASSERT_TRUE(store->insert("http://a/2", 100, 1));
    ASSERT_TRUE(store->insert("http://a/3", 100, 1));       // evicts 1
    EXPECT_EQ(store->lookup("http://a/2", 9), Lookup::miss_changed);
    EXPECT_TRUE(store->erase("http://a/3"));
    EXPECT_EQ(removed, (std::vector<std::string>{"http://a/1", "http://a/2", "http://a/3"}));
}

TEST_F(LogStoreTest, TouchPromotesWithoutVersionCheck) {
    auto store = open(config(300));
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    ASSERT_TRUE(store->insert("http://a/2", 100, 1));
    ASSERT_TRUE(store->insert("http://a/3", 100, 1));
    store->touch("http://a/1");
    ASSERT_TRUE(store->insert("http://a/4", 100, 1));  // evicts 2, not 1
    EXPECT_TRUE(store->contains("http://a/1"));
    EXPECT_FALSE(store->contains("http://a/2"));
}

// --- recovery -------------------------------------------------------------

TEST_F(LogStoreTest, ZeroSegmentsRecoversEmpty) {
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 0u);
    EXPECT_EQ(store->document_count(), 0u);
    EXPECT_EQ(store->segment_count(), 1u);  // fresh writer segment
}

TEST_F(LogStoreTest, WarmRestartRecoversLiveEntries) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        ASSERT_TRUE(store->insert("http://a/2", 200, 2));
        ASSERT_TRUE(store->insert("http://a/3", 300, 3));
        EXPECT_TRUE(store->erase("http://a/2"));
    }  // dtor flushes; on-disk state now has 3 inserts + 1 tombstone

    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 2u);
    EXPECT_EQ(store->document_count(), 2u);
    EXPECT_EQ(store->used_bytes(), 400u);
    EXPECT_EQ(store->cached_version("http://a/1"), 1u);
    EXPECT_EQ(store->cached_version("http://a/3"), 3u);
    EXPECT_FALSE(store->contains("http://a/2"));
}

TEST_F(LogStoreTest, RecoveryWithoutFlushSeesUnsyncedAppends) {
    // Appends go straight to the fd; a crash loses at most the page cache,
    // never the process's own writes — reopening without flush() must see
    // everything.
    auto store = open(config());
    ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    store = nullptr;  // destroy without an explicit flush
    store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
}

TEST_F(LogStoreTest, DuplicateInsertReplayKeepsLatestVersion) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        ASSERT_TRUE(store->insert("http://a/1", 150, 2));
        ASSERT_TRUE(store->insert("http://a/1", 175, 3));
    }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_EQ(store->cached_version("http://a/1"), 3u);
    EXPECT_EQ(store->used_bytes(), 175u);
}

TEST_F(LogStoreTest, InsertEraseInsertReplaysToLive) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        EXPECT_TRUE(store->erase("http://a/1"));
        ASSERT_TRUE(store->insert("http://a/1", 120, 2));
    }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_EQ(store->cached_version("http://a/1"), 2u);
}

TEST_F(LogStoreTest, InsertEraseReplaysToAbsent) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        ASSERT_TRUE(store->insert("http://a/2", 100, 1));
        EXPECT_TRUE(store->erase("http://a/1"));
    }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_FALSE(store->contains("http://a/1"));
    EXPECT_TRUE(store->contains("http://a/2"));
}

TEST_F(LogStoreTest, RecoveryPreservesLruOrder) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        ASSERT_TRUE(store->insert("http://a/2", 100, 1));
        ASSERT_TRUE(store->insert("http://a/3", 100, 1));
        EXPECT_EQ(store->lookup("http://a/1", 1), Lookup::hit);  // 1 becomes MRU
        EXPECT_EQ(recency_order(*store),
                  (std::vector<std::string>{"http://a/1", "http://a/3", "http://a/2"}));
    }
    auto store = open(config(200));  // shrunk: must evict the recovered LRU tail
    EXPECT_EQ(store->document_count(), 2u);
    EXPECT_EQ(recency_order(*store),
              (std::vector<std::string>{"http://a/1", "http://a/3"}));
    EXPECT_FALSE(store->contains("http://a/2"));  // tail (LRU) went first
}

TEST_F(LogStoreTest, TornFinalRecordIsTruncatedAway) {
    std::string seg_path;
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        ASSERT_TRUE(store->insert("http://a/2", 100, 2));
    }
    // Find the one non-empty segment and append half a record (torn write).
    for (const auto& de : fs::directory_iterator(dir_)) {
        if (fs::file_size(de.path()) > kSegmentHeaderBytes) seg_path = de.path().string();
    }
    ASSERT_FALSE(seg_path.empty());
    const auto before = fs::file_size(seg_path);
    {
        std::string torn;
        encode_record(torn, Record{RecordType::insert, 99, 100, 3, "http://a/torn"});
        torn.resize(torn.size() - 5);
        std::ofstream out(seg_path, std::ios::binary | std::ios::app);
        out.write(torn.data(), static_cast<std::streamsize>(torn.size()));
    }
    ASSERT_GT(fs::file_size(seg_path), before);

    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 2u);
    EXPECT_TRUE(store->contains("http://a/1"));
    EXPECT_TRUE(store->contains("http://a/2"));
    EXPECT_FALSE(store->contains("http://a/torn"));
    // Recovery truncated the file back to its last valid frame.
    EXPECT_EQ(fs::file_size(seg_path), before);
}

TEST_F(LogStoreTest, TruncatedHeaderSegmentIsDropped) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    }
    // A segment file too short to hold its header (crash during create).
    {
        std::ofstream out(dir_ / segment_file_name(999), std::ios::binary);
        out << "SC";
    }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_TRUE(store->contains("http://a/1"));
    // The unreadable segment was unlinked, not left to rot.
    EXPECT_FALSE(fs::exists(dir_ / segment_file_name(999)));
}

TEST_F(LogStoreTest, ForeignFilesInTheDirectoryAreIgnored) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
    }
    {
        std::ofstream out(dir_ / "README.txt");
        out << "not a segment";
    }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_TRUE(fs::exists(dir_ / "README.txt"));
}

TEST_F(LogStoreTest, RecoveredStateSurvivesASecondRestart) {
    {
        auto store = open(config());
        ASSERT_TRUE(store->insert("http://a/1", 100, 1));
        EXPECT_TRUE(store->erase("http://a/1"));
        ASSERT_TRUE(store->insert("http://a/2", 100, 1));
    }
    { auto store = open(config()); EXPECT_EQ(store->recovered_entries(), 1u); }
    auto store = open(config());
    EXPECT_EQ(store->recovered_entries(), 1u);
    EXPECT_TRUE(store->contains("http://a/2"));
    EXPECT_FALSE(store->contains("http://a/1"));
}

// --- compaction -----------------------------------------------------------

TEST_F(LogStoreTest, CompactionDropsDeadBytesAndSegments) {
    auto cfg = config(100'000);
    cfg.segment_target_bytes = 512;  // rotate quickly
    auto store = open(cfg);
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(store->insert("http://a/" + std::to_string(i), 50, 1));
    }
    for (int i = 0; i < 40; i += 2) {
        EXPECT_TRUE(store->erase("http://a/" + std::to_string(i)));
    }
    const std::size_t before = store->segment_count();
    ASSERT_GT(before, 2u);
    // Unforced compaction converges: once every sealed segment is mostly
    // live there is nothing left below the threshold and it returns false.
    std::size_t compacted = 0;
    while (store->compact_once(false)) ++compacted;
    EXPECT_GT(compacted, 0u);
    EXPECT_LT(store->segment_count(), before);
    // Live contents are untouched.
    EXPECT_EQ(store->document_count(), 20u);
    for (int i = 1; i < 40; i += 2) {
        EXPECT_TRUE(store->contains("http://a/" + std::to_string(i))) << i;
    }
}

TEST_F(LogStoreTest, TombstonesDoNotResurrectAcrossCompactionAndRestart) {
    auto cfg = config(100'000);
    cfg.segment_target_bytes = 256;
    {
        auto store = open(cfg);
        ASSERT_TRUE(store->insert("http://a/victim", 50, 1));
        // Push the insert and its tombstone into different sealed segments.
        for (int i = 0; i < 20; ++i) {
            ASSERT_TRUE(store->insert("http://b/" + std::to_string(i), 50, 1));
        }
        EXPECT_TRUE(store->erase("http://a/victim"));
        for (int i = 20; i < 40; ++i) {
            ASSERT_TRUE(store->insert("http://b/" + std::to_string(i), 50, 1));
        }
        // Force-cycle every ORIGINAL segment through compaction (forced
        // compaction never runs dry — rewrites keep sealing fresh segments
        // — so bound the rounds by the starting count).
        const std::size_t rounds = store->segment_count();
        for (std::size_t i = 0; i < rounds; ++i) {
            EXPECT_TRUE(store->compact_once(true));
        }
    }
    auto store = open(cfg);
    EXPECT_FALSE(store->contains("http://a/victim"));
    EXPECT_EQ(store->document_count(), 40u);
}

TEST_F(LogStoreTest, CompactedStateRecoversCleanly) {
    auto cfg = config(100'000);
    cfg.segment_target_bytes = 256;
    std::vector<std::string> expect_alive;
    {
        auto store = open(cfg);
        for (int i = 0; i < 30; ++i) {
            const std::string url = "http://a/" + std::to_string(i);
            ASSERT_TRUE(store->insert(url, 60, static_cast<std::uint64_t>(i)));
            if (i % 3 == 0) {
                EXPECT_TRUE(store->erase(url));
            } else {
                expect_alive.push_back(url);
            }
        }
        const std::size_t rounds = store->segment_count();
        for (std::size_t i = 0; i < rounds; ++i) (void)store->compact_once(true);
    }
    auto store = open(cfg);
    EXPECT_EQ(store->recovered_entries(), expect_alive.size());
    for (const auto& url : expect_alive) EXPECT_TRUE(store->contains(url)) << url;
}

TEST_F(LogStoreTest, BackgroundCompactorRunsWithoutExplicitKicks) {
    auto cfg = config(100'000);
    cfg.segment_target_bytes = 256;
    cfg.background_compaction = true;
    cfg.compact_live_ratio = 1.0;  // everything is compactable
    auto store = open(cfg);
    for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(store->insert("http://a/" + std::to_string(i % 6), 50,
                                  static_cast<std::uint64_t>(i)));
    }
    // Only liveness is asserted here (the compactor owns the timing); the
    // deterministic compaction contract is pinned by the tests above.
    EXPECT_EQ(store->document_count(), 6u);
}

// --- metrics --------------------------------------------------------------

TEST_F(LogStoreTest, MetricsReportRecoveryAndCompaction) {
    const obs::Labels labels{{"dir", dir_.string()}};
    auto cfg = config(100'000);
    cfg.segment_target_bytes = 256;
    {
        auto store = open(cfg);
        for (int i = 0; i < 20; ++i) {
            ASSERT_TRUE(store->insert("http://a/" + std::to_string(i), 50, 1));
        }
    }
    auto store = open(cfg);
    EXPECT_TRUE(store->compact_once(true));

    const auto snap = obs::metrics().snapshot();
    const auto* recovered = snap.find("sc_store_recovered_entries_total", labels);
    ASSERT_NE(recovered, nullptr);
    EXPECT_EQ(recovered->counter, 20u);
    const auto* compactions = snap.find("sc_store_compactions_total", labels);
    ASSERT_NE(compactions, nullptr);
    EXPECT_GE(compactions->counter, 1u);
    const auto* segments = snap.find("sc_store_segments", labels);
    ASSERT_NE(segments, nullptr);
    EXPECT_EQ(static_cast<std::size_t>(segments->gauge), store->segment_count());
    const auto* recovery_read = snap.find("sc_store_recovery_read_seconds", labels);
    ASSERT_NE(recovery_read, nullptr);
    EXPECT_GE(recovery_read->observations, 1u);
}

}  // namespace
}  // namespace sc::store
