// DeltaBatcher: the §V-A update-delay policies (migrated here from the
// old UpdateThresholdPolicy/TimeIntervalPolicy), the §VI-B packet floor,
// flush-epoch election under contention, and the hook-journal locking
// regression (run under TSan in CI).
#include "core/delta_batcher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cache/lru_cache.hpp"

namespace sc::core {
namespace {

DeltaBatcherConfig threshold_cfg(double fraction) {
    return DeltaBatcherConfig{fraction, 0.0, 0};
}

TEST(DeltaBatcher, NoFlushWithoutChanges) {
    DeltaBatcher b(threshold_cfg(0.01));
    EXPECT_FALSE(b.due(1000, 0.0));
    EXPECT_FALSE(b.try_begin_flush(1000, 0.0, 0).has_value());
}

TEST(DeltaBatcher, FlushDueAtThreshold) {
    DeltaBatcher b(threshold_cfg(0.01));  // 1% of 1000 docs = 10 new docs
    for (int i = 0; i < 9; ++i) b.on_new_document();
    EXPECT_FALSE(b.due(1000, 0.0));
    b.on_new_document();
    EXPECT_TRUE(b.due(1000, 0.0));
    const auto batch = b.try_begin_flush(1000, 0.0, 0);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(*batch, 10u);
    b.finish_flush(0.0, *batch);
    EXPECT_FALSE(b.due(1000, 0.0));  // reset by the flush
    EXPECT_EQ(b.epoch(), 1u);
}

TEST(DeltaBatcher, ZeroThresholdFlushesEveryChange) {
    DeltaBatcher b(threshold_cfg(0.0));
    EXPECT_FALSE(b.due(100, 0.0));  // nothing changed yet
    b.on_new_document();
    EXPECT_TRUE(b.due(100, 0.0));
}

TEST(DeltaBatcher, SmallerDirectoryTriggersSooner) {
    DeltaBatcher b(threshold_cfg(0.05));
    b.on_new_document();
    EXPECT_TRUE(b.due(10, 0.0));    // 1 >= 0.5
    EXPECT_FALSE(b.due(100, 0.0));  // 1 < 5
}

TEST(DeltaBatcher, TimeIntervalPolicy) {
    DeltaBatcher b(DeltaBatcherConfig{0.0, 10.0, 0});
    b.on_new_document();
    EXPECT_FALSE(b.due(1, 5.0));  // interval not yet elapsed
    EXPECT_TRUE(b.due(1, 10.0));
    const auto batch = b.try_begin_flush(1, 10.0, 0);
    ASSERT_TRUE(batch.has_value());
    b.finish_flush(10.0, *batch);
    b.on_new_document();
    EXPECT_FALSE(b.due(1, 15.0));  // clock restarts at the publish
    EXPECT_TRUE(b.due(1, 20.0));
}

TEST(DeltaBatcher, PacketFloorDefersWithoutReset) {
    // §VI-B: "enough changes to fill an IP packet". The floor defers the
    // flush but must NOT consume the unreflected count — the flush stays
    // due and fires as soon as the summary churn reaches the floor.
    DeltaBatcher b(DeltaBatcherConfig{0.0, 0.0, 350});
    b.on_new_document();
    EXPECT_FALSE(b.try_begin_flush(1, 0.0, /*pending_changes=*/100).has_value());
    EXPECT_EQ(b.unreflected(), 1u);  // not consumed
    const auto batch = b.try_begin_flush(1, 0.0, /*pending_changes=*/350);
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(*batch, 1u);
    b.finish_flush(0.0, *batch);
}

TEST(DeltaBatcher, ConcurrentInsertersCoalesceIntoFlushEpochs) {
    // Many threads insert and race to flush; the CAS elects exactly one
    // flusher per epoch and no insert is lost or double-counted.
    DeltaBatcher b(threshold_cfg(0.0));
    constexpr int kThreads = 8;
    constexpr int kPerThread = 2000;
    std::atomic<std::uint64_t> flushed{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                b.on_new_document();
                if (const auto batch = b.try_begin_flush(1, 0.0, 0)) {
                    flushed.fetch_add(*batch);
                    b.finish_flush(0.0, *batch);
                }
            }
        });
    }
    for (auto& t : threads) t.join();
    // A final sweep collects whatever the last racers left behind.
    if (const auto batch = b.try_begin_flush(1, 0.0, 0)) {
        flushed.fetch_add(*batch);
        b.finish_flush(0.0, *batch);
    }
    EXPECT_EQ(flushed.load(), static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_GE(b.epoch(), 1u);
}

TEST(DeltaBatcher, JournalPreservesOrder) {
    DeltaBatcher b(threshold_cfg(0.0));
    b.record_insert("a");
    b.record_erase("a");
    b.record_insert("b");
    const auto ops = b.drain_journal();
    ASSERT_EQ(ops.size(), 3u);
    EXPECT_TRUE(ops[0].insert);
    EXPECT_EQ(ops[0].url, "a");
    EXPECT_FALSE(ops[1].insert);
    EXPECT_EQ(ops[1].url, "a");
    EXPECT_TRUE(ops[2].insert);
    EXPECT_EQ(ops[2].url, "b");
    EXPECT_TRUE(b.journal_empty());
}

TEST(DeltaBatcher, HookJournalCannotDeadlockWithReentrantFlush) {
    // Deadlock regression (run under TSan in CI). The old design had the
    // cache hooks lock the node mutex (cache-mutex -> node-mutex) while a
    // flush under the node mutex wanted cache state (node-mutex ->
    // cache-mutex): a classic inversion. The journal breaks it — hooks
    // only touch the leaf journal lock, so a flusher may freely call back
    // into the cache (document_count, even insert-with-eviction, which
    // fires removal hooks) while another thread inserts concurrently.
    DeltaBatcher b(threshold_cfg(0.0));
    LruCache cache(LruCacheConfig{32 * 1024, 8 * 1024});  // tiny: evictions fire
    cache.set_insert_hook([&b](const LruCache::Entry& e) { b.record_insert(e.url); });
    cache.set_removal_hook([&b](const LruCache::Entry& e) { b.record_erase(e.url); });

    std::atomic<bool> stop{false};
    std::thread inserter([&] {
        // Mirrors ProtocolEngine::admit: the cache insert fires the hook,
        // the accepted document counts toward the threshold.
        for (int i = 0; !stop.load(std::memory_order_relaxed); ++i)
            if (cache.insert("ins/" + std::to_string(i), 4096, 1)) b.on_new_document();
    });
    std::uint64_t drained = 0;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    for (int round = 0; drained < 2000; ++round) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "flush loop starved";
        drained += b.drain_journal().size();
        if (const auto batch = b.try_begin_flush(cache.document_count(), 0.0, 0)) {
            // The flush callback path re-enters the cache — including an
            // insert that evicts and fires hooks from THIS thread.
            cache.insert("flush/" + std::to_string(round), 4096, 1);
            b.finish_flush(0.0, *batch);
        }
    }
    stop.store(true);
    inserter.join();
    drained += b.drain_journal().size();
    EXPECT_GE(drained, 2000u);
}

}  // namespace
}  // namespace sc::core
